// Per-link weights — an extension beyond the paper.
//
// The paper counts links without weighting them (footnote 3). Real tariffs
// and real trees care about link length/cost, so the library also supports
// weighted shortest-path trees: `edge_weights` attaches a symmetric weight
// to every link of an immutable graph, keyed by the graph's half-edge
// numbering (graph::adjacency_base) so Dijkstra's inner loop is one array
// read. See graph/dijkstra.hpp and multicast/weighted.hpp for the users.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace mcast {

class edge_weights {
 public:
  /// Weights for every link of `g`, initialized to `default_weight`
  /// (> 0). The graph must outlive this object.
  explicit edge_weights(const graph& g, double default_weight = 1.0);

  /// Sets the weight of the undirected link {a,b} (both directions).
  /// Requires the link to exist and w > 0.
  void set(node_id a, node_id b, double w);

  /// Weight of link {a,b}. Requires the link to exist.
  double get(node_id a, node_id b) const;

  /// Weight at a half-edge slot (graph::adjacency_base(v) + i for the i-th
  /// neighbor of v) — the hot-path accessor.
  double at_slot(std::size_t slot) const { return weights_[slot]; }

  /// Total weight of all links (each counted once).
  double total() const;

  /// Applies `fn(a, b) -> double` to every undirected link {a<b} to derive
  /// weights (e.g. Euclidean lengths from coordinates). fn must return > 0.
  template <typename weight_fn>
  void assign(weight_fn&& fn);

  const graph& topology() const noexcept { return *g_; }

 private:
  std::size_t slot_of(node_id a, node_id b) const;

  const graph* g_;
  std::vector<double> weights_;  // size 2*edge_count(), symmetric
};

// --- template implementation ---

template <typename weight_fn>
void edge_weights::assign(weight_fn&& fn) {
  for (node_id v = 0; v < g_->node_count(); ++v) {
    for (node_id w : g_->neighbors(v)) {
      if (v < w) set(v, w, fn(v, w));
    }
  }
}

}  // namespace mcast
