// Immutable undirected graph in compressed-sparse-row (CSR) form.
//
// This is the substrate every other mcast library builds on: topologies are
// produced by the generators in topo/, then traversed by BFS to compute
// shortest-path (delivery) trees, unicast path lengths and reachability
// functions. The representation is deliberately minimal — the paper counts
// links without weighting them by length or bandwidth (footnote 3), so edges
// carry no attributes.
//
// Construction goes through graph_builder (builder.hpp), which de-duplicates
// parallel edges and drops self-loops, mirroring the paper's "cleaning" of
// the TIERS topologies (Section 2).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace mcast {

/// Node identifier; nodes of a graph with n nodes are 0..n-1.
using node_id = std::uint32_t;

/// Sentinel for "no node" (e.g. the BFS parent of the root).
inline constexpr node_id invalid_node = static_cast<node_id>(-1);

/// An undirected edge as an unordered pair of endpoints.
struct edge {
  node_id a = invalid_node;
  node_id b = invalid_node;

  friend bool operator==(const edge&, const edge&) = default;
};

class graph_builder;

/// Immutable undirected graph (CSR adjacency).
///
/// Invariants: adjacency lists are sorted, contain no self-loops and no
/// duplicate entries; every edge {a,b} appears both in adjacency(a) and
/// adjacency(b).
class graph {
 public:
  /// An empty graph (0 nodes, 0 edges).
  graph() = default;

  /// Number of nodes.
  node_id node_count() const noexcept { return static_cast<node_id>(offsets_.empty() ? 0 : offsets_.size() - 1); }

  /// Number of undirected edges (each {a,b} counted once).
  std::size_t edge_count() const noexcept { return targets_.size() / 2; }

  /// True when node_count() == 0.
  bool empty() const noexcept { return node_count() == 0; }

  /// Neighbors of `v`, sorted ascending. Throws std::out_of_range on bad id.
  std::span<const node_id> neighbors(node_id v) const;

  /// Index of `v`'s first adjacency slot in the graph's directed-edge
  /// numbering (0..2*edge_count()). Slot `adjacency_base(v) + i` refers to
  /// the half-edge v -> neighbors(v)[i]; parallel per-half-edge attribute
  /// arrays (graph/weights.hpp) are keyed by these indices.
  std::size_t adjacency_base(node_id v) const;

  /// Degree of `v`. Throws std::out_of_range on bad id.
  std::size_t degree(node_id v) const;

  /// True when the undirected edge {a,b} exists (binary search, O(log d)).
  bool has_edge(node_id a, node_id b) const;

  /// All edges, each once, with a < b, in lexicographic order.
  std::vector<edge> edges() const;

  /// Optional human-readable name (topology generators set this).
  const std::string& name() const noexcept { return name_; }

  /// Sets the display name; returns *this for chaining.
  graph& set_name(std::string n) { name_ = std::move(n); return *this; }

  friend class graph_builder;

 private:
  graph(std::vector<std::size_t> offsets, std::vector<node_id> targets, std::string name)
      : offsets_(std::move(offsets)), targets_(std::move(targets)), name_(std::move(name)) {}

  std::vector<std::size_t> offsets_;  // size node_count()+1 (or empty)
  std::vector<node_id> targets_;      // size 2*edge_count()
  std::string name_;
};

}  // namespace mcast
