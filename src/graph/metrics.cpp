#include "graph/metrics.hpp"

#include <algorithm>

#include "common/contract.hpp"

namespace mcast {

degree_stats compute_degree_stats(const graph& g) {
  degree_stats s;
  if (g.empty()) return s;
  s.min = g.degree(0);
  for (node_id v = 0; v < g.node_count(); ++v) {
    const std::size_t d = g.degree(v);
    s.min = std::min(s.min, d);
    s.max = std::max(s.max, d);
    if (s.histogram.size() <= d) s.histogram.resize(d + 1, 0);
    ++s.histogram[d];
  }
  s.mean = 2.0 * static_cast<double>(g.edge_count()) /
           static_cast<double>(g.node_count());
  return s;
}

double average_path_length_exact(const graph& g) {
  if (g.node_count() < 2) return 0.0;
  double total = 0.0;
  std::size_t pairs = 0;
  for (node_id s = 0; s < g.node_count(); ++s) {
    for (hop_count d : bfs_distances(g, s)) {
      if (d != unreachable && d > 0) {
        total += d;
        ++pairs;
      }
    }
  }
  return pairs == 0 ? 0.0 : total / static_cast<double>(pairs);
}

std::size_t diameter_exact(const graph& g) {
  std::size_t best = 0;
  for (node_id s = 0; s < g.node_count(); ++s) {
    for (hop_count d : bfs_distances(g, s)) {
      if (d != unreachable) best = std::max<std::size_t>(best, d);
    }
  }
  return best;
}

table1_row summarize_network(const graph& g, std::size_t exact_threshold,
                             std::size_t samples, std::uint64_t seed) {
  table1_row row;
  row.name = g.name();
  row.nodes = g.node_count();
  row.links = g.edge_count();
  row.avg_degree = g.empty() ? 0.0
                             : 2.0 * static_cast<double>(g.edge_count()) /
                                   static_cast<double>(g.node_count());
  if (g.node_count() < 2) return row;

  if (g.node_count() <= exact_threshold) {
    row.avg_path_length = average_path_length_exact(g);
    row.diameter = diameter_exact(g);
  } else {
    // splitmix64 stream keeps this header-light and deterministic.
    std::uint64_t state = seed;
    auto pick = [&state](std::size_t n) {
      state += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = state;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      z ^= z >> 31;
      return z % n;
    };
    double total = 0.0;
    std::size_t pairs = 0;
    std::size_t ecc_max = 0;
    for (std::size_t i = 0; i < samples; ++i) {
      const node_id s = static_cast<node_id>(pick(g.node_count()));
      for (hop_count d : bfs_distances(g, s)) {
        if (d != unreachable && d > 0) {
          total += d;
          ++pairs;
          ecc_max = std::max<std::size_t>(ecc_max, d);
        }
      }
    }
    row.avg_path_length = pairs ? total / static_cast<double>(pairs) : 0.0;
    row.diameter = ecc_max;  // lower bound from sampled eccentricities
  }
  return row;
}

}  // namespace mcast
