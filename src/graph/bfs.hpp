// Breadth-first search: hop-count shortest paths and shortest-path trees.
//
// The paper's multicast model is source-specific shortest-path routing
// (Section 1, footnote 1): packets to each receiver follow a shortest path
// from the source, and the delivery tree is the union of those paths. BFS
// from the source yields both the distance field (unicast path lengths) and
// one canonical shortest-path tree via parent pointers.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/graph.hpp"

namespace mcast {

class traversal_workspace;  // graph/workspace.hpp

/// Hop distance type; `unreachable` marks nodes in other components.
using hop_count = std::uint32_t;
inline constexpr hop_count unreachable = std::numeric_limits<hop_count>::max();

/// Result of a single-source BFS.
struct bfs_tree {
  node_id source = invalid_node;
  /// dist[v] = hops from source to v, or `unreachable`.
  std::vector<hop_count> dist;
  /// parent[v] = predecessor of v on one shortest path (lowest-id neighbor
  /// rule, making the tree deterministic); parent[source] = invalid_node,
  /// parent[v] = invalid_node for unreachable v.
  std::vector<node_id> parent;

  /// Maximum finite distance (graph eccentricity of the source).
  hop_count eccentricity() const;

  /// Number of nodes with finite distance (including the source).
  std::size_t reached_count() const;
};

/// Runs BFS from `source`. Throws std::out_of_range on a bad source id.
bfs_tree bfs_from(const graph& g, node_id source);

/// Distances only (skips parent bookkeeping; same semantics as bfs_from).
std::vector<hop_count> bfs_distances(const graph& g, node_id source);

/// Workspace-accepting overload: bit-identical output to
/// bfs_from(g, source), but reuses the workspace scratch and `out`'s
/// capacity — no allocation once both are warm. Returns `out`.
bfs_tree& bfs_from(const graph& g, node_id source, traversal_workspace& ws,
                   bfs_tree& out);

/// Distance field into a reused vector (same semantics as bfs_distances).
std::vector<hop_count>& bfs_distances(const graph& g, node_id source,
                                      traversal_workspace& ws,
                                      std::vector<hop_count>& out);

/// Randomized-parent BFS: among the equal-distance predecessors of each
/// node, one is chosen uniformly using the caller-supplied stream of random
/// numbers. Used by the SPT tie-breaking ablation (DESIGN.md §6.1).
/// `pick(k)` must return a value in [0, k).
template <typename pick_fn>
bfs_tree bfs_from_random_parents(const graph& g, node_id source, pick_fn&& pick);

// --- implementation of the template ---

template <typename pick_fn>
bfs_tree bfs_from_random_parents(const graph& g, node_id source, pick_fn&& pick) {
  bfs_tree t = bfs_from(g, source);  // validates + gives distances
  // Re-draw each parent uniformly among eligible predecessors.
  for (node_id v = 0; v < g.node_count(); ++v) {
    if (v == source || t.dist[v] == unreachable) continue;
    std::uint32_t eligible = 0;
    for (node_id w : g.neighbors(v)) {
      if (t.dist[w] + 1 == t.dist[v]) ++eligible;
    }
    std::uint32_t chosen = static_cast<std::uint32_t>(pick(eligible));
    for (node_id w : g.neighbors(v)) {
      if (t.dist[w] + 1 == t.dist[v]) {
        if (chosen == 0) {
          t.parent[v] = w;
          break;
        }
        --chosen;
      }
    }
  }
  return t;
}

}  // namespace mcast
