// Whole-graph structural metrics: the columns of the paper's Table 1
// (nodes, links, average degree) plus the path statistics (average unicast
// path length ū, diameter) used to normalize every figure.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/bfs.hpp"
#include "graph/graph.hpp"

namespace mcast {

/// Degree distribution summary.
struct degree_stats {
  std::size_t min = 0;
  std::size_t max = 0;
  double mean = 0.0;
  std::vector<std::size_t> histogram;  // histogram[d] = #nodes with degree d
};

/// Computes degree statistics for `g` (all zeros for an empty graph).
degree_stats compute_degree_stats(const graph& g);

/// Exact average shortest-path length over all ordered reachable pairs
/// (excluding v->v). O(V·(V+E)); fine up to a few thousand nodes.
double average_path_length_exact(const graph& g);

/// Monte-Carlo estimate of the average shortest-path length: BFS from
/// `samples` sources drawn by `pick(node_count)` (values in [0, n)).
/// Matches the paper's practice of estimating ū by sampling sources.
template <typename pick_fn>
double average_path_length_sampled(const graph& g, std::size_t samples, pick_fn&& pick);

/// Exact diameter (max finite pairwise distance). O(V·(V+E)).
std::size_t diameter_exact(const graph& g);

/// One row of Table 1.
struct table1_row {
  std::string name;
  std::size_t nodes = 0;
  std::size_t links = 0;
  double avg_degree = 0.0;
  double avg_path_length = 0.0;  // ū, sampled for large graphs
  std::size_t diameter = 0;      // sampled lower bound for large graphs
};

/// Computes a Table 1 row. For graphs over `exact_threshold` nodes the path
/// metrics are estimated from `samples` BFS sources chosen deterministically
/// from `seed`.
table1_row summarize_network(const graph& g, std::size_t exact_threshold = 4000,
                             std::size_t samples = 64, std::uint64_t seed = 1);

// --- template implementation ---

template <typename pick_fn>
double average_path_length_sampled(const graph& g, std::size_t samples, pick_fn&& pick) {
  if (g.node_count() < 2 || samples == 0) return 0.0;
  double total = 0.0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    const node_id s = static_cast<node_id>(pick(g.node_count()));
    for (hop_count d : bfs_distances(g, s)) {
      if (d != unreachable && d > 0) {
        total += d;
        ++pairs;
      }
    }
  }
  return pairs == 0 ? 0.0 : total / static_cast<double>(pairs);
}

}  // namespace mcast
