// Reusable traversal scratch — the hot-path allocation killer.
//
// Every figure bench and Monte-Carlo study calls BFS/Dijkstra thousands of
// times per topology. The one-shot entry points (bfs_from, dijkstra_from)
// allocate and fill fresh O(V) distance/parent arrays on every call; for a
// sweep that resamples sources this dominates the runtime. A
// `traversal_workspace` owns those arrays once and reuses them across
// calls, with *epoch tagging*: instead of refilling dist/parent with
// sentinels before each traversal, every node carries the epoch of the
// last pass that touched it, and a new pass just bumps the epoch counter —
// per-call reset is O(1), and total work is O(nodes actually visited).
//
// Two ways to consume a pass:
//
//  * `traversal_result` — a zero-copy view into the workspace, valid until
//    the next pass. Reads are epoch-checked, so untouched nodes report
//    unreachable/invalid exactly like the one-shot APIs.
//  * the materializing overloads in bfs.hpp / dijkstra.hpp /
//    fault/degraded.hpp, which export the pass into a caller-owned
//    bfs_tree / weighted_tree whose capacity is reused across calls (no
//    allocation after the first).
//
// A workspace is NOT thread-safe and holds no pass-to-pass semantic state:
// results are bit-identical to the one-shot APIs (locked down by
// tests/test_workspace_diff.cpp), so one workspace per worker thread
// preserves every determinism guarantee. See docs/performance.md.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "graph/bfs.hpp"
#include "graph/dijkstra.hpp"
#include "graph/graph.hpp"
#include "obs/metrics.hpp"

namespace mcast {

class traversal_workspace;
class degraded_traversals;

/// What kind of pass last ran on a workspace.
enum class traversal_kind : std::uint8_t { none, bfs, dijkstra };

/// Zero-copy view of the most recent pass on a workspace. Valid until the
/// next pass on (or destruction/move of) that workspace; staleness is
/// caught by MCAST_ASSERT on every read.
class traversal_result {
 public:
  node_id source() const noexcept { return source_; }

  /// Hop distance (BFS passes only); `unreachable` for untouched nodes.
  hop_count dist(node_id v) const;

  /// Weighted distance (Dijkstra passes only); +infinity when untouched.
  double weighted_dist(node_id v) const;

  /// Parent on the traversal tree; invalid_node for source/untouched nodes.
  node_id parent(node_id v) const;

  /// True when v was reached by the pass.
  bool reached(node_id v) const;

  /// Nodes in the order they were discovered (BFS) or settled (Dijkstra);
  /// the source comes first (empty for a dead degraded source). O(1).
  std::span<const node_id> visit_order() const;

  /// Number of reached nodes, including the source. O(1).
  std::size_t reached_count() const;

 private:
  friend class traversal_workspace;
  friend class degraded_traversals;
  traversal_result(const traversal_workspace& ws, node_id source,
                   std::uint64_t epoch)
      : ws_(&ws), source_(source), epoch_(epoch) {}

  const traversal_workspace* ws_;
  node_id source_;
  std::uint64_t epoch_;  // pass this view belongs to (staleness check)
};

/// Reusable scratch arrays for BFS/Dijkstra with epoch-tagged reset.
class traversal_workspace {
 public:
  traversal_workspace() = default;

  // Not copyable (views point into it).
  traversal_workspace(const traversal_workspace&) = delete;
  traversal_workspace& operator=(const traversal_workspace&) = delete;

  /// Runs BFS from `source`; same semantics and bit-identical results as
  /// bfs_from(g, source) (lowest-id parent rule). The returned view is
  /// valid until the next pass.
  traversal_result run_bfs(const graph& g, node_id source);

  /// Runs Dijkstra from `source`; same semantics and bit-identical results
  /// as dijkstra_from(g, weights, source) (same heap tie behavior).
  traversal_result run_dijkstra(const graph& g, const edge_weights& weights,
                                node_id source);

  /// Number of passes in which a scratch array had to grow (i.e. an
  /// allocation happened). Stops increasing once warmed up on a fixed
  /// topology — the number the micro benches report as "allocs".
  std::uint64_t grow_count() const noexcept { return grows_; }

  /// Number of passes run on this workspace.
  std::uint64_t pass_count() const noexcept { return passes_; }

 private:
  friend class traversal_result;
  friend class degraded_traversals;
  friend bfs_tree& bfs_from(const graph& g, node_id source,
                            traversal_workspace& ws, bfs_tree& out);
  friend std::vector<hop_count>& bfs_distances(const graph& g, node_id source,
                                               traversal_workspace& ws,
                                               std::vector<hop_count>& out);
  friend weighted_tree& dijkstra_from(const graph& g,
                                      const edge_weights& weights,
                                      node_id source, traversal_workspace& ws,
                                      weighted_tree& out);

  /// Grows the per-node arrays to cover `nodes` and opens a new epoch.
  /// O(1) except when the topology got bigger (one amortized grow).
  void begin_pass(std::size_t nodes, traversal_kind kind);

  bool touched(node_id v) const { return mark_[v] == epoch_; }

  /// Shared BFS core. `usable(slot, w)` filters half-edges: pristine
  /// graphs accept everything, degraded views test their failure mask
  /// (slot = graph::adjacency_base(v) + i for the i-th neighbor of v).
  template <typename usable_fn>
  void bfs_pass(const graph& g, node_id source, bool source_alive,
                usable_fn&& usable);

  /// Shared Dijkstra core, same filtering hook.
  template <typename usable_fn>
  void dijkstra_pass(const graph& g, const edge_weights& weights,
                     node_id source, bool source_alive, usable_fn&& usable);

  /// Exports the current pass into a caller-owned tree (O(V), reuses the
  /// target's capacity).
  void export_bfs(node_id source, bfs_tree& out) const;
  void export_dijkstra(node_id source, weighted_tree& out) const;

  std::vector<std::uint64_t> mark_;     // epoch of the last pass touching v
  std::vector<std::uint64_t> settled_;  // epoch of the pass that settled v
  std::vector<hop_count> hop_dist_;     // valid where touched (BFS)
  std::vector<double> weight_dist_;     // valid where touched (Dijkstra)
  std::vector<node_id> parent_;         // valid where touched
  std::vector<node_id> order_;          // visit order of the current pass
  std::vector<std::pair<double, node_id>> heap_;  // Dijkstra frontier
  std::size_t nodes_ = 0;               // node count of the current pass
  std::uint64_t epoch_ = 0;             // 0 = no pass yet (marks start at 0)
  traversal_kind kind_ = traversal_kind::none;
  std::uint64_t grows_ = 0;
  std::uint64_t passes_ = 0;
};

// --- template cores (instantiated here and by fault/degraded.cpp) ---

template <typename usable_fn>
void traversal_workspace::bfs_pass(const graph& g, node_id source,
                                   bool source_alive, usable_fn&& usable) {
  begin_pass(g.node_count(), traversal_kind::bfs);
  // Observability stays out of the inner loop: edges accumulate in a
  // register and land in the per-thread shard once per pass.
  [[maybe_unused]] std::uint64_t scanned = 0;
  if (source_alive) {
    mark_[source] = epoch_;
    hop_dist_[source] = 0;
    parent_[source] = invalid_node;
    order_.push_back(source);
    for (std::size_t head = 0; head < order_.size(); ++head) {
      const node_id v = order_[head];
      const hop_count dv = hop_dist_[v];
      const auto adj = g.neighbors(v);
      const std::size_t base = g.adjacency_base(v);
      scanned += adj.size();
      for (std::size_t i = 0; i < adj.size(); ++i) {
        const node_id w = adj[i];
        if (!usable(base + i, w)) continue;
        if (mark_[w] != epoch_) {
          mark_[w] = epoch_;
          hop_dist_[w] = dv + 1;
          parent_[w] = v;  // sorted neighbors => lowest-id parent rule
          order_.push_back(w);
        }
      }
    }
  }
  obs::add(obs::counter::bfs_passes);
  obs::add(obs::counter::nodes_visited, order_.size());
  obs::add(obs::counter::edges_scanned, scanned);
  obs::record(obs::histogram::visited_per_pass, order_.size());
}

template <typename usable_fn>
void traversal_workspace::dijkstra_pass(const graph& g,
                                        const edge_weights& weights,
                                        node_id source, bool source_alive,
                                        usable_fn&& usable) {
  begin_pass(g.node_count(), traversal_kind::dijkstra);
  heap_.clear();
  [[maybe_unused]] std::uint64_t scanned = 0;
  if (source_alive) {
    // push_heap/pop_heap with std::greater<> replicate exactly what
    // std::priority_queue<entry, vector<entry>, greater<>> does, so the
    // settle order — and therefore every tie-broken parent — matches
    // dijkstra_from bit for bit.
    const std::greater<> cmp{};
    mark_[source] = epoch_;
    weight_dist_[source] = 0.0;
    parent_[source] = invalid_node;
    heap_.emplace_back(0.0, source);
    while (!heap_.empty()) {
      std::pop_heap(heap_.begin(), heap_.end(), cmp);
      const auto [d, v] = heap_.back();
      heap_.pop_back();
      if (settled_[v] == epoch_) continue;
      settled_[v] = epoch_;
      order_.push_back(v);
      const auto adj = g.neighbors(v);
      const std::size_t base = g.adjacency_base(v);
      scanned += adj.size();
      for (std::size_t i = 0; i < adj.size(); ++i) {
        const node_id w = adj[i];
        if (!usable(base + i, w)) continue;
        const double candidate = d + weights.at_slot(base + i);
        if (mark_[w] != epoch_ || candidate < weight_dist_[w]) {
          mark_[w] = epoch_;
          weight_dist_[w] = candidate;
          parent_[w] = v;
          heap_.emplace_back(candidate, w);
          std::push_heap(heap_.begin(), heap_.end(), cmp);
        }
      }
    }
  }
  obs::add(obs::counter::dijkstra_passes);
  obs::add(obs::counter::nodes_visited, order_.size());
  obs::add(obs::counter::edges_scanned, scanned);
  obs::record(obs::histogram::visited_per_pass, order_.size());
}

}  // namespace mcast
