#include "graph/components.hpp"

#include <algorithm>

#include "graph/builder.hpp"

namespace mcast {

component_map connected_components(const graph& g) {
  component_map cm;
  cm.label.assign(g.node_count(), invalid_node);
  std::vector<node_id> stack;
  for (node_id s = 0; s < g.node_count(); ++s) {
    if (cm.label[s] != invalid_node) continue;
    const node_id c = static_cast<node_id>(cm.count++);
    cm.size.push_back(0);
    stack.push_back(s);
    cm.label[s] = c;
    while (!stack.empty()) {
      const node_id v = stack.back();
      stack.pop_back();
      ++cm.size[c];
      for (node_id w : g.neighbors(v)) {
        if (cm.label[w] == invalid_node) {
          cm.label[w] = c;
          stack.push_back(w);
        }
      }
    }
  }
  return cm;
}

bool is_connected(const graph& g) {
  if (g.empty()) return true;
  return connected_components(g).count == 1;
}

graph largest_component(const graph& g) {
  if (g.empty()) return graph{};
  const component_map cm = connected_components(g);
  const node_id best = static_cast<node_id>(std::distance(
      cm.size.begin(), std::max_element(cm.size.begin(), cm.size.end())));

  std::vector<node_id> remap(g.node_count(), invalid_node);
  node_id next = 0;
  for (node_id v = 0; v < g.node_count(); ++v) {
    if (cm.label[v] == best) remap[v] = next++;
  }
  graph_builder b(next);
  b.set_name(g.name());
  for (node_id v = 0; v < g.node_count(); ++v) {
    if (remap[v] == invalid_node) continue;
    for (node_id w : g.neighbors(v)) {
      if (v < w && remap[w] != invalid_node) b.add_edge(remap[v], remap[w]);
    }
  }
  return b.build();
}

graph connect_components(const graph& g) {
  if (g.empty()) return g;
  const component_map cm = connected_components(g);
  if (cm.count <= 1) return g;

  std::vector<node_id> representative(cm.count, invalid_node);
  for (node_id v = 0; v < g.node_count(); ++v) {
    if (representative[cm.label[v]] == invalid_node) representative[cm.label[v]] = v;
  }
  graph_builder b(g.node_count());
  b.set_name(g.name());
  for (const edge& e : g.edges()) b.add_edge(e.a, e.b);
  for (std::size_t c = 1; c < cm.count; ++c) {
    b.add_edge(representative[0], representative[c]);
  }
  return b.build();
}

}  // namespace mcast
