#include "graph/weights.hpp"

#include <algorithm>

#include "common/contract.hpp"

namespace mcast {

edge_weights::edge_weights(const graph& g, double default_weight) : g_(&g) {
  expects(default_weight > 0.0, "edge_weights: default weight must be positive");
  std::size_t half_edges = 0;
  if (!g.empty()) {
    half_edges = g.adjacency_base(g.node_count() - 1) +
                 g.degree(g.node_count() - 1);
  }
  weights_.assign(half_edges, default_weight);
}

std::size_t edge_weights::slot_of(node_id a, node_id b) const {
  expects_in_range(a < g_->node_count() && b < g_->node_count(),
                   "edge_weights: node id out of range");
  const auto adj = g_->neighbors(a);
  const auto it = std::lower_bound(adj.begin(), adj.end(), b);
  expects(it != adj.end() && *it == b, "edge_weights: link does not exist");
  return g_->adjacency_base(a) + static_cast<std::size_t>(it - adj.begin());
}

void edge_weights::set(node_id a, node_id b, double w) {
  expects(w > 0.0, "edge_weights::set: weight must be positive");
  weights_[slot_of(a, b)] = w;
  weights_[slot_of(b, a)] = w;
}

double edge_weights::get(node_id a, node_id b) const {
  return weights_[slot_of(a, b)];
}

double edge_weights::total() const {
  double sum = 0.0;
  for (double w : weights_) sum += w;
  return sum / 2.0;  // each undirected link has two half-edge slots
}

}  // namespace mcast
