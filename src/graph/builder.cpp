#include "graph/builder.hpp"

#include <algorithm>

#include "common/contract.hpp"

namespace mcast {

void graph_builder::add_edge(node_id a, node_id b) {
  expects_in_range(a < nodes_ && b < nodes_,
                   "graph_builder::add_edge: endpoint out of range");
  raw_.push_back({a, b});
}

bool graph_builder::has_edge_slow(node_id a, node_id b) const {
  for (const edge& e : raw_) {
    if ((e.a == a && e.b == b) || (e.a == b && e.b == a)) return true;
  }
  return false;
}

graph graph_builder::build() const {
  // Normalize to (min,max), drop self-loops, sort, unique.
  std::vector<edge> norm;
  norm.reserve(raw_.size());
  for (const edge& e : raw_) {
    if (e.a == e.b) continue;
    norm.push_back({std::min(e.a, e.b), std::max(e.a, e.b)});
  }
  std::sort(norm.begin(), norm.end(), [](const edge& x, const edge& y) {
    return x.a != y.a ? x.a < y.a : x.b < y.b;
  });
  norm.erase(std::unique(norm.begin(), norm.end()), norm.end());

  // Degree histogram -> CSR offsets.
  std::vector<std::size_t> offsets(static_cast<std::size_t>(nodes_) + 1, 0);
  for (const edge& e : norm) {
    ++offsets[e.a + 1];
    ++offsets[e.b + 1];
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];

  std::vector<node_id> targets(norm.size() * 2);
  std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const edge& e : norm) {
    targets[cursor[e.a]++] = e.b;
    targets[cursor[e.b]++] = e.a;
  }
  // Adjacency lists come out sorted because norm is sorted by (a,b) and
  // reverse entries are inserted in increasing order of the smaller endpoint;
  // the latter is not fully sorted, so sort each list explicitly.
  for (node_id v = 0; v < nodes_; ++v) {
    std::sort(targets.begin() + static_cast<std::ptrdiff_t>(offsets[v]),
              targets.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]));
  }

  return graph(std::move(offsets), std::move(targets), name_);
}

}  // namespace mcast
