// Dijkstra shortest paths over weighted links (extension; the paper itself
// uses hop counts only — see graph/weights.hpp for why this exists).
#pragma once

#include <limits>
#include <vector>

#include "graph/graph.hpp"
#include "graph/weights.hpp"

namespace mcast {

class traversal_workspace;  // graph/workspace.hpp

/// Result of a single-source Dijkstra run.
struct weighted_tree {
  node_id source = invalid_node;
  /// dist[v] = weighted distance from the source; +infinity if unreachable.
  std::vector<double> dist;
  /// parent[v] on one least-weight path; invalid_node for source and
  /// unreachable nodes. Ties broken toward the first-settled predecessor.
  std::vector<node_id> parent;

  /// True when v has a finite distance.
  bool reached(node_id v) const {
    return dist[v] != std::numeric_limits<double>::infinity();
  }
};

/// Runs Dijkstra from `source` using `weights` (must belong to `g`).
/// Throws std::out_of_range on a bad source, std::invalid_argument when
/// the weight table was built for a different graph.
weighted_tree dijkstra_from(const graph& g, const edge_weights& weights,
                            node_id source);

/// Workspace-accepting overload: bit-identical output to
/// dijkstra_from(g, weights, source) — including equal-distance heap tie
/// behavior — but reuses the workspace scratch and `out`'s capacity.
/// Returns `out`.
weighted_tree& dijkstra_from(const graph& g, const edge_weights& weights,
                             node_id source, traversal_workspace& ws,
                             weighted_tree& out);

}  // namespace mcast
