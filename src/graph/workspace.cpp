#include "graph/workspace.hpp"

#include <limits>

#include "common/contract.hpp"

namespace mcast {

// --- traversal_result -------------------------------------------------

hop_count traversal_result::dist(node_id v) const {
  MCAST_ASSERT(ws_->epoch_ == epoch_);  // view outlived its pass
  expects(ws_->kind_ == traversal_kind::bfs,
          "traversal_result::dist: last pass was not a BFS");
  expects_in_range(v < ws_->nodes_, "traversal_result::dist: node out of range");
  return ws_->touched(v) ? ws_->hop_dist_[v] : unreachable;
}

double traversal_result::weighted_dist(node_id v) const {
  MCAST_ASSERT(ws_->epoch_ == epoch_);
  expects(ws_->kind_ == traversal_kind::dijkstra,
          "traversal_result::weighted_dist: last pass was not a Dijkstra");
  expects_in_range(v < ws_->nodes_,
                   "traversal_result::weighted_dist: node out of range");
  return ws_->touched(v) ? ws_->weight_dist_[v]
                         : std::numeric_limits<double>::infinity();
}

node_id traversal_result::parent(node_id v) const {
  MCAST_ASSERT(ws_->epoch_ == epoch_);
  expects_in_range(v < ws_->nodes_,
                   "traversal_result::parent: node out of range");
  return ws_->touched(v) ? ws_->parent_[v] : invalid_node;
}

bool traversal_result::reached(node_id v) const {
  MCAST_ASSERT(ws_->epoch_ == epoch_);
  expects_in_range(v < ws_->nodes_,
                   "traversal_result::reached: node out of range");
  return ws_->touched(v);
}

std::span<const node_id> traversal_result::visit_order() const {
  MCAST_ASSERT(ws_->epoch_ == epoch_);
  return {ws_->order_.data(), ws_->order_.size()};
}

std::size_t traversal_result::reached_count() const {
  MCAST_ASSERT(ws_->epoch_ == epoch_);
  return ws_->order_.size();
}

// --- traversal_workspace ----------------------------------------------

void traversal_workspace::begin_pass(std::size_t nodes, traversal_kind kind) {
  bool grew = false;
  if (mark_.size() < nodes) {
    mark_.resize(nodes, 0);
    settled_.resize(nodes, 0);
    parent_.resize(nodes);
    grew = true;
  }
  if (kind == traversal_kind::bfs && hop_dist_.size() < nodes) {
    hop_dist_.resize(nodes);
    grew = true;
  }
  if (kind == traversal_kind::dijkstra && weight_dist_.size() < nodes) {
    weight_dist_.resize(nodes);
    grew = true;
  }
  if (order_.capacity() < nodes) {
    order_.reserve(nodes);
    grew = true;
  }
  if (grew) {
    ++grows_;
    obs::add(obs::counter::workspace_grows);
  } else {
    obs::add(obs::counter::workspace_reuses);
  }
  order_.clear();
  nodes_ = nodes;
  kind_ = kind;
  ++epoch_;  // O(1) reset: all previous marks become stale
  ++passes_;
}

traversal_result traversal_workspace::run_bfs(const graph& g, node_id source) {
  expects_in_range(source < g.node_count(),
                   "traversal_workspace::run_bfs: source out of range");
  bfs_pass(g, source, /*source_alive=*/true,
           [](std::size_t, node_id) { return true; });
  return traversal_result(*this, source, epoch_);
}

traversal_result traversal_workspace::run_dijkstra(const graph& g,
                                                   const edge_weights& weights,
                                                   node_id source) {
  expects_in_range(source < g.node_count(),
                   "traversal_workspace::run_dijkstra: source out of range");
  expects(&weights.topology() == &g,
          "traversal_workspace::run_dijkstra: weights belong to a different graph");
  dijkstra_pass(g, weights, source, /*source_alive=*/true,
                [](std::size_t, node_id) { return true; });
  return traversal_result(*this, source, epoch_);
}

void traversal_workspace::export_bfs(node_id source, bfs_tree& out) const {
  MCAST_ASSERT(kind_ == traversal_kind::bfs);
  out.source = source;
  out.dist.resize(nodes_);
  out.parent.resize(nodes_);
  for (std::size_t v = 0; v < nodes_; ++v) {
    if (mark_[v] == epoch_) {
      out.dist[v] = hop_dist_[v];
      out.parent[v] = parent_[v];
    } else {
      out.dist[v] = unreachable;
      out.parent[v] = invalid_node;
    }
  }
}

void traversal_workspace::export_dijkstra(node_id source,
                                          weighted_tree& out) const {
  MCAST_ASSERT(kind_ == traversal_kind::dijkstra);
  out.source = source;
  out.dist.resize(nodes_);
  out.parent.resize(nodes_);
  for (std::size_t v = 0; v < nodes_; ++v) {
    if (mark_[v] == epoch_) {
      out.dist[v] = weight_dist_[v];
      out.parent[v] = parent_[v];
    } else {
      out.dist[v] = std::numeric_limits<double>::infinity();
      out.parent[v] = invalid_node;
    }
  }
}

// --- materializing free-function overloads ----------------------------

bfs_tree& bfs_from(const graph& g, node_id source, traversal_workspace& ws,
                   bfs_tree& out) {
  expects_in_range(source < g.node_count(), "bfs_from: source out of range");
  ws.bfs_pass(g, source, /*source_alive=*/true,
              [](std::size_t, node_id) { return true; });
  ws.export_bfs(source, out);
  return out;
}

std::vector<hop_count>& bfs_distances(const graph& g, node_id source,
                                      traversal_workspace& ws,
                                      std::vector<hop_count>& out) {
  expects_in_range(source < g.node_count(),
                   "bfs_distances: source out of range");
  ws.bfs_pass(g, source, /*source_alive=*/true,
              [](std::size_t, node_id) { return true; });
  out.resize(ws.nodes_);
  for (std::size_t v = 0; v < ws.nodes_; ++v) {
    out[v] = ws.mark_[v] == ws.epoch_ ? ws.hop_dist_[v] : unreachable;
  }
  return out;
}

weighted_tree& dijkstra_from(const graph& g, const edge_weights& weights,
                             node_id source, traversal_workspace& ws,
                             weighted_tree& out) {
  expects_in_range(source < g.node_count(),
                   "dijkstra_from: source out of range");
  expects(&weights.topology() == &g,
          "dijkstra_from: weights belong to a different graph");
  ws.dijkstra_pass(g, weights, source, /*source_alive=*/true,
                   [](std::size_t, node_id) { return true; });
  ws.export_dijkstra(source, out);
  return out;
}

}  // namespace mcast
