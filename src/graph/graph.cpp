#include "graph/graph.hpp"

#include <algorithm>

#include "common/contract.hpp"

namespace mcast {

std::span<const node_id> graph::neighbors(node_id v) const {
  expects_in_range(v < node_count(), "graph::neighbors: node id out of range");
  return {targets_.data() + offsets_[v], targets_.data() + offsets_[v + 1]};
}

std::size_t graph::adjacency_base(node_id v) const {
  expects_in_range(v < node_count(), "graph::adjacency_base: node id out of range");
  return offsets_[v];
}

std::size_t graph::degree(node_id v) const {
  expects_in_range(v < node_count(), "graph::degree: node id out of range");
  return offsets_[v + 1] - offsets_[v];
}

bool graph::has_edge(node_id a, node_id b) const {
  expects_in_range(a < node_count() && b < node_count(),
                   "graph::has_edge: node id out of range");
  const auto adj = neighbors(a);
  return std::binary_search(adj.begin(), adj.end(), b);
}

std::vector<edge> graph::edges() const {
  std::vector<edge> out;
  out.reserve(edge_count());
  for (node_id v = 0; v < node_count(); ++v) {
    for (node_id w : neighbors(v)) {
      if (v < w) out.push_back({v, w});
    }
  }
  return out;
}

}  // namespace mcast
