#include "graph/io.hpp"

#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>

#include "common/contract.hpp"
#include "graph/builder.hpp"

namespace mcast {

namespace {

// Returns the next non-comment, non-blank line (with `line_no` updated to
// its 1-based position in the stream), or nullopt at EOF.
std::optional<std::string> next_payload_line(std::istream& in,
                                             std::size_t& line_no) {
  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos) continue;
    if (line[start] == '#') continue;
    return line.substr(start);
  }
  return std::nullopt;
}

// Parse failure with the 1-based line number, so a bad row in a
// million-line topology file is findable.
[[noreturn]] void parse_fail(std::size_t line_no, const char* what) {
  throw std::invalid_argument("mcast: read_edge_list: line " +
                              std::to_string(line_no) + ": " + what);
}

// True when anything but whitespace remains on the line.
bool trailing_garbage(std::istringstream& s) {
  s >> std::ws;
  return !s.eof();
}

}  // namespace

graph read_edge_list(std::istream& in, std::string name) {
  std::size_t line_no = 0;
  const auto header = next_payload_line(in, line_no);
  expects(header.has_value(), "read_edge_list: missing node-count header");
  std::istringstream hs(*header);
  long long nodes = -1;
  hs >> nodes;
  if (hs.fail() || nodes < 0) {
    parse_fail(line_no, "node-count header must be a non-negative integer");
  }
  if (trailing_garbage(hs)) {
    parse_fail(line_no, "trailing tokens after the node-count header");
  }

  graph_builder b(static_cast<node_id>(nodes));
  b.set_name(std::move(name));
  while (auto line = next_payload_line(in, line_no)) {
    std::istringstream ls(*line);
    long long a = -1, bb = -1;
    ls >> a >> bb;
    if (ls.fail()) parse_fail(line_no, "edge line must contain two integers");
    if (trailing_garbage(ls)) {
      parse_fail(line_no, "trailing tokens after the two edge endpoints");
    }
    if (a < 0 || bb < 0 || a >= nodes || bb >= nodes) {
      parse_fail(line_no, "edge endpoint out of range");
    }
    b.add_edge(static_cast<node_id>(a), static_cast<node_id>(bb));
  }
  return b.build();
}

graph read_edge_list_string(const std::string& text, std::string name) {
  std::istringstream in(text);
  return read_edge_list(in, std::move(name));
}

graph load_edge_list(const std::string& path, std::string name) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("mcast: cannot open edge list: " + path);
  return read_edge_list(in, name.empty() ? path : std::move(name));
}

void write_edge_list(std::ostream& out, const graph& g) {
  if (!g.name().empty()) out << "# " << g.name() << "\n";
  out << g.node_count() << "\n";
  for (const edge& e : g.edges()) out << e.a << " " << e.b << "\n";
}

void write_dot(std::ostream& out, const graph& g) {
  out << "graph \"" << (g.name().empty() ? "mcast" : g.name()) << "\" {\n";
  for (const edge& e : g.edges()) {
    out << "  " << e.a << " -- " << e.b << ";\n";
  }
  out << "}\n";
}

}  // namespace mcast
