#include "graph/io.hpp"

#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>

#include "common/contract.hpp"
#include "graph/builder.hpp"

namespace mcast {

namespace {

// Returns the next non-comment, non-blank line, or nullopt at EOF.
std::optional<std::string> next_payload_line(std::istream& in) {
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos) continue;
    if (line[start] == '#') continue;
    return line.substr(start);
  }
  return std::nullopt;
}

}  // namespace

graph read_edge_list(std::istream& in, std::string name) {
  const auto header = next_payload_line(in);
  expects(header.has_value(), "read_edge_list: missing node-count header");
  std::istringstream hs(*header);
  long long nodes = -1;
  hs >> nodes;
  expects(!hs.fail() && nodes >= 0,
          "read_edge_list: node-count header must be a non-negative integer");

  graph_builder b(static_cast<node_id>(nodes));
  b.set_name(std::move(name));
  while (auto line = next_payload_line(in)) {
    std::istringstream ls(*line);
    long long a = -1, bb = -1;
    ls >> a >> bb;
    expects(!ls.fail(), "read_edge_list: edge line must contain two integers");
    expects(a >= 0 && bb >= 0 && a < nodes && bb < nodes,
            "read_edge_list: edge endpoint out of range");
    b.add_edge(static_cast<node_id>(a), static_cast<node_id>(bb));
  }
  return b.build();
}

graph read_edge_list_string(const std::string& text, std::string name) {
  std::istringstream in(text);
  return read_edge_list(in, std::move(name));
}

graph load_edge_list(const std::string& path, std::string name) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("mcast: cannot open edge list: " + path);
  return read_edge_list(in, name.empty() ? path : std::move(name));
}

void write_edge_list(std::ostream& out, const graph& g) {
  if (!g.name().empty()) out << "# " << g.name() << "\n";
  out << g.node_count() << "\n";
  for (const edge& e : g.edges()) out << e.a << " " << e.b << "\n";
}

void write_dot(std::ostream& out, const graph& g) {
  out << "graph \"" << (g.name().empty() ? "mcast" : g.name()) << "\" {\n";
  for (const edge& e : g.edges()) {
    out << "  " << e.a << " -- " << e.b << ";\n";
  }
  out << "}\n";
}

}  // namespace mcast
