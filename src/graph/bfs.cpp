#include "graph/bfs.hpp"

#include <algorithm>

#include "graph/workspace.hpp"

namespace mcast {

hop_count bfs_tree::eccentricity() const {
  hop_count e = 0;
  for (hop_count d : dist) {
    if (d != unreachable) e = std::max(e, d);
  }
  return e;
}

std::size_t bfs_tree::reached_count() const {
  std::size_t n = 0;
  for (hop_count d : dist) {
    if (d != unreachable) ++n;
  }
  return n;
}

// One-shot entry points: thin wrappers over a throwaway workspace. Hot
// loops should hold a traversal_workspace and call the overloads below.
bfs_tree bfs_from(const graph& g, node_id source) {
  traversal_workspace ws;
  bfs_tree t;
  bfs_from(g, source, ws, t);
  return t;
}

std::vector<hop_count> bfs_distances(const graph& g, node_id source) {
  traversal_workspace ws;
  std::vector<hop_count> dist;
  bfs_distances(g, source, ws, dist);
  return dist;
}

}  // namespace mcast
