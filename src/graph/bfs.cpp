#include "graph/bfs.hpp"

#include <algorithm>

#include "common/contract.hpp"

namespace mcast {

hop_count bfs_tree::eccentricity() const {
  hop_count e = 0;
  for (hop_count d : dist) {
    if (d != unreachable) e = std::max(e, d);
  }
  return e;
}

std::size_t bfs_tree::reached_count() const {
  std::size_t n = 0;
  for (hop_count d : dist) {
    if (d != unreachable) ++n;
  }
  return n;
}

bfs_tree bfs_from(const graph& g, node_id source) {
  expects_in_range(source < g.node_count(), "bfs_from: source out of range");
  bfs_tree t;
  t.source = source;
  t.dist.assign(g.node_count(), unreachable);
  t.parent.assign(g.node_count(), invalid_node);

  std::vector<node_id> queue;
  queue.reserve(g.node_count());
  queue.push_back(source);
  t.dist[source] = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const node_id v = queue[head];
    const hop_count dv = t.dist[v];
    for (node_id w : g.neighbors(v)) {
      if (t.dist[w] == unreachable) {
        t.dist[w] = dv + 1;
        t.parent[w] = v;  // neighbors are sorted => lowest-id parent rule
        queue.push_back(w);
      }
    }
  }
  return t;
}

std::vector<hop_count> bfs_distances(const graph& g, node_id source) {
  expects_in_range(source < g.node_count(),
                   "bfs_distances: source out of range");
  std::vector<hop_count> dist(g.node_count(), unreachable);
  std::vector<node_id> queue;
  queue.reserve(g.node_count());
  queue.push_back(source);
  dist[source] = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const node_id v = queue[head];
    const hop_count dv = dist[v];
    for (node_id w : g.neighbors(v)) {
      if (dist[w] == unreachable) {
        dist[w] = dv + 1;
        queue.push_back(w);
      }
    }
  }
  return dist;
}

}  // namespace mcast
