// Edge-list and DOT serialization.
//
// The paper's real topologies (ARPA, MBone, Internet, AS) were distributed
// as edge lists; this module reads/writes the same trivially diffable
// format so users can drop in their own maps:
//
//   # comment
//   <node-count>
//   <a> <b>
//   ...
//
// Node ids must be 0-based and < node-count. Duplicate edges and self-loops
// are tolerated on input (cleaned by graph_builder, per Section 2).
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace mcast {

/// Parses the edge-list format from a stream. Strict: the node-count
/// header and every edge line must contain nothing but their integers
/// (inline trailing tokens are rejected).
/// Throws std::invalid_argument on malformed input; parse errors carry the
/// 1-based line number of the offending line.
graph read_edge_list(std::istream& in, std::string name = {});

/// Parses the edge-list format from a string (convenience for tests and
/// embedded topologies).
graph read_edge_list_string(const std::string& text, std::string name = {});

/// Loads an edge-list file. Throws std::runtime_error when the file cannot
/// be opened, std::invalid_argument when it is malformed.
graph load_edge_list(const std::string& path, std::string name = {});

/// Writes `g` in the edge-list format (round-trips with read_edge_list).
void write_edge_list(std::ostream& out, const graph& g);

/// Writes `g` as an undirected Graphviz DOT graph (debug visualization).
void write_dot(std::ostream& out, const graph& g);

}  // namespace mcast
