// Connected-component analysis.
//
// Topology generators must hand the experiment pipeline a connected graph
// (a multicast tree to an unreachable receiver is undefined), so every
// generator either guarantees connectivity by construction or extracts /
// repairs the largest component using these utilities.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace mcast {

/// Per-node component labels, 0-based, assigned in discovery order.
struct component_map {
  std::vector<node_id> label;     // label[v] in [0, count)
  std::vector<std::size_t> size;  // size[c] = nodes in component c
  std::size_t count = 0;
};

/// Labels the connected components of `g`.
component_map connected_components(const graph& g);

/// True when `g` is connected (the empty graph counts as connected).
bool is_connected(const graph& g);

/// Returns the subgraph induced by the largest connected component, with
/// nodes renumbered to 0..n'-1 (ties broken toward the lowest label).
/// The name is preserved. Returns an empty graph for an empty input.
graph largest_component(const graph& g);

/// Returns `g` with the minimum number of extra edges added to make it
/// connected: each component (beyond the first) gains one edge linking its
/// lowest-id node to the lowest-id node of the first component.
graph connect_components(const graph& g);

}  // namespace mcast
