// Mutable accumulator used to construct immutable graphs.
//
// The builder mirrors the topology "cleaning" step from Section 2 of the
// paper: duplicate edges (common in TIERS output) are merged, self-loops are
// dropped, and every surviving edge is treated as bi-directional.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace mcast {

class graph_builder {
 public:
  /// Builder for a graph with `nodes` nodes (ids 0..nodes-1).
  explicit graph_builder(node_id nodes) : nodes_(nodes) {}

  /// Number of nodes the final graph will have.
  node_id node_count() const noexcept { return nodes_; }

  /// Records the undirected edge {a,b}. Self-loops and duplicates are
  /// accepted here and removed at build() time. Throws std::out_of_range
  /// when an endpoint is not a valid node id.
  void add_edge(node_id a, node_id b);

  /// Number of edges recorded so far (before dedup).
  std::size_t raw_edge_count() const noexcept { return raw_.size(); }

  /// True when {a,b} has been recorded already (linear scan — intended for
  /// generators that need occasional membership checks on small graphs;
  /// large generators should track membership themselves).
  bool has_edge_slow(node_id a, node_id b) const;

  /// Sets the name carried over to the built graph.
  void set_name(std::string n) { name_ = std::move(n); }

  /// Finalizes into an immutable CSR graph: drops self-loops, merges
  /// duplicates, sorts adjacency lists. The builder may be reused afterwards
  /// (its recorded edges are untouched).
  graph build() const;

 private:
  node_id nodes_;
  std::vector<edge> raw_;
  std::string name_;
};

}  // namespace mcast
