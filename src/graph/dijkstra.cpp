#include "graph/dijkstra.hpp"

#include "graph/workspace.hpp"

namespace mcast {

// One-shot entry point: thin wrapper over a throwaway workspace. Hot loops
// should hold a traversal_workspace and call the overload in workspace.cpp.
weighted_tree dijkstra_from(const graph& g, const edge_weights& weights,
                            node_id source) {
  traversal_workspace ws;
  weighted_tree t;
  dijkstra_from(g, weights, source, ws, t);
  return t;
}

}  // namespace mcast
