#include "graph/dijkstra.hpp"

#include <queue>
#include <utility>

#include "common/contract.hpp"

namespace mcast {

weighted_tree dijkstra_from(const graph& g, const edge_weights& weights,
                            node_id source) {
  expects_in_range(source < g.node_count(), "dijkstra_from: source out of range");
  expects(&weights.topology() == &g,
          "dijkstra_from: weights belong to a different graph");

  weighted_tree t;
  t.source = source;
  t.dist.assign(g.node_count(), std::numeric_limits<double>::infinity());
  t.parent.assign(g.node_count(), invalid_node);

  using entry = std::pair<double, node_id>;  // (distance, node)
  std::priority_queue<entry, std::vector<entry>, std::greater<>> frontier;
  t.dist[source] = 0.0;
  frontier.push({0.0, source});
  std::vector<char> settled(g.node_count(), 0);

  while (!frontier.empty()) {
    const auto [d, v] = frontier.top();
    frontier.pop();
    if (settled[v]) continue;
    settled[v] = 1;
    const auto adj = g.neighbors(v);
    const std::size_t base = g.adjacency_base(v);
    for (std::size_t i = 0; i < adj.size(); ++i) {
      const node_id w = adj[i];
      const double candidate = d + weights.at_slot(base + i);
      if (candidate < t.dist[w]) {
        t.dist[w] = candidate;
        t.parent[w] = v;
        frontier.push({candidate, w});
      }
    }
  }
  return t;
}

}  // namespace mcast
