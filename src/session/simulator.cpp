#include "session/simulator.hpp"

#include <algorithm>
#include <list>

#include "common/contract.hpp"
#include "graph/components.hpp"
#include "multicast/spt.hpp"

namespace mcast {

namespace {

struct live_session {
  std::unique_ptr<source_tree> tree;
  std::unique_ptr<dynamic_delivery_tree> delivery;
  std::vector<node_id> members;  // multiset of joined instances
  event_queue::event_id end_event = 0;
  event_queue::event_id next_join_event = 0;
  std::vector<event_queue::event_id> leave_events;  // parallel to members
};

}  // namespace

session_metrics simulate_sessions(const graph& g, const session_workload& w,
                                  double duration, double warmup,
                                  std::uint64_t seed) {
  expects(g.node_count() >= 2, "simulate_sessions: graph too small");
  expects(is_connected(g), "simulate_sessions: graph must be connected");
  expects(w.session_arrival_rate > 0.0 && w.session_lifetime_mean > 0.0 &&
              w.member_join_rate > 0.0 && w.member_lifetime_mean > 0.0,
          "simulate_sessions: workload rates must be positive");
  expects(w.max_concurrent_sessions >= 1,
          "simulate_sessions: need capacity for at least one session");
  expects(duration > 0.0 && warmup >= 0.0,
          "simulate_sessions: duration must be positive, warmup non-negative");

  rng gen(seed);
  event_queue events;
  session_metrics metrics;
  metrics.duration = duration;

  std::list<live_session> sessions;
  // Aggregate integrals, accumulated lazily: every state change first adds
  // current_value * (now - last_change) to the integral.
  double last_change = 0.0;
  double links_integral = 0.0;
  double members_integral = 0.0;
  double sessions_integral = 0.0;
  std::size_t total_links = 0;
  std::size_t total_members = 0;
  double group_size_sum = 0.0;
  std::uint64_t group_size_samples = 0;
  const double t_begin = warmup;
  const double t_end = warmup + duration;

  auto account = [&](double now) {
    const double from = std::max(last_change, t_begin);
    const double to = std::min(now, t_end);
    if (to > from) {
      const double dt = to - from;
      links_integral += static_cast<double>(total_links) * dt;
      members_integral += static_cast<double>(total_members) * dt;
      sessions_integral += static_cast<double>(sessions.size()) * dt;
    }
    last_change = now;
    if (now >= t_begin && now <= t_end) {
      metrics.peak_links =
          std::max(metrics.peak_links, static_cast<double>(total_links));
    }
  };

  // Forward declarations through std::function so events can reschedule
  // themselves (the join stream) and new arrivals (the arrival stream).
  std::function<void()> arrive;
  std::function<void(std::list<live_session>::iterator)> schedule_join;

  schedule_join = [&](std::list<live_session>::iterator it) {
    it->next_join_event = events.schedule(
        events.now() + gen.exponential(w.member_join_rate), [&, it] {
          account(events.now());
          // Pick a member site (any node but the source).
          node_id v = static_cast<node_id>(gen.below(g.node_count()));
          if (v == it->tree->source()) v = (v + 1) % g.node_count();
          total_links -= it->delivery->link_count();
          it->delivery->join(v);
          total_links += it->delivery->link_count();
          ++total_members;
          it->members.push_back(v);
          if (events.now() >= t_begin) {
            ++metrics.joins;
            group_size_sum +=
                static_cast<double>(it->delivery->distinct_receiver_sites());
            ++group_size_samples;
          }
          // Member departure.
          const std::size_t member_index = it->members.size() - 1;
          it->leave_events.push_back(events.schedule(
              events.now() + gen.exponential(1.0 / w.member_lifetime_mean),
              [&, it, member_index] {
                account(events.now());
                total_links -= it->delivery->link_count();
                it->delivery->leave(it->members[member_index]);
                total_links += it->delivery->link_count();
                --total_members;
                if (events.now() >= t_begin) ++metrics.leaves;
              }));
          schedule_join(it);
        });
  };

  auto end_session = [&](std::list<live_session>::iterator it) {
    account(events.now());
    // Cancel pending events and drain remaining members.
    events.cancel(it->next_join_event);
    for (event_queue::event_id id : it->leave_events) events.cancel(id);
    total_links -= it->delivery->link_count();
    total_members -= it->delivery->receiver_count();
    if (events.now() >= t_begin) {
      metrics.leaves += it->delivery->receiver_count();
    }
    sessions.erase(it);
    ++metrics.sessions_completed;
  };

  arrive = [&] {
    account(events.now());
    if (sessions.size() < w.max_concurrent_sessions) {
      sessions.emplace_back();
      auto it = std::prev(sessions.end());
      const node_id source = static_cast<node_id>(gen.below(g.node_count()));
      it->tree = std::make_unique<source_tree>(g, source);
      it->delivery = std::make_unique<dynamic_delivery_tree>(*it->tree);
      it->end_event = events.schedule(
          events.now() + gen.exponential(1.0 / w.session_lifetime_mean),
          [&, it] { end_session(it); });
      schedule_join(it);
      ++metrics.sessions_started;
    } else {
      ++metrics.sessions_dropped;
    }
    events.schedule(events.now() + gen.exponential(w.session_arrival_rate),
                    arrive);
  };

  events.schedule(gen.exponential(w.session_arrival_rate), arrive);
  events.run_until(t_end);
  account(t_end);

  metrics.time_avg_links = links_integral / duration;
  metrics.time_avg_members = members_integral / duration;
  metrics.time_avg_sessions = sessions_integral / duration;
  metrics.mean_group_size_at_join =
      group_size_samples == 0
          ? 0.0
          : group_size_sum / static_cast<double>(group_size_samples);
  return metrics;
}

}  // namespace mcast
