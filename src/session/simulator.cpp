#include "session/simulator.hpp"

#include <algorithm>
#include <functional>
#include <list>

#include "common/contract.hpp"
#include "fault/degraded.hpp"
#include "graph/components.hpp"
#include "graph/workspace.hpp"
#include "group/group_manager.hpp"
#include "multicast/repair.hpp"
#include "multicast/spt.hpp"
#include "multicast/spt_cache.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mcast {

namespace {

struct member_slot {
  node_id site = invalid_node;
  bool active = false;    // joined and not yet left
  bool attached = false;  // currently served by the delivery tree
};

struct live_session {
  // Shared because the routing base may live in the simulator's spt_cache:
  // concurrent sessions with the same source (and repairs after the same
  // failure event) reuse one SPT. The delivery tree itself lives in the
  // simulator's group_manager under `group`; the session keeps the routing
  // base for reachability checks without a manager lookup.
  std::shared_ptr<const source_tree> tree;
  std::string group;                 // manager key within the sim scope
  std::vector<member_slot> members;  // every join ever made, by index
  event_queue::event_id end_event = 0;
  event_queue::event_id next_join_event = 0;
  std::vector<event_queue::event_id> leave_events;  // parallel to members
};

}  // namespace

session_metrics simulate_sessions(const graph& g, const session_workload& w,
                                  double duration, double warmup,
                                  std::uint64_t seed) {
  return simulate_sessions(g, w, std::vector<link_event>{}, duration, warmup,
                           seed);
}

session_metrics simulate_sessions(const graph& g, const session_workload& w,
                                  const std::vector<link_event>& faults,
                                  double duration, double warmup,
                                  std::uint64_t seed) {
  expects(g.node_count() >= 2, "simulate_sessions: graph too small");
  expects(is_connected(g), "simulate_sessions: graph must be connected");
  expects(w.session_arrival_rate > 0.0 && w.session_lifetime_mean > 0.0 &&
              w.member_join_rate > 0.0 && w.member_lifetime_mean > 0.0,
          "simulate_sessions: workload rates must be positive");
  expects(w.max_concurrent_sessions >= 1,
          "simulate_sessions: need capacity for at least one session");
  expects(duration > 0.0 && warmup >= 0.0,
          "simulate_sessions: duration must be positive, warmup non-negative");
  for (const link_event& fe : faults) {
    expects(fe.time >= 0.0, "simulate_sessions: fault event time must be >= 0");
    expects_in_range(fe.link.a < g.node_count() && fe.link.b < g.node_count(),
                     "simulate_sessions: fault event node out of range");
    expects(g.has_edge(fe.link.a, fe.link.b),
            "simulate_sessions: fault event references a non-existent link");
  }

  MCAST_OBS_SPAN("simulate_sessions");
  rng gen(seed);
  event_queue events;
  session_metrics metrics;
  metrics.duration = duration;
  degraded_view view(g);
  // Hot-path scratch: SPTs are memoized per (source, view generation) and
  // traversals run on one reusable workspace. Both are invisible in the
  // results (see session_workload::use_spt_cache).
  traversal_workspace ws;
  spt_cache cache(64);
  // Every session's tree is a named group: the simulator is the group
  // manager's reference embedder, so session churn exercises exactly the
  // graft/prune path the live group_* service ops run. Names are a
  // monotonic counter — the trajectory consumes no extra randomness.
  group_manager groups;
  const std::string sim_scope = "sim";
  std::uint64_t next_group = 0;

  std::list<live_session> sessions;
  // Aggregate integrals, accumulated lazily: every state change first adds
  // current_value * (now - last_change) to the integral.
  double last_change = 0.0;
  double links_integral = 0.0;
  double members_integral = 0.0;
  double sessions_integral = 0.0;
  double reachable_integral = 0.0;
  std::size_t total_links = 0;
  std::size_t total_members = 0;    // active member instances
  std::size_t total_attached = 0;   // active instances on some delivery tree
  double group_size_sum = 0.0;
  std::uint64_t group_size_samples = 0;
  const double t_begin = warmup;
  const double t_end = warmup + duration;

  auto account = [&](double now) {
    const double from = std::max(last_change, t_begin);
    const double to = std::min(now, t_end);
    if (to > from) {
      const double dt = to - from;
      links_integral += static_cast<double>(total_links) * dt;
      members_integral += static_cast<double>(total_members) * dt;
      sessions_integral += static_cast<double>(sessions.size()) * dt;
      reachable_integral +=
          (total_members == 0
               ? 1.0
               : static_cast<double>(total_attached) /
                     static_cast<double>(total_members)) *
          dt;
    }
    last_change = now;
    if (now >= t_begin && now <= t_end) {
      metrics.peak_links =
          std::max(metrics.peak_links, static_cast<double>(total_links));
    }
  };

  // Re-converges one session onto the current degraded view: rebuild its
  // SPT + tree, detach members the network lost, re-attach members it
  // regained. Caller has already account()ed the current time.
  auto repair_session = [&](live_session& s) {
    const dynamic_delivery_tree& broken = groups.delivery(sim_scope, s.group);
    const std::size_t old_links = broken.link_count();
    repaired_tree r = w.use_spt_cache
                          ? repair_delivery_tree(broken, view, cache, ws)
                          : repair_delivery_tree(broken, view);

    std::uint64_t detached = 0;
    std::uint64_t reattached = 0;
    std::size_t reattach_gained = 0;
    for (member_slot& m : s.members) {
      if (!m.active) continue;
      const bool reachable = r.routing->distance(m.site) != unreachable;
      if (m.attached && !reachable) {
        m.attached = false;
        --total_attached;
        ++detached;
      } else if (!m.attached && reachable) {
        // Re-attach on the rebuilt tree before it is handed back to the
        // manager: like the repair's own link delta, this is convergence
        // churn and must not count as membership grafts.
        reattach_gained += r.delivery->join(m.site);
        m.attached = true;
        ++total_attached;
        ++reattached;
      }
    }

    total_links -= old_links;
    total_links += r.delivery->link_count();
    s.tree = r.routing;
    groups.rebase(sim_scope, s.group, std::move(r.routing),
                  std::move(r.delivery));

    const std::size_t churn = r.report.churn() + reattach_gained;
    if (events.now() >= t_begin &&
        (churn > 0 || detached > 0 || reattached > 0)) {
      ++metrics.repairs;
      metrics.repair_links_churned += churn;
      metrics.receivers_disconnected += detached;
      metrics.receivers_reconnected += reattached;
    }
  };

  // Forward declarations through std::function so events can reschedule
  // themselves (the join stream) and new arrivals (the arrival stream).
  std::function<void()> arrive;
  std::function<void(std::list<live_session>::iterator)> schedule_join;

  schedule_join = [&](std::list<live_session>::iterator it) {
    it->next_join_event = events.schedule(
        events.now() + gen.exponential(w.member_join_rate), [&, it] {
          account(events.now());
          // Pick a member site (any node but the source).
          node_id v = static_cast<node_id>(gen.below(g.node_count()));
          if (v == it->tree->source()) v = (v + 1) % g.node_count();
          const bool reachable = it->tree->distance(v) != unreachable;
          if (reachable) {
            const group_snapshot snap = groups.join(sim_scope, it->group, v);
            total_links += snap.last_grafted;
            ++total_attached;
          }
          ++total_members;
          it->members.push_back({v, /*active=*/true, /*attached=*/reachable});
          if (events.now() >= t_begin) {
            ++metrics.joins;
            if (!reachable) ++metrics.receivers_disconnected;
            group_size_sum += static_cast<double>(
                groups.delivery(sim_scope, it->group)
                    .distinct_receiver_sites());
            ++group_size_samples;
          }
          // Member departure.
          const std::size_t member_index = it->members.size() - 1;
          it->leave_events.push_back(events.schedule(
              events.now() + gen.exponential(1.0 / w.member_lifetime_mean),
              [&, it, member_index] {
                account(events.now());
                member_slot& m = it->members[member_index];
                if (m.attached) {
                  const group_snapshot snap =
                      groups.leave(sim_scope, it->group, m.site);
                  total_links -= snap.last_pruned;
                  --total_attached;
                  m.attached = false;
                }
                m.active = false;
                --total_members;
                if (events.now() >= t_begin) ++metrics.leaves;
              }));
          schedule_join(it);
        });
  };

  auto end_session = [&](std::list<live_session>::iterator it) {
    account(events.now());
    // Cancel pending events and drain remaining members.
    events.cancel(it->next_join_event);
    for (event_queue::event_id id : it->leave_events) events.cancel(id);
    std::size_t active = 0;
    for (const member_slot& m : it->members) {
      if (m.active) ++active;
    }
    const dynamic_delivery_tree& delivery =
        groups.delivery(sim_scope, it->group);
    total_links -= delivery.link_count();
    total_members -= active;
    total_attached -= delivery.receiver_count();
    if (events.now() >= t_begin) {
      metrics.leaves += active;
    }
    groups.erase(sim_scope, it->group);
    sessions.erase(it);
    ++metrics.sessions_completed;
  };

  arrive = [&] {
    account(events.now());
    if (sessions.size() < w.max_concurrent_sessions) {
      sessions.emplace_back();
      auto it = std::prev(sessions.end());
      const node_id source = static_cast<node_id>(gen.below(g.node_count()));
      // Routed over the current degraded view; identical to the pristine
      // SPT while nothing is failed.
      if (w.use_spt_cache) {
        it->tree = cache.get(view, source, ws);
      } else {
        it->tree = std::make_shared<const source_tree>(g, bfs_from(view, source));
      }
      it->group = std::to_string(next_group++);
      groups.create(sim_scope, it->group, it->tree);
      it->end_event = events.schedule(
          events.now() + gen.exponential(1.0 / w.session_lifetime_mean),
          [&, it] { end_session(it); });
      schedule_join(it);
      ++metrics.sessions_started;
    } else {
      ++metrics.sessions_dropped;
    }
    events.schedule(events.now() + gen.exponential(w.session_arrival_rate),
                    arrive);
  };

  // The failure trace consumes no randomness: the workload trajectory is
  // identical with and without it (until repairs change tree shapes).
  for (const link_event& fe : faults) {
    if (fe.time >= t_end) continue;
    events.schedule(fe.time, [&, fe] {
      account(events.now());
      const bool changed = fe.fails
                               ? view.fail_link(fe.link.a, fe.link.b)
                               : view.restore_link(fe.link.a, fe.link.b);
      if (!changed) return;  // e.g. a recovery for a link that never failed
      obs::add(obs::counter::sim_degraded_transitions);
      if (events.now() >= t_begin) {
        if (fe.fails) {
          ++metrics.link_failures;
        } else {
          ++metrics.link_recoveries;
        }
      }
      for (live_session& s : sessions) repair_session(s);
    });
  }

  events.schedule(gen.exponential(w.session_arrival_rate), arrive);
  events.run_until(t_end);
  account(t_end);

  metrics.time_avg_links = links_integral / duration;
  metrics.time_avg_members = members_integral / duration;
  metrics.time_avg_sessions = sessions_integral / duration;
  metrics.time_avg_reachable_fraction = reachable_integral / duration;
  metrics.mean_group_size_at_join =
      group_size_samples == 0
          ? 0.0
          : group_size_sum / static_cast<double>(group_size_samples);
  return metrics;
}

}  // namespace mcast
