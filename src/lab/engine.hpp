// The experiment engine: resolve parameters, run, record.
//
// `run_experiment` is the single in-process entry point shared by the
// mcast_lab CLI and the test suite. It resolves the tiered parameter set
// (scale defaults + `--param k=v` overrides), emits the classic banner,
// hands the experiment a `context` wired to this run's recorder and
// scheduler budget, times the run (wall and CPU), and assembles the JSON
// run manifest from what the experiment actually emitted.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "lab/manifest.hpp"
#include "lab/recorder.hpp"
#include "lab/registry.hpp"

namespace mcast::lab {

struct run_options {
  int scale = 1;             ///< effort tier (0 smoke / 1 normal / >=2 paper)
  std::size_t threads = 0;   ///< scheduler workers; 0 = hardware concurrency
  bool use_spt_cache = true; ///< reuse per-source SPTs inside Monte-Carlo
  bool banner = true;        ///< emit the classic "== id ==" header lines
  /// `--param name=value` overrides, applied after scale defaults.
  std::vector<std::pair<std::string, std::string>> overrides;
};

struct run_outcome {
  recorder output;
  run_record manifest;
};

/// Runs one experiment. Throws std::invalid_argument on bad overrides and
/// propagates whatever the experiment itself throws. Threads are resolved
/// via core's resolve_thread_count (0 -> hardware concurrency).
run_outcome run_experiment(const experiment& exp, const run_options& opts);

}  // namespace mcast::lab
