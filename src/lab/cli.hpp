// Command-line front end for the experiment engine.
//
//   mcast_lab list                      enumerate experiment ids
//   mcast_lab describe <id>             claim + parameters + tier defaults
//   mcast_lab run <id> [options]        run one experiment
//   mcast_lab run --all [options]       run every registered experiment
//   mcast_lab validate <dir>            schema-check BENCH_*.json manifests
//
// Run options: --param k=v (repeatable), --scale N (overrides
// MCAST_BENCH_SCALE), --threads N (0 = hardware), --no-cache,
// --manifest-dir DIR (default "."), --out-dir DIR (also write per-
// experiment <id>.dat series files), --no-manifest.
//
// Series/FIT output goes to stdout exactly as the old per-figure binaries
// printed it; progress lines go to stderr so redirected output stays
// gnuplot-clean.
#pragma once

namespace mcast::lab {

class registry;

/// Returns a process exit code (0 on success, 1 on bad usage or a failed
/// run, 2 on validation failure).
int run_cli(const registry& reg, int argc, char** argv);

}  // namespace mcast::lab
