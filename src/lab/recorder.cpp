#include "lab/recorder.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <ostream>
#include <sstream>

#include "common/contract.hpp"
#include "sim/csv.hpp"

namespace mcast::lab {

namespace {

// Extracts `key=<number>` tokens from a FIT line's free text. Tokens whose
// right-hand side is not a complete finite number (e.g. "(paper: ~0.8)")
// are simply skipped — the text channel keeps them.
std::vector<std::pair<std::string, double>> parse_fit_values(
    const std::string& text) {
  std::vector<std::pair<std::string, double>> out;
  std::istringstream in(text);
  std::string token;
  while (in >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size()) continue;
    const std::string rhs = token.substr(eq + 1);
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(rhs.c_str(), &end);
    if (errno == ERANGE || end != rhs.c_str() + rhs.size() ||
        !std::isfinite(v)) {
      continue;
    }
    out.emplace_back(token.substr(0, eq), v);
  }
  return out;
}

}  // namespace

void recorder::series(const std::string& label, const std::vector<double>& x,
                      const std::vector<double>& y) {
  expects(x.size() == y.size(), "recorder::series: x/y size mismatch");
  xy_series s;
  s.label = label;
  s.x = x;
  s.y = y;
  items_.push_back({kind::series, series_.size()});
  series_.push_back(std::move(s));
}

void recorder::fit(const std::string& label, const std::string& text) {
  fit_entry f;
  f.label = label;
  f.text = text;
  f.values = parse_fit_values(text);
  items_.push_back({kind::fit, fits_.size()});
  fits_.push_back(std::move(f));
}

void recorder::table(const table_writer& t) {
  std::ostringstream os;
  t.print(os);
  items_.push_back({kind::block, blocks_.size()});
  blocks_.push_back(os.str());
}

void recorder::text(const std::string& line) {
  items_.push_back({kind::block, blocks_.size()});
  blocks_.push_back(line + "\n");
}

void recorder::splice(recorder&& other) {
  for (const item& it : other.items_) {
    switch (it.k) {
      case kind::series:
        items_.push_back({kind::series, series_.size()});
        series_.push_back(std::move(other.series_[it.index]));
        break;
      case kind::fit:
        items_.push_back({kind::fit, fits_.size()});
        fits_.push_back(std::move(other.fits_[it.index]));
        break;
      case kind::block:
        items_.push_back({kind::block, blocks_.size()});
        blocks_.push_back(std::move(other.blocks_[it.index]));
        break;
    }
  }
  other.items_.clear();
  other.series_.clear();
  other.fits_.clear();
  other.blocks_.clear();
}

void recorder::render(std::ostream& out) const {
  for (const item& it : items_) {
    switch (it.k) {
      case kind::series: {
        const xy_series& s = series_[it.index];
        print_series(out, s.label, s.x, s.y);
        break;
      }
      case kind::fit:
        print_fit_line(out, fits_[it.index].label, fits_[it.index].text);
        break;
      case kind::block:
        out << blocks_[it.index];
        break;
    }
  }
}

std::string recorder::str() const {
  std::ostringstream os;
  render(os);
  return os.str();
}

}  // namespace mcast::lab
