#include "lab/scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mcast::lab {

namespace {

using steady = std::chrono::steady_clock;

std::uint64_t elapsed_ns(steady::time_point from, steady::time_point to) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from).count());
}

// Runs one sweep point with its span + task accounting. The probe work is
// per *point* (each point is a whole figure panel or Monte-Carlo study),
// so the timestamps are noise relative to the work they bracket.
void run_point(const sweep_fn& fn, std::size_t i, recorder& rec,
               worker_state& state, std::uint64_t& busy_ns,
               std::uint64_t& tasks) {
#if !defined(MCAST_OBS_DISABLED)
  MCAST_OBS_SPAN("sweep_point");
  const steady::time_point start = steady::now();
  fn(i, rec, state);
  busy_ns += elapsed_ns(start, steady::now());
  ++tasks;
  obs::add(obs::counter::sched_tasks);
#else
  (void)busy_ns;
  (void)tasks;
  fn(i, rec, state);
#endif
}

// Flushes one worker's accounting when it retires.
void retire_worker(std::uint64_t busy_ns, std::uint64_t tasks,
                   std::uint64_t worker_ns) {
  obs::add(obs::counter::sched_busy_ns, busy_ns);
  obs::add(obs::counter::sched_worker_ns, worker_ns);
  obs::record(obs::histogram::sched_tasks_per_worker, tasks);
}

}  // namespace

std::vector<recorder> run_sweep(std::size_t count, std::size_t workers,
                                const sweep_fn& fn) {
  std::vector<recorder> recorders(count);
  if (count == 0) return recorders;

  std::size_t n_workers =
      workers == 0 ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
                   : workers;
  if (n_workers > count) n_workers = count;

  obs::gauge_max(obs::gauge::sched_workers, n_workers);

  if (n_workers <= 1) {
    worker_state state;
    const steady::time_point start = steady::now();
    std::uint64_t busy_ns = 0;
    std::uint64_t tasks = 0;
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint64_t before = busy_ns;
      run_point(fn, i, recorders[i], state, busy_ns, tasks);
      obs::record(obs::histogram::sched_task_ns, busy_ns - before);
    }
    retire_worker(busy_ns, tasks, elapsed_ns(start, steady::now()));
    return recorders;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&]() {
    worker_state state;
    const steady::time_point start = steady::now();
    std::uint64_t busy_ns = 0;
    std::uint64_t tasks = 0;
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      const std::uint64_t before = busy_ns;
      try {
        run_point(fn, i, recorders[i], state, busy_ns, tasks);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      obs::record(obs::histogram::sched_task_ns, busy_ns - before);
    }
    retire_worker(busy_ns, tasks, elapsed_ns(start, steady::now()));
  };

  std::vector<std::thread> threads;
  threads.reserve(n_workers);
  for (std::size_t w = 0; w < n_workers; ++w) threads.emplace_back(worker);
  // Splice wait: how long the caller sits joining workers before it can
  // stitch the per-point recorders back together in index order.
  const steady::time_point join_start = steady::now();
  for (std::thread& t : threads) t.join();
  obs::add(obs::counter::sched_splice_wait_ns,
           elapsed_ns(join_start, steady::now()));

  if (first_error) std::rethrow_exception(first_error);
  return recorders;
}

}  // namespace mcast::lab
