#include "lab/scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace mcast::lab {

std::vector<recorder> run_sweep(std::size_t count, std::size_t workers,
                                const sweep_fn& fn) {
  std::vector<recorder> recorders(count);
  if (count == 0) return recorders;

  std::size_t n_workers =
      workers == 0 ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
                   : workers;
  if (n_workers > count) n_workers = count;

  if (n_workers <= 1) {
    worker_state state;
    for (std::size_t i = 0; i < count; ++i) fn(i, recorders[i], state);
    return recorders;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&]() {
    worker_state state;
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i, recorders[i], state);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(n_workers);
  for (std::size_t w = 0; w < n_workers; ++w) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();

  if (first_error) std::rethrow_exception(first_error);
  return recorders;
}

}  // namespace mcast::lab
