// Ordered, structured capture of an experiment's output.
//
// The old per-figure binaries wrote straight to stdout; the engine instead
// hands every run (and every parallel sweep point) a `recorder`. It keeps
// the items *in emission order* so `render()` reproduces the classic
// harness text — `# series:` blocks, `FIT:` lines, aligned tables — byte
// for byte, while also exposing the series and fits as data for the JSON
// run manifest and for tests.
//
// FIT lines double as the structured fit channel: the harness convention
// is `FIT: <label> k1=v1 k2=v2 ...`, so `fit()` parses every `k=<number>`
// token out of the text and the manifest gets the fitted exponents without
// experiments having to report them twice.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "analysis/series.hpp"

namespace mcast {
class table_writer;
}  // namespace mcast

namespace mcast::lab {

/// One captured FIT line, with any `key=<number>` pairs parsed out.
struct fit_entry {
  std::string label;
  std::string text;
  std::vector<std::pair<std::string, double>> values;
};

class recorder {
 public:
  /// Captures one named x/y curve (rendered exactly like print_series).
  void series(const std::string& label, const std::vector<double>& x,
              const std::vector<double>& y);

  /// Captures one FIT line (rendered exactly like print_fit_line).
  void fit(const std::string& label, const std::string& text);

  /// Captures a finished table (rendered via table_writer::print).
  void table(const table_writer& t);

  /// Captures one raw text line; a trailing newline is appended.
  void text(const std::string& line);

  /// Appends every item of `other` after this recorder's items — how the
  /// scheduler splices sweep-point outputs back in deterministic order.
  void splice(recorder&& other);

  /// Renders all items in emission order, matching the classic harness
  /// output format.
  void render(std::ostream& out) const;
  std::string str() const;

  const std::vector<xy_series>& all_series() const { return series_; }
  const std::vector<fit_entry>& fits() const { return fits_; }

 private:
  enum class kind { series, fit, block };
  struct item {
    kind k;
    std::size_t index;  // into the matching store below
  };

  std::vector<item> items_;
  std::vector<xy_series> series_;
  std::vector<fit_entry> fits_;
  std::vector<std::string> blocks_;  // pre-rendered tables / raw lines
};

}  // namespace mcast::lab
