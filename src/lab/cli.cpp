#include "lab/cli.hpp"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <system_error>
#include <vector>

#include "check/command.hpp"
#include "check/trace_cmd.hpp"
#include "lab/engine.hpp"
#include "lab/manifest.hpp"
#include "lab/registry.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/commands.hpp"

namespace mcast::lab {

namespace {

namespace fs = std::filesystem;

void usage(std::ostream& out) {
  out << "usage: mcast_lab <command> [options]\n"
         "\n"
         "commands:\n"
         "  list [--json]            enumerate experiment ids\n"
         "  describe <id>            show claim, parameters, metric groups\n"
         "  run <id> | run --all     run experiments\n"
         "  validate <dir>           schema-check BENCH_*.json manifests\n"
         "  check --manifest F --expect F [--trace F] [--baseline F]\n"
         "         [--report F]      evaluate a declarative expectation\n"
         "                           spec (docs/expectations.md) against a\n"
         "                           run manifest, Chrome trace and perf\n"
         "                           baseline; exit 0 pass, 2 spec error,\n"
         "                           3 expectations violated\n"
         "  trace --profile=F [--access-log=F] [--trace-id=HEX] [--top=K]\n"
         "                           request-centric view over a Chrome\n"
         "                           trace and the service access log,\n"
         "                           joined on trace id: per-request span\n"
         "                           groups, top-K slow requests, retry\n"
         "                           attempt chains (docs/observability.md)\n"
         "  serve [--port=N] [--threads=K] [--queue=N] [--max-line=B]\n"
         "         [--shards=N] [--shard-workers=K] [--shard-queue=N]\n"
         "         [--warm=SPEC] [--metrics-summary] [--profile=FILE]\n"
         "         [--access-log=FILE] [--slow-us=N] [--trace-seed=N]\n"
         "                           run the line-JSON query service until\n"
         "                           SIGINT/SIGTERM; --shards=N enables the\n"
         "                           consistent-hash sharded core\n"
         "                           (docs/service.md, docs/sharding.md)\n"
         "  query --port=N [line..]  send request lines (argv or stdin) to a\n"
         "                           running server; exit 0 iff all ok;\n"
         "                           --trace=BASE tags every attempt with\n"
         "                           \"BASE-a<N>\" for attempt-chain joins\n"
         "  query --port=N --batch=F fold file F (one sub-op per line) into a\n"
         "                           single batch envelope; prints one result\n"
         "                           doc per line, exit 2 if any sub-op fails\n"
         "\n"
         "run options:\n"
         "  --param k=v              override a parameter (repeatable)\n"
         "  --scale N                effort tier (overrides MCAST_BENCH_SCALE)\n"
         "  --threads N              scheduler workers (0 = hardware)\n"
         "  --no-cache               disable the per-source SPT cache\n"
         "  --manifest-dir DIR       where BENCH_<id>.json lands (default .)\n"
         "  --out-dir DIR            also write per-experiment <id>.dat files\n"
         "  --no-manifest            skip writing run manifests\n"
         "  --profile=FILE           write a merged Chrome trace (trace_event\n"
         "                           JSON; load in chrome://tracing/Perfetto)\n"
         "  --metrics-summary        print the obs registry per run on stderr\n";
}

[[noreturn]] void die(const std::string& message) {
  throw std::invalid_argument(message);
}

std::string next_arg(const std::vector<std::string>& args, std::size_t& i,
                     const std::string& flag) {
  if (i + 1 >= args.size()) die(flag + " needs a value");
  return args[++i];
}

struct run_flags {
  run_options options;
  std::vector<std::string> ids;
  bool all = false;
  std::string manifest_dir = ".";
  std::string out_dir;
  bool write_manifests = true;
  std::string profile_path;     // empty = no trace
  bool metrics_summary = false;
};

run_flags parse_run_flags(const std::vector<std::string>& args) {
  run_flags flags;
  flags.options.scale = scale_from_env();
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--all") {
      flags.all = true;
    } else if (arg == "--param") {
      const std::string kv = next_arg(args, i, arg);
      const std::size_t eq = kv.find('=');
      if (eq == std::string::npos || eq == 0) {
        die("--param expects k=v, got '" + kv + "'");
      }
      flags.options.overrides.emplace_back(kv.substr(0, eq),
                                           kv.substr(eq + 1));
    } else if (arg == "--scale") {
      flags.options.scale = parse_scale(next_arg(args, i, arg));
    } else if (arg == "--threads") {
      flags.options.threads = static_cast<std::size_t>(
          parse_u64(next_arg(args, i, arg), "--threads"));
    } else if (arg == "--no-cache") {
      flags.options.use_spt_cache = false;
    } else if (arg == "--manifest-dir") {
      flags.manifest_dir = next_arg(args, i, arg);
    } else if (arg == "--out-dir") {
      flags.out_dir = next_arg(args, i, arg);
    } else if (arg == "--no-manifest") {
      flags.write_manifests = false;
    } else if (arg.rfind("--profile=", 0) == 0) {
      flags.profile_path = arg.substr(std::string("--profile=").size());
      if (flags.profile_path.empty()) die("--profile= needs a file path");
    } else if (arg == "--profile") {
      flags.profile_path = next_arg(args, i, arg);
    } else if (arg == "--metrics-summary") {
      flags.metrics_summary = true;
    } else if (!arg.empty() && arg[0] == '-') {
      die("unknown option '" + arg + "'");
    } else {
      flags.ids.push_back(arg);
    }
  }
  if (!flags.all && flags.ids.empty()) {
    die("run: give an experiment id or --all (see `mcast_lab list`)");
  }
  if (flags.all && !flags.ids.empty()) {
    die("run: --all cannot be combined with explicit ids");
  }
  if (flags.all && !flags.options.overrides.empty()) {
    die("run: --param applies to a single experiment, not --all");
  }
  return flags;
}

int cmd_list(const registry& reg, const std::vector<std::string>& args) {
  bool as_json = false;
  for (const std::string& arg : args) {
    if (arg == "--json") {
      as_json = true;
    } else {
      die("list: unknown argument '" + arg + "'");
    }
  }
  if (as_json) {
    json::value doc = json::value::array();
    for (const experiment& e : reg.all()) {
      json::value entry = json::value::object();
      entry.set("id", json::value::string(e.id));
      entry.set("title", json::value::string(e.title));
      entry.set("claim", json::value::string(e.claim));
      json::value groups = json::value::array();
      for (const std::string& g : e.metric_groups) {
        groups.push(json::value::string(g));
      }
      entry.set("metric_groups", std::move(groups));
      doc.push(std::move(entry));
    }
    std::cout << json::dump(doc) << "\n";
    return 0;
  }
  std::size_t width = 0;
  for (const experiment& e : reg.all()) width = std::max(width, e.id.size());
  for (const experiment& e : reg.all()) {
    std::cout << e.id << std::string(width - e.id.size() + 2, ' ') << e.title
              << "\n";
  }
  return 0;
}

int cmd_describe(const registry& reg, const std::string& id) {
  const experiment* exp = reg.find(id);
  if (exp == nullptr) {
    std::cerr << "mcast_lab: unknown experiment '" << id
              << "' (see `mcast_lab list`)\n";
    return 1;
  }
  std::cout << "id:     " << exp->id << "\n"
            << "title:  " << exp->title << "\n"
            << "claim:  " << exp->claim << "\n";
  std::cout << "metric groups:";
  if (exp->metric_groups.empty()) {
    std::cout << " (none declared)";
  } else {
    for (const std::string& g : exp->metric_groups) std::cout << " " << g;
  }
  std::cout << "\n";
  if (exp->params.empty()) {
    std::cout << "parameters: (none)\n";
    return 0;
  }
  std::cout << "parameters (smoke / normal / paper defaults):\n";
  for (const param_spec& p : exp->params) {
    std::cout << "  " << p.name << " (" << kind_name(p.kind) << ") = "
              << render(p.smoke) << " / " << render(p.normal) << " / "
              << render(p.paper) << "\n"
              << "      " << p.description << "\n";
  }
  return 0;
}

int run_one(const experiment& exp, const run_flags& flags) {
  std::cerr << "[mcast_lab] run " << exp.id << " scale=" << flags.options.scale
            << " threads="
            << (flags.options.threads == 0 ? std::string("auto")
                                           : std::to_string(flags.options.threads))
            << " cache=" << (flags.options.use_spt_cache ? "on" : "off")
            << "\n";
  const run_outcome outcome = run_experiment(exp, flags.options);
  outcome.output.render(std::cout);
  std::cout.flush();
  if (!std::cout) {
    throw std::runtime_error("stdout write failed (disk full or pipe closed?)");
  }

  if (!flags.out_dir.empty()) {
    const std::string path = flags.out_dir + "/" + exp.id + ".dat";
    std::ofstream dat(path, std::ios::trunc);
    if (!dat) throw std::runtime_error("cannot open '" + path + "'");
    outcome.output.render(dat);
    if (!dat) throw std::runtime_error("write to '" + path + "' failed");
  }

  std::string manifest_path = "-";
  if (flags.write_manifests) {
    manifest_path = flags.manifest_dir + "/BENCH_" + exp.id + ".json";
    write_manifest(outcome.manifest, manifest_path);
  }
  char wall[32];
  std::snprintf(wall, sizeof wall, "%.2f", outcome.manifest.wall_seconds);
  char cpu[32];
  std::snprintf(cpu, sizeof cpu, "%.2f", outcome.manifest.cpu_seconds);
  std::cerr << "[mcast_lab] done " << exp.id << " wall=" << wall
            << "s cpu=" << cpu << "s manifest=" << manifest_path << "\n";
  if (flags.metrics_summary) {
    std::cerr << "[mcast_lab] metrics for " << exp.id << ":\n";
    obs::render_metrics_summary(std::cerr, outcome.manifest.metrics);
  }
  return 0;
}

int cmd_run(const registry& reg, const std::vector<std::string>& args) {
  const run_flags flags = parse_run_flags(args);
  std::vector<const experiment*> selected;
  if (flags.all) {
    for (const experiment& e : reg.all()) selected.push_back(&e);
  } else {
    for (const std::string& id : flags.ids) {
      const experiment* exp = reg.find(id);
      if (exp == nullptr) {
        die("unknown experiment '" + id + "' (see `mcast_lab list`)");
      }
      selected.push_back(exp);
    }
  }
  // Create the output directories before any experiment runs: a bad
  // --manifest-dir should fail in milliseconds, not after a long sweep.
  if (flags.write_manifests) {
    std::error_code ec;
    fs::create_directories(flags.manifest_dir, ec);
    if (ec || !fs::is_directory(flags.manifest_dir)) {
      die("cannot create --manifest-dir '" + flags.manifest_dir + "'" +
          (ec ? ": " + ec.message() : ""));
    }
  }
  if (!flags.out_dir.empty()) {
    std::error_code ec;
    fs::create_directories(flags.out_dir, ec);
    if (ec || !fs::is_directory(flags.out_dir)) {
      die("cannot create --out-dir '" + flags.out_dir + "'" +
          (ec ? ": " + ec.message() : ""));
    }
  }
  if (!flags.profile_path.empty()) {
    obs::trace_clear();
    obs::trace_enable();
  }
  for (std::size_t i = 0; i < selected.size(); ++i) {
    if (i > 0) std::cout << "\n";
    run_one(*selected[i], flags);
  }
  if (!flags.profile_path.empty()) {
    obs::trace_disable();
    const obs::trace_dump dump = obs::trace_collect();
    obs::write_chrome_trace_file(flags.profile_path, dump);
    std::cerr << "[mcast_lab] trace " << flags.profile_path << " ("
              << dump.events.size() << " events, " << dump.dropped
              << " dropped)\n";
  }
  return 0;
}

int cmd_validate(const std::vector<std::string>& args) {
  if (args.size() != 1) die("validate: give exactly one manifest directory");
  const fs::path dir(args[0]);
  if (!fs::is_directory(dir)) {
    std::cerr << "mcast_lab: '" << args[0] << "' is not a directory\n";
    return 2;
  }
  std::vector<fs::path> files;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (entry.is_regular_file() && name.rfind("BENCH_", 0) == 0 &&
        name.size() > 5 && name.compare(name.size() - 5, 5, ".json") == 0) {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::cerr << "mcast_lab: no BENCH_*.json manifests in '" << args[0]
              << "'\n";
    return 2;
  }
  int bad = 0;
  for (const fs::path& file : files) {
    std::ifstream in(file);
    std::ostringstream text;
    text << in.rdbuf();
    std::vector<std::string> problems;
    try {
      problems = validate_manifest(json::parse(text.str()));
    } catch (const std::exception& e) {
      problems.push_back(e.what());
    }
    if (problems.empty()) {
      std::cout << file.filename().string() << ": ok\n";
    } else {
      ++bad;
      for (const std::string& p : problems) {
        std::cout << file.filename().string() << ": " << p << "\n";
      }
    }
  }
  std::cout << files.size() << " manifest(s), " << bad << " invalid\n";
  return bad == 0 ? 0 : 2;
}

}  // namespace

int run_cli(const registry& reg, int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (args.empty() || args[0] == "help" || args[0] == "--help" ||
        args[0] == "-h") {
      usage(std::cout);
      return args.empty() ? 1 : 0;
    }
    const std::string command = args[0];
    const std::vector<std::string> rest(args.begin() + 1, args.end());
    if (command == "list") return cmd_list(reg, rest);
    if (command == "describe") {
      if (rest.size() != 1) die("describe: give exactly one experiment id");
      return cmd_describe(reg, rest[0]);
    }
    if (command == "run") return cmd_run(reg, rest);
    if (command == "validate") return cmd_validate(rest);
    if (command == "check") return check::run_check(rest);
    if (command == "trace") return check::run_trace(rest);
    if (command == "serve") return service::run_serve(rest);
    if (command == "query") return service::run_query(rest);
    die("unknown command '" + command + "'");
  } catch (const std::invalid_argument& e) {
    std::cerr << "mcast_lab: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "mcast_lab: error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace mcast::lab
