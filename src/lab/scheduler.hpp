// Deterministic parallel sweep scheduler for the experiment engine.
//
// Most figures sweep an outer axis (networks, depths, modes) where each
// point is independent and carries its own seed. `run_sweep` fans those
// points out over worker threads while keeping the *output* identical to a
// serial run: every point writes into its own recorder, and the caller
// splices the recorders back in index order. Each worker owns one
// `worker_state` carrying the reusable traversal workspace and per-source
// SPT cache from the core layer, so a sweep reuses scratch memory exactly
// like the Monte-Carlo runner does internally.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "graph/workspace.hpp"
#include "lab/recorder.hpp"
#include "multicast/spt_cache.hpp"

namespace mcast::lab {

/// Per-worker scratch, reused across all sweep points a worker executes.
struct worker_state {
  traversal_workspace workspace;
  spt_cache cache{64};
};

/// Runs `fn(index, rec, state)` for index = 0..count-1 across up to
/// `workers` threads (0 = hardware concurrency; capped at `count`) and
/// returns the per-index recorders in index order. Point outputs are
/// therefore independent of the thread count and of scheduling order.
/// The first exception thrown by any point is rethrown after all workers
/// join. With one effective worker everything runs on the calling thread.
using sweep_fn =
    std::function<void(std::size_t index, recorder& rec, worker_state& state)>;

std::vector<recorder> run_sweep(std::size_t count, std::size_t workers,
                                const sweep_fn& fn);

}  // namespace mcast::lab
