#include "lab/params.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace mcast::lab {

namespace {

[[noreturn]] void bad(const std::string& what, const std::string& text,
                      const char* expected) {
  throw std::invalid_argument(what + ": expected " + expected + ", got '" +
                              text + "'");
}

bool all_digits(const std::string& s, std::size_t from) {
  if (from >= s.size()) return false;
  for (std::size_t i = from; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

}  // namespace

std::int64_t parse_i64(const std::string& text, const std::string& what) {
  const std::size_t from = (!text.empty() && text[0] == '-') ? 1 : 0;
  if (!all_digits(text, from)) bad(what, text, "a decimal integer");
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (errno == ERANGE || end != text.c_str() + text.size()) {
    bad(what, text, "a decimal integer in range");
  }
  return static_cast<std::int64_t>(v);
}

std::uint64_t parse_u64(const std::string& text, const std::string& what) {
  if (!all_digits(text, 0)) bad(what, text, "an unsigned decimal integer");
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno == ERANGE || end != text.c_str() + text.size()) {
    bad(what, text, "an unsigned decimal integer in range");
  }
  return static_cast<std::uint64_t>(v);
}

double parse_real(const std::string& text, const std::string& what) {
  if (text.empty() || std::isspace(static_cast<unsigned char>(text[0]))) {
    bad(what, text, "a finite number");
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (errno == ERANGE || end != text.c_str() + text.size() ||
      !std::isfinite(v)) {
    bad(what, text, "a finite number");
  }
  return v;
}

bool parse_bool(const std::string& text, const std::string& what) {
  if (text == "true" || text == "1") return true;
  if (text == "false" || text == "0") return false;
  bad(what, text, "true/false/1/0");
}

int parse_scale(const std::string& text) {
  const std::int64_t v = parse_i64(text, "MCAST_BENCH_SCALE");
  return v < 0 ? 0 : (v > 8 ? 8 : static_cast<int>(v));
}

int scale_from_env() {
  const char* env = std::getenv("MCAST_BENCH_SCALE");
  if (env == nullptr) return 1;
  return parse_scale(env);
}

param_kind kind_of(const param_value& v) noexcept {
  return static_cast<param_kind>(v.index());
}

const char* kind_name(param_kind kind) noexcept {
  switch (kind) {
    case param_kind::i64: return "i64";
    case param_kind::u64: return "u64";
    case param_kind::real: return "real";
    case param_kind::boolean: return "bool";
    case param_kind::text: return "text";
  }
  return "?";
}

std::string render(const param_value& v) {
  switch (kind_of(v)) {
    case param_kind::i64: return std::to_string(std::get<std::int64_t>(v));
    case param_kind::u64: return std::to_string(std::get<std::uint64_t>(v));
    case param_kind::real: {
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.17g", std::get<double>(v));
      return buf;
    }
    case param_kind::boolean: return std::get<bool>(v) ? "true" : "false";
    case param_kind::text: return std::get<std::string>(v);
  }
  return {};
}

param_value parse_value(param_kind kind, const std::string& text,
                        const std::string& what) {
  switch (kind) {
    case param_kind::i64: return parse_i64(text, what);
    case param_kind::u64: return parse_u64(text, what);
    case param_kind::real: return parse_real(text, what);
    case param_kind::boolean: return parse_bool(text, what);
    case param_kind::text: return text;
  }
  throw std::logic_error("parse_value: unknown kind");
}

const param_value& param_spec::default_for(int scale) const noexcept {
  if (scale <= 0) return smoke;
  if (scale == 1) return normal;
  return paper;
}

namespace {

param_spec make_spec(std::string name, std::string description,
                     param_value smoke, param_value normal,
                     param_value paper) {
  param_spec s;
  s.name = std::move(name);
  s.description = std::move(description);
  s.kind = kind_of(smoke);
  s.smoke = std::move(smoke);
  s.normal = std::move(normal);
  s.paper = std::move(paper);
  return s;
}

}  // namespace

param_spec p_u64(std::string name, std::string description,
                 std::uint64_t fixed) {
  return p_u64(std::move(name), std::move(description), fixed, fixed, fixed);
}

param_spec p_u64(std::string name, std::string description, std::uint64_t smoke,
                 std::uint64_t normal, std::uint64_t paper) {
  return make_spec(std::move(name), std::move(description), smoke, normal,
                   paper);
}

param_spec p_i64(std::string name, std::string description,
                 std::int64_t fixed) {
  return make_spec(std::move(name), std::move(description), fixed, fixed,
                   fixed);
}

param_spec p_real(std::string name, std::string description, double fixed) {
  return p_real(std::move(name), std::move(description), fixed, fixed, fixed);
}

param_spec p_real(std::string name, std::string description, double smoke,
                  double normal, double paper) {
  return make_spec(std::move(name), std::move(description), smoke, normal,
                   paper);
}

param_spec p_bool(std::string name, std::string description, bool fixed) {
  return make_spec(std::move(name), std::move(description), fixed, fixed,
                   fixed);
}

param_spec p_text(std::string name, std::string description,
                  std::string fixed) {
  param_value v = std::move(fixed);
  return make_spec(std::move(name), std::move(description), v, v, v);
}

void param_set::set(const std::string& name, param_value v) {
  for (auto& [k, existing] : values_) {
    if (k == name) {
      existing = std::move(v);
      return;
    }
  }
  values_.emplace_back(name, std::move(v));
}

bool param_set::has(const std::string& name) const noexcept {
  for (const auto& [k, v] : values_) {
    if (k == name) return true;
  }
  return false;
}

const param_value& param_set::at(const std::string& name) const {
  for (const auto& [k, v] : values_) {
    if (k == name) return v;
  }
  throw std::logic_error("param_set: experiment read undeclared parameter '" +
                         name + "'");
}

namespace {

template <typename T>
const T& typed(const param_set& set, const std::string& name) {
  const param_value& v = set.at(name);
  if (!std::holds_alternative<T>(v)) {
    throw std::logic_error("param_set: parameter '" + name +
                           "' read with the wrong type (declared " +
                           kind_name(kind_of(v)) + ")");
  }
  return std::get<T>(v);
}

}  // namespace

std::uint64_t param_set::u64(const std::string& name) const {
  return typed<std::uint64_t>(*this, name);
}

std::int64_t param_set::i64(const std::string& name) const {
  return typed<std::int64_t>(*this, name);
}

double param_set::real(const std::string& name) const {
  return typed<double>(*this, name);
}

bool param_set::flag(const std::string& name) const {
  return typed<bool>(*this, name);
}

const std::string& param_set::text(const std::string& name) const {
  return typed<std::string>(*this, name);
}

param_set resolve_params(
    const std::vector<param_spec>& specs, int scale,
    const std::vector<std::pair<std::string, std::string>>& overrides) {
  param_set out;
  for (const param_spec& spec : specs) {
    out.set(spec.name, spec.default_for(scale));
  }
  for (const auto& [name, text] : overrides) {
    const param_spec* spec = nullptr;
    for (const param_spec& s : specs) {
      if (s.name == name) {
        spec = &s;
        break;
      }
    }
    if (spec == nullptr) {
      std::string known;
      for (const param_spec& s : specs) {
        known += known.empty() ? s.name : ", " + s.name;
      }
      throw std::invalid_argument(
          "unknown parameter '" + name + "'" +
          (known.empty() ? " (this experiment has no parameters)"
                         : " (available: " + known + ")"));
    }
    out.set(name, parse_value(spec->kind, text, "parameter '" + name + "'"));
  }
  return out;
}

}  // namespace mcast::lab
