#include "lab/engine.hpp"

#include <chrono>
#include <ctime>

#include "core/runner.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mcast::lab {

run_outcome run_experiment(const experiment& exp, const run_options& opts) {
  run_outcome out;
  const param_set params =
      resolve_params(exp.params, opts.scale, opts.overrides);
  const std::size_t threads = resolve_thread_count(opts.threads);

  // Scope the metrics snapshot to this run. Trace rings are deliberately
  // NOT cleared here: `run --all --profile` wants one merged timeline
  // spanning every experiment.
  obs::reset_metrics();

  if (opts.banner) {
    out.output.text("== " + exp.id + " ==");
    out.output.text("# reproduces: " + exp.claim);
    out.output.text("# scale: " + std::to_string(opts.scale) +
                    " (set MCAST_BENCH_SCALE=0|1|2)");
    out.output.text("");
  }

  context ctx(exp, params, opts.scale, threads, opts.use_spt_cache,
              out.output);
  const auto wall_start = std::chrono::steady_clock::now();
  const std::clock_t cpu_start = std::clock();
  {
    MCAST_OBS_SPAN("experiment:" + exp.id);
    exp.run(ctx);
  }
  const std::clock_t cpu_end = std::clock();
  const auto wall_end = std::chrono::steady_clock::now();

  run_record& record = out.manifest;
  record.experiment_id = exp.id;
  record.title = exp.title;
  record.claim = exp.claim;
  record.scale = opts.scale;
  record.threads = threads;
  record.use_spt_cache = opts.use_spt_cache;
  record.parameters = params;
  record.git_revision = current_git_revision();
  record.timestamp_utc = utc_timestamp();
  record.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  record.cpu_seconds = static_cast<double>(cpu_end - cpu_start) /
                       static_cast<double>(CLOCKS_PER_SEC);
  record.fits = out.output.fits();
  for (const xy_series& s : out.output.all_series()) {
    record.series_summary.emplace_back(s.label, s.x.size());
  }
  record.metric_groups = exp.metric_groups;
  record.metrics = obs::snapshot();
  return out;
}

}  // namespace mcast::lab
