#include "lab/manifest.hpp"

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <stdexcept>

#include "obs/metrics_json.hpp"

namespace mcast::lab {

namespace {

json::value param_to_json(const param_value& v) {
  switch (kind_of(v)) {
    case param_kind::i64:
      return json::value::number(
          static_cast<double>(std::get<std::int64_t>(v)));
    case param_kind::u64:
      return json::value::number(
          static_cast<double>(std::get<std::uint64_t>(v)));
    case param_kind::real:
      return json::value::number(std::get<double>(v));
    case param_kind::boolean:
      return json::value::boolean(std::get<bool>(v));
    case param_kind::text:
      return json::value::string(std::get<std::string>(v));
  }
  return json::value();
}

bool is_seed_name(const std::string& name) {
  if (name == "seed") return true;
  const std::size_t n = name.size();
  return n > 5 && name.compare(n - 5, 5, "_seed") == 0;
}

}  // namespace

json::value to_json(const run_record& record) {
  json::value doc = json::value::object();
  doc.set("schema", json::value::string(manifest_schema));
  doc.set("experiment", json::value::string(record.experiment_id));
  doc.set("title", json::value::string(record.title));
  doc.set("claim", json::value::string(record.claim));
  doc.set("scale", json::value::number(record.scale));
  doc.set("threads",
          json::value::number(static_cast<double>(record.threads)));
  doc.set("use_spt_cache", json::value::boolean(record.use_spt_cache));

  json::value params = json::value::object();
  json::value seeds = json::value::object();
  for (const auto& [name, v] : record.parameters.entries()) {
    params.set(name, param_to_json(v));
    if (is_seed_name(name)) seeds.set(name, param_to_json(v));
  }
  doc.set("parameters", std::move(params));
  doc.set("seeds", std::move(seeds));

  doc.set("git_revision", json::value::string(record.git_revision));
  doc.set("timestamp_utc", json::value::string(record.timestamp_utc));
  doc.set("wall_seconds", json::value::number(record.wall_seconds));
  doc.set("cpu_seconds", json::value::number(record.cpu_seconds));

  json::value fits = json::value::array();
  for (const fit_entry& f : record.fits) {
    json::value fit = json::value::object();
    fit.set("label", json::value::string(f.label));
    fit.set("text", json::value::string(f.text));
    json::value values = json::value::object();
    for (const auto& [k, v] : f.values) values.set(k, json::value::number(v));
    fit.set("values", std::move(values));
    fits.push(std::move(fit));
  }
  doc.set("fits", std::move(fits));

  json::value series = json::value::array();
  for (const auto& [label, points] : record.series_summary) {
    json::value s = json::value::object();
    s.set("label", json::value::string(label));
    s.set("points", json::value::number(static_cast<double>(points)));
    series.push(std::move(s));
  }
  doc.set("series", std::move(series));

  json::value groups = json::value::array();
  for (const std::string& g : record.metric_groups) {
    groups.push(json::value::string(g));
  }
  doc.set("metric_groups", std::move(groups));
  doc.set("metrics", obs::metrics_to_json(record.metrics));
  return doc;
}

std::string render_manifest(const run_record& record) {
  return json::dump(to_json(record));
}

void write_manifest(const run_record& record, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("manifest: cannot open '" + path +
                             "' for writing");
  }
  out << render_manifest(record);
  if (!out) {
    throw std::runtime_error("manifest: write to '" + path + "' failed");
  }
}

namespace {

void require(const json::value& doc, const std::string& key,
             json::value::kind kind, const char* kind_word,
             std::vector<std::string>& problems) {
  const json::value* v = doc.get(key);
  if (v == nullptr) {
    problems.push_back("missing field '" + key + "'");
  } else if (!v->is(kind)) {
    problems.push_back("field '" + key + "' is not " + kind_word);
  }
}

}  // namespace

std::vector<std::string> validate_manifest(const json::value& doc) {
  std::vector<std::string> problems;
  if (!doc.is(json::value::kind::object)) {
    problems.push_back("manifest is not a JSON object");
    return problems;
  }
  require(doc, "schema", json::value::kind::string, "a string", problems);
  if (const json::value* schema = doc.get("schema");
      schema != nullptr && schema->is(json::value::kind::string) &&
      schema->as_string() != manifest_schema) {
    problems.push_back("unexpected schema '" + schema->as_string() +
                       "' (want " + std::string(manifest_schema) + ")");
  }
  require(doc, "experiment", json::value::kind::string, "a string", problems);
  if (const json::value* id = doc.get("experiment");
      id != nullptr && id->is(json::value::kind::string) &&
      id->as_string().empty()) {
    problems.push_back("field 'experiment' is empty");
  }
  require(doc, "title", json::value::kind::string, "a string", problems);
  require(doc, "claim", json::value::kind::string, "a string", problems);
  require(doc, "scale", json::value::kind::number, "a number", problems);
  require(doc, "threads", json::value::kind::number, "a number", problems);
  if (const json::value* threads = doc.get("threads");
      threads != nullptr && threads->is(json::value::kind::number) &&
      threads->as_number() < 1) {
    problems.push_back("field 'threads' must be >= 1");
  }
  require(doc, "use_spt_cache", json::value::kind::boolean, "a boolean",
          problems);
  require(doc, "parameters", json::value::kind::object, "an object", problems);
  require(doc, "seeds", json::value::kind::object, "an object", problems);
  require(doc, "git_revision", json::value::kind::string, "a string",
          problems);
  require(doc, "timestamp_utc", json::value::kind::string, "a string",
          problems);
  require(doc, "wall_seconds", json::value::kind::number, "a number",
          problems);
  require(doc, "cpu_seconds", json::value::kind::number, "a number", problems);
  require(doc, "fits", json::value::kind::array, "an array", problems);
  if (const json::value* fits = doc.get("fits");
      fits != nullptr && fits->is(json::value::kind::array)) {
    for (std::size_t i = 0; i < fits->items().size(); ++i) {
      const json::value& f = fits->items()[i];
      const std::string where = "fits[" + std::to_string(i) + "]";
      if (!f.is(json::value::kind::object)) {
        problems.push_back(where + " is not an object");
        continue;
      }
      require(f, "label", json::value::kind::string, "a string", problems);
      require(f, "text", json::value::kind::string, "a string", problems);
      require(f, "values", json::value::kind::object, "an object", problems);
    }
  }
  require(doc, "series", json::value::kind::array, "an array", problems);
  if (const json::value* series = doc.get("series");
      series != nullptr && series->is(json::value::kind::array)) {
    for (std::size_t i = 0; i < series->items().size(); ++i) {
      const json::value& s = series->items()[i];
      const std::string where = "series[" + std::to_string(i) + "]";
      if (!s.is(json::value::kind::object)) {
        problems.push_back(where + " is not an object");
        continue;
      }
      require(s, "label", json::value::kind::string, "a string", problems);
      require(s, "points", json::value::kind::number, "a number", problems);
    }
  }
  require(doc, "metric_groups", json::value::kind::array, "an array",
          problems);
  if (const json::value* groups = doc.get("metric_groups");
      groups != nullptr && groups->is(json::value::kind::array)) {
    for (std::size_t i = 0; i < groups->items().size(); ++i) {
      if (!groups->items()[i].is(json::value::kind::string)) {
        problems.push_back("metric_groups[" + std::to_string(i) +
                           "] is not a string");
      }
    }
  }
  require(doc, "metrics", json::value::kind::object, "an object", problems);
  if (const json::value* metrics = doc.get("metrics");
      metrics != nullptr && metrics->is(json::value::kind::object)) {
    require(*metrics, "enabled", json::value::kind::boolean, "a boolean",
            problems);
    require(*metrics, "counters", json::value::kind::object, "an object",
            problems);
    require(*metrics, "gauges", json::value::kind::object, "an object",
            problems);
    require(*metrics, "histograms", json::value::kind::object, "an object",
            problems);
    require(*metrics, "derived", json::value::kind::object, "an object",
            problems);
    if (const json::value* derived = metrics->get("derived");
        derived != nullptr && derived->is(json::value::kind::object)) {
      require(*derived, "spt_cache_hit_rate", json::value::kind::number,
              "a number", problems);
      require(*derived, "scheduler_busy_fraction", json::value::kind::number,
              "a number", problems);
      require(*derived, "traversal_passes", json::value::kind::number,
              "a number", problems);
    }
    if (const json::value* histograms = metrics->get("histograms");
        histograms != nullptr &&
        histograms->is(json::value::kind::object)) {
      for (const auto& [name, hist] : histograms->members()) {
        const std::string where = "metrics.histograms." + name;
        if (!hist.is(json::value::kind::object)) {
          problems.push_back(where + " is not an object");
          continue;
        }
        for (const char* field : {"count", "sum", "mean", "p50", "p95",
                                  "p99"}) {
          require(hist, field, json::value::kind::number, "a number",
                  problems);
        }
      }
    }
  }
  return problems;
}

std::string current_git_revision() {
  if (const char* env = std::getenv("MCAST_GIT_REVISION");
      env != nullptr && env[0] != '\0') {
    return env;
  }
  FILE* pipe = ::popen("git describe --always --dirty 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  std::string out;
  char buf[256];
  while (std::fgets(buf, sizeof buf, pipe) != nullptr) out += buf;
  const int status = ::pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  if (status != 0 || out.empty()) return "unknown";
  return out;
}

std::string utc_timestamp() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

}  // namespace mcast::lab
