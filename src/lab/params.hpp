// Typed experiment parameters with scale-tier defaults and strict parsing.
//
// Every experiment in the registry (lab/registry.hpp) declares its knobs as
// `param_spec`s: a name, a one-line description, a type, and a default per
// effort tier (smoke / default / paper-scale — the MCAST_BENCH_SCALE tiers
// the old per-figure binaries hard-coded through `by_scale`). The engine
// resolves the specs against the active scale and any `--param k=v`
// overrides into a `param_set` the run function reads through typed
// getters.
//
// All parsing here is strict: the whole string must be a value of the
// declared type or std::invalid_argument is thrown with a message naming
// the offender. This replaces the old `mcast::bench::scale()` which piped
// MCAST_BENCH_SCALE through atoi and silently treated garbage as 0.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace mcast::lab {

// --- strict scalar parsers (whole-string; throw std::invalid_argument) ---

/// Decimal signed integer. `what` names the value in error messages.
std::int64_t parse_i64(const std::string& text, const std::string& what);

/// Decimal unsigned integer (no sign allowed).
std::uint64_t parse_u64(const std::string& text, const std::string& what);

/// Finite floating-point number (strtod grammar, whole string).
double parse_real(const std::string& text, const std::string& what);

/// "true" / "false" / "1" / "0".
bool parse_bool(const std::string& text, const std::string& what);

/// Effort scale: a decimal integer, clamped to [0, 8]. Non-numeric input
/// is rejected loudly (the old atoi path mapped it to 0).
int parse_scale(const std::string& text);

/// MCAST_BENCH_SCALE from the environment (1 when unset), strict-parsed.
int scale_from_env();

// --- parameter values and specs ---

enum class param_kind { i64, u64, real, boolean, text };

using param_value =
    std::variant<std::int64_t, std::uint64_t, double, bool, std::string>;

param_kind kind_of(const param_value& v) noexcept;

/// "i64", "u64", "real", "bool", "text".
const char* kind_name(param_kind kind) noexcept;

/// Renders a value so that parse_value(kind_of(v), render(v)) == v.
/// Reals use %.17g, so IEEE doubles round-trip exactly.
std::string render(const param_value& v);

/// Strict-parses `text` as a value of `kind`.
param_value parse_value(param_kind kind, const std::string& text,
                        const std::string& what);

/// One declared knob of an experiment, with a default per effort tier.
struct param_spec {
  std::string name;
  std::string description;
  param_kind kind = param_kind::u64;
  param_value smoke;   ///< scale 0 default
  param_value normal;  ///< scale 1 default
  param_value paper;   ///< scale >= 2 default

  /// Tier selection: scale <= 0 -> smoke, == 1 -> normal, >= 2 -> paper
  /// (the same rule the old bench::by_scale applied).
  const param_value& default_for(int scale) const noexcept;
};

// Spec builders: fixed (same default at every tier) and tiered.
param_spec p_u64(std::string name, std::string description, std::uint64_t fixed);
param_spec p_u64(std::string name, std::string description, std::uint64_t smoke,
                 std::uint64_t normal, std::uint64_t paper);
param_spec p_i64(std::string name, std::string description, std::int64_t fixed);
param_spec p_real(std::string name, std::string description, double fixed);
param_spec p_real(std::string name, std::string description, double smoke,
                  double normal, double paper);
param_spec p_bool(std::string name, std::string description, bool fixed);
param_spec p_text(std::string name, std::string description, std::string fixed);

/// Resolved name -> value map, in declaration order. Typed getters check
/// both presence and kind (a mismatch is a programming error in the
/// experiment and throws std::logic_error).
class param_set {
 public:
  void set(const std::string& name, param_value v);

  bool has(const std::string& name) const noexcept;
  const param_value& at(const std::string& name) const;

  std::uint64_t u64(const std::string& name) const;
  std::int64_t i64(const std::string& name) const;
  double real(const std::string& name) const;
  bool flag(const std::string& name) const;
  const std::string& text(const std::string& name) const;

  const std::vector<std::pair<std::string, param_value>>& entries() const {
    return values_;
  }

 private:
  std::vector<std::pair<std::string, param_value>> values_;
};

/// Resolves `specs` at `scale`, then applies `overrides` ("k=v" pairs
/// already split into name/text). Unknown names and malformed values throw
/// std::invalid_argument.
param_set resolve_params(
    const std::vector<param_spec>& specs, int scale,
    const std::vector<std::pair<std::string, std::string>>& overrides);

}  // namespace mcast::lab
