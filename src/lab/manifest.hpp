// JSON run manifests — the provenance record every mcast_lab run emits.
//
// A manifest captures everything needed to re-run or audit an invocation:
// experiment id, the fully-resolved parameter values (seeds included), the
// MCAST_BENCH_SCALE tier, thread count, git revision, wall/CPU time, and
// the fitted exponents parsed from the run's FIT lines. Manifests are
// written as `BENCH_<id>.json` so CI can collect them next to the
// micro-benchmark's BENCH_micro.json as one perf-trajectory artifact.
//
// `validate_manifest` is the read-back half: `mcast_lab validate <dir>`
// and the ctest smoke pair use it to schema-check what a run produced.
//
// Schema history:
//   mcast-lab-manifest/1 — id/params/seeds/timing/fits/series.
//   mcast-lab-manifest/2 — adds the `metrics` section: the obs registry
//     snapshot scoped to the run (counters, gauges, histogram summaries)
//     plus derived headline rates (cache hit rate, scheduler busy
//     fraction), and the experiment's declared metric_groups.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "lab/json.hpp"
#include "lab/params.hpp"
#include "lab/recorder.hpp"
#include "obs/metrics.hpp"

namespace mcast::lab {

inline constexpr const char* manifest_schema = "mcast-lab-manifest/2";

/// Everything recorded about one experiment run.
struct run_record {
  std::string experiment_id;
  std::string title;
  std::string claim;
  int scale = 0;
  std::size_t threads = 1;
  bool use_spt_cache = true;
  param_set parameters;
  std::string git_revision;
  std::string timestamp_utc;  ///< ISO-8601, e.g. "2026-08-06T12:00:00Z"
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;
  std::vector<fit_entry> fits;
  /// (series label, number of points) for each emitted series.
  std::vector<std::pair<std::string, std::size_t>> series_summary;
  /// Metric groups the experiment declares (experiment::metric_groups).
  std::vector<std::string> metric_groups;
  /// Obs registry snapshot scoped to this run (reset at run start, read
  /// after the run function returns). All-zero when obs is disabled.
  obs::metrics_snapshot metrics;
};

/// Builds the manifest document (ordered keys, deterministic layout).
json::value to_json(const run_record& record);

/// Serialized manifest text (json::dump of to_json).
std::string render_manifest(const run_record& record);

/// Writes the manifest to `path`; throws std::runtime_error on I/O failure.
void write_manifest(const run_record& record, const std::string& path);

/// Schema check for a parsed manifest document. Returns human-readable
/// problems; empty means the manifest is valid.
std::vector<std::string> validate_manifest(const json::value& doc);

/// `git describe --always --dirty` of the working tree, with the
/// MCAST_GIT_REVISION environment variable as an override (useful in CI
/// and tests); "unknown" when git is unavailable.
std::string current_git_revision();

/// Current UTC time formatted ISO-8601.
std::string utc_timestamp();

}  // namespace mcast::lab
