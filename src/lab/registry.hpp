// Experiment registry and run context — the declarative core of mcast_lab.
//
// Every figure/table/extension that used to be its own `bench/*.cpp` binary
// is now an `experiment`: a stable id, a one-line claim, a typed parameter
// set with scale-tier defaults, and a run function. Registration is by
// explicit function call (`register_fig2(registry&)` etc., collected in
// bench/register_all.cpp) rather than static initializers, so linking the
// experiments as a static library cannot silently drop any of them.
//
// The `context` passed to a run function is the experiment's entire world:
// typed parameter access, the resolved scale tier, engine-owned threading
// and SPT-cache policy, structured output (series / FIT lines / tables),
// and `sweep()` for fanning independent points over the parallel scheduler.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/runner.hpp"
#include "lab/params.hpp"
#include "lab/recorder.hpp"
#include "lab/scheduler.hpp"

namespace mcast::lab {

class context;

/// One registered experiment. `run` must be deterministic given the
/// resolved parameters (all randomness seeded from declared params).
struct experiment {
  std::string id;                  ///< stable CLI id, e.g. "fig2"
  std::string title;               ///< one-line summary for `list`
  std::string claim;               ///< "# reproduces:" banner text
  std::vector<param_spec> params;  ///< declared, tiered parameters
  /// Obs metric groups this experiment exercises (e.g. "traversal",
  /// "spt_cache", "scheduler") — documentation surfaced by `describe` and
  /// stamped into the manifest; the registry snapshot itself always
  /// carries every metric.
  std::vector<std::string> metric_groups;
  std::function<void(context&)> run;
};

class registry {
 public:
  /// Registers an experiment; throws std::logic_error on a duplicate or
  /// empty id, or a missing run function.
  void add(experiment e);

  /// Returns the experiment with the given id, or nullptr.
  const experiment* find(const std::string& id) const noexcept;

  /// All experiments in registration order.
  const std::vector<experiment>& all() const noexcept { return experiments_; }

 private:
  std::vector<experiment> experiments_;
};

/// Handed to experiment::run; owns nothing, routes everything.
class context {
 public:
  context(const experiment& exp, const param_set& params, int scale,
          std::size_t threads, bool use_spt_cache, recorder& rec)
      : exp_(exp),
        params_(params),
        scale_(scale),
        threads_(threads),
        use_spt_cache_(use_spt_cache),
        rec_(rec) {}

  const experiment& exp() const noexcept { return exp_; }
  const param_set& params() const noexcept { return params_; }

  // Typed parameter access (throws std::logic_error on undeclared names or
  // kind mismatches — programming errors in the experiment definition).
  std::uint64_t u64(const std::string& name) const { return params_.u64(name); }
  std::int64_t i64(const std::string& name) const { return params_.i64(name); }
  double real(const std::string& name) const { return params_.real(name); }
  bool flag(const std::string& name) const { return params_.flag(name); }
  const std::string& text(const std::string& name) const {
    return params_.text(name);
  }

  /// The resolved scale tier (0 = smoke, 1 = normal, >= 2 = paper).
  int scale() const noexcept { return scale_; }

  /// Worker threads the engine granted this run (>= 1, already resolved).
  std::size_t threads() const noexcept { return threads_; }

  /// Whether Monte-Carlo measurement should reuse cached per-source SPTs.
  bool use_spt_cache() const noexcept { return use_spt_cache_; }

  /// Monte-Carlo parameters with the engine-owned fields (threads, SPT
  /// cache policy) prefilled; the experiment sets sizes and the seed.
  monte_carlo_params monte_carlo() const {
    monte_carlo_params p;
    p.threads = threads_;
    p.use_spt_cache = use_spt_cache_;
    return p;
  }

  // Structured output, in emission order.
  void series(const std::string& label, const std::vector<double>& x,
              const std::vector<double>& y) {
    rec_.series(label, x, y);
  }
  void fit(const std::string& label, const std::string& fit_text) {
    rec_.fit(label, fit_text);
  }
  void table(const table_writer& t) { rec_.table(t); }
  void line(const std::string& raw) { rec_.text(raw); }

  /// Fans `count` independent points over the scheduler with this run's
  /// thread budget, then splices their outputs back in index order — the
  /// result is byte-identical to running the points serially.
  void sweep(std::size_t count, const sweep_fn& fn);

  /// Catalog topology through the process-wide content-keyed cache
  /// (topo/cache.hpp): the largest component of `name` built at `seed`,
  /// scaled to `budget` nodes when budget > 0. Byte-identical to
  /// largest_component(find_network(name).build(seed)) — repeated runs
  /// (and the query service) share the built graph instead of
  /// regenerating it. Safe to call from sweep() workers.
  std::shared_ptr<const graph> topology(const std::string& name,
                                        std::uint64_t seed,
                                        node_id budget = 0) const;

 private:
  const experiment& exp_;
  const param_set& params_;
  int scale_;
  std::size_t threads_;
  bool use_spt_cache_;
  recorder& rec_;
};

}  // namespace mcast::lab
