// Compatibility shim — the JSON document model moved to common/json.hpp
// (namespace mcast::json) so the obs layer and the query service
// (src/service) can share it with the manifest layer. Existing lab code
// keeps using mcast::lab::json::value through this alias.
#pragma once

#include "common/json.hpp"

namespace mcast::lab {
namespace json = ::mcast::json;
}  // namespace mcast::lab
