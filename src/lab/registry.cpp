#include "lab/registry.hpp"

#include <stdexcept>
#include <utility>

#include "topo/cache.hpp"

namespace mcast::lab {

void registry::add(experiment e) {
  if (e.id.empty()) {
    throw std::logic_error("registry: experiment with empty id");
  }
  if (!e.run) {
    throw std::logic_error("registry: experiment '" + e.id +
                           "' has no run function");
  }
  if (find(e.id) != nullptr) {
    throw std::logic_error("registry: duplicate experiment id '" + e.id + "'");
  }
  experiments_.push_back(std::move(e));
}

const experiment* registry::find(const std::string& id) const noexcept {
  for (const experiment& e : experiments_) {
    if (e.id == id) return &e;
  }
  return nullptr;
}

void context::sweep(std::size_t count, const sweep_fn& fn) {
  std::vector<recorder> parts = run_sweep(count, threads_, fn);
  for (recorder& part : parts) rec_.splice(std::move(part));
}

std::shared_ptr<const graph> context::topology(const std::string& name,
                                               std::uint64_t seed,
                                               node_id budget) const {
  return shared_topology_cache().get(name, seed, budget);
}

}  // namespace mcast::lab
