#include "net/chaos.hpp"

#include <cstdio>
#include <stdexcept>

#include "sim/rng.hpp"

namespace mcast::net {
namespace {

// Decision-site salts keep the accept/read/write streams decorrelated
// even at the same (conn, op) coordinates.
constexpr std::uint64_t k_salt_accept = 0xacce97u;
constexpr std::uint64_t k_salt_read = 0x5ead00u;
constexpr std::uint64_t k_salt_write = 0x3417e0u;

/// Uniform in [0,1) as a pure function of the keyed coordinates.
double keyed_uniform(std::uint64_t seed, std::uint64_t salt, std::uint64_t conn,
                     std::uint64_t op, std::uint64_t draw) {
  std::uint64_t state = seed;
  (void)splitmix64(state);  // decouple from the raw seed value
  state ^= splitmix64(state) + salt;
  state ^= conn * 0x9e3779b97f4a7c15ULL;
  (void)splitmix64(state);
  state ^= op * 0xbf58476d1ce4e5b9ULL + draw;
  const std::uint64_t bits = splitmix64(state);
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

/// Truncate/stall split point: a reproducible fraction in [0.25, 0.75] so
/// the cut always lands strictly inside a (non-trivial) response line.
double keyed_fraction(std::uint64_t seed, std::uint64_t conn,
                      std::uint64_t op) {
  return 0.25 + 0.5 * keyed_uniform(seed, k_salt_write, conn, op, 1);
}

double parse_probability(const std::string& text, const std::string& key) {
  std::size_t used = 0;
  double v = 0.0;
  try {
    v = std::stod(text, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != text.size() || !(v >= 0.0 && v <= 1.0)) {
    throw std::invalid_argument("chaos spec: '" + key +
                                "' needs a probability in [0,1], got '" +
                                text + "'");
  }
  return v;
}

int parse_ms(const std::string& text, const std::string& key) {
  if (text.empty()) {
    throw std::invalid_argument("chaos spec: '" + key + "' has an empty :ms");
  }
  std::uint64_t v = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      throw std::invalid_argument("chaos spec: '" + key +
                                  "' :ms must be an integer, got '" + text +
                                  "'");
    }
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
    if (v > 60000) {
      throw std::invalid_argument("chaos spec: '" + key +
                                  "' :ms must be <= 60000");
    }
  }
  return static_cast<int>(v);
}

std::uint64_t parse_seed(const std::string& text) {
  if (text.empty()) throw std::invalid_argument("chaos spec: empty seed");
  std::uint64_t v = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      throw std::invalid_argument("chaos spec: seed must be an integer, got '" +
                                  text + "'");
    }
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) {
      throw std::invalid_argument("chaos spec: seed overflows");
    }
    v = v * 10 + digit;
  }
  return v;
}

}  // namespace

const char* fault_kind_name(fault_kind kind) noexcept {
  switch (kind) {
    case fault_kind::none: return "none";
    case fault_kind::drop: return "drop";
    case fault_kind::reset: return "reset";
    case fault_kind::delay: return "delay";
    case fault_kind::truncate: return "truncate";
    case fault_kind::stall: return "stall";
  }
  return "none";
}

chaos_spec chaos_spec::default_spec() {
  chaos_spec spec;
  spec.seed = 7;
  spec.drop = 0.02;
  spec.reset = 0.01;
  spec.delay = 0.04;
  spec.delay_ms = 2;
  spec.truncate = 0.02;
  spec.stall = 0.02;
  spec.stall_ms = 5;
  return spec;
}

chaos_spec chaos_spec::parse(const std::string& text) {
  if (text == "default") return default_spec();
  chaos_spec spec;  // all probabilities 0: faults must be asked for
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string token = text.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    pos = comma == std::string::npos ? text.size() + 1 : comma + 1;
    if (token.empty()) {
      if (comma == std::string::npos && text.empty()) break;
      throw std::invalid_argument("chaos spec: empty token");
    }
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("chaos spec: expected key=value, got '" +
                                  token + "'");
    }
    const std::string key = token.substr(0, eq);
    std::string value = token.substr(eq + 1);
    std::string ms;
    bool has_ms = false;
    const std::size_t colon = value.find(':');
    if (colon != std::string::npos) {
      has_ms = true;
      ms = value.substr(colon + 1);
      value = value.substr(0, colon);
    }
    if (key == "seed") {
      spec.seed = parse_seed(value);
    } else if (key == "drop") {
      spec.drop = parse_probability(value, key);
    } else if (key == "reset") {
      spec.reset = parse_probability(value, key);
    } else if (key == "delay") {
      spec.delay = parse_probability(value, key);
      if (has_ms) spec.delay_ms = parse_ms(ms, key);
    } else if (key == "truncate") {
      spec.truncate = parse_probability(value, key);
    } else if (key == "stall") {
      spec.stall = parse_probability(value, key);
      if (has_ms) spec.stall_ms = parse_ms(ms, key);
    } else {
      throw std::invalid_argument("chaos spec: unknown key '" + key + "'");
    }
    if (has_ms && key != "delay" && key != "stall") {
      throw std::invalid_argument("chaos spec: '" + key +
                                  "' does not take a :ms suffix");
    }
  }
  if (spec.drop + spec.reset > 1.0) {
    throw std::invalid_argument("chaos spec: drop + reset must be <= 1");
  }
  if (spec.delay + spec.truncate + spec.stall > 1.0) {
    throw std::invalid_argument(
        "chaos spec: delay + truncate + stall must be <= 1");
  }
  return spec;
}

std::string chaos_spec::describe() const {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "seed=%llu,drop=%g,reset=%g,delay=%g:%d,truncate=%g,"
                "stall=%g:%d",
                static_cast<unsigned long long>(seed), drop, reset, delay,
                delay_ms, truncate, stall, stall_ms);
  return buf;
}

fault_decision chaos_engine::accept_fault(std::uint64_t conn) const noexcept {
  const double u = keyed_uniform(spec_.seed, k_salt_accept, conn, 0, 0);
  fault_decision d;
  if (u < spec_.drop) {
    d.kind = fault_kind::drop;
  } else if (u < spec_.drop + spec_.reset) {
    d.kind = fault_kind::reset;
  }
  return d;
}

fault_decision chaos_engine::read_fault(std::uint64_t conn,
                                        std::uint64_t op) const noexcept {
  const double u = keyed_uniform(spec_.seed, k_salt_read, conn, op, 0);
  fault_decision d;
  if (u < spec_.delay) {
    d.kind = fault_kind::delay;
    d.sleep_ms = spec_.delay_ms;
  }
  return d;
}

fault_decision chaos_engine::write_fault(std::uint64_t conn,
                                         std::uint64_t op) const noexcept {
  const double u = keyed_uniform(spec_.seed, k_salt_write, conn, op, 0);
  fault_decision d;
  if (u < spec_.truncate) {
    d.kind = fault_kind::truncate;
    d.cut_fraction = keyed_fraction(spec_.seed, conn, op);
  } else if (u < spec_.truncate + spec_.stall) {
    d.kind = fault_kind::stall;
    d.sleep_ms = spec_.stall_ms;
    d.cut_fraction = keyed_fraction(spec_.seed, conn, op);
  } else if (u < spec_.truncate + spec_.stall + spec_.delay) {
    d.kind = fault_kind::delay;
    d.sleep_ms = spec_.delay_ms;
  }
  return d;
}

std::vector<std::string> chaos_engine::schedule(std::uint64_t conns,
                                                std::uint64_t ops) const {
  std::vector<std::string> trace;
  char buf[96];
  for (std::uint64_t c = 0; c < conns; ++c) {
    const fault_decision accept = accept_fault(c);
    if (accept.kind != fault_kind::none) {
      std::snprintf(buf, sizeof buf, "conn=%llu accept %s",
                    static_cast<unsigned long long>(c),
                    fault_kind_name(accept.kind));
      trace.push_back(buf);
      continue;  // the connection never serves an op
    }
    for (std::uint64_t o = 0; o < ops; ++o) {
      const fault_decision rd = read_fault(c, o);
      if (rd.kind != fault_kind::none) {
        std::snprintf(buf, sizeof buf, "conn=%llu op=%llu read %s %dms",
                      static_cast<unsigned long long>(c),
                      static_cast<unsigned long long>(o),
                      fault_kind_name(rd.kind), rd.sleep_ms);
        trace.push_back(buf);
      }
      const fault_decision wr = write_fault(c, o);
      if (wr.kind != fault_kind::none) {
        std::snprintf(buf, sizeof buf, "conn=%llu op=%llu write %s cut=%.6f",
                      static_cast<unsigned long long>(c),
                      static_cast<unsigned long long>(o),
                      fault_kind_name(wr.kind), wr.cut_fraction);
        trace.push_back(buf);
        if (wr.kind == fault_kind::truncate) break;  // connection dies here
      }
    }
  }
  return trace;
}

}  // namespace mcast::net
