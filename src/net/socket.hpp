// Minimal POSIX TCP plumbing for the loopback query service.
//
// Everything the server and its clients need and nothing more: an RAII fd,
// loopback listen/accept/connect, a write-everything helper, and a
// buffered line reader with a hard cap on line length (the first line of
// defense against oversized frames — see service/protocol.hpp for the
// typed error the server answers with).
//
// IPv4 loopback only, by design: mcast_serve is an in-host query daemon,
// not an internet-facing endpoint; binding 127.0.0.1 keeps the attack
// surface at "processes on this machine".
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

namespace mcast::net {

/// Move-only owning file descriptor; closes on destruction.
class unique_fd {
 public:
  unique_fd() = default;
  explicit unique_fd(int fd) noexcept : fd_(fd) {}
  ~unique_fd() { reset(); }
  unique_fd(unique_fd&& other) noexcept : fd_(other.release()) {}
  unique_fd& operator=(unique_fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  unique_fd(const unique_fd&) = delete;
  unique_fd& operator=(const unique_fd&) = delete;

  int get() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset() noexcept;

 private:
  int fd_ = -1;
};

struct listen_socket {
  unique_fd fd;
  std::uint16_t port = 0;  ///< actual bound port (resolves a requested 0)
};

/// Binds and listens on 127.0.0.1:`port` (0 = ephemeral; the chosen port
/// is reported back). Throws std::runtime_error on failure.
listen_socket listen_loopback(std::uint16_t port, int backlog = 128);

/// Blocking connect to 127.0.0.1:`port`. Throws std::runtime_error.
unique_fd connect_loopback(std::uint16_t port);

/// Writes all of `data`, retrying on partial writes and EINTR. SIGPIPE is
/// suppressed (MSG_NOSIGNAL); a peer hang-up surfaces as the return value
/// false, never a signal or an exception — response writes race client
/// disconnects by design.
bool send_all(int fd, std::string_view data) noexcept;

/// send_all with a wall-clock bound: gives up (returns false) when the
/// peer's receive window stays closed for `deadline_ms` — the guard
/// against a connected-but-not-reading client pinning a worker forever.
/// deadline_ms < 0 behaves exactly like send_all.
bool send_all_within(int fd, std::string_view data, int deadline_ms) noexcept;

/// Arms SO_LINGER(0) so the next close() sends RST instead of FIN —
/// the chaos shim's "connection reset" fault.
void arm_reset_on_close(int fd) noexcept;

/// Waits up to `timeout_ms` for `fd` to become readable. Returns false on
/// timeout; EINTR counts as a timeout (callers re-poll on their next tick).
bool wait_readable(int fd, int timeout_ms) noexcept;

/// Buffered newline-delimited frame reader with a byte cap per line.
class line_reader {
 public:
  enum class status {
    line,      ///< `out` holds one complete line (terminator stripped)
    closed,    ///< orderly EOF (any unterminated trailing bytes dropped)
    timeout,   ///< no complete line within the call's time budget
    overlong,  ///< frame exceeded max_line bytes before its newline
    error,     ///< read error; the connection is unusable
    deadline,  ///< a partial line outlived line_deadline_ms (slow loris)
  };

  line_reader(int fd, std::size_t max_line) : fd_(fd), max_line_(max_line) {}

  /// Returns the next frame. `timeout_ms` bounds the TOTAL time spent in
  /// the call when no complete line is buffered — bytes arriving do not
  /// extend it, so a trickling peer cannot pin the caller (-1 waits
  /// forever). A '\r' before the '\n' is stripped, so both LF and CRLF
  /// framing work.
  ///
  /// `line_deadline_ms` >= 0 bounds the *age of the current partial
  /// line*: once the first byte of a line has arrived, its terminating
  /// newline must follow within that many milliseconds or read_line
  /// returns status::deadline — trickling one byte per poll tick cannot
  /// hold the reader open (the slow-loris guard). The clock starts when
  /// a line's first byte lands and resets on every completed line;
  /// -1 (the default) disables the bound.
  status read_line(std::string& out, int timeout_ms,
                   int line_deadline_ms = -1);

  /// True when bytes of an incomplete line are buffered.
  bool has_partial() const noexcept { return !buffer_.empty(); }

 private:
  int fd_;
  std::size_t max_line_;
  std::string buffer_;
  std::chrono::steady_clock::time_point partial_since_{};
};

}  // namespace mcast::net
