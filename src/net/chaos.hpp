// Deterministic fault injection for the loopback query service.
//
// A chaos_engine decides, for every (connection index, operation index)
// pair a server touches, whether to inject a fault — and the decision is
// a *pure function* of (spec.seed, connection, operation). No clocks, no
// global RNG state, no thread identity: two runs with the same spec see
// the same faults at the same points, so chaos tests are golden-testable
// and a failure found under chaos replays byte-identically.
//
// Fault taxonomy (who sees what):
//
//   accept-scoped   drop      close before the first byte is written
//                   reset     SO_LINGER(0) close — the peer sees RST
//   op-scoped       delay     sleep `delay_ms` before serving the op
//   write-scoped    stall     write a response prefix, sleep `stall_ms`,
//                             write the rest (slow but byte-correct)
//                   truncate  write a response prefix, then close the
//                             connection mid-line
//
// Every injected fault preserves the service failure contract
// (docs/resilience.md): a surviving connection never carries a malformed
// line — truncation and reset kill the connection, stall and delay only
// add latency. The shim lives at the socket layer (net/server.cpp calls
// the hooks), so the protocol and handler code above it is exercised
// unmodified.
//
// The spec grammar (parse/describe round-trip):
//
//   seed=7,drop=0.02,reset=0.01,delay=0.05:2,truncate=0.02,stall=0.02:5
//
// where each value is a per-decision probability in [0,1] and the `:ms`
// suffix on delay/stall sets the injected latency in milliseconds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mcast::net {

enum class fault_kind : std::uint8_t {
  none,      ///< serve normally
  drop,      ///< accept: close before the first byte
  reset,     ///< accept: RST close (SO_LINGER 0)
  delay,     ///< op: sleep delay_ms before serving
  truncate,  ///< write: emit a prefix of the response, then close
  stall,     ///< write: prefix, sleep stall_ms, remainder
};

const char* fault_kind_name(fault_kind kind) noexcept;

/// Parsed `--chaos=` specification. Probabilities are per decision point:
/// drop/reset are evaluated once per connection at accept; delay once per
/// request; truncate/stall once per response write.
struct chaos_spec {
  std::uint64_t seed = 7;
  double drop = 0.0;
  double reset = 0.0;
  double delay = 0.0;
  int delay_ms = 2;
  double truncate = 0.0;
  double stall = 0.0;
  int stall_ms = 5;

  /// Parses the grammar above; "default" yields default_spec(). Throws
  /// std::invalid_argument naming the offending token.
  static chaos_spec parse(const std::string& text);

  /// The standard mild mix used by `svc_load --chaos=default` and CI.
  static chaos_spec default_spec();

  /// Canonical one-line rendering (re-parses to an identical spec).
  std::string describe() const;
};

/// One resolved decision: what to inject and with what parameters.
struct fault_decision {
  fault_kind kind = fault_kind::none;
  int sleep_ms = 0;       ///< for delay/stall
  double cut_fraction = 0.0;  ///< for truncate/stall: prefix split point
};

/// The deterministic schedule. Const and shareable across threads: every
/// method is a pure function of (spec.seed, conn, op).
class chaos_engine {
 public:
  explicit chaos_engine(chaos_spec spec) : spec_(spec) {}

  const chaos_spec& spec() const noexcept { return spec_; }

  /// Connection-scoped fault, evaluated once at accept.
  fault_decision accept_fault(std::uint64_t conn) const noexcept;

  /// Request-scoped fault (read side): none or delay.
  fault_decision read_fault(std::uint64_t conn, std::uint64_t op) const noexcept;

  /// Response-scoped fault (write side): none, delay, stall, or truncate.
  fault_decision write_fault(std::uint64_t conn, std::uint64_t op) const noexcept;

  /// The full injected-fault trace over `conns` x `ops` decision points,
  /// one line per non-none decision, ordered by (conn, op, site). Two
  /// engines with equal specs produce byte-identical traces — the
  /// property tests/test_chaos.cpp pins across 8 threads.
  std::vector<std::string> schedule(std::uint64_t conns,
                                    std::uint64_t ops) const;

 private:
  chaos_spec spec_;
};

}  // namespace mcast::net
