#include "net/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

namespace mcast::net {
namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

}  // namespace

void unique_fd::reset() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

listen_socket listen_loopback(std::uint16_t port, int backlog) {
  unique_fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket");
  const int one = 1;
  // SO_REUSEADDR so restarting the daemon does not trip over TIME_WAIT.
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback_addr(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw_errno("bind 127.0.0.1");
  }
  if (::listen(fd.get(), backlog) != 0) throw_errno("listen");
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    throw_errno("getsockname");
  }
  listen_socket out;
  out.fd = std::move(fd);
  out.port = ntohs(bound.sin_port);
  return out;
}

unique_fd connect_loopback(std::uint16_t port) {
  unique_fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket");
  sockaddr_in addr = loopback_addr(port);
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) throw_errno("connect 127.0.0.1");
  const int one = 1;
  // Request/response over short lines: latency matters, Nagle does not help.
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool send_all(int fd, std::string_view data) noexcept {
  const char* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    const ssize_t n = ::send(fd, p, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return true;
}

bool send_all_within(int fd, std::string_view data, int deadline_ms) noexcept {
  if (deadline_ms < 0) return send_all(fd, data);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(deadline_ms);
  const char* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    const ssize_t n = ::send(fd, p, left, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      p += n;
      left -= static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno != EINTR && errno != EAGAIN && errno != EWOULDBLOCK) {
      return false;
    }
    // The send buffer is full (or we were interrupted): wait for the peer
    // to make room, but never past the deadline.
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    const int wait_ms = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count() +
        1);
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    const int rc = ::poll(&pfd, 1, wait_ms);
    if (rc < 0 && errno != EINTR) return false;
    if (rc > 0 && (pfd.revents & (POLLERR | POLLNVAL)) != 0) return false;
  }
  return true;
}

void arm_reset_on_close(int fd) noexcept {
  linger lin{};
  lin.l_onoff = 1;
  lin.l_linger = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lin, sizeof(lin));
}

bool wait_readable(int fd, int timeout_ms) noexcept {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLIN;
  const int rc = ::poll(&pfd, 1, timeout_ms);
  return rc > 0 && (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
}

line_reader::status line_reader::read_line(std::string& out, int timeout_ms,
                                           int line_deadline_ms) {
  const auto begun = std::chrono::steady_clock::now();
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::size_t end = nl;
      if (end > 0 && buffer_[end - 1] == '\r') --end;
      out.assign(buffer_, 0, end);
      buffer_.erase(0, nl + 1);
      // Pipelined leftover bytes start the next line's age clock now.
      if (!buffer_.empty()) partial_since_ = std::chrono::steady_clock::now();
      return status::line;
    }
    if (buffer_.size() > max_line_) return status::overlong;
    // `timeout_ms` is a TOTAL budget for this call, not an idle gap: a
    // peer trickling bytes cannot keep us in here past it, so the caller
    // regains control (and can notice draining / retry deadlines) on time.
    long long wait_ms = -1;
    if (timeout_ms >= 0) {
      const auto spent = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - begun)
                             .count();
      wait_ms = std::max<long long>(timeout_ms - spent, 0);
    }
    if (line_deadline_ms >= 0 && !buffer_.empty()) {
      // A line is in flight: its newline must arrive before the deadline,
      // and no single poll may sleep past it (a byte-per-tick trickle
      // would otherwise reset the wait forever).
      const auto age = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - partial_since_)
                           .count();
      const long long remaining = line_deadline_ms - age;
      if (remaining <= 0) return status::deadline;
      wait_ms = wait_ms < 0 ? remaining : std::min(wait_ms, remaining);
    }
    if (!wait_readable(fd_, static_cast<int>(wait_ms))) {
      if (line_deadline_ms >= 0 && !buffer_.empty()) {
        const auto age = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - partial_since_)
                             .count();
        if (age >= line_deadline_ms) return status::deadline;
      }
      return status::timeout;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) return status::closed;
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return status::error;
    }
    if (buffer_.empty()) partial_since_ = std::chrono::steady_clock::now();
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace mcast::net
