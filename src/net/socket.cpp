#include "net/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace mcast::net {
namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

}  // namespace

void unique_fd::reset() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

listen_socket listen_loopback(std::uint16_t port, int backlog) {
  unique_fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket");
  const int one = 1;
  // SO_REUSEADDR so restarting the daemon does not trip over TIME_WAIT.
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback_addr(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw_errno("bind 127.0.0.1");
  }
  if (::listen(fd.get(), backlog) != 0) throw_errno("listen");
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    throw_errno("getsockname");
  }
  listen_socket out;
  out.fd = std::move(fd);
  out.port = ntohs(bound.sin_port);
  return out;
}

unique_fd connect_loopback(std::uint16_t port) {
  unique_fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket");
  sockaddr_in addr = loopback_addr(port);
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) throw_errno("connect 127.0.0.1");
  const int one = 1;
  // Request/response over short lines: latency matters, Nagle does not help.
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool send_all(int fd, std::string_view data) noexcept {
  const char* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    const ssize_t n = ::send(fd, p, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return true;
}

bool wait_readable(int fd, int timeout_ms) noexcept {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLIN;
  const int rc = ::poll(&pfd, 1, timeout_ms);
  return rc > 0 && (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
}

line_reader::status line_reader::read_line(std::string& out, int timeout_ms) {
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::size_t end = nl;
      if (end > 0 && buffer_[end - 1] == '\r') --end;
      out.assign(buffer_, 0, end);
      buffer_.erase(0, nl + 1);
      return status::line;
    }
    if (buffer_.size() > max_line_) return status::overlong;
    if (!wait_readable(fd_, timeout_ms)) return status::timeout;
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) return status::closed;
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return status::error;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace mcast::net
