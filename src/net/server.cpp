#include "net/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <stdexcept>
#include <thread>
#include <utility>

#include "obs/access_log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mcast::net {
namespace {

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void chaos_sleep(int ms) {
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace

line_server::line_server(server_config config, handler_fn handler)
    : config_(std::move(config)), handler_(std::move(handler)) {
  if (config_.workers == 0) {
    throw std::invalid_argument("line_server: workers must be >= 1");
  }
  if (config_.queue_capacity == 0) {
    throw std::invalid_argument("line_server: queue_capacity must be >= 1");
  }
  auto listener = listen_loopback(config_.port);
  listen_fd_ = std::move(listener.fd);
  port_ = listener.port;

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    throw std::runtime_error("line_server: pipe failed");
  }
  wake_read_ = unique_fd(pipe_fds[0]);
  wake_write_ = unique_fd(pipe_fds[1]);

  started_ = std::chrono::steady_clock::now();
  acceptor_ = std::thread([this] { accept_loop(); });
  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

line_server::~line_server() {
  shutdown();
  wait();
}

server_stats line_server::stats() const {
  server_stats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.deadline_closes = deadline_closes_.load(std::memory_order_relaxed);
  s.drain_forced = drain_forced_.load(std::memory_order_relaxed);
  s.chaos_injected = chaos_injected_.load(std::memory_order_relaxed);
  s.inflight = inflight_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.queue_depth = queue_.size();
  }
  s.queue_capacity = config_.queue_capacity;
  s.uptime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_)
          .count();
  return s;
}

void line_server::shutdown() {
  if (draining_.exchange(true)) return;
  if (config_.drain_deadline_ms >= 0) {
    drain_deadline_ns_.store(
        now_ns() + static_cast<std::int64_t>(config_.drain_deadline_ms) *
                       1000000,
        std::memory_order_release);
  }
  // One byte down the self-pipe pops the acceptor out of poll().
  if (wake_write_.valid()) {
    const char b = 'x';
    [[maybe_unused]] ssize_t n = ::write(wake_write_.get(), &b, 1);
  }
  queue_cv_.notify_all();
}

bool line_server::drain_expired() const {
  const std::int64_t deadline =
      drain_deadline_ns_.load(std::memory_order_acquire);
  return deadline != 0 && now_ns() >= deadline;
}

void line_server::wait() {
  std::lock_guard<std::mutex> lock(join_mu_);
  if (joined_) return;
  shutdown();
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  joined_ = true;
}

void line_server::accept_loop() {
  for (;;) {
    pollfd pfds[2] = {};
    pfds[0].fd = listen_fd_.get();
    pfds[0].events = POLLIN;
    pfds[1].fd = wake_read_.get();
    pfds[1].events = POLLIN;
    const int rc = ::poll(pfds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (draining_.load(std::memory_order_acquire)) break;
    if ((pfds[0].revents & POLLIN) == 0) continue;

    unique_fd conn(::accept(listen_fd_.get(), nullptr, nullptr));
    if (!conn.valid()) continue;

    bool enqueued = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (queue_.size() < config_.queue_capacity) {
        pending_conn pc;
        pc.fd = std::move(conn);
        // Accept order indexes the chaos schedule; assigned only to
        // admitted connections so rejections do not shift the schedule.
        pc.index = accepted_.load(std::memory_order_relaxed);
        pc.enqueued = std::chrono::steady_clock::now();
        queue_.push_back(std::move(pc));
        obs::gauge_max(obs::gauge::svc_queue_depth_peak, queue_.size());
        enqueued = true;
      }
    }
    if (enqueued) {
      accepted_.fetch_add(1, std::memory_order_relaxed);
      obs::add(obs::counter::svc_connections_accepted);
      queue_cv_.notify_one();
    } else {
      // Admission control: the backlog is at capacity, so this connection
      // is answered with a typed overload line and closed, not queued.
      rejected_.fetch_add(1, std::memory_order_relaxed);
      obs::add(obs::counter::svc_connections_rejected);
      send_all(conn.get(), config_.overload_response + "\n");
    }
  }
  // Refuse further connects at the kernel level while workers drain.
  listen_fd_.reset();
}

void line_server::worker_loop() {
  for (;;) {
    pending_conn pc;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] {
        return !queue_.empty() || draining_.load(std::memory_order_acquire);
      });
      if (queue_.empty()) {
        if (draining_.load(std::memory_order_acquire)) return;
        continue;
      }
      pc = std::move(queue_.front());
      queue_.pop_front();
    }
    if (drain_expired()) {
      // Past the drain bound: queued connections are cut, not served.
      drain_forced_.fetch_add(1, std::memory_order_relaxed);
      obs::add(obs::counter::svc_drain_forced);
      continue;  // pc.fd closes here
    }
    obs::record(obs::histogram::svc_queue_wait_ns, elapsed_ns(pc.enqueued));
    const std::size_t now_inflight =
        inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
    obs::gauge_max(obs::gauge::svc_inflight_peak, now_inflight);
    serve_connection(std::move(pc.fd), pc.index);
    inflight_.fetch_sub(1, std::memory_order_relaxed);
  }
}

bool line_server::write_response(int fd, const std::string& line,
                                 std::uint64_t conn_index,
                                 std::uint64_t op_index) {
  const chaos_engine* chaos = config_.chaos.get();
  if (chaos != nullptr) {
    const fault_decision fault = chaos->write_fault(conn_index, op_index);
    if (fault.kind != fault_kind::none) {
      chaos_injected_.fetch_add(1, std::memory_order_relaxed);
      if (obs::access_entry* entry = obs::access_current()) {
        entry->chaos = true;
      }
    }
    switch (fault.kind) {
      case fault_kind::truncate: {
        // A prefix of the line, then close: the client must never parse
        // the partial frame as a response (its connection dies with it).
        obs::add(obs::counter::svc_chaos_truncates);
        const std::size_t cut = std::max<std::size_t>(
            1, static_cast<std::size_t>(fault.cut_fraction *
                                        static_cast<double>(line.size())));
        send_all_within(fd, std::string_view(line).substr(0, cut),
                        config_.write_deadline_ms);
        return false;
      }
      case fault_kind::stall: {
        // Slow but byte-correct: prefix, pause, remainder.
        obs::add(obs::counter::svc_chaos_stalls);
        const std::size_t cut = std::max<std::size_t>(
            1, static_cast<std::size_t>(fault.cut_fraction *
                                        static_cast<double>(line.size())));
        if (!send_all_within(fd, std::string_view(line).substr(0, cut),
                             config_.write_deadline_ms)) {
          return false;
        }
        chaos_sleep(fault.sleep_ms);
        return send_all_within(fd, std::string_view(line).substr(cut),
                               config_.write_deadline_ms);
      }
      case fault_kind::delay:
        obs::add(obs::counter::svc_chaos_delays);
        chaos_sleep(fault.sleep_ms);
        break;
      default:
        break;
    }
  }
  if (!send_all_within(fd, line, config_.write_deadline_ms)) {
    // Either the peer vanished or it stopped reading past the deadline;
    // both end the connection. Only the deadline case is a server-side
    // robustness event worth counting.
    deadline_closes_.fetch_add(1, std::memory_order_relaxed);
    obs::add(obs::counter::svc_deadline_exceeded);
    return false;
  }
  return true;
}

void line_server::serve_connection(unique_fd conn, std::uint64_t conn_index) {
  const chaos_engine* chaos = config_.chaos.get();
  if (chaos != nullptr) {
    const fault_decision fault = chaos->accept_fault(conn_index);
    if (fault.kind == fault_kind::drop) {
      chaos_injected_.fetch_add(1, std::memory_order_relaxed);
      obs::add(obs::counter::svc_chaos_drops);
      return;  // close before the first byte: the typed "silent drop"
    }
    if (fault.kind == fault_kind::reset) {
      chaos_injected_.fetch_add(1, std::memory_order_relaxed);
      obs::add(obs::counter::svc_chaos_resets);
      arm_reset_on_close(conn.get());
      return;  // close() now sends RST
    }
  }

  line_reader reader(conn.get(), config_.max_line_bytes);
  std::string line;
  std::uint64_t op_index = 0;
  for (;;) {
    if (draining_.load(std::memory_order_acquire) && drain_expired()) {
      drain_forced_.fetch_add(1, std::memory_order_relaxed);
      obs::add(obs::counter::svc_drain_forced);
      return;
    }
    const line_reader::status st =
        reader.read_line(line, config_.idle_poll_ms, config_.line_deadline_ms);
    switch (st) {
      case line_reader::status::timeout:
        // Idle tick. A draining server says goodbye to idle connections
        // at once; one mid-line keeps its grace until the drain deadline,
        // then is cut and counted (a trickler cannot outlive the bound —
        // read_line's budget guarantees we get back here each tick).
        if (draining_.load(std::memory_order_acquire)) {
          if (!reader.has_partial()) return;
          if (drain_expired()) {
            drain_forced_.fetch_add(1, std::memory_order_relaxed);
            obs::add(obs::counter::svc_drain_forced);
            return;
          }
        }
        continue;
      case line_reader::status::closed:
      case line_reader::status::error:
        return;
      case line_reader::status::overlong:
        obs::add(obs::counter::svc_lines_oversized);
        send_all_within(conn.get(), config_.overlong_response + "\n",
                        config_.write_deadline_ms);
        return;
      case line_reader::status::deadline:
        // Slow loris: the line started but never finished. Typed goodbye.
        deadline_closes_.fetch_add(1, std::memory_order_relaxed);
        obs::add(obs::counter::svc_deadline_exceeded);
        send_all_within(conn.get(), config_.deadline_response + "\n",
                        config_.write_deadline_ms);
        return;
      case line_reader::status::line:
        break;
    }

    bool read_chaos = false;
    if (chaos != nullptr) {
      const fault_decision fault = chaos->read_fault(conn_index, op_index);
      if (fault.kind == fault_kind::delay) {
        read_chaos = true;
        chaos_injected_.fetch_add(1, std::memory_order_relaxed);
        obs::add(obs::counter::svc_chaos_delays);
        chaos_sleep(fault.sleep_ms);
      }
    }

    requests_.fetch_add(1, std::memory_order_relaxed);
    obs::add(obs::counter::svc_requests);

    // Request identity: a deterministic id minted from (seed, accept
    // index, op index) keys this request's spans and access-log record.
    // The scope lives for handler + write so every span lands on it; the
    // service layers annotate the entry through obs::access_current().
    const std::uint64_t trace_id =
        obs::trace_request_id(config_.trace_seed, conn_index, op_index);
    obs::trace_scope trace_guard(obs::trace_context{trace_id, 0});
    obs::access_begin(trace_id);
    if (obs::access_entry* entry = obs::access_current()) {
      entry->bytes_in = line.size();
      entry->chaos = read_chaos;
    }

    const auto begun = std::chrono::steady_clock::now();
    std::string response;
    {
      obs::span request_span("request");
      try {
        response = handler_(line);
      } catch (...) {
        obs::add(obs::counter::svc_responses_error);
        response = config_.internal_error_response;
      }
    }
    const std::uint64_t handler_ns = elapsed_ns(begun);
    obs::record(obs::histogram::svc_request_ns, handler_ns);

    const auto write_begun = std::chrono::steady_clock::now();
    const bool written =
        write_response(conn.get(), response + "\n", conn_index, op_index);
    const std::uint64_t write_ns = elapsed_ns(write_begun);
    obs::record(obs::histogram::svc_write_ns, write_ns);
    if (obs::access_entry* entry = obs::access_current()) {
      if (entry->compute_ns == 0) entry->compute_ns = handler_ns;
      entry->write_ns = write_ns;
      entry->bytes_out = response.size() + 1;
      entry->total_ns = elapsed_ns(begun);
    }
    obs::access_finish();
    if (!written) return;
    ++op_index;
  }
}

}  // namespace mcast::net
