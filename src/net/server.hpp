// line_server — a bounded-queue, thread-per-worker TCP line server.
//
// Concurrency model (deliberately boring):
//
//   acceptor thread ──accept──▶ bounded connection queue ──pop──▶ K workers
//
// One acceptor accepts loopback connections and pushes them onto a
// bounded FIFO. When the queue is full the server does NOT buffer
// unboundedly and does NOT silently drop: it writes one `overload_response`
// line to the newcomer, closes it, and counts the rejection
// (svc.connections_rejected). That is the whole admission-control story —
// load beyond `queue_capacity + workers` is refused with a typed error
// the client can parse and retry on.
//
// Each worker owns one connection at a time and serves it to completion:
// read a line, call the handler, write the response line, repeat until
// the peer closes. The handler is user code; if it throws, the worker
// answers with `internal_error_response` and keeps the connection (the
// failure of one request must not take down the session). Frames longer
// than `max_line_bytes` get `overlong_response` and the connection is
// closed — the reader cannot resynchronize mid-frame.
//
// shutdown() is graceful but bounded: the acceptor closes the listen
// socket (new connects are refused by the kernel), workers finish the
// request in hand, drain the queue, and exit; wait() joins everyone.
// Workers poll reads with `idle_poll_ms` so a draining server parts with
// idle keep-alive connections within one poll tick, and any connection
// still alive `drain_deadline_ms` after shutdown() is force-closed and
// counted — one stalled client cannot hold the process hostage.
//
// Robustness guards (docs/resilience.md): a partial request line must
// complete within `line_deadline_ms` (slow-loris), a response write must
// complete within `write_deadline_ms` (stalled reader), and both closes
// are typed (`deadline_response`) and counted in svc.deadline_exceeded.
// An optional chaos_engine (net/chaos.hpp) injects deterministic
// drops/resets/delays/stalls/truncations for resilience testing.
//
// All activity is mirrored into the obs registry under svc.* so the
// `metrics` endpoint and BENCH_service.json see accepted/rejected counts,
// queue-depth and inflight peaks, and request/queue-wait latencies.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/chaos.hpp"
#include "net/socket.hpp"

namespace mcast::net {

struct server_config {
  std::uint16_t port = 0;              ///< 0 = pick an ephemeral port
  std::size_t workers = 4;             ///< serving threads
  std::size_t queue_capacity = 64;     ///< pending-connection bound
  std::size_t max_line_bytes = 1 << 20;
  int idle_poll_ms = 100;              ///< worker read-poll tick
  /// Slow-loris guard: once a request line has started arriving, its
  /// newline must follow within this bound or the connection is answered
  /// with `deadline_response` and closed. < 0 disables.
  int line_deadline_ms = 30000;
  /// Slow-reader guard: a response write that cannot complete within this
  /// bound (peer not reading) abandons the connection. < 0 disables.
  int write_deadline_ms = 30000;
  /// Drain bound: connections that have not finished this many ms after
  /// shutdown() are force-closed (counted in stats().drain_forced).
  /// < 0 waits for clients indefinitely (the pre-deadline behavior).
  int drain_deadline_ms = 5000;
  /// Lines written verbatim (newline appended) for the server-side
  /// failure modes. The service layer sets these to typed JSON errors.
  std::string overload_response = "overloaded";
  std::string overlong_response = "overlong";
  std::string internal_error_response = "internal_error";
  std::string deadline_response = "deadline_exceeded";
  /// Deterministic fault injection (net/chaos.hpp); null = faults off.
  /// Shared and const: one schedule serves every worker thread.
  std::shared_ptr<const chaos_engine> chaos;
  /// Seed for the per-request trace ids the server mints (see
  /// obs::trace_request_id): a fixed seed reproduces every request's id
  /// because ids derive only from (seed, accept index, op index).
  std::uint64_t trace_seed = 0;
};

struct server_stats {
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t requests = 0;
  std::uint64_t deadline_closes = 0;  ///< slow-loris / stalled-reader closes
  std::uint64_t drain_forced = 0;     ///< connections cut at the drain bound
  std::uint64_t chaos_injected = 0;   ///< faults the chaos shim injected
  std::size_t queue_depth = 0;   ///< connections waiting right now
  std::size_t queue_capacity = 0;  ///< the configured pending-connection bound
  std::size_t inflight = 0;      ///< connections being served right now
  double uptime_seconds = 0.0;
};

class line_server {
 public:
  using handler_fn = std::function<std::string(const std::string&)>;

  /// Binds and starts the acceptor + worker threads immediately.
  /// Throws std::runtime_error if the port cannot be bound.
  line_server(server_config config, handler_fn handler);
  ~line_server();

  line_server(const line_server&) = delete;
  line_server& operator=(const line_server&) = delete;

  std::uint16_t port() const noexcept { return port_; }
  server_stats stats() const;

  /// Stop accepting, serve what is queued and in flight, then let the
  /// threads exit. Idempotent; returns without waiting (see wait()).
  void shutdown();

  /// Blocks until every thread has exited. Implies shutdown() happened.
  void wait();

 private:
  struct pending_conn {
    unique_fd fd;
    std::uint64_t index = 0;  ///< accept order; keys the chaos schedule
    std::chrono::steady_clock::time_point enqueued;
  };

  void accept_loop();
  void worker_loop();
  void serve_connection(unique_fd conn, std::uint64_t conn_index);
  /// Writes one response line, applying write-side chaos and the write
  /// deadline. Returns false when the connection must close.
  bool write_response(int fd, const std::string& line, std::uint64_t conn_index,
                      std::uint64_t op_index);
  /// True once the drain deadline has passed (always false before
  /// shutdown() or with drain_deadline_ms < 0).
  bool drain_expired() const;

  server_config config_;
  handler_fn handler_;
  std::uint16_t port_ = 0;
  unique_fd listen_fd_;
  unique_fd wake_read_, wake_write_;  // self-pipe: unblocks the acceptor poll

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;
  std::deque<pending_conn> queue_;
  std::atomic<bool> draining_{false};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> deadline_closes_{0};
  std::atomic<std::uint64_t> drain_forced_{0};
  std::atomic<std::uint64_t> chaos_injected_{0};
  std::atomic<std::size_t> inflight_{0};
  std::chrono::steady_clock::time_point started_;
  std::atomic<std::int64_t> drain_deadline_ns_{0};  ///< 0 = not draining

  std::thread acceptor_;
  std::vector<std::thread> workers_;
  std::mutex join_mu_;
  bool joined_ = false;  // guarded by join_mu_
};

}  // namespace mcast::net
