// Minimal JSON document model — parse, build, dump.
//
// Shared by the run-manifest layer (lab/manifest.hpp emits provenance JSON,
// `mcast_lab validate` reads it back), the obs snapshot serializer
// (obs/metrics_json.hpp) and the query service's line protocol
// (service/protocol.hpp), with no third-party dependency. This is a
// deliberately small implementation: UTF-8 pass-through strings, doubles
// for all numbers, ordered object keys (so dumps are deterministic and
// diffable — the service's byte-identical-response guarantee leans on
// this).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mcast::json {

class value {
 public:
  enum class kind { null, boolean, number, string, array, object };

  value() = default;
  static value boolean(bool b);
  static value number(double n);
  static value string(std::string s);
  static value array();
  static value object();

  kind type() const noexcept { return kind_; }
  bool is(kind k) const noexcept { return kind_ == k; }

  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<value>& items() const;                  // array
  const std::vector<std::pair<std::string, value>>& members() const;  // object

  /// Object member lookup; nullptr when absent or not an object.
  const value* get(const std::string& key) const noexcept;

  /// Appends to an array (throws std::logic_error on other kinds).
  void push(value v);

  /// Sets an object member, replacing an existing key.
  void set(const std::string& key, value v);

 private:
  kind kind_ = kind::null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<value> items_;
  std::vector<std::pair<std::string, value>> members_;
};

/// Parses a complete JSON document (trailing garbage rejected). Throws
/// std::invalid_argument with an offset-tagged message on malformed input.
value parse(const std::string& text);

/// Serializes with 2-space indentation and ordered keys; numbers use %.17g
/// (integral values print without an exponent or trailing ".0").
std::string dump(const value& v);

/// Single-line serialization (no whitespace, no trailing newline) — the
/// framing the query service's one-line-per-response protocol requires.
std::string dump_compact(const value& v);

}  // namespace mcast::json
