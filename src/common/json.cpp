#include "common/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace mcast::json {

value value::boolean(bool b) {
  value v;
  v.kind_ = kind::boolean;
  v.bool_ = b;
  return v;
}

value value::number(double n) {
  value v;
  v.kind_ = kind::number;
  v.number_ = n;
  return v;
}

value value::string(std::string s) {
  value v;
  v.kind_ = kind::string;
  v.string_ = std::move(s);
  return v;
}

value value::array() {
  value v;
  v.kind_ = kind::array;
  return v;
}

value value::object() {
  value v;
  v.kind_ = kind::object;
  return v;
}

namespace {

[[noreturn]] void wrong_kind(const char* want) {
  throw std::logic_error(std::string("json::value: not a ") + want);
}

}  // namespace

bool value::as_bool() const {
  if (kind_ != kind::boolean) wrong_kind("boolean");
  return bool_;
}

double value::as_number() const {
  if (kind_ != kind::number) wrong_kind("number");
  return number_;
}

const std::string& value::as_string() const {
  if (kind_ != kind::string) wrong_kind("string");
  return string_;
}

const std::vector<value>& value::items() const {
  if (kind_ != kind::array) wrong_kind("array");
  return items_;
}

const std::vector<std::pair<std::string, value>>& value::members() const {
  if (kind_ != kind::object) wrong_kind("object");
  return members_;
}

const value* value::get(const std::string& key) const noexcept {
  if (kind_ != kind::object) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void value::push(value v) {
  if (kind_ != kind::array) wrong_kind("array");
  items_.push_back(std::move(v));
}

void value::set(const std::string& key, value v) {
  if (kind_ != kind::object) wrong_kind("object");
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  members_.emplace_back(key, std::move(v));
}

// --- parser ---

namespace {

class parser {
 public:
  explicit parser(const std::string& text) : text_(text) {}

  value document() {
    skip_ws();
    value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::invalid_argument("json: " + why + " at offset " +
                                std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() const {
    if (pos_ >= text_.size()) {
      throw std::invalid_argument("json: unexpected end of input");
    }
    return text_[pos_];
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c)) fail(std::string("expected '") + c + "'");
  }

  bool literal(const char* word) {
    std::size_t n = 0;
    while (word[n] != '\0') ++n;
    if (text_.compare(pos_, n, word) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  value parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return value::string(parse_string());
    if (literal("true")) return value::boolean(true);
    if (literal("false")) return value::boolean(false);
    if (literal("null")) return value();
    return parse_number();
  }

  value parse_object() {
    expect('{');
    value obj = value::object();
    skip_ws();
    if (consume('}')) return obj;
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(key, parse_value());
      skip_ws();
      if (consume('}')) return obj;
      expect(',');
    }
  }

  value parse_array() {
    expect('[');
    value arr = value::array();
    skip_ws();
    if (consume(']')) return arr;
    while (true) {
      arr.push(parse_value());
      skip_ws();
      if (consume(']')) return arr;
      expect(',');
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // Minimal UTF-8 encoding (manifests only escape control chars,
          // but accept the full BMP for robustness).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (errno == ERANGE || end != token.c_str() + token.size() ||
        !std::isfinite(v)) {
      pos_ = start;
      fail("malformed number '" + token + "'");
    }
    return value::number(v);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_number(double n, std::string& out) {
  char buf[40];
  if (n == std::floor(n) && std::abs(n) < 1e15) {
    std::snprintf(buf, sizeof buf, "%.0f", n);
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", n);
  }
  out += buf;
}

void dump_value(const value& v, int depth, std::string& out) {
  const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
  const std::string pad_in(static_cast<std::size_t>(depth + 1) * 2, ' ');
  switch (v.type()) {
    case value::kind::null: out += "null"; return;
    case value::kind::boolean: out += v.as_bool() ? "true" : "false"; return;
    case value::kind::number: dump_number(v.as_number(), out); return;
    case value::kind::string: dump_string(v.as_string(), out); return;
    case value::kind::array: {
      if (v.items().empty()) {
        out += "[]";
        return;
      }
      out += "[\n";
      for (std::size_t i = 0; i < v.items().size(); ++i) {
        out += pad_in;
        dump_value(v.items()[i], depth + 1, out);
        if (i + 1 < v.items().size()) out += ",";
        out += "\n";
      }
      out += pad + "]";
      return;
    }
    case value::kind::object: {
      if (v.members().empty()) {
        out += "{}";
        return;
      }
      out += "{\n";
      for (std::size_t i = 0; i < v.members().size(); ++i) {
        out += pad_in;
        dump_string(v.members()[i].first, out);
        out += ": ";
        dump_value(v.members()[i].second, depth + 1, out);
        if (i + 1 < v.members().size()) out += ",";
        out += "\n";
      }
      out += pad + "}";
      return;
    }
  }
}

void dump_value_compact(const value& v, std::string& out) {
  switch (v.type()) {
    case value::kind::null: out += "null"; return;
    case value::kind::boolean: out += v.as_bool() ? "true" : "false"; return;
    case value::kind::number: dump_number(v.as_number(), out); return;
    case value::kind::string: dump_string(v.as_string(), out); return;
    case value::kind::array: {
      out += '[';
      for (std::size_t i = 0; i < v.items().size(); ++i) {
        if (i > 0) out += ',';
        dump_value_compact(v.items()[i], out);
      }
      out += ']';
      return;
    }
    case value::kind::object: {
      out += '{';
      for (std::size_t i = 0; i < v.members().size(); ++i) {
        if (i > 0) out += ',';
        dump_string(v.members()[i].first, out);
        out += ':';
        dump_value_compact(v.members()[i].second, out);
      }
      out += '}';
      return;
    }
  }
}

}  // namespace

value parse(const std::string& text) { return parser(text).document(); }

std::string dump(const value& v) {
  std::string out;
  dump_value(v, 0, out);
  out += "\n";
  return out;
}

std::string dump_compact(const value& v) {
  std::string out;
  dump_value_compact(v, out);
  return out;
}

}  // namespace mcast::json
