// Lightweight contract checking used across the mcast libraries.
//
// Public API boundaries throw std::invalid_argument / std::out_of_range so
// misuse is diagnosable from tests and bindings; internal invariants use
// MCAST_ASSERT which compiles to a cheap check that aborts with location
// info (kept on in release builds — all hot loops are branch-predictable).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace mcast {

/// Throws std::invalid_argument when a caller-supplied precondition fails.
/// `what` should name the violated requirement, e.g. "k must be >= 2".
inline void expects(bool condition, const char* what) {
  if (!condition) throw std::invalid_argument(std::string("mcast: ") + what);
}

/// Throws std::out_of_range for index-style precondition failures.
inline void expects_in_range(bool condition, const char* what) {
  if (!condition) throw std::out_of_range(std::string("mcast: ") + what);
}

}  // namespace mcast

/// Internal invariant check. Not for validating user input.
/// stderr is flushed before aborting: when output is redirected to a file
/// (fully buffered), the location of the failed invariant must not die in
/// the buffer.
#define MCAST_ASSERT(cond)                                                 \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "mcast internal invariant failed: %s (%s:%d)\n", \
                   #cond, __FILE__, __LINE__);                             \
      std::fflush(stderr);                                                 \
      std::abort();                                                        \
    }                                                                      \
  } while (false)
