#include "fault/failure_model.hpp"

#include <algorithm>

#include "common/contract.hpp"
#include "sim/rng.hpp"

namespace mcast {

failure_set random_link_failures(const graph& g, double p, std::uint64_t seed) {
  expects(p >= 0.0 && p <= 1.0,
          "random_link_failures: probability must be in [0, 1]");
  failure_set out;
  rng gen(seed);
  // edges() enumerates each link once with a < b in lexicographic order, so
  // the draw sequence — and therefore the scenario — is a pure function of
  // (graph, seed).
  for (const edge& e : g.edges()) {
    if (gen.chance(p)) out.links.push_back(e);
  }
  return out;
}

failure_set targeted_hub_failures(const graph& g, std::size_t top_f) {
  expects(top_f <= g.node_count(),
          "targeted_hub_failures: top_f exceeds node count");
  std::vector<node_id> order(g.node_count());
  for (node_id v = 0; v < g.node_count(); ++v) order[v] = v;
  // Highest degree first; equal degrees fall back to the lower id so the
  // attack is deterministic on degree-regular regions.
  std::stable_sort(order.begin(), order.end(), [&](node_id a, node_id b) {
    return g.degree(a) != g.degree(b) ? g.degree(a) > g.degree(b) : a < b;
  });
  failure_set out;
  out.nodes.assign(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(top_f));
  std::sort(out.nodes.begin(), out.nodes.end());
  return out;
}

std::vector<link_event> make_failure_trace(const graph& g,
                                           const failure_trace_params& params,
                                           std::uint64_t seed) {
  expects(params.link_failure_rate > 0.0 && params.mean_repair_time > 0.0,
          "make_failure_trace: rates must be positive");
  expects(params.horizon > 0.0, "make_failure_trace: horizon must be positive");

  std::vector<link_event> out;
  rng root(seed);
  std::uint64_t link_index = 0;
  for (const edge& e : g.edges()) {
    // One decorrelated stream per link: the trace does not depend on how
    // many events earlier links produced.
    rng gen = root.fork(link_index++);
    double t = gen.exponential(params.link_failure_rate);
    bool up = true;
    while (t < params.horizon) {
      out.push_back({t, e, up});
      up = !up;
      t += gen.exponential(up ? params.link_failure_rate
                              : 1.0 / params.mean_repair_time);
    }
  }
  std::sort(out.begin(), out.end(), [](const link_event& x, const link_event& y) {
    if (x.time != y.time) return x.time < y.time;
    if (x.link.a != y.link.a) return x.link.a < y.link.a;
    if (x.link.b != y.link.b) return x.link.b < y.link.b;
    return x.fails && !y.fails;  // failure before recovery on exact ties
  });
  return out;
}

}  // namespace mcast
