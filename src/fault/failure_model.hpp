// Failure models — deterministic, seeded injectors (extension).
//
// The paper measures L(m) on pristine topologies; the provisioning story it
// motivates only holds up if the m^0.8 rule survives the failures a real
// network experiences. This module produces concrete failure scenarios from
// a graph, all bit-for-bit reproducible from an explicit seed:
//
//  * random_link_failures    — every link down independently with prob p,
//                              the classic "random breakdown" model;
//  * targeted_hub_failures   — the f highest-degree nodes down, the
//                              attack model under which power-law graphs
//                              are famously fragile;
//  * make_failure_trace      — a time-ordered link failure/recovery event
//                              sequence (per-link alternating renewal
//                              process) for the session-level simulator.
//
// Scenarios are consumed through fault/degraded.hpp, which masks the
// failed elements without rebuilding the CSR graph.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace mcast {

/// A static failure scenario: which links and nodes are down.
/// Both lists are sorted (links lexicographically with a < b per edge,
/// nodes ascending) and duplicate-free, so scenarios compare and diff
/// cheaply.
struct failure_set {
  std::vector<edge> links;     ///< failed links, each with a < b
  std::vector<node_id> nodes;  ///< failed nodes

  bool empty() const noexcept { return links.empty() && nodes.empty(); }
};

/// Fails every link of `g` independently with probability `p`.
/// Deterministic given `seed`. Requires 0 <= p <= 1.
failure_set random_link_failures(const graph& g, double p, std::uint64_t seed);

/// Fails the `top_f` highest-degree nodes of `g` (ties broken toward the
/// lower node id — deterministic). Requires top_f <= node_count.
failure_set targeted_hub_failures(const graph& g, std::size_t top_f);

/// One link state transition in a scheduled failure trace.
struct link_event {
  double time = 0.0;  ///< absolute simulation time, >= 0
  edge link;          ///< affected link, a < b
  bool fails = true;  ///< true = link goes down, false = link comes back

  friend bool operator==(const link_event&, const link_event&) = default;
};

/// Parameters of the alternating-renewal failure trace: each link cycles
/// up -> down -> up ... with exponential holding times.
struct failure_trace_params {
  double link_failure_rate = 0.001;  ///< per-link up -> down rate, > 0
  double mean_repair_time = 10.0;    ///< mean down time, > 0
  double horizon = 1000.0;           ///< events generated in [0, horizon), > 0
};

/// Generates the failure/recovery trace for every link of `g` over
/// [0, horizon), sorted by (time, link). Each link's first event is a
/// failure and its events strictly alternate fail/recover. Deterministic
/// given `seed` (each link draws from its own derived stream, so the trace
/// is independent of iteration order).
std::vector<link_event> make_failure_trace(const graph& g,
                                           const failure_trace_params& params,
                                           std::uint64_t seed);

}  // namespace mcast
