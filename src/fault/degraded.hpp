// Degraded graph views — failure masking without rebuilding the CSR graph.
//
// A `degraded_view` overlays per-half-edge and per-node "failed" flags on
// an immutable graph, so injecting or clearing a failure scenario is O(1)
// per element and never touches the shared topology. Traversals that honor
// the mask (BFS, Dijkstra) live here too; their results plug into the same
// source_tree / dynamic_delivery_tree machinery used on pristine graphs,
// which is how the repair layer (multicast/repair.hpp) and the session
// simulator route around failures.
//
// Semantics: a link is usable iff neither endpoint node has failed and the
// link itself has not failed. BFS/Dijkstra from a failed source report
// every node (including the source) unreachable — a dead router forwards
// nothing.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/failure_model.hpp"
#include "graph/bfs.hpp"
#include "graph/dijkstra.hpp"
#include "graph/graph.hpp"

namespace mcast {

class degraded_view {
 public:
  /// A fully-healthy view of `g`. The graph must outlive the view.
  explicit degraded_view(const graph& g);

  /// The underlying (pristine) topology.
  const graph& base() const noexcept { return *g_; }

  /// Marks the undirected link {a,b} failed / restored. Requires the link
  /// to exist. Returns true when the call changed the link's state (a
  /// second fail_link on a down link is a no-op returning false).
  bool fail_link(node_id a, node_id b);
  bool restore_link(node_id a, node_id b);

  /// Marks node `v` failed / restored (its incident links become unusable
  /// while it is down, without changing their own failed state). Returns
  /// true when the call changed the node's state.
  bool fail_node(node_id v);
  bool restore_node(node_id v);

  /// Applies a whole scenario (all links, then all nodes).
  void apply(const failure_set& scenario);

  /// Restores every link and node.
  void clear();

  /// True when node `v` has not failed. Throws std::out_of_range on a bad id.
  bool node_alive(node_id v) const;

  /// True when link {a,b} itself has not failed (ignores endpoint nodes).
  /// Requires the link to exist.
  bool link_alive(node_id a, node_id b) const;

  /// True when {a,b} can carry traffic: link alive and both endpoints alive.
  bool usable(node_id a, node_id b) const;

  /// Hot-path accessor: failed flag of a half-edge slot
  /// (graph::adjacency_base(v) + i for the i-th neighbor of v).
  bool link_failed_slot(std::size_t slot) const { return link_failed_[slot] != 0; }

  /// Number of failed undirected links / failed nodes.
  std::size_t failed_link_count() const noexcept { return failed_links_; }
  std::size_t failed_node_count() const noexcept { return failed_nodes_; }

  /// True when nothing has failed.
  bool pristine() const noexcept { return failed_links_ == 0 && failed_nodes_ == 0; }

  /// Monotone counter bumped by every state-changing call — a cheap
  /// staleness check for cached routing state (trees remember the version
  /// they were computed at).
  std::uint64_t version() const noexcept { return version_; }

 private:
  /// Half-edge slot of a -> b; throws std::invalid_argument when absent.
  std::size_t slot_of(node_id a, node_id b) const;

  const graph* g_;
  std::vector<char> link_failed_;  // per half-edge, size 2*edge_count()
  std::vector<char> node_failed_;  // per node
  std::size_t failed_links_ = 0;
  std::size_t failed_nodes_ = 0;
  std::uint64_t version_ = 0;
};

/// BFS honoring the mask; same conventions as bfs_from(graph, source)
/// (lowest-id parent rule), and identical results on a pristine view.
/// From a failed source every node is unreachable.
bfs_tree bfs_from(const degraded_view& view, node_id source);

/// Distance field only (skips parent bookkeeping).
std::vector<hop_count> bfs_distances(const degraded_view& view, node_id source);

/// Dijkstra honoring the mask. `weights` must belong to view.base().
weighted_tree dijkstra_from(const degraded_view& view,
                            const edge_weights& weights, node_id source);

/// Workspace-accepting overloads (graph/workspace.hpp): bit-identical
/// output to the one-shot functions above, but reusing the workspace
/// scratch and `out`'s capacity. Each returns `out`.
bfs_tree& bfs_from(const degraded_view& view, node_id source,
                   traversal_workspace& ws, bfs_tree& out);
weighted_tree& dijkstra_from(const degraded_view& view,
                             const edge_weights& weights, node_id source,
                             traversal_workspace& ws, weighted_tree& out);

}  // namespace mcast
