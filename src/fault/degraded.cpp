#include "fault/degraded.hpp"

#include <algorithm>

#include "common/contract.hpp"
#include "graph/workspace.hpp"

namespace mcast {

// Drives the shared traversal cores in graph/workspace.hpp with this
// view's failure mask (friend of traversal_workspace).
class degraded_traversals {
 public:
  static void bfs(traversal_workspace& ws, const degraded_view& view,
                  node_id source) {
    const graph& g = view.base();
    expects_in_range(source < g.node_count(), "bfs_from: source out of range");
    ws.bfs_pass(g, source, view.node_alive(source),
                [&view](std::size_t slot, node_id w) {
                  return !view.link_failed_slot(slot) && view.node_alive(w);
                });
  }

  static void dijkstra(traversal_workspace& ws, const degraded_view& view,
                       const edge_weights& weights, node_id source) {
    const graph& g = view.base();
    expects_in_range(source < g.node_count(),
                     "dijkstra_from: source out of range");
    expects(&weights.topology() == &g,
            "dijkstra_from: weights belong to a different graph");
    ws.dijkstra_pass(g, weights, source, view.node_alive(source),
                     [&view](std::size_t slot, node_id w) {
                       return !view.link_failed_slot(slot) &&
                              view.node_alive(w);
                     });
  }

  static void export_bfs(const traversal_workspace& ws, node_id source,
                         bfs_tree& out) {
    ws.export_bfs(source, out);
  }
  static void export_dijkstra(const traversal_workspace& ws, node_id source,
                              weighted_tree& out) {
    ws.export_dijkstra(source, out);
  }
};

degraded_view::degraded_view(const graph& g)
    : g_(&g),
      link_failed_(g.edge_count() * 2, 0),
      node_failed_(g.node_count(), 0) {}

std::size_t degraded_view::slot_of(node_id a, node_id b) const {
  expects_in_range(a < g_->node_count() && b < g_->node_count(),
                   "degraded_view: node id out of range");
  const auto adj = g_->neighbors(a);
  const auto it = std::lower_bound(adj.begin(), adj.end(), b);
  expects(it != adj.end() && *it == b, "degraded_view: link does not exist");
  return g_->adjacency_base(a) + static_cast<std::size_t>(it - adj.begin());
}

bool degraded_view::fail_link(node_id a, node_id b) {
  const std::size_t ab = slot_of(a, b);
  if (link_failed_[ab]) return false;
  link_failed_[ab] = 1;
  link_failed_[slot_of(b, a)] = 1;
  ++failed_links_;
  ++version_;
  return true;
}

bool degraded_view::restore_link(node_id a, node_id b) {
  const std::size_t ab = slot_of(a, b);
  if (!link_failed_[ab]) return false;
  link_failed_[ab] = 0;
  link_failed_[slot_of(b, a)] = 0;
  --failed_links_;
  ++version_;
  return true;
}

bool degraded_view::fail_node(node_id v) {
  expects_in_range(v < g_->node_count(),
                   "degraded_view::fail_node: node id out of range");
  if (node_failed_[v]) return false;
  node_failed_[v] = 1;
  ++failed_nodes_;
  ++version_;
  return true;
}

bool degraded_view::restore_node(node_id v) {
  expects_in_range(v < g_->node_count(),
                   "degraded_view::restore_node: node id out of range");
  if (!node_failed_[v]) return false;
  node_failed_[v] = 0;
  --failed_nodes_;
  ++version_;
  return true;
}

void degraded_view::apply(const failure_set& scenario) {
  for (const edge& e : scenario.links) fail_link(e.a, e.b);
  for (node_id v : scenario.nodes) fail_node(v);
}

void degraded_view::clear() {
  if (pristine()) return;
  std::fill(link_failed_.begin(), link_failed_.end(), 0);
  std::fill(node_failed_.begin(), node_failed_.end(), 0);
  failed_links_ = 0;
  failed_nodes_ = 0;
  ++version_;
}

bool degraded_view::node_alive(node_id v) const {
  expects_in_range(v < g_->node_count(),
                   "degraded_view::node_alive: node id out of range");
  return node_failed_[v] == 0;
}

bool degraded_view::link_alive(node_id a, node_id b) const {
  return link_failed_[slot_of(a, b)] == 0;
}

bool degraded_view::usable(node_id a, node_id b) const {
  return node_failed_[a] == 0 && node_failed_[b] == 0 && link_alive(a, b);
}

bfs_tree bfs_from(const degraded_view& view, node_id source) {
  traversal_workspace ws;
  bfs_tree t;
  bfs_from(view, source, ws, t);
  return t;
}

std::vector<hop_count> bfs_distances(const degraded_view& view, node_id source) {
  return bfs_from(view, source).dist;
}

weighted_tree dijkstra_from(const degraded_view& view,
                            const edge_weights& weights, node_id source) {
  traversal_workspace ws;
  weighted_tree t;
  dijkstra_from(view, weights, source, ws, t);
  return t;
}

bfs_tree& bfs_from(const degraded_view& view, node_id source,
                   traversal_workspace& ws, bfs_tree& out) {
  degraded_traversals::bfs(ws, view, source);
  degraded_traversals::export_bfs(ws, source, out);
  return out;
}

weighted_tree& dijkstra_from(const degraded_view& view,
                             const edge_weights& weights, node_id source,
                             traversal_workspace& ws, weighted_tree& out) {
  degraded_traversals::dijkstra(ws, view, weights, source);
  degraded_traversals::export_dijkstra(ws, source, out);
  return out;
}

}  // namespace mcast
