#include "fault/degraded.hpp"

#include <algorithm>
#include <queue>
#include <utility>

#include "common/contract.hpp"

namespace mcast {

degraded_view::degraded_view(const graph& g)
    : g_(&g),
      link_failed_(g.edge_count() * 2, 0),
      node_failed_(g.node_count(), 0) {}

std::size_t degraded_view::slot_of(node_id a, node_id b) const {
  expects_in_range(a < g_->node_count() && b < g_->node_count(),
                   "degraded_view: node id out of range");
  const auto adj = g_->neighbors(a);
  const auto it = std::lower_bound(adj.begin(), adj.end(), b);
  expects(it != adj.end() && *it == b, "degraded_view: link does not exist");
  return g_->adjacency_base(a) + static_cast<std::size_t>(it - adj.begin());
}

bool degraded_view::fail_link(node_id a, node_id b) {
  const std::size_t ab = slot_of(a, b);
  if (link_failed_[ab]) return false;
  link_failed_[ab] = 1;
  link_failed_[slot_of(b, a)] = 1;
  ++failed_links_;
  ++version_;
  return true;
}

bool degraded_view::restore_link(node_id a, node_id b) {
  const std::size_t ab = slot_of(a, b);
  if (!link_failed_[ab]) return false;
  link_failed_[ab] = 0;
  link_failed_[slot_of(b, a)] = 0;
  --failed_links_;
  ++version_;
  return true;
}

bool degraded_view::fail_node(node_id v) {
  expects_in_range(v < g_->node_count(),
                   "degraded_view::fail_node: node id out of range");
  if (node_failed_[v]) return false;
  node_failed_[v] = 1;
  ++failed_nodes_;
  ++version_;
  return true;
}

bool degraded_view::restore_node(node_id v) {
  expects_in_range(v < g_->node_count(),
                   "degraded_view::restore_node: node id out of range");
  if (!node_failed_[v]) return false;
  node_failed_[v] = 0;
  --failed_nodes_;
  ++version_;
  return true;
}

void degraded_view::apply(const failure_set& scenario) {
  for (const edge& e : scenario.links) fail_link(e.a, e.b);
  for (node_id v : scenario.nodes) fail_node(v);
}

void degraded_view::clear() {
  if (pristine()) return;
  std::fill(link_failed_.begin(), link_failed_.end(), 0);
  std::fill(node_failed_.begin(), node_failed_.end(), 0);
  failed_links_ = 0;
  failed_nodes_ = 0;
  ++version_;
}

bool degraded_view::node_alive(node_id v) const {
  expects_in_range(v < g_->node_count(),
                   "degraded_view::node_alive: node id out of range");
  return node_failed_[v] == 0;
}

bool degraded_view::link_alive(node_id a, node_id b) const {
  return link_failed_[slot_of(a, b)] == 0;
}

bool degraded_view::usable(node_id a, node_id b) const {
  return node_failed_[a] == 0 && node_failed_[b] == 0 && link_alive(a, b);
}

bfs_tree bfs_from(const degraded_view& view, node_id source) {
  const graph& g = view.base();
  expects_in_range(source < g.node_count(), "bfs_from: source out of range");
  bfs_tree t;
  t.source = source;
  t.dist.assign(g.node_count(), unreachable);
  t.parent.assign(g.node_count(), invalid_node);
  if (!view.node_alive(source)) return t;  // dead routers forward nothing

  std::vector<node_id> queue;
  queue.reserve(g.node_count());
  queue.push_back(source);
  t.dist[source] = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const node_id v = queue[head];
    const hop_count dv = t.dist[v];
    const auto adj = g.neighbors(v);
    const std::size_t base = g.adjacency_base(v);
    for (std::size_t i = 0; i < adj.size(); ++i) {
      const node_id w = adj[i];
      if (view.link_failed_slot(base + i) || !view.node_alive(w)) continue;
      if (t.dist[w] == unreachable) {
        t.dist[w] = dv + 1;
        t.parent[w] = v;  // sorted neighbors => lowest-id parent rule
        queue.push_back(w);
      }
    }
  }
  return t;
}

std::vector<hop_count> bfs_distances(const degraded_view& view, node_id source) {
  return bfs_from(view, source).dist;
}

weighted_tree dijkstra_from(const degraded_view& view,
                            const edge_weights& weights, node_id source) {
  const graph& g = view.base();
  expects_in_range(source < g.node_count(), "dijkstra_from: source out of range");
  expects(&weights.topology() == &g,
          "dijkstra_from: weights belong to a different graph");

  weighted_tree t;
  t.source = source;
  t.dist.assign(g.node_count(), std::numeric_limits<double>::infinity());
  t.parent.assign(g.node_count(), invalid_node);
  if (!view.node_alive(source)) return t;

  using entry = std::pair<double, node_id>;  // (distance, node)
  std::priority_queue<entry, std::vector<entry>, std::greater<>> frontier;
  t.dist[source] = 0.0;
  frontier.push({0.0, source});
  std::vector<char> settled(g.node_count(), 0);

  while (!frontier.empty()) {
    const auto [d, v] = frontier.top();
    frontier.pop();
    if (settled[v]) continue;
    settled[v] = 1;
    const auto adj = g.neighbors(v);
    const std::size_t base = g.adjacency_base(v);
    for (std::size_t i = 0; i < adj.size(); ++i) {
      const node_id w = adj[i];
      if (view.link_failed_slot(base + i) || !view.node_alive(w)) continue;
      const double candidate = d + weights.at_slot(base + i);
      if (candidate < t.dist[w]) {
        t.dist[w] = candidate;
        t.parent[w] = v;
        frontier.push({candidate, w});
      }
    }
  }
  return t;
}

}  // namespace mcast
