#include "core/pricing.hpp"

#include <cmath>

#include "common/contract.hpp"

namespace mcast {

namespace {

void check_policy(const pricing_policy& p) {
  expects(p.unit_price_per_link > 0.0,
          "pricing: unit_price_per_link must be positive");
  expects(p.mean_unicast_path > 0.0,
          "pricing: mean_unicast_path must be positive");
}

}  // namespace

double multicast_price(const pricing_policy& policy, double m) {
  check_policy(policy);
  return policy.unit_price_per_link * policy.law.tree_size(m, policy.mean_unicast_path);
}

double unicast_price(const pricing_policy& policy, double m) {
  check_policy(policy);
  expects(m > 0.0, "unicast_price: m must be positive");
  return policy.unit_price_per_link * policy.mean_unicast_path * m;
}

double multicast_price_per_receiver(const pricing_policy& policy, double m) {
  return multicast_price(policy, m) / m;
}

double multicast_savings_fraction(const pricing_policy& policy, double m) {
  return 1.0 - multicast_price(policy, m) / unicast_price(policy, m);
}

double group_size_for_savings(const pricing_policy& policy, double target) {
  check_policy(policy);
  expects(target >= 0.0 && target < 1.0,
          "group_size_for_savings: target must be in [0,1)");
  const double eps = policy.law.exponent();
  const double amp = policy.law.amplitude();
  expects(eps < 1.0, "group_size_for_savings: requires exponent < 1");
  // savings(m) = 1 - A·m^(ε-1) >= target  <=>  m >= (A/(1-target))^(1/(1-ε)).
  const double m = std::pow(amp / (1.0 - target), 1.0 / (1.0 - eps));
  return std::max(1.0, m);
}

double flat_rate_capacity(const pricing_policy& policy, double flat_price) {
  check_policy(policy);
  expects(flat_price > 0.0, "flat_rate_capacity: flat_price must be positive");
  const double eps = policy.law.exponent();
  expects(eps > 0.0, "flat_rate_capacity: requires exponent > 0");
  // unit·ū·A·m^ε = flat  <=>  m = (flat / (unit·ū·A))^(1/ε).
  const double base = flat_price / (policy.unit_price_per_link *
                                    policy.mean_unicast_path *
                                    policy.law.amplitude());
  return std::pow(base, 1.0 / eps);
}

}  // namespace mcast
