// Monte-Carlo measurement engine — the experimental procedure of Section 2.
//
// For each group size, the paper draws N_source random sources (with
// replacement); for each source, N_rcvr random receiver sets; for each
// sample it computes the delivery-tree size L and the sample-average
// unicast path length ū, then averages the ratio L/ū over all
// N_source × N_rcvr samples. Two receiver models:
//
//   measure_distinct_receivers    — m distinct sites (L(m); Figs 1)
//   measure_with_replacement      — n draws with replacement (L̂(n); Fig 6)
//
// Everything is deterministic given params.seed.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/stats.hpp"
#include "fault/degraded.hpp"
#include "graph/graph.hpp"

namespace mcast {

struct monte_carlo_params {
  std::size_t receiver_sets = 100;  ///< the paper's N_rcvr
  std::size_t sources = 100;        ///< the paper's N_source
  std::uint64_t seed = 1999;
  /// When set, each source's shortest-path tree breaks equal-cost ties
  /// uniformly at random instead of by lowest node id — the ablation of
  /// DESIGN.md §6.1 (results should be insensitive to the choice).
  bool randomize_spt_parents = false;
  /// Worker threads. Every source gets its own RNG stream derived from
  /// (seed, source index), so results are bit-identical for any thread
  /// count — 1 and N produce the same numbers. 0 means "hardware
  /// concurrency".
  std::size_t threads = 1;
  /// Memoize per-source shortest-path trees in a per-worker spt_cache
  /// (multicast/spt_cache.hpp). Pure engine knob: the SPT is a
  /// deterministic function of (graph, view state, source), so results are
  /// byte-identical with the cache on or off — locked down by
  /// tests/test_cache_property.cpp. Off is only useful for A/B benching.
  bool use_spt_cache = true;
};

/// One group-size row of a measurement.
struct scaling_point {
  std::uint64_t group_size = 0;   ///< m (distinct) or n (with replacement)
  double tree_links_mean = 0.0;   ///< ⟨L⟩
  double tree_links_stderr = 0.0;
  double unicast_mean = 0.0;      ///< ⟨ū_sample⟩ (per-receiver path length)
  double ratio_mean = 0.0;        ///< ⟨L / ū_sample⟩ — the Fig 1 y-value
  double ratio_stderr = 0.0;
  double distinct_mean = 0.0;     ///< ⟨#distinct sites⟩ (== m for distinct model)
  std::uint64_t samples = 0;      ///< samples behind the row (0 => all means are 0)
};

/// L(m) measurement over `group_sizes` (each must satisfy
/// 1 <= m <= node_count - 1). The graph must be connected.
std::vector<scaling_point> measure_distinct_receivers(
    const graph& g, const std::vector<std::uint64_t>& group_sizes,
    const monte_carlo_params& params);

/// L̂(n) measurement over `group_sizes` (each n >= 1; receivers drawn with
/// replacement from all non-source sites). The graph must be connected.
std::vector<scaling_point> measure_with_replacement(
    const graph& g, const std::vector<std::uint64_t>& group_sizes,
    const monte_carlo_params& params);

/// L(m) on a degraded topology (fault/degraded.hpp). Sources are drawn
/// among alive nodes; each source's candidate receivers are the sites its
/// degraded BFS still reaches, so trees never cross failed elements. Group
/// sizes a source cannot satisfy (m exceeds its reachable universe) are
/// skipped for that source — scaling_point::samples records how many
/// samples each row kept (rows with 0 samples have all-zero means). On a
/// pristine view this matches measure_distinct_receivers(graph, ...)
/// exactly. Thread-count invariant, like the pristine measurement; the
/// randomize_spt_parents ablation is not supported here.
std::vector<scaling_point> measure_distinct_receivers(
    const degraded_view& view, const std::vector<std::uint64_t>& group_sizes,
    const monte_carlo_params& params);

/// Per-group-size Welford accumulators for one slice of a measurement.
/// A slice is a contiguous range of source tasks; merging slices in
/// ascending source order reproduces the serial accumulation sequence
/// exactly, which is what keeps distributed (scatter/gather) measurements
/// byte-identical to single-threaded ones. Welford merging is NOT
/// floating-point associative, so callers must never re-associate blocks —
/// always concatenate per-source blocks in index order and splice once.
struct mc_cell {
  running_stats ratio;
  running_stats tree;
  running_stats unicast;
  running_stats distinct;

  void merge(const mc_cell& other) {
    ratio.merge(other.ratio);
    tree.merge(other.tree);
    unicast.merge(other.unicast);
    distinct.merge(other.distinct);
  }
};

/// Un-merged accumulator blocks for source tasks [begin, end) of the L(m)
/// measurement `measure_distinct_receivers(g, group_sizes, params)` would
/// run. Element i holds the block of source task begin+i (one mc_cell per
/// group-size row). Source tasks derive their RNG streams from the global
/// source index, so a partition of [0, params.sources) into ranges — in any
/// process, on any thread count — yields blocks identical to the serial
/// run's. Validation matches the full measurement; additionally requires
/// begin < end <= params.sources.
std::vector<std::vector<mc_cell>> measure_sources_distinct(
    const graph& g, const std::vector<std::uint64_t>& group_sizes,
    const monte_carlo_params& params, std::size_t begin, std::size_t end);

/// Same slice API for the with-replacement model (L̂(n)).
std::vector<std::vector<mc_cell>> measure_sources_with_replacement(
    const graph& g, const std::vector<std::uint64_t>& group_sizes,
    const monte_carlo_params& params, std::size_t begin, std::size_t end);

/// Folds per-source blocks (concatenated in ascending source order) into
/// scaling rows, merging block s into the running total before block s+1 —
/// the exact sequence the serial measurement uses. Every block must have
/// one cell per group-size row.
std::vector<scaling_point> splice_source_cells(
    const std::vector<std::uint64_t>& group_sizes,
    const std::vector<std::vector<mc_cell>>& per_source);

/// Resolves a requested worker-thread count the way the Monte-Carlo engine
/// does: 0 means "hardware concurrency", and the result is never below 1.
/// (The engine additionally caps at the number of source tasks.) Exposed so
/// the experiment engine (src/lab) grants sweeps the same thread budget.
std::size_t resolve_thread_count(std::size_t requested);

/// Default group-size grid for a network of `sites` candidate receivers:
/// log-spaced from 1 to `sites`, the x-axis the paper uses everywhere.
std::vector<std::uint64_t> default_group_grid(std::uint64_t sites,
                                              std::size_t points = 24);

}  // namespace mcast
