#include "core/scaling_law.hpp"

#include <cmath>
#include <sstream>

#include "common/contract.hpp"

namespace mcast {

scaling_law::scaling_law(double amplitude, double exponent)
    : amplitude_(amplitude), exponent_(exponent) {
  expects(amplitude > 0.0, "scaling_law: amplitude must be positive");
}

scaling_law scaling_law::fit_to(const std::vector<scaling_point>& measurement,
                                double m_lo, double m_hi) {
  std::vector<double> xs, ys;
  for (const scaling_point& p : measurement) {
    const double m = static_cast<double>(p.group_size);
    if (m >= m_lo && m <= m_hi && p.ratio_mean > 0.0) {
      xs.push_back(m);
      ys.push_back(p.ratio_mean);
    }
  }
  expects(xs.size() >= 2, "scaling_law::fit_to: fewer than two usable rows");
  const power_law_fit f = fit_power_law(xs, ys);
  scaling_law law(f.amplitude, f.exponent);
  law.r_squared_ = f.r_squared;
  return law;
}

double scaling_law::normalized_tree_size(double m) const {
  expects(m > 0.0, "scaling_law::normalized_tree_size: m must be positive");
  return amplitude_ * std::pow(m, exponent_);
}

double scaling_law::tree_size(double m, double ubar) const {
  expects(ubar > 0.0, "scaling_law::tree_size: ubar must be positive");
  return normalized_tree_size(m) * ubar;
}

double scaling_law::efficiency(double m) const {
  return normalized_tree_size(m) / m;
}

double scaling_law::multicast_advantage(double m) const {
  return m / normalized_tree_size(m);
}

std::string scaling_law::describe() const {
  std::ostringstream os;
  os << "L(m)/u ~= " << amplitude_ << " * m^" << exponent_
     << " (R^2=" << r_squared_ << ")";
  return os.str();
}

}  // namespace mcast
