// Cost-based multicast pricing — the application Chuang & Sirbu built the
// scaling law for (their INET '98 paper, reference [3] of the reproduction
// target), included here so the library covers the law's practical use.
//
// If a provider charges unicast flows in proportion to path length ū, the
// scaling law says a multicast group of size m consumes A·m^ε·ū links, so
// a cost-based multicast tariff is
//
//     price_mcast(m) = unit_price · ū · A · m^ε
//
// versus m separate unicast streams at unit_price · ū · m. The interesting
// operating points — per-receiver price, savings, and the group size at
// which multicast beats a flat-rate alternative — fall out of the law.
#pragma once

#include "core/scaling_law.hpp"

namespace mcast {

struct pricing_policy {
  double unit_price_per_link = 1.0;  ///< tariff per link-hop, > 0
  double mean_unicast_path = 10.0;   ///< the network's ū, > 0
  scaling_law law{};                 ///< fitted (A, ε)
};

/// Cost-based price for a multicast group of m receivers. Requires m > 0.
double multicast_price(const pricing_policy& policy, double m);

/// Price of serving the same m receivers with independent unicast streams.
double unicast_price(const pricing_policy& policy, double m);

/// Per-receiver multicast price — decreasing in m under ε < 1, the
/// economies-of-scale argument for multicast tariffs.
double multicast_price_per_receiver(const pricing_policy& policy, double m);

/// Fraction of the unicast bill a multicast group saves: 1 - m^(ε-1)·A.
double multicast_savings_fraction(const pricing_policy& policy, double m);

/// Smallest group size whose multicast savings fraction reaches `target`
/// (closed form from the law; requires ε < 1 and 0 <= target < 1).
/// Groups below the returned size are cheaper to serve by unicast when the
/// law's amplitude exceeds 1 — the tariff-design question from Chuang-Sirbu.
double group_size_for_savings(const pricing_policy& policy, double target);

/// Largest group size a flat-rate plan `flat_price` still covers, i.e. the
/// m at which the cost-based multicast price crosses the flat price
/// (closed form; requires ε > 0 and flat_price > 0).
double flat_rate_capacity(const pricing_policy& policy, double flat_price);

}  // namespace mcast
