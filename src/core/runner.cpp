#include "core/runner.hpp"

#include <algorithm>
#include <atomic>
#include <optional>
#include <thread>

#include "analysis/series.hpp"
#include "analysis/stats.hpp"
#include "common/contract.hpp"
#include "graph/components.hpp"
#include "graph/workspace.hpp"
#include "multicast/delivery_tree.hpp"
#include "multicast/receivers.hpp"
#include "multicast/spt.hpp"
#include "multicast/spt_cache.hpp"
#include "multicast/unicast.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/rng.hpp"

namespace mcast {

namespace {

enum class receiver_model { distinct, with_replacement };

// Derives the independent RNG stream of source-task `s`. Pure function of
// (seed, s, salt) so the result is identical for any thread schedule.
rng task_stream(std::uint64_t seed, std::size_t s, std::uint64_t salt) {
  std::uint64_t state = seed ^ salt ^ (0x9e3779b97f4a7c15ULL * (s + 1));
  return rng(splitmix64(state));
}

// Reusable hot-path state owned by one worker thread. Everything in here
// is an optimization only — SPTs, universes and samples come out identical
// to freshly allocated ones, so sharing a context across that worker's
// source tasks cannot perturb any result.
struct worker_context {
  traversal_workspace ws;
  spt_cache cache{64};
  std::vector<node_id> universe;
  std::vector<node_id> sample;
  std::optional<delivery_tree_builder> builder;
};

// The work of one source: draw the source, build (or fetch) its SPT, run
// all (group size x receiver set) samples into `out` (size = group count).
// When `view` is non-null the SPT and the candidate universe honor its
// failure mask, and group sizes the source cannot satisfy are skipped.
// The context supplies the reusable SPT cache, traversal workspace and
// sample buffers of the calling worker thread.
void run_one_source(const graph& g, const degraded_view* view,
                    const std::vector<std::uint64_t>& group_sizes,
                    const monte_carlo_params& params, receiver_model model,
                    std::size_t s, const std::vector<node_id>& source_pool,
                    worker_context& ctx, std::vector<mc_cell>& out) {
  obs::add(obs::counter::mc_source_tasks);
  rng gen = task_stream(params.seed, s, /*salt=*/0);
  const node_id source = source_pool[gen.below(source_pool.size())];
  rng parent_gen = task_stream(params.seed, s, /*salt=*/0x7469656272656b00ULL);

  // The SPT either lives in the worker's cache (shared_ptr keeps it alive
  // for this task even if evicted) or in task-local storage.
  std::shared_ptr<const source_tree> from_cache;
  std::optional<source_tree> local;
  if (params.randomize_spt_parents && view == nullptr) {
    // Randomized tie-breaking consumes parent_gen, so every task's tree is
    // unique — nothing to memoize.
    local.emplace(g, bfs_from_random_parents(
                         g, source,
                         [&parent_gen](std::uint32_t k) {
                           return parent_gen.below(k);
                         }));
  } else if (view != nullptr) {
    if (params.use_spt_cache) {
      from_cache = ctx.cache.get(*view, source, ctx.ws);
    } else {
      bfs_tree t;
      local.emplace(g, std::move(bfs_from(*view, source, ctx.ws, t)));
    }
  } else if (params.use_spt_cache) {
    from_cache = ctx.cache.get(g, source, ctx.ws);
  } else {
    local.emplace(g, source, ctx.ws);
  }
  const source_tree& spt = from_cache ? *from_cache : *local;

  ctx.universe.clear();
  if (view == nullptr) {
    for (node_id v = 0; v < g.node_count(); ++v) {
      if (v != source) ctx.universe.push_back(v);
    }
  } else {
    for (node_id v = 0; v < g.node_count(); ++v) {
      if (v != source && spt.distance(v) != unreachable) {
        ctx.universe.push_back(v);
      }
    }
  }
  if (ctx.builder) {
    ctx.builder->rebind(spt);
  } else {
    ctx.builder.emplace(spt);
  }
  delivery_tree_builder& builder = *ctx.builder;

  for (std::size_t gi = 0; gi < group_sizes.size(); ++gi) {
    const std::uint64_t size = group_sizes[gi];
    if (model == receiver_model::distinct && size > ctx.universe.size()) {
      continue;  // this source cannot field m distinct receivers
    }
    for (std::size_t rep = 0; rep < params.receiver_sets; ++rep) {
      if (model == receiver_model::distinct) {
        sample_distinct_into(ctx.universe, size, gen, ctx.sample);
      } else {
        sample_with_replacement_into(ctx.universe, size, gen, ctx.sample);
      }
      builder.reset();
      std::uint64_t path_total = 0;
      for (node_id v : ctx.sample) {
        builder.add_receiver(v);
        path_total += spt.distance(v);
      }
      const double links = static_cast<double>(builder.link_count());
      const double ubar = static_cast<double>(path_total) /
                          static_cast<double>(ctx.sample.size());
      out[gi].tree.add(links);
      out[gi].unicast.add(ubar);
      out[gi].distinct.add(static_cast<double>(builder.distinct_receiver_count()));
      // ū is never 0: receivers exclude the source, so every path >= 1.
      out[gi].ratio.add(links / ubar);
    }
  }
}

// Shared validation + source-range execution. Runs source tasks
// [begin, end) of the measurement and returns their un-merged accumulator
// blocks (element i belongs to global source index begin+i).
std::vector<std::vector<mc_cell>> measure_sources(
    const graph& g, const degraded_view* view,
    const std::vector<std::uint64_t>& group_sizes,
    const monte_carlo_params& params, receiver_model model, std::size_t begin,
    std::size_t end) {
  expects(g.node_count() >= 2, "measure: graph needs at least two nodes");
  expects(params.sources >= 1 && params.receiver_sets >= 1,
          "measure: sources and receiver_sets must be >= 1");
  expects(begin < end && end <= params.sources,
          "measure: source range must satisfy begin < end <= sources");
  const std::uint64_t sites = g.node_count() - 1;  // all nodes except source
  for (std::uint64_t m : group_sizes) {
    expects(m >= 1, "measure: group sizes must be >= 1");
    if (model == receiver_model::distinct) {
      expects(m <= sites, "measure: m exceeds candidate receiver count");
    }
  }
  // Pristine measurements demand a connected graph (the paper's setting);
  // degraded ones sample around the holes instead.
  std::vector<node_id> source_pool;
  if (view == nullptr) {
    expects(is_connected(g), "measure: graph must be connected");
    source_pool.resize(g.node_count());
    for (node_id v = 0; v < g.node_count(); ++v) source_pool[v] = v;
  } else {
    expects(!params.randomize_spt_parents,
            "measure: randomized SPT parents are not supported on degraded views");
    for (node_id v = 0; v < g.node_count(); ++v) {
      if (view->node_alive(v)) source_pool.push_back(v);
    }
    expects(source_pool.size() >= 2,
            "measure: degraded view must leave at least two alive nodes");
  }

  const std::size_t count = end - begin;
  const std::size_t threads =
      std::min<std::size_t>(count, resolve_thread_count(params.threads));

  // Every source task writes its own accumulator block; blocks are merged
  // in source order afterwards, so the result is independent of both the
  // thread count and the scheduling. Task RNG streams key on the GLOBAL
  // source index, so any partition of [0, sources) into ranges reproduces
  // the serial run's blocks exactly.
  std::vector<std::vector<mc_cell>> per_source(
      count, std::vector<mc_cell>(group_sizes.size()));

  if (threads <= 1) {
    worker_context ctx;
    for (std::size_t i = 0; i < count; ++i) {
      run_one_source(g, view, group_sizes, params, model, begin + i,
                     source_pool, ctx, per_source[i]);
    }
  } else {
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
      // Each worker owns its cache/workspace: no sharing, no locks, and —
      // because cache state can never alter a tree — no dependence of the
      // results on which worker ran which source.
      worker_context ctx;
      for (std::size_t i = next.fetch_add(1); i < count;
           i = next.fetch_add(1)) {
        run_one_source(g, view, group_sizes, params, model, begin + i,
                       source_pool, ctx, per_source[i]);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  return per_source;
}

std::vector<scaling_point> measure(const graph& g, const degraded_view* view,
                                   const std::vector<std::uint64_t>& group_sizes,
                                   const monte_carlo_params& params,
                                   receiver_model model) {
  MCAST_OBS_SPAN("monte_carlo_measure");
  return splice_source_cells(
      group_sizes, measure_sources(g, view, group_sizes, params, model, 0,
                                   params.sources));
}

}  // namespace

std::vector<std::vector<mc_cell>> measure_sources_distinct(
    const graph& g, const std::vector<std::uint64_t>& group_sizes,
    const monte_carlo_params& params, std::size_t begin, std::size_t end) {
  return measure_sources(g, nullptr, group_sizes, params,
                         receiver_model::distinct, begin, end);
}

std::vector<std::vector<mc_cell>> measure_sources_with_replacement(
    const graph& g, const std::vector<std::uint64_t>& group_sizes,
    const monte_carlo_params& params, std::size_t begin, std::size_t end) {
  return measure_sources(g, nullptr, group_sizes, params,
                         receiver_model::with_replacement, begin, end);
}

std::vector<scaling_point> splice_source_cells(
    const std::vector<std::uint64_t>& group_sizes,
    const std::vector<std::vector<mc_cell>>& per_source) {
  std::vector<mc_cell> total(group_sizes.size());
  for (std::size_t s = 0; s < per_source.size(); ++s) {
    expects(per_source[s].size() == group_sizes.size(),
            "splice_source_cells: block width must match the group grid");
    for (std::size_t gi = 0; gi < group_sizes.size(); ++gi) {
      total[gi].merge(per_source[s][gi]);
    }
  }

  std::vector<scaling_point> out(group_sizes.size());
  for (std::size_t gi = 0; gi < group_sizes.size(); ++gi) {
    out[gi].group_size = group_sizes[gi];
    out[gi].tree_links_mean = total[gi].tree.mean();
    out[gi].tree_links_stderr = total[gi].tree.stderr_mean();
    out[gi].unicast_mean = total[gi].unicast.mean();
    out[gi].ratio_mean = total[gi].ratio.mean();
    out[gi].ratio_stderr = total[gi].ratio.stderr_mean();
    out[gi].distinct_mean = total[gi].distinct.mean();
    out[gi].samples = total[gi].ratio.count();
  }
  return out;
}

std::vector<scaling_point> measure_distinct_receivers(
    const graph& g, const std::vector<std::uint64_t>& group_sizes,
    const monte_carlo_params& params) {
  return measure(g, nullptr, group_sizes, params, receiver_model::distinct);
}

std::vector<scaling_point> measure_with_replacement(
    const graph& g, const std::vector<std::uint64_t>& group_sizes,
    const monte_carlo_params& params) {
  return measure(g, nullptr, group_sizes, params, receiver_model::with_replacement);
}

std::vector<scaling_point> measure_distinct_receivers(
    const degraded_view& view, const std::vector<std::uint64_t>& group_sizes,
    const monte_carlo_params& params) {
  return measure(view.base(), &view, group_sizes, params,
                 receiver_model::distinct);
}

std::size_t resolve_thread_count(std::size_t requested) {
  if (requested != 0) return requested;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

std::vector<std::uint64_t> default_group_grid(std::uint64_t sites,
                                              std::size_t points) {
  expects(sites >= 1, "default_group_grid: need at least one site");
  return log_grid_integers(1, sites, points);
}

}  // namespace mcast
