#include "core/study.hpp"

#include <algorithm>

#include "common/contract.hpp"
#include "graph/components.hpp"

namespace mcast {

double study_result::mean_exponent() const {
  if (networks.empty()) return 0.0;
  double total = 0.0;
  for (const network_result& n : networks) total += n.law.exponent();
  return total / static_cast<double>(networks.size());
}

study_result run_scaling_study(const std::vector<network_entry>& suite,
                               const study_config& config) {
  expects(config.grid_points >= 2, "run_scaling_study: need >= 2 grid points");
  study_result result;
  for (const network_entry& entry : suite) {
    graph g = entry.build(config.topology_seed);
    if (!is_connected(g)) {
      // Generators aim for connectivity, but a user-supplied entry may not;
      // measure on the giant component, as the paper's cleaning step would.
      g = largest_component(g);
    }
    const std::uint64_t sites = g.node_count() - 1;
    const std::vector<std::uint64_t> grid =
        default_group_grid(sites, config.grid_points);

    network_result nr;
    nr.name = entry.name;
    nr.nodes = g.node_count();
    nr.links = g.edge_count();
    nr.measurement = measure_distinct_receivers(g, grid, config.monte_carlo);

    const double lo = std::max(config.fit_lo_min,
                               config.fit_lo_fraction * static_cast<double>(sites));
    const double hi =
        std::max(lo + 1.0, config.fit_hi_fraction * static_cast<double>(sites));
    nr.law = scaling_law::fit_to(nr.measurement, lo, hi);
    result.networks.push_back(std::move(nr));
  }
  return result;
}

}  // namespace mcast
