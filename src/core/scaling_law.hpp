// The Chuang-Sirbu scaling law as a first-class object.
//
// Chuang & Sirbu's empirical law says the normalized multicast tree size
// follows L(m)/ū ≈ A·m^ε with ε ≈ 0.8 across a wide range of topologies.
// `scaling_law` packages a fitted (A, ε) pair with the quantities people
// actually use it for — predicted tree size, multicast-vs-unicast savings,
// and the paper's headline comparison against the
// linear-with-log-correction form L̂(n) ≈ n(c − ln(n/M)/ln k).
#pragma once

#include <string>
#include <vector>

#include "analysis/fit.hpp"
#include "core/runner.hpp"

namespace mcast {

class scaling_law {
 public:
  /// The canonical Chuang-Sirbu law: amplitude 1, exponent 0.8.
  scaling_law() = default;

  /// A law with explicit parameters. Requires amplitude > 0.
  scaling_law(double amplitude, double exponent);

  /// Fits A·m^ε to a measurement (ratio_mean against group_size), using
  /// only rows with group_size in [m_lo, m_hi]. Requires >= 2 usable rows.
  static scaling_law fit_to(const std::vector<scaling_point>& measurement,
                            double m_lo = 1.0, double m_hi = 1e18);

  double amplitude() const noexcept { return amplitude_; }
  double exponent() const noexcept { return exponent_; }
  double r_squared() const noexcept { return r_squared_; }

  /// Predicted normalized tree size L(m)/ū. Requires m > 0.
  double normalized_tree_size(double m) const;

  /// Predicted absolute tree size given the network's average unicast path
  /// length ū. Requires m > 0, ubar > 0.
  double tree_size(double m, double ubar) const;

  /// Multicast efficiency δ(m) = L(m)/(m·ū): link cost per receiver
  /// relative to a dedicated unicast stream (1 = no savings, -> 0 = large
  /// savings). Requires m > 0.
  double efficiency(double m) const;

  /// Bandwidth savings factor: unicast total links / multicast links
  /// = m·ū/L(m). Requires m > 0.
  double multicast_advantage(double m) const;

  /// Human-readable "L(m)/ū ≈ A·m^ε (R²=..)" summary.
  std::string describe() const;

 private:
  double amplitude_ = 1.0;
  double exponent_ = 0.8;
  double r_squared_ = 1.0;
};

}  // namespace mcast
