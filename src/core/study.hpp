// High-level scaling study: run the Section 2 experiment across a suite of
// topologies and collect measurement + fitted law per network. This is the
// one-call entry point the quickstart example and the Fig 1 benches use.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/runner.hpp"
#include "core/scaling_law.hpp"
#include "topo/catalog.hpp"

namespace mcast {

struct study_config {
  monte_carlo_params monte_carlo{};
  std::size_t grid_points = 24;   ///< group sizes per network (log-spaced)
  std::uint64_t topology_seed = 7;///< seed fed to the topology generators
  /// Power-law fit window as fractions of the site count: the paper fits
  /// the intermediate regime away from m=1 noise and saturation.
  double fit_lo_fraction = 2e-3;
  double fit_hi_fraction = 0.5;
  /// At least this m at the low end of the window regardless of fraction.
  double fit_lo_min = 2.0;
};

struct network_result {
  std::string name;
  std::uint64_t nodes = 0;
  std::uint64_t links = 0;
  std::vector<scaling_point> measurement;
  scaling_law law;  ///< fitted to `measurement` inside the window
};

struct study_result {
  std::vector<network_result> networks;

  /// Mean fitted exponent across networks (the "how universal is 0.8"
  /// number the paper's Figure 1 conveys).
  double mean_exponent() const;
};

/// Runs the full measurement + fit over `suite`. Topologies are built with
/// config.topology_seed; measurement noise with config.monte_carlo.seed.
study_result run_scaling_study(const std::vector<network_entry>& suite,
                               const study_config& config);

}  // namespace mcast
