// reachability — S(r)/T(r) profiles and the exponential growth fit that
// the Phillips-Shenker-Tangmunarunkit reachability argument rests on.
#include <utility>

#include "analysis/reachability.hpp"
#include "service/ops.hpp"
#include "sim/rng.hpp"

namespace mcast::service {

json::value op_reachability(const json::value& req, const op_context& ctx,
                            bool degraded) {
  static const char* const allowed[] = {
      "op",     "id",      "trace",    "topology", "topology_seed",
      "budget", "source",  "sources",  "seed",     nullptr};
  reject_unknown_keys(req, allowed);
  const auto shared = resolve_topology(req, ctx);
  const graph& g = *shared;

  reachability_profile prof;
  if (req.get("source") != nullptr) {
    if (req.get("sources") != nullptr) {
      throw request_error(error_code::bad_request,
                          "give either 'source' or 'sources', not both");
    }
    const std::uint64_t source = require_u64(req, "source");
    if (source >= g.node_count()) {
      throw request_error(error_code::bad_request,
                          "field 'source' must be < " +
                              std::to_string(g.node_count()));
    }
    prof = reachability_from(g, static_cast<node_id>(source));
  } else {
    const std::uint64_t sources =
        bounded_u64(req, "sources", 32, 1, ctx.limits.max_sources);
    rng gen(u64_or(req, "seed", 777));
    // Under pressure the multi-source mean collapses to one sampled
    // source — a single BFS instead of `sources` of them.
    prof = mean_reachability(
        g, degraded ? 1 : static_cast<std::size_t>(sources), gen);
  }

  json::value s = json::value::array();
  json::value t = json::value::array();
  for (const double v : prof.s) s.push(num(v));
  for (const double v : prof.t) t.push(num(v));

  const reachability_growth_fit fit = fit_reachability_growth(prof);
  json::value growth = json::value::object();
  growth.set("lambda", num(fit.lambda));
  growth.set("r_squared", num(fit.r_squared));
  growth.set("radii_used", num_u(fit.radii_used));

  json::value result = json::value::object();
  result.set("topology", json::value::string(g.name()));
  result.set("nodes", num_u(g.node_count()));
  if (degraded) result.set("degraded", json::value::boolean(true));
  result.set("s", std::move(s));
  result.set("t", std::move(t));
  result.set("max_radius", num_u(prof.max_radius()));
  result.set("total_sites", num(prof.total_sites()));
  result.set("mean_distance", num(prof.mean_distance()));
  result.set("growth_fit", std::move(growth));
  return result;
}

}  // namespace mcast::service
