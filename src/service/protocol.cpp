#include "service/protocol.hpp"

#include <cmath>

namespace mcast::service {
namespace {

json::value error_doc(error_code code, const std::string& message) {
  json::value err = json::value::object();
  err.set("code", json::value::string(error_code_name(code)));
  err.set("message", json::value::string(message));
  return err;
}

}  // namespace

const char* error_code_name(error_code code) noexcept {
  switch (code) {
    case error_code::parse_error: return "parse_error";
    case error_code::bad_request: return "bad_request";
    case error_code::unknown_op: return "unknown_op";
    case error_code::limit_exceeded: return "limit_exceeded";
    case error_code::overloaded: return "overloaded";
    case error_code::internal_error: return "internal_error";
    case error_code::shed: return "shed";
    case error_code::deadline_exceeded: return "deadline_exceeded";
  }
  return "internal_error";
}

std::string error_response(error_code code, const std::string& message) {
  return error_response(code, message, json::value());
}

std::string error_response(error_code code, const std::string& message,
                           const json::value& id) {
  return json::dump_compact(error_document(code, message, id));
}

std::string ok_response(const std::string& op, json::value result,
                        const json::value& id) {
  return json::dump_compact(ok_document(op, std::move(result), id));
}

json::value error_document(error_code code, const std::string& message,
                           const json::value& id, const std::string& trace) {
  json::value doc = json::value::object();
  doc.set("id", id);
  if (!trace.empty()) doc.set("trace", json::value::string(trace));
  doc.set("ok", json::value::boolean(false));
  doc.set("error", error_doc(code, message));
  return doc;
}

json::value ok_document(const std::string& op, json::value result,
                        const json::value& id, const std::string& trace) {
  json::value doc = json::value::object();
  doc.set("id", id);
  if (!trace.empty()) doc.set("trace", json::value::string(trace));
  doc.set("ok", json::value::boolean(true));
  doc.set("op", json::value::string(op));
  doc.set("result", std::move(result));
  return doc;
}

std::string trace_token(const json::value& req) {
  const json::value* v = req.get("trace");
  if (v == nullptr) return std::string();
  if (!v->is(json::value::kind::string)) {
    throw request_error(error_code::bad_request,
                        "field 'trace' must be a string");
  }
  const std::string& token = v->as_string();
  if (token.size() > max_trace_token_bytes) {
    throw request_error(error_code::bad_request,
                        "field 'trace' exceeds " +
                            std::to_string(max_trace_token_bytes) + " bytes");
  }
  return token;
}

json::value parse_request(const std::string& line) {
  json::value doc;
  try {
    doc = json::parse(line);
  } catch (const std::exception& e) {
    throw request_error(error_code::parse_error, e.what());
  }
  if (!doc.is(json::value::kind::object)) {
    throw request_error(error_code::parse_error,
                        "request must be a JSON object");
  }
  return doc;
}

const json::value& require_member(const json::value& obj,
                                  const std::string& key) {
  const json::value* v = obj.get(key);
  if (v == nullptr) {
    throw request_error(error_code::bad_request,
                        "missing required field '" + key + "'");
  }
  return *v;
}

void reject_unknown_keys(const json::value& obj, const char* const* allowed) {
  for (const auto& [key, unused] : obj.members()) {
    bool known = false;
    for (const char* const* a = allowed; *a != nullptr; ++a) {
      if (key == *a) {
        known = true;
        break;
      }
    }
    if (!known) {
      throw request_error(error_code::bad_request,
                          "unknown field '" + key + "'");
    }
  }
}

std::string require_string(const json::value& obj, const std::string& key) {
  const json::value& v = require_member(obj, key);
  if (!v.is(json::value::kind::string)) {
    throw request_error(error_code::bad_request,
                        "field '" + key + "' must be a string");
  }
  return v.as_string();
}

double require_number(const json::value& obj, const std::string& key) {
  const json::value& v = require_member(obj, key);
  if (!v.is(json::value::kind::number)) {
    throw request_error(error_code::bad_request,
                        "field '" + key + "' must be a number");
  }
  const double n = v.as_number();
  if (!std::isfinite(n)) {
    throw request_error(error_code::bad_request,
                        "field '" + key + "' must be finite");
  }
  return n;
}

std::uint64_t require_u64(const json::value& obj, const std::string& key) {
  const double n = require_number(obj, key);
  if (n < 0.0 || n != std::floor(n) || n > 9.007199254740992e15) {
    throw request_error(error_code::bad_request,
                        "field '" + key +
                            "' must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(n);
}

std::uint64_t u64_or(const json::value& obj, const std::string& key,
                     std::uint64_t fallback) {
  return obj.get(key) == nullptr ? fallback : require_u64(obj, key);
}

std::string string_or(const json::value& obj, const std::string& key,
                      const std::string& fallback) {
  return obj.get(key) == nullptr ? fallback : require_string(obj, key);
}

std::uint64_t bounded_u64(const json::value& obj, const std::string& key,
                          std::uint64_t fallback, std::uint64_t lo,
                          std::uint64_t hi) {
  const std::uint64_t v = u64_or(obj, key, fallback);
  if (v < lo) {
    throw request_error(error_code::bad_request,
                        "field '" + key + "' must be >= " +
                            std::to_string(lo));
  }
  if (v > hi) {
    throw request_error(error_code::limit_exceeded,
                        "field '" + key + "' exceeds the service cap of " +
                            std::to_string(hi));
  }
  return v;
}

}  // namespace mcast::service
