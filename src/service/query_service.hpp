// query_service — the single-shard request dispatcher behind
// `mcast_lab serve`.
//
// handle() maps one request line to one response line and never throws:
// every failure mode is a typed error line (service/protocol.hpp). The
// deterministic operations (lmhat, lm_estimate, reachability, batch) are
// pure functions of the request — explicit seeds, the
// thread-count-invariant Monte-Carlo engine, and ordered-key JSON dumping
// make responses byte-identical across worker threads, connection
// interleavings and server restarts. metrics/healthz are the exception:
// they report live registry and uptime state and are exempt from the
// byte-identity guarantee (tests compare only their ok status).
//
// The handler bodies live in service/ops.hpp behind a dispatch table; this
// class runs every op inline on the calling thread (including batch
// sub-ops, serially in request order) and resolves topologies through the
// process-wide content-keyed cache. The sharded host
// (service/shard_router.hpp) dispatches through the same table, which is
// what the byte-identity tests between the two paths lean on.
#pragma once

#include <functional>
#include <string>

#include "common/json.hpp"
#include "net/server.hpp"
#include "service/ops.hpp"
#include "service/protocol.hpp"

namespace mcast::service {

class query_service {
 public:
  explicit query_service(service_limits limits = {});

  /// Lets metrics/healthz report live server state (queue depth, accept
  /// and reject counts). Without one they report zeros and the service's
  /// own uptime — the unit-test configuration.
  void set_stats_source(std::function<net::server_stats()> fn);

  /// Enables cost-aware shedding of the expensive ops.
  void set_shed_policy(shed_policy policy) noexcept { shed_ = policy; }

  /// Source of the live pressure number the shed policy compares against.
  /// `mcast_lab serve` wires queue_depth/queue_capacity; tests inject a
  /// constant to exercise both tiers deterministically. Without one the
  /// pressure is 0 and shedding never triggers.
  void set_pressure_source(std::function<double()> fn);

  /// One request line in, one response line out (no trailing newline).
  std::string handle(const std::string& line) noexcept;

  const service_limits& limits() const noexcept { return ctx_.limits; }

 private:
  json::value dispatch(const std::string& op, const json::value& req);
  json::value run_batch(const json::value& req);
  /// Applies the shed policy to a sheddable op: throws request_error(shed)
  /// to refuse, returns true to degrade, false to run at full fidelity.
  bool shed_gate(const std::string& op) const;
  double pressure() const;

  op_context ctx_;
  std::function<double()> pressure_fn_;
  shed_policy shed_;
};

}  // namespace mcast::service
