// query_service — the request dispatcher behind `mcast_lab serve`.
//
// handle() maps one request line to one response line and never throws:
// every failure mode is a typed error line (service/protocol.hpp). The
// deterministic operations (lmhat, lm_estimate, reachability) are pure
// functions of the request — explicit seeds, the thread-count-invariant
// Monte-Carlo engine, and ordered-key JSON dumping make responses
// byte-identical across worker threads, connection interleavings and
// server restarts. metrics/healthz are the exception: they report live
// registry and uptime state and are exempt from the byte-identity
// guarantee (tests compare only their ok status).
//
// Topologies are built through the shared content-keyed topology cache
// (topo/cache.hpp), so concurrent requests for the same
// (topology, seed, budget) share one immutable graph instead of
// rebuilding it per request.
#pragma once

#include <chrono>
#include <functional>
#include <string>

#include "common/json.hpp"
#include "net/server.hpp"
#include "service/protocol.hpp"

namespace mcast::service {

class query_service {
 public:
  explicit query_service(service_limits limits = {});

  /// Lets metrics/healthz report live server state (queue depth, accept
  /// and reject counts). Without one they report zeros and the service's
  /// own uptime — the unit-test configuration.
  void set_stats_source(std::function<net::server_stats()> fn);

  /// One request line in, one response line out (no trailing newline).
  std::string handle(const std::string& line) noexcept;

  const service_limits& limits() const noexcept { return limits_; }

 private:
  json::value dispatch(const std::string& op, const json::value& req);
  json::value op_lmhat(const json::value& req) const;
  json::value op_lm_estimate(const json::value& req) const;
  json::value op_reachability(const json::value& req) const;
  json::value op_metrics() const;
  json::value op_healthz() const;

  service_limits limits_;
  std::function<net::server_stats()> stats_fn_;
  std::chrono::steady_clock::time_point started_;
};

}  // namespace mcast::service
