// query_service — the request dispatcher behind `mcast_lab serve`.
//
// handle() maps one request line to one response line and never throws:
// every failure mode is a typed error line (service/protocol.hpp). The
// deterministic operations (lmhat, lm_estimate, reachability) are pure
// functions of the request — explicit seeds, the thread-count-invariant
// Monte-Carlo engine, and ordered-key JSON dumping make responses
// byte-identical across worker threads, connection interleavings and
// server restarts. metrics/healthz are the exception: they report live
// registry and uptime state and are exempt from the byte-identity
// guarantee (tests compare only their ok status).
//
// Topologies are built through the shared content-keyed topology cache
// (topo/cache.hpp), so concurrent requests for the same
// (topology, seed, budget) share one immutable graph instead of
// rebuilding it per request.
#pragma once

#include <chrono>
#include <functional>
#include <string>

#include "common/json.hpp"
#include "net/server.hpp"
#include "service/protocol.hpp"

namespace mcast::service {

/// Cost-aware load shedding (docs/resilience.md). Pressure is a number in
/// [0, 1] (typically queue_depth / queue_capacity). The expensive
/// Monte-Carlo ops degrade first and refuse last; lmhat/metrics/healthz
/// are never shed. Thresholds above 1 disable the corresponding tier,
/// which is the default: shedding must be asked for.
struct shed_policy {
  /// At or above this pressure, lm_estimate answers with the Eq 4 closed
  /// form (marked `"degraded": true`) and reachability with a single-BFS
  /// profile instead of the Monte-Carlo mean.
  double degrade_at = 2.0;
  /// At or above this pressure, lm_estimate/reachability are refused with
  /// the retryable typed error `shed`.
  double refuse_at = 2.0;
};

class query_service {
 public:
  explicit query_service(service_limits limits = {});

  /// Lets metrics/healthz report live server state (queue depth, accept
  /// and reject counts). Without one they report zeros and the service's
  /// own uptime — the unit-test configuration.
  void set_stats_source(std::function<net::server_stats()> fn);

  /// Enables cost-aware shedding of the expensive ops.
  void set_shed_policy(shed_policy policy) noexcept { shed_ = policy; }

  /// Source of the live pressure number the shed policy compares against.
  /// `mcast_lab serve` wires queue_depth/queue_capacity; tests inject a
  /// constant to exercise both tiers deterministically. Without one the
  /// pressure is 0 and shedding never triggers.
  void set_pressure_source(std::function<double()> fn);

  /// One request line in, one response line out (no trailing newline).
  std::string handle(const std::string& line) noexcept;

  const service_limits& limits() const noexcept { return limits_; }

 private:
  json::value dispatch(const std::string& op, const json::value& req);
  json::value op_lmhat(const json::value& req) const;
  json::value op_lm_estimate(const json::value& req, bool degraded) const;
  json::value op_reachability(const json::value& req, bool degraded) const;
  json::value op_metrics() const;
  json::value op_healthz() const;
  double pressure() const;

  service_limits limits_;
  std::function<net::server_stats()> stats_fn_;
  std::function<double()> pressure_fn_;
  shed_policy shed_;
  std::chrono::steady_clock::time_point started_;
};

}  // namespace mcast::service
