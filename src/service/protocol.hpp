// Line protocol for the mcast query service — strict parsing, typed errors.
//
// One request per line, one response per line, both JSON objects. A
// request names its operation in "op" and may carry an "id" (string or
// number) that the response echoes, so pipelined clients can match
// responses to requests without counting lines.
//
//   {"op":"lmhat","k":4,"depth":5,"n":[10,100]}
//   → {"id":null,"ok":true,"op":"lmhat","result":{...}}
//
// Failures never close the connection (except oversized frames, where the
// reader cannot resynchronize) and always carry a machine-readable code:
//
//   {"ok":false,"error":{"code":"bad_request","message":"..."}}
//
// Parsing is strict by design: unknown top-level keys, wrong JSON types,
// out-of-range values, and non-object payloads are each a typed error,
// not a guess. The limits below bound per-request work so one client
// cannot wedge a worker for minutes; anything above them is
// `limit_exceeded`, telling the caller to use the offline `mcast_lab run`
// path instead. See docs/service.md for the full request catalog.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/json.hpp"

namespace mcast::service {

enum class error_code {
  parse_error,     ///< the line is not a JSON object
  bad_request,     ///< wrong/missing/unknown fields or invalid values
  unknown_op,      ///< "op" names no operation
  limit_exceeded,  ///< structurally valid but over the per-request caps
  overloaded,      ///< admission control refused the connection
  internal_error,  ///< handler bug; the request itself may be fine
  shed,            ///< load shedding refused an expensive op (retryable)
  deadline_exceeded,  ///< the request or its response outlived a deadline
};

const char* error_code_name(error_code code) noexcept;

/// Thrown by parsers/handlers; the service turns it into an error line.
class request_error : public std::runtime_error {
 public:
  request_error(error_code code, const std::string& message)
      : std::runtime_error(message), code_(code) {}
  error_code code() const noexcept { return code_; }

 private:
  error_code code_;
};

/// Per-request work caps (see docs/service.md for the rationale of each).
struct service_limits {
  std::size_t max_group_sizes = 128;    ///< lm_estimate grid rows
  std::size_t max_sources = 4096;       ///< Monte-Carlo sources / profile sources
  std::size_t max_receiver_sets = 4096;
  std::size_t max_threads = 8;          ///< per-request Monte-Carlo threads
  std::size_t max_points = 512;         ///< lmhat n-grid length
  unsigned max_kary_k = 64;
  unsigned max_kary_depth = 40;
  std::uint64_t max_budget = 200000;    ///< topology scaling budget cap
  std::size_t max_batch_ops = 64;       ///< sub-ops per batch envelope
  std::size_t max_groups = 1024;        ///< live groups per group_manager
  std::uint64_t max_group_op_count = 4096;  ///< "count" cap on group_join/leave
};

/// One serialized error line (no trailing newline).
std::string error_response(error_code code, const std::string& message);

/// Same, echoing a request id (pass json null when the request had none).
std::string error_response(error_code code, const std::string& message,
                           const json::value& id);

/// One serialized success line wrapping `result` (no trailing newline).
std::string ok_response(const std::string& op, json::value result,
                        const json::value& id);

/// The response documents in object form — exactly what error_response /
/// ok_response serialize (same keys, same order). The batch envelope
/// embeds one per sub-op, so sub-op responses are byte-for-byte the lines
/// the same requests would get standalone (given the same "trace" field).
/// A non-empty `trace` — the client's request-correlation token — is
/// echoed between "id" and "ok"; empty adds nothing, so responses without
/// the feature are byte-identical to the pre-trace protocol.
json::value error_document(error_code code, const std::string& message,
                           const json::value& id,
                           const std::string& trace = std::string());
json::value ok_document(const std::string& op, json::value result,
                        const json::value& id,
                        const std::string& trace = std::string());

/// Cap on the client "trace" token; longer tokens are bad_request.
inline constexpr std::size_t max_trace_token_bytes = 128;

/// Extracts the optional "trace" correlation token ("" when absent).
/// Purely request-derived — echoing it cannot depend on server tracing
/// state, which is what keeps responses byte-identical with observability
/// on or off. Throws bad_request for non-string or oversized tokens.
std::string trace_token(const json::value& req);

// --- strict field extraction -------------------------------------------
// All throw request_error(bad_request, ...) naming the offending field.

/// Parses the line into a JSON object or throws request_error(parse_error).
json::value parse_request(const std::string& line);

/// Member lookup; throws when `key` is absent.
const json::value& require_member(const json::value& obj,
                                  const std::string& key);

/// Throws when `obj` has a key outside `allowed` (nullptr-terminated).
void reject_unknown_keys(const json::value& obj, const char* const* allowed);

std::string require_string(const json::value& obj, const std::string& key);
double require_number(const json::value& obj, const std::string& key);
std::uint64_t require_u64(const json::value& obj, const std::string& key);
std::uint64_t u64_or(const json::value& obj, const std::string& key,
                     std::uint64_t fallback);
std::string string_or(const json::value& obj, const std::string& key,
                      const std::string& fallback);

/// `require_u64` + inclusive range check (`limit_exceeded` above `hi`,
/// `bad_request` below `lo`).
std::uint64_t bounded_u64(const json::value& obj, const std::string& key,
                          std::uint64_t fallback, std::uint64_t lo,
                          std::uint64_t hi);

}  // namespace mcast::service
