// lmhat — closed-form k-ary tree sizes (Eq 2/3), no topology, never shed.
#include <cmath>
#include <vector>

#include "analysis/kary_exact.hpp"
#include "service/ops.hpp"

namespace mcast::service {

namespace {

/// `n` as a grid: a single number or an array of numbers, each >= 0.
std::vector<double> n_grid(const json::value& req, std::size_t max_points) {
  const json::value& n = require_member(req, "n");
  std::vector<double> grid;
  if (n.is(json::value::kind::number)) {
    grid.push_back(n.as_number());
  } else if (n.is(json::value::kind::array)) {
    if (n.items().empty()) {
      throw request_error(error_code::bad_request,
                          "field 'n' must not be an empty array");
    }
    if (n.items().size() > max_points) {
      throw request_error(error_code::limit_exceeded,
                          "field 'n' exceeds the service cap of " +
                              std::to_string(max_points) + " points");
    }
    for (const json::value& item : n.items()) {
      if (!item.is(json::value::kind::number)) {
        throw request_error(error_code::bad_request,
                            "field 'n' must contain only numbers");
      }
      grid.push_back(item.as_number());
    }
  } else {
    throw request_error(error_code::bad_request,
                        "field 'n' must be a number or an array of numbers");
  }
  for (const double v : grid) {
    if (!std::isfinite(v) || v < 0.0) {
      throw request_error(error_code::bad_request,
                          "field 'n' values must be finite and >= 0");
    }
  }
  return grid;
}

}  // namespace

json::value op_lmhat(const json::value& req, const op_context& ctx) {
  static const char* const allowed[] = {"op",    "id",    "trace", "k",
                                        "depth", "n",     "model", nullptr};
  reject_unknown_keys(req, allowed);
  require_member(req, "k");
  require_member(req, "depth");
  const unsigned k = static_cast<unsigned>(
      bounded_u64(req, "k", 0, 2, ctx.limits.max_kary_k));
  const unsigned depth = static_cast<unsigned>(
      bounded_u64(req, "depth", 0, 1, ctx.limits.max_kary_depth));
  const std::string model = string_or(req, "model", "leaves");
  if (model != "leaves" && model != "all_sites") {
    throw request_error(error_code::bad_request,
                        "field 'model' must be 'leaves' or 'all_sites'");
  }
  const bool leaves = model == "leaves";
  const std::vector<double> grid = n_grid(req, ctx.limits.max_points);

  const double sites =
      leaves ? kary_leaf_count(k, depth) : kary_site_count_all(k, depth);
  const double ubar = leaves ? kary_unicast_mean_leaves(depth)
                             : kary_unicast_mean_all_sites(k, depth);

  json::value rows = json::value::array();
  for (const double n : grid) {
    const double lhat = leaves ? kary_tree_size_leaves(k, depth, n)
                               : kary_tree_size_all_sites(k, depth, n);
    json::value row = json::value::object();
    row.set("n", num(n));
    row.set("lhat", num(lhat));
    row.set("lhat_over_ubar", num(lhat / ubar));
    rows.push(std::move(row));
  }

  json::value result = json::value::object();
  result.set("k", num_u(k));
  result.set("depth", num_u(depth));
  result.set("model", json::value::string(model));
  result.set("sites", num(sites));
  result.set("unicast_mean", num(ubar));
  result.set("rows", std::move(rows));
  return result;
}

}  // namespace mcast::service
