#include "service/commands.hpp"

#include <csignal>
#include <cstdint>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>

#include "common/json.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/protocol.hpp"
#include "service/query_service.hpp"

namespace mcast::service {
namespace {

[[noreturn]] void die(const std::string& message) {
  throw std::invalid_argument(message);
}

/// Strict whole-string u64 parse for flag values (mirrors lab/params.hpp,
/// which this library deliberately does not link).
std::uint64_t parse_flag_u64(const std::string& text, const std::string& flag) {
  if (text.empty()) die(flag + " needs a value");
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') die(flag + " expects an integer, got '" + text + "'");
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) die(flag + " value overflows");
    value = value * 10 + digit;
  }
  return value;
}

/// Accepts "--flag=value" and returns the value, or nullopt-style failure
/// via the bool. (No std::optional to keep the call sites terse.)
bool flag_value(const std::string& arg, const std::string& flag,
                std::string& out) {
  const std::string prefix = flag + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  out = arg.substr(prefix.size());
  return true;
}

struct serve_flags {
  std::uint16_t port = 0;
  std::size_t threads = 4;
  std::size_t queue = 64;
  std::size_t max_line = 1 << 20;
  bool metrics_summary = false;
  std::string profile_path;
};

serve_flags parse_serve_flags(const std::vector<std::string>& args) {
  serve_flags flags;
  for (const std::string& arg : args) {
    std::string value;
    if (flag_value(arg, "--port", value)) {
      const std::uint64_t port = parse_flag_u64(value, "--port");
      if (port > 65535) die("--port must be <= 65535");
      flags.port = static_cast<std::uint16_t>(port);
    } else if (flag_value(arg, "--threads", value)) {
      const std::uint64_t threads = parse_flag_u64(value, "--threads");
      if (threads == 0 || threads > 256) die("--threads must be in 1..256");
      flags.threads = static_cast<std::size_t>(threads);
    } else if (flag_value(arg, "--queue", value)) {
      const std::uint64_t queue = parse_flag_u64(value, "--queue");
      if (queue == 0 || queue > 65536) die("--queue must be in 1..65536");
      flags.queue = static_cast<std::size_t>(queue);
    } else if (flag_value(arg, "--max-line", value)) {
      const std::uint64_t bytes = parse_flag_u64(value, "--max-line");
      if (bytes < 256 || bytes > (1u << 26)) {
        die("--max-line must be in 256..67108864");
      }
      flags.max_line = static_cast<std::size_t>(bytes);
    } else if (arg == "--metrics-summary") {
      flags.metrics_summary = true;
    } else if (flag_value(arg, "--profile", value)) {
      if (value.empty()) die("--profile= needs a file path");
      flags.profile_path = value;
    } else {
      die("serve: unknown argument '" + arg + "'");
    }
  }
  return flags;
}

}  // namespace

int run_serve(const std::vector<std::string>& args) {
  const serve_flags flags = parse_serve_flags(args);

  // Block the shutdown signals before any thread exists so the acceptor
  // and workers inherit the mask; only this thread's sigwait sees them.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  if (pthread_sigmask(SIG_BLOCK, &signals, nullptr) != 0) {
    throw std::runtime_error("serve: pthread_sigmask failed");
  }

  if (!flags.profile_path.empty()) {
    obs::trace_clear();
    obs::trace_enable();
  }

  auto svc = std::make_shared<query_service>();
  net::server_config config;
  config.port = flags.port;
  config.workers = flags.threads;
  config.queue_capacity = flags.queue;
  config.max_line_bytes = flags.max_line;
  config.overload_response = error_response(
      error_code::overloaded, "connection queue full; retry later");
  config.overlong_response = error_response(
      error_code::bad_request,
      "request line exceeds " + std::to_string(flags.max_line) + " bytes");
  config.internal_error_response =
      error_response(error_code::internal_error, "request handler failed");

  net::line_server server(
      config, [svc](const std::string& line) { return svc->handle(line); });
  svc->set_stats_source([&server] { return server.stats(); });

  std::cerr << "[mcast_lab] serve: listening on 127.0.0.1:" << server.port()
            << " workers=" << flags.threads << " queue=" << flags.queue
            << "\n";
  std::cerr.flush();

  int caught = 0;
  while (sigwait(&signals, &caught) != 0) {
  }
  std::cerr << "[mcast_lab] serve: received "
            << (caught == SIGTERM ? "SIGTERM" : "SIGINT")
            << ", draining\n";
  server.shutdown();
  server.wait();

  const net::server_stats stats = server.stats();
  std::cerr << "[mcast_lab] serve: drained; " << stats.requests
            << " request(s), " << stats.accepted << " accepted, "
            << stats.rejected << " rejected\n";
  if (flags.metrics_summary) {
    obs::render_metrics_summary(std::cerr, obs::snapshot());
  }
  if (!flags.profile_path.empty()) {
    obs::trace_disable();
    const obs::trace_dump dump = obs::trace_collect();
    obs::write_chrome_trace_file(flags.profile_path, dump);
    std::cerr << "[mcast_lab] serve: trace " << flags.profile_path << " ("
              << dump.events.size() << " events, " << dump.dropped
              << " dropped)\n";
  }
  return 0;
}

int run_query(const std::vector<std::string>& args) {
  std::uint16_t port = 0;
  int timeout_ms = 120000;
  std::vector<std::string> requests;
  for (const std::string& arg : args) {
    std::string value;
    if (flag_value(arg, "--port", value)) {
      const std::uint64_t p = parse_flag_u64(value, "--port");
      if (p == 0 || p > 65535) die("--port must be in 1..65535");
      port = static_cast<std::uint16_t>(p);
    } else if (flag_value(arg, "--timeout-ms", value)) {
      const std::uint64_t t = parse_flag_u64(value, "--timeout-ms");
      if (t == 0 || t > 3600000) die("--timeout-ms must be in 1..3600000");
      timeout_ms = static_cast<int>(t);
    } else if (!arg.empty() && arg[0] == '-') {
      die("query: unknown option '" + arg + "'");
    } else {
      requests.push_back(arg);
    }
  }
  if (port == 0) die("query: --port=N is required");
  if (requests.empty()) {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (!line.empty()) requests.push_back(line);
    }
  }
  if (requests.empty()) die("query: no request lines (argv or stdin)");

  net::unique_fd conn = net::connect_loopback(port);
  bool all_ok = true;
  net::line_reader reader(conn.get(), 1 << 26);
  std::string response;
  for (const std::string& request : requests) {
    if (!net::send_all(conn.get(), request + "\n")) {
      std::cerr << "mcast_lab: query: server closed the connection\n";
      return 1;
    }
    const net::line_reader::status st = reader.read_line(response, timeout_ms);
    if (st != net::line_reader::status::line) {
      std::cerr << "mcast_lab: query: no response ("
                << (st == net::line_reader::status::timeout ? "timeout"
                                                            : "connection lost")
                << ")\n";
      return 1;
    }
    std::cout << response << "\n";
    try {
      const json::value doc = json::parse(response);
      const json::value* ok = doc.get("ok");
      if (ok == nullptr || !ok->is(json::value::kind::boolean) ||
          !ok->as_bool()) {
        all_ok = false;
      }
    } catch (const std::exception&) {
      all_ok = false;
    }
  }
  std::cout.flush();
  return all_ok ? 0 : 1;
}

}  // namespace mcast::service
