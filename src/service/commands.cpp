#include "service/commands.hpp"

#include <csignal>
#include <cstdint>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>

#include "common/json.hpp"
#include "net/chaos.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/query_service.hpp"

namespace mcast::service {
namespace {

[[noreturn]] void die(const std::string& message) {
  throw std::invalid_argument(message);
}

/// Strict whole-string u64 parse for flag values (mirrors lab/params.hpp,
/// which this library deliberately does not link).
std::uint64_t parse_flag_u64(const std::string& text, const std::string& flag) {
  if (text.empty()) die(flag + " needs a value");
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') die(flag + " expects an integer, got '" + text + "'");
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) die(flag + " value overflows");
    value = value * 10 + digit;
  }
  return value;
}

/// Strict probability parse for the shed thresholds.
double parse_flag_fraction(const std::string& text, const std::string& flag) {
  std::size_t used = 0;
  double v = 0.0;
  try {
    v = std::stod(text, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != text.size() || !(v >= 0.0 && v <= 1.0)) {
    die(flag + " expects a fraction in [0,1], got '" + text + "'");
  }
  return v;
}

/// Accepts "--flag=value" and returns the value, or nullopt-style failure
/// via the bool. (No std::optional to keep the call sites terse.)
bool flag_value(const std::string& arg, const std::string& flag,
                std::string& out) {
  const std::string prefix = flag + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  out = arg.substr(prefix.size());
  return true;
}

struct serve_flags {
  std::uint16_t port = 0;
  std::size_t threads = 4;
  std::size_t queue = 64;
  std::size_t max_line = 1 << 20;
  int drain_ms = 5000;
  int line_deadline_ms = 30000;
  int write_deadline_ms = 30000;
  double shed_degrade = 2.0;  // > 1 = disabled
  double shed_refuse = 2.0;   // > 1 = disabled
  std::string chaos_spec;
  bool metrics_summary = false;
  std::string profile_path;
};

/// A deadline flag: integer ms, or "off" to disable (maps to -1).
int parse_deadline_ms(const std::string& text, const std::string& flag) {
  if (text == "off") return -1;
  const std::uint64_t ms = parse_flag_u64(text, flag);
  if (ms > 3600000) die(flag + " must be <= 3600000 (or 'off')");
  return static_cast<int>(ms);
}

serve_flags parse_serve_flags(const std::vector<std::string>& args) {
  serve_flags flags;
  for (const std::string& arg : args) {
    std::string value;
    if (flag_value(arg, "--port", value)) {
      const std::uint64_t port = parse_flag_u64(value, "--port");
      if (port > 65535) die("--port must be <= 65535");
      flags.port = static_cast<std::uint16_t>(port);
    } else if (flag_value(arg, "--threads", value)) {
      const std::uint64_t threads = parse_flag_u64(value, "--threads");
      if (threads == 0 || threads > 256) die("--threads must be in 1..256");
      flags.threads = static_cast<std::size_t>(threads);
    } else if (flag_value(arg, "--queue", value)) {
      const std::uint64_t queue = parse_flag_u64(value, "--queue");
      if (queue == 0 || queue > 65536) die("--queue must be in 1..65536");
      flags.queue = static_cast<std::size_t>(queue);
    } else if (flag_value(arg, "--max-line", value)) {
      const std::uint64_t bytes = parse_flag_u64(value, "--max-line");
      if (bytes < 256 || bytes > (1u << 26)) {
        die("--max-line must be in 256..67108864");
      }
      flags.max_line = static_cast<std::size_t>(bytes);
    } else if (flag_value(arg, "--drain-ms", value)) {
      flags.drain_ms = parse_deadline_ms(value, "--drain-ms");
    } else if (flag_value(arg, "--line-deadline-ms", value)) {
      flags.line_deadline_ms = parse_deadline_ms(value, "--line-deadline-ms");
    } else if (flag_value(arg, "--write-deadline-ms", value)) {
      flags.write_deadline_ms = parse_deadline_ms(value, "--write-deadline-ms");
    } else if (flag_value(arg, "--shed-degrade", value)) {
      flags.shed_degrade = parse_flag_fraction(value, "--shed-degrade");
    } else if (flag_value(arg, "--shed-refuse", value)) {
      flags.shed_refuse = parse_flag_fraction(value, "--shed-refuse");
    } else if (flag_value(arg, "--chaos", value)) {
      if (value.empty()) die("--chaos= needs a spec (try --chaos=default)");
      flags.chaos_spec = value;
    } else if (arg == "--metrics-summary") {
      flags.metrics_summary = true;
    } else if (flag_value(arg, "--profile", value)) {
      if (value.empty()) die("--profile= needs a file path");
      flags.profile_path = value;
    } else {
      die("serve: unknown argument '" + arg + "'");
    }
  }
  return flags;
}

}  // namespace

int run_serve(const std::vector<std::string>& args) {
  const serve_flags flags = parse_serve_flags(args);

  // Block the shutdown signals before any thread exists so the acceptor
  // and workers inherit the mask; only this thread's sigwait sees them.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  if (pthread_sigmask(SIG_BLOCK, &signals, nullptr) != 0) {
    throw std::runtime_error("serve: pthread_sigmask failed");
  }

  if (!flags.profile_path.empty()) {
    obs::trace_clear();
    obs::trace_enable();
  }

  auto svc = std::make_shared<query_service>();
  net::server_config config;
  config.port = flags.port;
  config.workers = flags.threads;
  config.queue_capacity = flags.queue;
  config.max_line_bytes = flags.max_line;
  config.line_deadline_ms = flags.line_deadline_ms;
  config.write_deadline_ms = flags.write_deadline_ms;
  config.drain_deadline_ms = flags.drain_ms;
  config.overload_response = error_response(
      error_code::overloaded, "connection queue full; retry later");
  config.overlong_response = error_response(
      error_code::limit_exceeded,
      "request line exceeds " + std::to_string(flags.max_line) + " bytes");
  config.internal_error_response =
      error_response(error_code::internal_error, "request handler failed");
  config.deadline_response = error_response(
      error_code::deadline_exceeded,
      "request or response outlived the server's deadline");
  if (!flags.chaos_spec.empty()) {
    config.chaos = std::make_shared<const net::chaos_engine>(
        net::chaos_spec::parse(flags.chaos_spec));
  }

  net::line_server server(
      config, [svc](const std::string& line) { return svc->handle(line); });
  svc->set_stats_source([&server] { return server.stats(); });
  if (flags.shed_degrade <= 1.0 || flags.shed_refuse <= 1.0) {
    shed_policy policy;
    policy.degrade_at = flags.shed_degrade;
    policy.refuse_at = flags.shed_refuse;
    svc->set_shed_policy(policy);
    const double capacity = static_cast<double>(flags.queue);
    svc->set_pressure_source([&server, capacity] {
      return static_cast<double>(server.stats().queue_depth) / capacity;
    });
  }

  std::cerr << "[mcast_lab] serve: listening on 127.0.0.1:" << server.port()
            << " workers=" << flags.threads << " queue=" << flags.queue
            << "\n";
  if (config.chaos) {
    std::cerr << "[mcast_lab] serve: chaos enabled ("
              << config.chaos->spec().describe() << ")\n";
  }
  std::cerr.flush();

  int caught = 0;
  while (sigwait(&signals, &caught) != 0) {
  }
  std::cerr << "[mcast_lab] serve: received "
            << (caught == SIGTERM ? "SIGTERM" : "SIGINT")
            << ", draining\n";
  server.shutdown();
  server.wait();

  const net::server_stats stats = server.stats();
  std::cerr << "[mcast_lab] serve: drained; " << stats.requests
            << " request(s), " << stats.accepted << " accepted, "
            << stats.rejected << " rejected, " << stats.drain_forced
            << " force-closed\n";
  if (flags.metrics_summary) {
    obs::render_metrics_summary(std::cerr, obs::snapshot());
  }
  if (!flags.profile_path.empty()) {
    obs::trace_disable();
    const obs::trace_dump dump = obs::trace_collect();
    obs::write_chrome_trace_file(flags.profile_path, dump);
    std::cerr << "[mcast_lab] serve: trace " << flags.profile_path << " ("
              << dump.events.size() << " events, " << dump.dropped
              << " dropped)\n";
  }
  return 0;
}

int run_query(const std::vector<std::string>& args) {
  std::uint16_t port = 0;
  retry_policy policy;
  policy.attempt_timeout_ms = 120000;
  std::vector<std::string> requests;
  for (const std::string& arg : args) {
    std::string value;
    if (flag_value(arg, "--port", value)) {
      const std::uint64_t p = parse_flag_u64(value, "--port");
      if (p == 0 || p > 65535) die("--port must be in 1..65535");
      port = static_cast<std::uint16_t>(p);
    } else if (flag_value(arg, "--timeout-ms", value)) {
      const std::uint64_t t = parse_flag_u64(value, "--timeout-ms");
      if (t == 0 || t > 3600000) die("--timeout-ms must be in 1..3600000");
      policy.attempt_timeout_ms = static_cast<int>(t);
    } else if (flag_value(arg, "--retries", value)) {
      const std::uint64_t n = parse_flag_u64(value, "--retries");
      if (n == 0 || n > 100) die("--retries must be in 1..100");
      policy.max_attempts = static_cast<int>(n);
    } else if (flag_value(arg, "--backoff-ms", value)) {
      const std::uint64_t b = parse_flag_u64(value, "--backoff-ms");
      if (b > 60000) die("--backoff-ms must be <= 60000");
      policy.backoff_base_ms = static_cast<int>(b);
    } else if (flag_value(arg, "--seed", value)) {
      policy.seed = parse_flag_u64(value, "--seed");
    } else if (!arg.empty() && arg[0] == '-') {
      die("query: unknown option '" + arg + "'");
    } else {
      requests.push_back(arg);
    }
  }
  if (port == 0) die("query: --port=N is required");
  if (requests.empty()) {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (!line.empty()) requests.push_back(line);
    }
  }
  if (requests.empty()) die("query: no request lines (argv or stdin)");

  // Exit codes (docs/resilience.md): 0 all ok, 1 usage, 2 typed server
  // error, 3 connect refused after retries, 4 timeout / connection lost
  // after retries. Transport failures abort the batch (later requests
  // would hit the same wall); typed errors keep going so a mixed batch
  // still prints every response it can get.
  retry_client client(port, policy);
  int exit_code = 0;
  for (const std::string& request : requests) {
    const call_result result = client.call(request);
    if (!result.response.empty()) std::cout << result.response << "\n";
    switch (result.status) {
      case call_status::ok:
        break;
      case call_status::server_error:
        std::cerr << "mcast_lab: query: server error"
                  << (result.error_code.empty() ? ""
                                                : " (" + result.error_code + ")")
                  << " after " << result.attempts << " attempt(s)\n";
        exit_code = 2;
        break;
      case call_status::connect_refused:
        std::cerr << "mcast_lab: query: connection refused after "
                  << result.attempts << " attempt(s)\n";
        std::cout.flush();
        return 3;
      case call_status::timeout:
      case call_status::connection_lost:
        std::cerr << "mcast_lab: query: no response ("
                  << call_status_name(result.status) << ") after "
                  << result.attempts << " attempt(s)\n";
        std::cout.flush();
        return 4;
    }
  }
  std::cout.flush();
  return exit_code;
}

}  // namespace mcast::service
