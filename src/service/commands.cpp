#include "service/commands.hpp"

#include <csignal>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>

#include "common/json.hpp"
#include "net/chaos.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "obs/access_log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/query_service.hpp"
#include "service/shard_router.hpp"
#include "topo/cache.hpp"

namespace mcast::service {
namespace {

[[noreturn]] void die(const std::string& message) {
  throw std::invalid_argument(message);
}

/// Strict whole-string u64 parse for flag values (mirrors lab/params.hpp,
/// which this library deliberately does not link).
std::uint64_t parse_flag_u64(const std::string& text, const std::string& flag) {
  if (text.empty()) die(flag + " needs a value");
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') die(flag + " expects an integer, got '" + text + "'");
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) die(flag + " value overflows");
    value = value * 10 + digit;
  }
  return value;
}

/// Strict probability parse for the shed thresholds.
double parse_flag_fraction(const std::string& text, const std::string& flag) {
  std::size_t used = 0;
  double v = 0.0;
  try {
    v = std::stod(text, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != text.size() || !(v >= 0.0 && v <= 1.0)) {
    die(flag + " expects a fraction in [0,1], got '" + text + "'");
  }
  return v;
}

/// Accepts "--flag=value" and returns the value, or nullopt-style failure
/// via the bool. (No std::optional to keep the call sites terse.)
bool flag_value(const std::string& arg, const std::string& flag,
                std::string& out) {
  const std::string prefix = flag + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  out = arg.substr(prefix.size());
  return true;
}

struct serve_flags {
  std::uint16_t port = 0;
  std::size_t threads = 4;
  std::size_t queue = 64;
  std::size_t max_line = 1 << 20;
  int drain_ms = 5000;
  int line_deadline_ms = 30000;
  int write_deadline_ms = 30000;
  double shed_degrade = 2.0;  // > 1 = disabled
  double shed_refuse = 2.0;   // > 1 = disabled
  std::string chaos_spec;
  bool metrics_summary = false;
  std::string profile_path;
  std::size_t shards = 0;        // 0 = monolithic query_service (legacy path)
  std::size_t shard_workers = 2;
  std::size_t shard_queue = 256;
  std::string warm_spec = "ARPA";  // "none" disables the warm tier
  std::string access_log_path;     // "" = access log off
  std::uint64_t slow_us = 0;       // 0 = no slow-query threshold
  std::uint64_t trace_seed = 0;    // salts the minted request trace ids
};

/// Warm-tier spec: "none", or comma-separated `name[:budget]` entries
/// warmed at the service's default topology_seed (7), e.g.
/// "ARPA,MBone,ts1000:300".
std::vector<topology_key> parse_warm_spec(const std::string& spec) {
  std::vector<topology_key> keys;
  if (spec == "none" || spec.empty()) return keys;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(begin, end - begin);
    if (entry.empty()) die("--warm entries must not be empty");
    topology_key key;
    key.seed = 7;  // the protocol's topology_seed default
    const std::size_t colon = entry.find(':');
    if (colon == std::string::npos) {
      key.name = entry;
    } else {
      key.name = entry.substr(0, colon);
      const std::uint64_t budget =
          parse_flag_u64(entry.substr(colon + 1), "--warm budget");
      if (budget < 64 || budget > 200000) {
        die("--warm budgets must be in 64..200000");
      }
      key.budget = static_cast<node_id>(budget);
    }
    if (key.name.empty()) die("--warm entries need a topology name");
    keys.push_back(std::move(key));
    begin = end + 1;
    if (end == spec.size()) break;
  }
  return keys;
}

/// A deadline flag: integer ms, or "off" to disable (maps to -1).
int parse_deadline_ms(const std::string& text, const std::string& flag) {
  if (text == "off") return -1;
  const std::uint64_t ms = parse_flag_u64(text, flag);
  if (ms > 3600000) die(flag + " must be <= 3600000 (or 'off')");
  return static_cast<int>(ms);
}

serve_flags parse_serve_flags(const std::vector<std::string>& args) {
  serve_flags flags;
  for (const std::string& arg : args) {
    std::string value;
    if (flag_value(arg, "--port", value)) {
      const std::uint64_t port = parse_flag_u64(value, "--port");
      if (port > 65535) die("--port must be <= 65535");
      flags.port = static_cast<std::uint16_t>(port);
    } else if (flag_value(arg, "--threads", value)) {
      const std::uint64_t threads = parse_flag_u64(value, "--threads");
      if (threads == 0 || threads > 256) die("--threads must be in 1..256");
      flags.threads = static_cast<std::size_t>(threads);
    } else if (flag_value(arg, "--queue", value)) {
      const std::uint64_t queue = parse_flag_u64(value, "--queue");
      if (queue == 0 || queue > 65536) die("--queue must be in 1..65536");
      flags.queue = static_cast<std::size_t>(queue);
    } else if (flag_value(arg, "--max-line", value)) {
      const std::uint64_t bytes = parse_flag_u64(value, "--max-line");
      if (bytes < 256 || bytes > (1u << 26)) {
        die("--max-line must be in 256..67108864");
      }
      flags.max_line = static_cast<std::size_t>(bytes);
    } else if (flag_value(arg, "--drain-ms", value)) {
      flags.drain_ms = parse_deadline_ms(value, "--drain-ms");
    } else if (flag_value(arg, "--line-deadline-ms", value)) {
      flags.line_deadline_ms = parse_deadline_ms(value, "--line-deadline-ms");
    } else if (flag_value(arg, "--write-deadline-ms", value)) {
      flags.write_deadline_ms = parse_deadline_ms(value, "--write-deadline-ms");
    } else if (flag_value(arg, "--shed-degrade", value)) {
      flags.shed_degrade = parse_flag_fraction(value, "--shed-degrade");
    } else if (flag_value(arg, "--shed-refuse", value)) {
      flags.shed_refuse = parse_flag_fraction(value, "--shed-refuse");
    } else if (flag_value(arg, "--chaos", value)) {
      if (value.empty()) die("--chaos= needs a spec (try --chaos=default)");
      flags.chaos_spec = value;
    } else if (arg == "--metrics-summary") {
      flags.metrics_summary = true;
    } else if (flag_value(arg, "--profile", value)) {
      if (value.empty()) die("--profile= needs a file path");
      flags.profile_path = value;
    } else if (flag_value(arg, "--shards", value)) {
      const std::uint64_t shards = parse_flag_u64(value, "--shards");
      if (shards == 0 || shards > 64) die("--shards must be in 1..64");
      flags.shards = static_cast<std::size_t>(shards);
    } else if (flag_value(arg, "--shard-workers", value)) {
      const std::uint64_t workers = parse_flag_u64(value, "--shard-workers");
      if (workers == 0 || workers > 64) die("--shard-workers must be in 1..64");
      flags.shard_workers = static_cast<std::size_t>(workers);
    } else if (flag_value(arg, "--shard-queue", value)) {
      const std::uint64_t queue = parse_flag_u64(value, "--shard-queue");
      if (queue == 0 || queue > 65536) die("--shard-queue must be in 1..65536");
      flags.shard_queue = static_cast<std::size_t>(queue);
    } else if (flag_value(arg, "--warm", value)) {
      flags.warm_spec = value;
      parse_warm_spec(value);  // validate eagerly so bad specs die at parse
    } else if (flag_value(arg, "--access-log", value)) {
      if (value.empty()) die("--access-log= needs a file path");
      flags.access_log_path = value;
    } else if (flag_value(arg, "--slow-us", value)) {
      flags.slow_us = parse_flag_u64(value, "--slow-us");
    } else if (flag_value(arg, "--trace-seed", value)) {
      flags.trace_seed = parse_flag_u64(value, "--trace-seed");
    } else {
      die("serve: unknown argument '" + arg + "'");
    }
  }
  return flags;
}

}  // namespace

int run_serve(const std::vector<std::string>& args) {
  const serve_flags flags = parse_serve_flags(args);

  // Block the shutdown signals before any thread exists so the acceptor
  // and workers inherit the mask; only this thread's sigwait sees them.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  if (pthread_sigmask(SIG_BLOCK, &signals, nullptr) != 0) {
    throw std::runtime_error("serve: pthread_sigmask failed");
  }

  if (!flags.profile_path.empty()) {
    obs::trace_clear();
    obs::trace_enable();
  }
  if (!flags.access_log_path.empty()) {
    obs::access_log_enable(flags.access_log_path, flags.slow_us * 1000);
  }

  // --shards=N swaps the monolithic query_service for the sharded core
  // (service/shard_router.hpp); both expose the same handle()/set_*
  // surface, so the line_server wiring below is host-agnostic.
  std::shared_ptr<query_service> mono;
  std::shared_ptr<sharded_service> sharded;
  if (flags.shards > 0) {
    sharded_config shard_config;
    shard_config.shards = flags.shards;
    shard_config.shard_workers = flags.shard_workers;
    shard_config.shard_queue = flags.shard_queue;
    sharded = std::make_shared<sharded_service>(shard_config);
    sharded->warm(parse_warm_spec(flags.warm_spec));
  } else {
    mono = std::make_shared<query_service>();
  }

  net::server_config config;
  config.port = flags.port;
  config.workers = flags.threads;
  config.queue_capacity = flags.queue;
  config.max_line_bytes = flags.max_line;
  config.line_deadline_ms = flags.line_deadline_ms;
  config.write_deadline_ms = flags.write_deadline_ms;
  config.drain_deadline_ms = flags.drain_ms;
  config.trace_seed = flags.trace_seed;
  config.overload_response = error_response(
      error_code::overloaded, "connection queue full; retry later");
  config.overlong_response = error_response(
      error_code::limit_exceeded,
      "request line exceeds " + std::to_string(flags.max_line) + " bytes");
  config.internal_error_response =
      error_response(error_code::internal_error, "request handler failed");
  config.deadline_response = error_response(
      error_code::deadline_exceeded,
      "request or response outlived the server's deadline");
  if (!flags.chaos_spec.empty()) {
    config.chaos = std::make_shared<const net::chaos_engine>(
        net::chaos_spec::parse(flags.chaos_spec));
  }

  net::line_server server(config, [mono, sharded](const std::string& line) {
    return sharded ? sharded->handle(line) : mono->handle(line);
  });
  auto stats_source = [&server] { return server.stats(); };
  if (sharded) {
    sharded->set_stats_source(stats_source);
  } else {
    mono->set_stats_source(stats_source);
  }
  if (flags.shed_degrade <= 1.0 || flags.shed_refuse <= 1.0) {
    shed_policy policy;
    policy.degrade_at = flags.shed_degrade;
    policy.refuse_at = flags.shed_refuse;
    const double capacity = static_cast<double>(flags.queue);
    auto pressure_source = [&server, capacity] {
      return static_cast<double>(server.stats().queue_depth) / capacity;
    };
    if (sharded) {
      sharded->set_shed_policy(policy);
      sharded->set_pressure_source(pressure_source);
    } else {
      mono->set_shed_policy(policy);
      mono->set_pressure_source(pressure_source);
    }
  }

  std::cerr << "[mcast_lab] serve: listening on 127.0.0.1:" << server.port()
            << " workers=" << flags.threads << " queue=" << flags.queue;
  if (sharded) {
    std::cerr << " shards=" << sharded->shard_count()
              << " shard-workers=" << flags.shard_workers
              << " shard-queue=" << flags.shard_queue
              << " warm=" << sharded->warm_tier().size();
  }
  if (!flags.access_log_path.empty()) {
    std::cerr << " access-log=" << flags.access_log_path;
    if (flags.slow_us > 0) std::cerr << " slow-us=" << flags.slow_us;
  }
  std::cerr << "\n";
  if (config.chaos) {
    std::cerr << "[mcast_lab] serve: chaos enabled ("
              << config.chaos->spec().describe() << ")\n";
  }
  std::cerr.flush();

  int caught = 0;
  while (sigwait(&signals, &caught) != 0) {
  }
  std::cerr << "[mcast_lab] serve: received "
            << (caught == SIGTERM ? "SIGTERM" : "SIGINT")
            << ", draining\n";
  server.shutdown();
  server.wait();

  const net::server_stats stats = server.stats();
  std::cerr << "[mcast_lab] serve: drained; " << stats.requests
            << " request(s), " << stats.accepted << " accepted, "
            << stats.rejected << " rejected, " << stats.drain_forced
            << " force-closed\n";
  if (!flags.access_log_path.empty()) {
    obs::access_log_disable();  // flush before the process exits
  }
  if (flags.metrics_summary) {
    obs::render_metrics_summary(std::cerr, obs::snapshot());
  }
  if (!flags.profile_path.empty()) {
    obs::trace_disable();
    const obs::trace_dump dump = obs::trace_collect();
    obs::write_chrome_trace_file(flags.profile_path, dump);
    std::cerr << "[mcast_lab] serve: trace " << flags.profile_path << " ("
              << dump.events.size() << " events, " << dump.dropped
              << " dropped)\n";
  }
  return 0;
}

int run_query(const std::vector<std::string>& args) {
  std::uint16_t port = 0;
  retry_policy policy;
  policy.attempt_timeout_ms = 120000;
  std::string batch_path;
  std::vector<std::string> requests;
  for (const std::string& arg : args) {
    std::string value;
    if (flag_value(arg, "--batch", value)) {
      if (value.empty()) die("--batch= needs a file path");
      batch_path = value;
    } else if (flag_value(arg, "--port", value)) {
      const std::uint64_t p = parse_flag_u64(value, "--port");
      if (p == 0 || p > 65535) die("--port must be in 1..65535");
      port = static_cast<std::uint16_t>(p);
    } else if (flag_value(arg, "--timeout-ms", value)) {
      const std::uint64_t t = parse_flag_u64(value, "--timeout-ms");
      if (t == 0 || t > 3600000) die("--timeout-ms must be in 1..3600000");
      policy.attempt_timeout_ms = static_cast<int>(t);
    } else if (flag_value(arg, "--retries", value)) {
      const std::uint64_t n = parse_flag_u64(value, "--retries");
      if (n == 0 || n > 100) die("--retries must be in 1..100");
      policy.max_attempts = static_cast<int>(n);
    } else if (flag_value(arg, "--backoff-ms", value)) {
      const std::uint64_t b = parse_flag_u64(value, "--backoff-ms");
      if (b > 60000) die("--backoff-ms must be <= 60000");
      policy.backoff_base_ms = static_cast<int>(b);
    } else if (flag_value(arg, "--seed", value)) {
      policy.seed = parse_flag_u64(value, "--seed");
    } else if (flag_value(arg, "--trace", value)) {
      if (value.empty()) die("--trace= needs a token base");
      if (value.size() > max_trace_token_bytes - 8) {
        die("--trace token base is too long (limit " +
            std::to_string(max_trace_token_bytes - 8) + " bytes)");
      }
      policy.trace_base = value;
    } else if (!arg.empty() && arg[0] == '-') {
      die("query: unknown option '" + arg + "'");
    } else {
      requests.push_back(arg);
    }
  }
  if (port == 0) die("query: --port=N is required");
  if (!batch_path.empty()) {
    // --batch FILE: one sub-op per line, folded into a single batch
    // envelope so the whole file is one request/response round trip.
    if (!requests.empty()) {
      die("query: --batch cannot be mixed with positional request lines");
    }
    std::ifstream in(batch_path);
    if (!in) die("query: cannot open batch file '" + batch_path + "'");
    json::value ops = json::value::array();
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
      ++line_no;
      if (line.empty()) continue;
      try {
        ops.push(json::parse(line));
      } catch (const std::exception& e) {
        die("query: " + batch_path + ":" + std::to_string(line_no) +
            ": invalid JSON (" + e.what() + ")");
      }
    }
    if (ops.items().empty()) die("query: batch file has no request lines");
    json::value envelope = json::value::object();
    envelope.set("op", json::value::string("batch"));
    envelope.set("ops", std::move(ops));
    requests.push_back(json::dump_compact(envelope));
  } else if (requests.empty()) {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (!line.empty()) requests.push_back(line);
    }
  }
  if (requests.empty()) die("query: no request lines (argv or stdin)");

  // Exit codes (docs/resilience.md): 0 all ok, 1 usage, 2 typed server
  // error, 3 connect refused after retries, 4 timeout / connection lost
  // after retries. Transport failures abort the batch (later requests
  // would hit the same wall); typed errors keep going so a mixed batch
  // still prints every response it can get.
  retry_client client(port, policy);
  int exit_code = 0;
  for (const std::string& request : requests) {
    const call_result result = client.call(request);
    if (!batch_path.empty() && result.status == call_status::ok) {
      // Unpack the envelope: one result document per input line, in input
      // order; any failed sub-op turns the exit code into 2 (the same
      // aggregation positional request lines get from typed errors).
      const json::value doc = json::parse(result.response);
      const json::value* res = doc.get("result");
      const json::value* results =
          res == nullptr ? nullptr : res->get("results");
      if (results == nullptr || !results->is(json::value::kind::array)) {
        std::cout << result.response << "\n";
        std::cerr << "mcast_lab: query: batch response missing results\n";
        exit_code = 2;
        continue;
      }
      for (const json::value& sub : results->items()) {
        std::cout << json::dump_compact(sub) << "\n";
      }
      const json::value* errors = res->get("error_count");
      if (errors != nullptr && errors->as_number() > 0) {
        std::cerr << "mcast_lab: query: " << errors->as_number() << " of "
                  << results->items().size() << " batch sub-op(s) failed\n";
        exit_code = 2;
      }
      continue;
    }
    if (!result.response.empty()) std::cout << result.response << "\n";
    switch (result.status) {
      case call_status::ok:
        break;
      case call_status::server_error:
        std::cerr << "mcast_lab: query: server error"
                  << (result.error_code.empty() ? ""
                                                : " (" + result.error_code + ")")
                  << " after " << result.attempts << " attempt(s)\n";
        exit_code = 2;
        break;
      case call_status::connect_refused:
        std::cerr << "mcast_lab: query: connection refused after "
                  << result.attempts << " attempt(s)\n";
        std::cout.flush();
        return 3;
      case call_status::timeout:
      case call_status::connection_lost:
        std::cerr << "mcast_lab: query: no response ("
                  << call_status_name(result.status) << ") after "
                  << result.attempts << " attempt(s)\n";
        std::cout.flush();
        return 4;
    }
  }
  std::cout.flush();
  return exit_code;
}

}  // namespace mcast::service
