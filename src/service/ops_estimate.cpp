// lm_estimate — Monte-Carlo L(m)/L̂(n) over a catalog topology.
//
// Split into plan (validate + resolve, on the routing thread), run (the
// source-range fold, wherever the host wants it), and render (rows + the
// Chuang-Sirbu fit). The serial path below and the sharded scatter path
// (shard_router.cpp) are compositions of the same three stages over the
// same per-source blocks, so their result payloads are byte-identical.
#include <cmath>
#include <utility>
#include <vector>

#include "analysis/reachability.hpp"
#include "core/scaling_law.hpp"
#include "service/ops.hpp"

namespace mcast::service {

namespace {

json::value point_row(const scaling_point& p) {
  json::value row = json::value::object();
  row.set("group_size", num_u(p.group_size));
  row.set("tree_links_mean", num(p.tree_links_mean));
  row.set("tree_links_stderr", num(p.tree_links_stderr));
  row.set("unicast_mean", num(p.unicast_mean));
  row.set("ratio_mean", num(p.ratio_mean));
  row.set("ratio_stderr", num(p.ratio_stderr));
  row.set("samples", num_u(p.samples));
  return row;
}

}  // namespace

lm_plan plan_lm_estimate(const json::value& req, const op_context& ctx) {
  static const char* const allowed[] = {
      "op",          "id",    "trace",         "topology",
      "topology_seed", "budget", "seed",       "group_sizes",
      "grid_points", "sources", "model",       "receiver_sets",
      "threads",     nullptr};
  reject_unknown_keys(req, allowed);
  lm_plan plan;
  plan.g = resolve_topology(req, ctx);
  const graph& g = *plan.g;
  const std::uint64_t sites = g.node_count() - 1;

  plan.model = string_or(req, "model", "distinct");
  if (plan.model != "distinct" && plan.model != "replacement") {
    throw request_error(error_code::bad_request,
                        "field 'model' must be 'distinct' or 'replacement'");
  }
  plan.distinct = plan.model == "distinct";

  if (req.get("group_sizes") != nullptr) {
    if (req.get("grid_points") != nullptr) {
      throw request_error(
          error_code::bad_request,
          "give either 'group_sizes' or 'grid_points', not both");
    }
    const json::value& gs = require_member(req, "group_sizes");
    if (!gs.is(json::value::kind::array) || gs.items().empty()) {
      throw request_error(error_code::bad_request,
                          "field 'group_sizes' must be a non-empty array");
    }
    if (gs.items().size() > ctx.limits.max_group_sizes) {
      throw request_error(error_code::limit_exceeded,
                          "field 'group_sizes' exceeds the service cap of " +
                              std::to_string(ctx.limits.max_group_sizes));
    }
    for (const json::value& item : gs.items()) {
      if (!item.is(json::value::kind::number) || item.as_number() < 1.0 ||
          item.as_number() != std::floor(item.as_number())) {
        throw request_error(error_code::bad_request,
                            "field 'group_sizes' must hold integers >= 1");
      }
      plan.grid.push_back(static_cast<std::uint64_t>(item.as_number()));
    }
  } else {
    const std::uint64_t points = bounded_u64(req, "grid_points", 12, 2,
                                             ctx.limits.max_group_sizes);
    plan.grid = default_group_grid(sites, static_cast<std::size_t>(points));
  }
  if (plan.distinct) {
    for (const std::uint64_t m : plan.grid) {
      if (m > sites) {
        throw request_error(error_code::bad_request,
                            "group size " + std::to_string(m) +
                                " exceeds the topology's " +
                                std::to_string(sites) + " candidate sites");
      }
    }
  }

  plan.mc.seed = u64_or(req, "seed", 1999);
  plan.mc.sources = static_cast<std::size_t>(
      bounded_u64(req, "sources", 20, 1, ctx.limits.max_sources));
  plan.mc.receiver_sets = static_cast<std::size_t>(
      bounded_u64(req, "receiver_sets", 20, 1, ctx.limits.max_receiver_sets));
  plan.mc.threads = static_cast<std::size_t>(
      bounded_u64(req, "threads", 1, 1, ctx.limits.max_threads));
  return plan;
}

std::vector<std::vector<mc_cell>> run_lm_sources(const lm_plan& plan,
                                                 std::size_t begin,
                                                 std::size_t end) {
  return plan.distinct
             ? measure_sources_distinct(*plan.g, plan.grid, plan.mc, begin,
                                        end)
             : measure_sources_with_replacement(*plan.g, plan.grid, plan.mc,
                                                begin, end);
}

std::vector<scaling_point> lm_closed_form(const lm_plan& plan) {
  // Under pressure: answer from the Chuang-Sirbu closed form (Eq 4),
  // L(m) ≈ ū·m^0.8, with ū from a single BFS instead of the full
  // Monte-Carlo sweep. samples = 0 marks every row as model-derived.
  const double ubar = reachability_from(*plan.g, 0).mean_distance();
  std::vector<scaling_point> points;
  points.reserve(plan.grid.size());
  for (const std::uint64_t m : plan.grid) {
    scaling_point p;
    p.group_size = m;
    p.ratio_mean = std::pow(static_cast<double>(m), 0.8);
    p.tree_links_mean = ubar * p.ratio_mean;
    p.tree_links_stderr = 0.0;
    p.unicast_mean = ubar;
    p.ratio_stderr = 0.0;
    p.samples = 0;
    points.push_back(p);
  }
  return points;
}

json::value render_lm_estimate(const lm_plan& plan,
                               const std::vector<scaling_point>& points,
                               bool degraded) {
  const graph& g = *plan.g;
  json::value rows = json::value::array();
  for (const scaling_point& p : points) rows.push(point_row(p));

  json::value result = json::value::object();
  result.set("topology", json::value::string(g.name()));
  result.set("nodes", num_u(g.node_count()));
  result.set("edges", num_u(g.edge_count()));
  result.set("model", json::value::string(plan.model));
  result.set("seed", num_u(plan.mc.seed));
  // Present only when shed to the closed form, so the fault-free response
  // stays byte-identical to what it was before shedding existed.
  if (degraded) result.set("degraded", json::value::boolean(true));
  result.set("rows", std::move(rows));

  // The Chuang-Sirbu fit over the paper's window, when enough of the
  // grid falls inside it to be meaningful.
  std::size_t usable = 0;
  for (const scaling_point& p : points) {
    if (p.samples > 0 && p.group_size >= 2 && p.group_size <= 500) ++usable;
  }
  if (usable >= 3) {
    const scaling_law law = scaling_law::fit_to(points, 2.0, 500.0);
    json::value fit = json::value::object();
    fit.set("amplitude", num(law.amplitude()));
    fit.set("exponent", num(law.exponent()));
    fit.set("r_squared", num(law.r_squared()));
    result.set("fit", std::move(fit));
  }
  return result;
}

json::value op_lm_estimate(const json::value& req, const op_context& ctx,
                           bool degraded) {
  const lm_plan plan = plan_lm_estimate(req, ctx);
  if (degraded) return render_lm_estimate(plan, lm_closed_form(plan), true);
  const std::vector<scaling_point> points = splice_source_cells(
      plan.grid, run_lm_sources(plan, 0, plan.mc.sources));
  return render_lm_estimate(plan, points, false);
}

}  // namespace mcast::service
