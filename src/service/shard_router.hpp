// shard_router — the sharded serving core behind `mcast_lab serve --shards`.
//
//                        ┌─ shard 0: workers + bounded queue + tiered cache
//   line_server worker ──┤  shard 1:   "        "        "        "
//     (routing frontend) └─ shard N-1: "        "        "        "
//
// A sharded_service is N in-process shards behind a consistent-hash ring
// keyed on topology cache keys (topo/cache.hpp::topology_key). Each shard
// owns a worker pool, a bounded admission queue, and a two-tier topology
// cache (shared warm tier + shard-local LRU); SPT caches live on the shard
// workers that execute the measurement tasks. The frontend — whatever
// thread calls handle(), typically a line_server worker — routes each
// request:
//
//   * lmhat / metrics / healthz  — run inline (cheap, no topology);
//   * reachability               — submitted to the topology's home shard;
//   * lm_estimate                — SCATTERED: the source range is split
//     into one contiguous chunk per shard (starting at the home shard),
//     each chunk folds its sources into un-merged per-source accumulator
//     blocks (core/runner.hpp), and the frontend splices the blocks back
//     in source index order — the exact accumulation sequence of the
//     serial path, like lab/scheduler's index-ordered splice. Responses
//     are therefore byte-identical to the single-shard and monolithic
//     paths for any shard count.
//   * batch                      — the envelope is unpacked on the
//     frontend and sub-ops run through the same routing in slot order,
//     so sub-op documents match standalone responses byte for byte.
//
// A full shard queue refuses routed ops with the retryable typed error
// `overloaded`; scatter chunks that cannot be enqueued fall back to the
// frontend thread instead (one slow chunk must not fail a half-done
// scatter). Counters: svc.shard.*, svc.batch.*, svc.scatter.* — the
// service_sharded expectation spec asserts dispatched == spliced.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "net/server.hpp"
#include "service/ops.hpp"
#include "service/protocol.hpp"
#include "topo/cache.hpp"

namespace mcast::service {

/// Consistent-hash ring over shard indices with virtual nodes. Placement
/// is a pure function of (shard count, replicas, key) — identical across
/// processes, runs and thread counts — and growing the ring from N to N+1
/// shards only moves keys that land on the new shard's points (expected
/// K/(N+1) of K keys; tests/test_shard_router.cpp pins both properties).
class consistent_hash_ring {
 public:
  explicit consistent_hash_ring(std::size_t shards,
                                std::size_t replicas = 64);

  std::size_t shard_count() const noexcept { return shards_; }
  std::size_t replicas() const noexcept { return replicas_; }

  /// The shard owning an already-hashed key.
  std::size_t owner_of_hash(std::uint64_t hash) const noexcept;

  /// The shard owning a topology key (topo/cache.hpp routing hash).
  std::size_t owner(const topology_key& key) const noexcept;

 private:
  struct ring_point {
    std::uint64_t hash;
    std::uint32_t shard;
  };

  std::size_t shards_;
  std::size_t replicas_;
  std::vector<ring_point> points_;  // sorted by (hash, shard)
};

/// One in-process shard: a bounded task queue drained by a private worker
/// pool, plus the shard's two-tier topology cache. submit() never blocks —
/// a full queue is an admission refusal the caller turns into a typed
/// error (routed ops) or an inline fallback (scatter chunks).
class service_shard {
 public:
  using task_fn = std::function<void()>;

  struct shard_stats {
    std::uint64_t tasks_executed = 0;
    std::uint64_t rejected = 0;
    std::size_t queue_depth = 0;
    std::size_t queue_capacity = 0;
    std::size_t inflight = 0;
    std::uint64_t queue_depth_peak = 0;
    std::uint64_t inflight_peak = 0;
    std::uint64_t queue_wait_ns = 0;  ///< summed task queue wait
    std::uint64_t task_ns = 0;        ///< summed task execution time
  };

  service_shard(std::size_t index, std::size_t workers,
                std::size_t queue_capacity, const warm_topology_tier* warm,
                std::size_t lru_capacity);
  ~service_shard();

  service_shard(const service_shard&) = delete;
  service_shard& operator=(const service_shard&) = delete;

  /// Enqueues a task; false (and svc.shard.rejected) when the queue is
  /// at capacity. Tasks already queued always run, even during shutdown.
  bool submit(task_fn task);

  /// Latency attribution feed: tasks report their own queue wait and run
  /// time here (they alone know both ends), summed into stats() and the
  /// per-shard rows of the `metrics` op.
  void add_timing(std::uint64_t queue_wait_ns, std::uint64_t task_ns) noexcept {
    queue_wait_ns_.fetch_add(queue_wait_ns, std::memory_order_relaxed);
    task_ns_.fetch_add(task_ns, std::memory_order_relaxed);
  }

  std::size_t index() const noexcept { return index_; }
  tiered_topology_cache& topology() noexcept { return cache_; }
  const tiered_topology_cache& topology() const noexcept { return cache_; }
  shard_stats stats() const;

  /// Stops accepting, drains the queue, joins the workers. Idempotent.
  void shutdown();

 private:
  void worker_loop();

  std::size_t index_;
  std::size_t capacity_;
  tiered_topology_cache cache_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<task_fn> queue_;
  bool stopping_ = false;
  std::size_t inflight_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t queue_depth_peak_ = 0;
  std::uint64_t inflight_peak_ = 0;
  std::atomic<std::uint64_t> queue_wait_ns_{0};
  std::atomic<std::uint64_t> task_ns_{0};
  std::vector<std::thread> workers_;
};

struct sharded_config {
  std::size_t shards = 4;          ///< ring size (>= 1)
  std::size_t shard_workers = 2;   ///< worker threads per shard (>= 1)
  std::size_t shard_queue = 256;   ///< per-shard admission queue bound
  std::size_t shard_lru = 16;      ///< per-shard topology LRU capacity
  std::size_t ring_replicas = 64;  ///< virtual nodes per shard
  service_limits limits;
};

/// The sharded drop-in for query_service: same handle()/set_* surface, so
/// `mcast_lab serve` plugs either into the same line_server.
class sharded_service {
 public:
  explicit sharded_service(sharded_config config = {});
  ~sharded_service();

  sharded_service(const sharded_service&) = delete;
  sharded_service& operator=(const sharded_service&) = delete;

  /// Pre-populates the shared warm tier (blocking; call before serving).
  void warm(const std::vector<topology_key>& keys);

  /// One request line in, one response line out (no trailing newline).
  /// Blocks the calling thread until routed/scattered work completes.
  std::string handle(const std::string& line) noexcept;

  void set_stats_source(std::function<net::server_stats()> fn);
  void set_shed_policy(shed_policy policy) noexcept { shed_ = policy; }
  void set_pressure_source(std::function<double()> fn);

  const service_limits& limits() const noexcept { return config_.limits; }
  const consistent_hash_ring& ring() const noexcept { return ring_; }
  const warm_topology_tier& warm_tier() const noexcept { return warm_; }
  std::size_t shard_count() const noexcept { return shards_.size(); }
  std::vector<service_shard::shard_stats> shard_stats() const;

  /// Drains every shard queue and joins the shard workers. Idempotent;
  /// the destructor calls it.
  void shutdown();

 private:
  json::value dispatch(const std::string& op, const json::value& req);
  json::value run_batch(const json::value& req);
  json::value dispatch_single(const std::string& op, const json::value& req);
  /// Submits the op to `shard` and blocks for its result; throws the
  /// typed `overloaded` error when the shard queue refuses it.
  json::value run_routed(const op_entry& entry, const json::value& req,
                         std::size_t shard, bool degraded);
  json::value scatter_lm_estimate(const json::value& req, bool degraded);
  std::size_t route_shard(const json::value& req) const noexcept;
  bool shed_gate(const std::string& op) const;
  double pressure() const;
  json::value shard_metrics_json() const;

  sharded_config config_;
  warm_topology_tier warm_;
  consistent_hash_ring ring_;
  std::vector<std::unique_ptr<service_shard>> shards_;
  /// Per-shard handler contexts (resolve bound to that shard's tiered
  /// cache) plus the frontend context for inline ops.
  std::vector<op_context> shard_ctx_;
  op_context frontend_ctx_;
  std::function<double()> pressure_fn_;
  shed_policy shed_;
};

}  // namespace mcast::service
