// group_* — the stateful membership ops over group/group_manager.hpp.
//
// Unlike every op before them, these are not pure functions of the
// request: the result depends on the owning group's op history. The
// byte-identity story therefore shifts one level up — a group's state is
// a pure function of the op sequence applied to it, groups are keyed by
// (topology scope, name) and routed to exactly one shard, and pipelined
// clients see their own ops applied in order. Concurrent clients mutating
// disjoint groups thus get responses byte-identical to any serial replay
// of their per-connection sequences (tests/test_service_group.cpp).
#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "service/ops.hpp"

namespace mcast::service {

namespace {

// The group ops always run on a context with live group state: inline on
// the monolith, on the owning shard when sharded. A null manager means a
// host wiring bug, not a client error.
group_manager& manager_of(const op_context& ctx) {
  if (ctx.groups == nullptr) {
    throw request_error(error_code::internal_error,
                        "group state is not wired into this context");
  }
  return *ctx.groups;
}

std::string require_group_name(const json::value& req) {
  const std::string name = require_string(req, "group");
  if (name.empty() || name.size() > 128) {
    throw request_error(error_code::bad_request,
                        "field 'group' must be 1..128 bytes");
  }
  return name;
}

const char* mode_name(group_mode mode) {
  return mode == group_mode::source ? "source" : "shared";
}

/// Renders one snapshot as the common result payload of every group op.
json::value snapshot_json(const group_snapshot& snap) {
  json::value out = json::value::object();
  out.set("group", json::value::string(snap.name));
  out.set("scope", json::value::string(snap.scope));
  out.set("mode", json::value::string(mode_name(snap.mode)));
  out.set("root", num_u(snap.root));
  out.set("generation", num_u(snap.generation));
  out.set("members", num_u(snap.members));
  out.set("sites", num_u(snap.sites));
  out.set("links", num_u(snap.links));
  out.set("cost", num(snap.cost));
  out.set("joins", num_u(snap.joins));
  out.set("leaves", num_u(snap.leaves));
  out.set("links_grafted", num_u(snap.links_grafted));
  out.set("links_pruned", num_u(snap.links_pruned));
  out.set("peak_members", num_u(snap.peak_members));
  out.set("peak_links", num_u(snap.peak_links));
  return out;
}

/// Wraps the manager's std::invalid_argument preconditions (unknown
/// group, unreachable site, over-draining leave...) as bad_request so
/// they reach the client as client errors, not internal ones.
template <typename fn_t>
auto as_bad_request(fn_t&& fn) -> decltype(fn()) {
  try {
    return fn();
  } catch (const std::invalid_argument& e) {
    throw request_error(error_code::bad_request, e.what());
  } catch (const std::out_of_range& e) {
    throw request_error(error_code::bad_request, e.what());
  }
}

}  // namespace

std::string group_scope(const json::value& req, const op_context& ctx) {
  const std::string name = require_string(req, "topology");
  const std::uint64_t seed = u64_or(req, "topology_seed", 7);
  const std::uint64_t budget =
      bounded_u64(req, "budget", 0, 0, ctx.limits.max_budget);
  return name + ":" + std::to_string(seed) + ":" + std::to_string(budget);
}

json::value op_group_create(const json::value& req, const op_context& ctx) {
  static const char* const allowed[] = {
      "op",   "id",     "trace",         "topology", "topology_seed",
      "budget", "group", "mode",        "source",   "core_strategy",
      "core_seed", nullptr};
  reject_unknown_keys(req, allowed);
  group_manager& groups = manager_of(ctx);
  const std::string scope = group_scope(req, ctx);
  const std::string name = require_group_name(req);
  const auto g = resolve_topology(req, ctx);

  group_config config;
  const std::string mode = string_or(req, "mode", "source");
  if (mode == "source") {
    config.mode = group_mode::source;
    if (req.get("core_strategy") != nullptr ||
        req.get("core_seed") != nullptr) {
      throw request_error(error_code::bad_request,
                          "'core_strategy'/'core_seed' only apply to "
                          "mode 'shared'");
    }
    const std::uint64_t root = u64_or(req, "source", 0);
    if (root >= g->node_count()) {
      throw request_error(
          error_code::bad_request,
          "field 'source' must be < " + std::to_string(g->node_count()));
    }
    config.root = static_cast<node_id>(root);
  } else if (mode == "shared") {
    config.mode = group_mode::shared;
    if (req.get("source") != nullptr) {
      throw request_error(error_code::bad_request,
                          "'source' only applies to mode 'source'");
    }
    const std::string strategy =
        string_or(req, "core_strategy", "path_center");
    if (strategy == "random") {
      config.core = core_strategy::random;
    } else if (strategy == "degree_center") {
      config.core = core_strategy::degree_center;
    } else if (strategy == "path_center") {
      config.core = core_strategy::path_center;
    } else {
      throw request_error(error_code::bad_request,
                          "field 'core_strategy' must be 'random', "
                          "'degree_center' or 'path_center'");
    }
    config.core_seed = u64_or(req, "core_seed", 1);
  } else {
    throw request_error(error_code::bad_request,
                        "field 'mode' must be 'source' or 'shared'");
  }

  if (groups.size() >= ctx.limits.max_groups) {
    throw request_error(error_code::limit_exceeded,
                        "live group cap of " +
                            std::to_string(ctx.limits.max_groups) +
                            " reached; group_list + retire groups first");
  }
  if (groups.contains(scope, name)) {
    throw request_error(error_code::bad_request,
                        "group '" + name + "' already exists in scope " +
                            scope);
  }

  obs::add(obs::counter::svc_group_creates);
  const group_snapshot snap =
      as_bad_request([&] { return groups.create(scope, name, g, config); });
  return snapshot_json(snap);
}

json::value op_group_join(const json::value& req, const op_context& ctx) {
  static const char* const allowed[] = {
      "op",     "id",    "trace", "topology", "topology_seed",
      "budget", "group", "site",  "count",    nullptr};
  reject_unknown_keys(req, allowed);
  group_manager& groups = manager_of(ctx);
  const std::string scope = group_scope(req, ctx);
  const std::string name = require_group_name(req);
  const std::uint64_t site = require_u64(req, "site");
  const std::uint64_t count =
      bounded_u64(req, "count", 1, 1, ctx.limits.max_group_op_count);

  obs::add(obs::counter::svc_group_joins);
  const group_snapshot snap = as_bad_request([&] {
    return groups.join(scope, name, static_cast<node_id>(site),
                       static_cast<std::uint32_t>(count));
  });
  json::value result = snapshot_json(snap);
  result.set("grafted", num_u(snap.last_grafted));
  return result;
}

json::value op_group_leave(const json::value& req, const op_context& ctx) {
  static const char* const allowed[] = {
      "op",     "id",    "trace", "topology", "topology_seed",
      "budget", "group", "site",  "count",    nullptr};
  reject_unknown_keys(req, allowed);
  group_manager& groups = manager_of(ctx);
  const std::string scope = group_scope(req, ctx);
  const std::string name = require_group_name(req);
  const std::uint64_t site = require_u64(req, "site");
  const std::uint64_t count =
      bounded_u64(req, "count", 1, 1, ctx.limits.max_group_op_count);

  obs::add(obs::counter::svc_group_leaves);
  const group_snapshot snap = as_bad_request([&] {
    return groups.leave(scope, name, static_cast<node_id>(site),
                        static_cast<std::uint32_t>(count));
  });
  json::value result = snapshot_json(snap);
  result.set("pruned", num_u(snap.last_pruned));
  return result;
}

json::value op_group_stats(const json::value& req, const op_context& ctx) {
  static const char* const allowed[] = {
      "op",     "id",    "trace", "topology", "topology_seed",
      "budget", "group", nullptr};
  reject_unknown_keys(req, allowed);
  group_manager& groups = manager_of(ctx);
  const std::string scope = group_scope(req, ctx);
  const std::string name = require_group_name(req);

  obs::add(obs::counter::svc_group_stats);
  if (!groups.contains(scope, name)) {
    throw request_error(error_code::bad_request,
                        "unknown group '" + name + "' in scope " + scope);
  }
  return snapshot_json(
      as_bad_request([&] { return groups.stats(scope, name); }));
}

json::value op_group_list(const json::value& req, const op_context& ctx) {
  static const char* const allowed[] = {"op", "id", "trace", nullptr};
  reject_unknown_keys(req, allowed);
  obs::add(obs::counter::svc_group_lists);

  std::vector<group_snapshot> snaps;
  if (ctx.group_list_all) {
    snaps = ctx.group_list_all();
  } else if (ctx.groups != nullptr) {
    snaps = ctx.groups->list();
  }
  // Hosts collect per-manager lists that are each sorted; the merged view
  // re-sorts so the rendering is independent of shard count and layout.
  std::sort(snaps.begin(), snaps.end(),
            [](const group_snapshot& a, const group_snapshot& b) {
              return a.scope != b.scope ? a.scope < b.scope : a.name < b.name;
            });

  json::value rows = json::value::array();
  for (const group_snapshot& snap : snaps) {
    rows.push(snapshot_json(snap));
  }
  json::value result = json::value::object();
  result.set("count", num_u(snaps.size()));
  result.set("groups", std::move(rows));
  return result;
}

}  // namespace mcast::service
