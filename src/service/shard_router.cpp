#include "service/shard_router.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <iterator>
#include <utility>

#include "common/contract.hpp"
#include "obs/access_log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/rng.hpp"

namespace mcast::service {

namespace {

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

}  // namespace

// --- consistent_hash_ring ----------------------------------------------

consistent_hash_ring::consistent_hash_ring(std::size_t shards,
                                           std::size_t replicas)
    : shards_(shards), replicas_(replicas) {
  expects(shards >= 1, "consistent_hash_ring: need at least one shard");
  expects(replicas >= 1, "consistent_hash_ring: need at least one replica");
  points_.reserve(shards * replicas);
  for (std::size_t s = 0; s < shards; ++s) {
    // Each shard's virtual nodes are a splitmix64 stream seeded by the
    // shard index alone, so shard s contributes the SAME points to every
    // ring that contains it — the property that bounds key movement when
    // the shard count changes to exactly the new shard's arcs. The index
    // is mixed once before the stream starts: splitmix64 walks its state
    // by a fixed gamma, so raw gamma-multiple seeds would make adjacent
    // shards emit the same sequence shifted by one point.
    std::uint64_t seed = static_cast<std::uint64_t>(s) + 1;
    std::uint64_t state = splitmix64(seed);
    for (std::size_t r = 0; r < replicas; ++r) {
      points_.push_back(
          ring_point{splitmix64(state), static_cast<std::uint32_t>(s)});
    }
  }
  std::sort(points_.begin(), points_.end(),
            [](const ring_point& a, const ring_point& b) {
              return a.hash != b.hash ? a.hash < b.hash : a.shard < b.shard;
            });
}

std::size_t consistent_hash_ring::owner_of_hash(
    std::uint64_t hash) const noexcept {
  // First point at or after the key, wrapping to the smallest point.
  auto it = std::lower_bound(
      points_.begin(), points_.end(), hash,
      [](const ring_point& p, std::uint64_t h) { return p.hash < h; });
  if (it == points_.end()) it = points_.begin();
  return it->shard;
}

std::size_t consistent_hash_ring::owner(
    const topology_key& key) const noexcept {
  return owner_of_hash(topology_routing_hash(key));
}

// --- service_shard -----------------------------------------------------

service_shard::service_shard(std::size_t index, std::size_t workers,
                             std::size_t queue_capacity,
                             const warm_topology_tier* warm,
                             std::size_t lru_capacity)
    : index_(index), capacity_(queue_capacity), cache_(warm, lru_capacity) {
  expects(workers >= 1, "service_shard: need at least one worker");
  expects(queue_capacity >= 1, "service_shard: queue capacity must be >= 1");
  workers_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

service_shard::~service_shard() { shutdown(); }

bool service_shard::submit(task_fn task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ || queue_.size() >= capacity_) {
      ++rejected_;
      obs::add(obs::counter::svc_shard_rejected);
      return false;
    }
    queue_.push_back(std::move(task));
    queue_depth_peak_ = std::max<std::uint64_t>(queue_depth_peak_,
                                                queue_.size());
    obs::gauge_max(obs::gauge::svc_shard_queue_depth_peak, queue_.size());
  }
  cv_.notify_one();
  return true;
}

void service_shard::worker_loop() {
  for (;;) {
    task_fn task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++inflight_;
      inflight_peak_ = std::max<std::uint64_t>(inflight_peak_, inflight_);
      obs::gauge_max(obs::gauge::svc_shard_inflight_peak, inflight_);
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --inflight_;
      ++executed_;
    }
    obs::add(obs::counter::svc_shard_tasks);
  }
}

service_shard::shard_stats service_shard::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  shard_stats s;
  s.tasks_executed = executed_;
  s.rejected = rejected_;
  s.queue_depth = queue_.size();
  s.queue_capacity = capacity_;
  s.inflight = inflight_;
  s.queue_depth_peak = queue_depth_peak_;
  s.inflight_peak = inflight_peak_;
  s.queue_wait_ns = queue_wait_ns_.load(std::memory_order_relaxed);
  s.task_ns = task_ns_.load(std::memory_order_relaxed);
  return s;
}

void service_shard::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

// --- sharded_service ---------------------------------------------------

sharded_service::sharded_service(sharded_config config)
    : config_(config), ring_(std::max<std::size_t>(1, config.shards),
                             std::max<std::size_t>(1, config.ring_replicas)) {
  expects(config_.shards >= 1, "sharded_service: need at least one shard");
  expects(config_.shard_workers >= 1,
          "sharded_service: need at least one worker per shard");
  expects(config_.shard_queue >= 1,
          "sharded_service: shard queue capacity must be >= 1");
  const auto started = std::chrono::steady_clock::now();
  shards_.reserve(config_.shards);
  shard_ctx_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<service_shard>(
        i, config_.shard_workers, config_.shard_queue, &warm_,
        config_.shard_lru));
  }
  for (std::size_t i = 0; i < config_.shards; ++i) {
    op_context ctx;
    ctx.limits = config_.limits;
    ctx.started = started;
    ctx.resolve = [shard = shards_[i].get()](const std::string& name,
                                             std::uint64_t seed,
                                             node_id budget) {
      return shard->topology().get(name, seed, budget);
    };
    // One group manager per shard: a group lives where its topology key
    // routes, so every op on it runs on its home shard's workers and the
    // per-group op order is the submission order — the property the
    // byte-identity guarantee for group state rests on.
    ctx.groups = std::make_shared<group_manager>();
    shard_ctx_.push_back(std::move(ctx));
  }
  frontend_ctx_.limits = config_.limits;
  frontend_ctx_.started = started;
  frontend_ctx_.resolve = shard_ctx_.front().resolve;
  frontend_ctx_.shard_metrics = [this] { return shard_metrics_json(); };
  // group_list runs inline on the frontend and merges every shard's
  // manager — each group exists on exactly one shard, so the union is
  // disjoint and the handler's (scope, name) sort makes the rendering
  // independent of the shard count.
  frontend_ctx_.group_list_all = [this] {
    std::vector<group_snapshot> all;
    for (const op_context& ctx : shard_ctx_) {
      std::vector<group_snapshot> part = ctx.groups->list();
      all.insert(all.end(), std::make_move_iterator(part.begin()),
                 std::make_move_iterator(part.end()));
    }
    return all;
  };
}

sharded_service::~sharded_service() { shutdown(); }

void sharded_service::shutdown() {
  for (auto& shard : shards_) shard->shutdown();
}

void sharded_service::warm(const std::vector<topology_key>& keys) {
  warm_.populate(keys);
}

void sharded_service::set_stats_source(std::function<net::server_stats()> fn) {
  frontend_ctx_.stats = std::move(fn);
}

void sharded_service::set_pressure_source(std::function<double()> fn) {
  pressure_fn_ = std::move(fn);
}

double sharded_service::pressure() const {
  return pressure_fn_ ? pressure_fn_() : 0.0;
}

std::string sharded_service::handle(const std::string& line) noexcept {
  json::value req;
  try {
    req = parse_request(line);
  } catch (const request_error& e) {
    if (obs::access_entry* entry = obs::access_current()) {
      entry->outcome = error_code_name(e.code());
    }
    return error_response(e.code(), e.what(), json::value());
  }
  json::value doc = response_document(
      req, [this](const std::string& op, const json::value& r) {
        return dispatch(op, r);
      });
  const auto begun = std::chrono::steady_clock::now();
  std::string response = json::dump_compact(doc);
  const std::uint64_t serialize_ns = elapsed_ns(begun);
  obs::record(obs::histogram::svc_serialize_ns, serialize_ns);
  if (obs::access_entry* entry = obs::access_current()) {
    entry->serialize_ns = serialize_ns;
  }
  return response;
}

bool sharded_service::shed_gate(const std::string& op) const {
  // Identical to query_service::shed_gate — the shed decision (and its
  // error bytes) must not depend on which host serves the request.
  const double p = pressure();
  if (p >= shed_.refuse_at) {
    obs::add(obs::counter::svc_shed_refused);
    throw request_error(error_code::shed,
                        "op '" + op + "' shed under load (pressure " +
                            std::to_string(p) + "); retry with backoff");
  }
  if (p >= shed_.degrade_at) {
    obs::add(obs::counter::svc_shed_degraded);
    return true;
  }
  return false;
}

std::size_t sharded_service::route_shard(
    const json::value& req) const noexcept {
  try {
    topology_key key;
    key.name = require_string(req, "topology");
    key.seed = u64_or(req, "topology_seed", 7);
    key.budget = static_cast<node_id>(u64_or(req, "budget", 0));
    return ring_.owner(key);
  } catch (...) {
    // Malformed routing fields: any shard renders the same typed error,
    // so send it to shard 0 rather than failing here.
    return 0;
  }
}

json::value sharded_service::dispatch(const std::string& op,
                                      const json::value& req) {
  if (op == "batch") return run_batch(req);
  return dispatch_single(op, req);
}

json::value sharded_service::dispatch_single(const std::string& op,
                                             const json::value& req) {
  const op_entry* entry = find_op(op);
  if (entry == nullptr) {
    throw request_error(error_code::unknown_op, "unknown op '" + op + "'");
  }
  const bool degraded = entry->sheddable ? shed_gate(op) : false;
  if (!entry->needs_topology) {
    return run_op(*entry, req, frontend_ctx_, degraded);
  }
  if (entry->kind == op_kind::lm_estimate) {
    return scatter_lm_estimate(req, degraded);
  }
  return run_routed(*entry, req, route_shard(req), degraded);
}

json::value sharded_service::run_batch(const json::value& req) {
  static const char* const allowed[] = {"op", "id", "trace", "ops", nullptr};
  reject_unknown_keys(req, allowed);
  const json::value& ops = batch_subops(req, config_.limits);
  const std::string parent_trace = trace_token(req);
  obs::add(obs::counter::svc_batch_requests);

  // Slots run in request order through the same routing as standalone
  // requests, so sub-op documents (and their order) match the monolith's
  // serial reference byte for byte. Parallelism comes from within the
  // slots: every lm_estimate sub-op still scatters across all shards.
  std::vector<json::value> docs;
  docs.reserve(ops.items().size());
  for (const json::value& sub : ops.items()) {
    obs::add(obs::counter::svc_batch_subops);
    docs.push_back(subop_document(
        sub,
        [this](const std::string& op, const json::value& r) {
          reject_nested_batch(op);
          return dispatch_single(op, r);
        },
        parent_trace));
    obs::add(obs::counter::svc_batch_spliced);
  }
  return make_batch_result(std::move(docs));
}

json::value sharded_service::run_routed(const op_entry& entry,
                                        const json::value& req,
                                        std::size_t shard, bool degraded) {
  json::value out;
  std::exception_ptr err;
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  std::uint64_t wait_ns = 0;

  // The frontend's request context crosses to the shard worker by value;
  // trace_scope installs it there so the shard.task span (and anything
  // the handler opens) stays on this request's trace.
  const obs::trace_context tctx = obs::current_trace();
  const auto submitted = std::chrono::steady_clock::now();
  const op_context& ctx = shard_ctx_[shard];
  service_shard* home = shards_[shard].get();
  const bool accepted = home->submit([&] {
    wait_ns = elapsed_ns(submitted);
    obs::record(obs::histogram::svc_shard_queue_wait_ns, wait_ns);
    const auto task_begun = std::chrono::steady_clock::now();
    {
      obs::trace_scope trace_guard(tctx);
      obs::span task_span("shard.task");
      try {
        out = run_op(entry, req, ctx, degraded);
      } catch (...) {
        err = std::current_exception();
      }
    }
    const std::uint64_t task_ns = elapsed_ns(task_begun);
    obs::record(obs::histogram::svc_shard_task_ns, task_ns);
    home->add_timing(wait_ns, task_ns);
    {
      std::lock_guard<std::mutex> lock(mu);
      done = true;
    }
    cv.notify_one();
  });
  if (!accepted) {
    // Admission refusal under load: tag the access record like a shed so
    // the log separates capacity refusals from handler errors.
    if (obs::access_entry* aentry = obs::access_current()) {
      aentry->shard = static_cast<std::int64_t>(shard);
      aentry->shed = true;
    }
    throw request_error(error_code::overloaded,
                        "shard " + std::to_string(shard) +
                            " admission queue full; retry with backoff");
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done; });
  if (obs::access_entry* aentry = obs::access_current()) {
    aentry->shard = static_cast<std::int64_t>(shard);
    aentry->queue_wait_ns = std::max(aentry->queue_wait_ns, wait_ns);
  }
  if (err) std::rethrow_exception(err);
  return out;
}

json::value sharded_service::scatter_lm_estimate(const json::value& req,
                                                 bool degraded) {
  // Plan on the frontend: full validation plus topology resolution through
  // the home shard's tiered cache, so the graph is shared (and its build
  // coalesced) before any chunk is dispatched.
  const std::size_t home = route_shard(req);
  const lm_plan plan = plan_lm_estimate(req, shard_ctx_[home]);
  if (degraded) return render_lm_estimate(plan, lm_closed_form(plan), true);

  const std::size_t sources = plan.mc.sources;
  const std::size_t chunks = std::min(shards_.size(), sources);
  obs::add(obs::counter::svc_scatter_requests);

  struct chunk_slot {
    std::vector<std::vector<mc_cell>> cells;
    std::exception_ptr err;
    std::uint64_t wait_ns = 0;
  };
  std::vector<chunk_slot> slots(chunks);
  std::mutex mu;
  std::condition_variable cv;
  std::size_t finished = 0;
  std::size_t fallbacks = 0;

  // Every chunk — dispatched or folded inline on refusal — runs under the
  // frontend's request context, so scatter.chunk spans on shard lanes
  // join the request span across lanes.
  const obs::trace_context tctx = obs::current_trace();
  for (std::size_t c = 0; c < chunks; ++c) {
    // Contiguous source ranges in chunk order: concatenating the chunk
    // results in index order reproduces the serial per-source sequence.
    const std::size_t begin = c * sources / chunks;
    const std::size_t end = (c + 1) * sources / chunks;
    const std::size_t shard = (home + c) % shards_.size();
    obs::add(obs::counter::svc_scatter_chunks);
    service_shard* owner = shards_[shard].get();
    const auto submitted = std::chrono::steady_clock::now();
    auto work = [&, c, begin, end, owner, submitted] {
      const std::uint64_t wait_ns = elapsed_ns(submitted);
      obs::record(obs::histogram::svc_shard_queue_wait_ns, wait_ns);
      const auto task_begun = std::chrono::steady_clock::now();
      {
        obs::trace_scope trace_guard(tctx);
        obs::span chunk_span("scatter.chunk");
        try {
          slots[c].cells = run_lm_sources(plan, begin, end);
        } catch (...) {
          slots[c].err = std::current_exception();
        }
      }
      const std::uint64_t task_ns = elapsed_ns(task_begun);
      obs::record(obs::histogram::svc_shard_task_ns, task_ns);
      owner->add_timing(wait_ns, task_ns);
      {
        std::lock_guard<std::mutex> lock(mu);
        slots[c].wait_ns = wait_ns;
        ++finished;
      }
      cv.notify_one();
    };
    if (!owner->submit(work)) {
      // Bounded-queue fallback: the frontend folds this chunk itself
      // rather than failing a scatter other shards already accepted.
      ++fallbacks;
      work();
    }
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return finished == chunks; });
    if (obs::access_entry* aentry = obs::access_current()) {
      aentry->shard = static_cast<std::int64_t>(home);
      aentry->fanout = chunks;
      aentry->fallbacks = fallbacks;
      for (const chunk_slot& slot : slots) {
        aentry->queue_wait_ns = std::max(aentry->queue_wait_ns, slot.wait_ns);
      }
    }
  }

  // Gather: count every chunk spliced (the dispatched == spliced
  // invariant holds even on a failed chunk), then surface any failure.
  for (std::size_t c = 0; c < chunks; ++c) {
    obs::add(obs::counter::svc_scatter_spliced);
  }
  for (const chunk_slot& slot : slots) {
    if (slot.err) std::rethrow_exception(slot.err);
  }
  std::vector<std::vector<mc_cell>> per_source;
  per_source.reserve(sources);
  for (chunk_slot& slot : slots) {
    for (auto& block : slot.cells) per_source.push_back(std::move(block));
  }
  return render_lm_estimate(
      plan, splice_source_cells(plan.grid, per_source), false);
}

json::value sharded_service::shard_metrics_json() const {
  json::value arr = json::value::array();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const service_shard::shard_stats st = shards_[i]->stats();
    const topology_cache& lru = shards_[i]->topology().lru();
    const topology_cache::cache_stats cs = lru.stats();
    json::value row = json::value::object();
    row.set("shard", num_u(i));
    row.set("queue_depth", num_u(st.queue_depth));
    row.set("queue_capacity", num_u(st.queue_capacity));
    row.set("inflight", num_u(st.inflight));
    row.set("queue_depth_peak", num_u(st.queue_depth_peak));
    row.set("inflight_peak", num_u(st.inflight_peak));
    row.set("tasks_executed", num_u(st.tasks_executed));
    row.set("rejected", num_u(st.rejected));
    row.set("queue_wait_ns", num_u(st.queue_wait_ns));
    row.set("task_ns", num_u(st.task_ns));
    row.set("lru_entries", num_u(lru.size()));
    row.set("lru_hits", num_u(cs.hits));
    row.set("lru_misses", num_u(cs.misses));
    row.set("lru_evictions", num_u(cs.evictions));
    arr.push(std::move(row));
  }
  return arr;
}

std::vector<service_shard::shard_stats> sharded_service::shard_stats() const {
  std::vector<service_shard::shard_stats> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) out.push_back(shard->stats());
  return out;
}

}  // namespace mcast::service
