// metrics / healthz — live server and registry state. Exempt from the
// byte-identity guarantee (tests compare only their ok status): a sharded
// host adds a per-shard "shards" array through ctx.shard_metrics.
#include <utility>

#include "obs/metrics.hpp"
#include "obs/metrics_json.hpp"
#include "service/ops.hpp"

namespace mcast::service {

namespace {

double uptime_seconds(const op_context& ctx, const net::server_stats& stats) {
  return ctx.stats ? stats.uptime_seconds
                   : std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - ctx.started)
                         .count();
}

}  // namespace

json::value op_metrics(const json::value& req, const op_context& ctx) {
  static const char* const bare[] = {"op", "id", "trace", nullptr};
  reject_unknown_keys(req, bare);
  const net::server_stats stats = ctx.stats ? ctx.stats() : net::server_stats{};
  json::value server = json::value::object();
  server.set("accepted", num_u(stats.accepted));
  server.set("rejected", num_u(stats.rejected));
  server.set("requests", num_u(stats.requests));
  server.set("queue_depth", num_u(stats.queue_depth));
  server.set("inflight", num_u(stats.inflight));

  json::value result = json::value::object();
  result.set("uptime_seconds", num(uptime_seconds(ctx, stats)));
  result.set("server", std::move(server));
  if (ctx.shard_metrics) result.set("shards", ctx.shard_metrics());
  result.set("metrics", obs::metrics_to_json(obs::snapshot()));
  return result;
}

json::value op_healthz(const json::value& req, const op_context& ctx) {
  static const char* const bare[] = {"op", "id", "trace", nullptr};
  reject_unknown_keys(req, bare);
  const net::server_stats stats = ctx.stats ? ctx.stats() : net::server_stats{};
  json::value result = json::value::object();
  result.set("status", json::value::string("ok"));
  result.set("uptime_seconds", num(uptime_seconds(ctx, stats)));
  result.set("accepted", num_u(stats.accepted));
  result.set("rejected", num_u(stats.rejected));
  result.set("requests", num_u(stats.requests));
  result.set("queue_depth", num_u(stats.queue_depth));
  result.set("inflight", num_u(stats.inflight));
  return result;
}

}  // namespace mcast::service
