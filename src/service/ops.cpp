#include "service/ops.hpp"

#include <chrono>
#include <utility>

#include "obs/access_log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mcast::service {

namespace {

const op_entry op_table[] = {
    {"lmhat", op_kind::lmhat, /*sheddable=*/false, /*needs_topology=*/false},
    {"lm_estimate", op_kind::lm_estimate, true, true},
    {"reachability", op_kind::reachability, true, true},
    {"metrics", op_kind::metrics, false, false},
    {"healthz", op_kind::healthz, false, false},
    // Group ops route by topology key like any topology-bound op; that is
    // what pins each group to exactly one shard. group_list is the
    // exception: it has no topology and merges every shard's manager on
    // the frontend. None are sheddable — O(path) mutations are cheaper
    // than the Monte-Carlo ops stay even when degraded.
    {"group_create", op_kind::group_create, false, true},
    {"group_join", op_kind::group_join, false, true},
    {"group_leave", op_kind::group_leave, false, true},
    {"group_stats", op_kind::group_stats, false, true},
    {"group_list", op_kind::group_list, false, false},
};

}  // namespace

const op_entry* find_op(const std::string& op) noexcept {
  for (const op_entry& e : op_table) {
    if (op == e.name) return &e;
  }
  return nullptr;
}

json::value run_op(const op_entry& entry, const json::value& req,
                   const op_context& ctx, bool degraded) {
  switch (entry.kind) {
    case op_kind::lmhat:
      return op_lmhat(req, ctx);
    case op_kind::lm_estimate:
      return op_lm_estimate(req, ctx, degraded);
    case op_kind::reachability:
      return op_reachability(req, ctx, degraded);
    case op_kind::metrics:
      return op_metrics(req, ctx);
    case op_kind::healthz:
      return op_healthz(req, ctx);
    case op_kind::group_create:
      return op_group_create(req, ctx);
    case op_kind::group_join:
      return op_group_join(req, ctx);
    case op_kind::group_leave:
      return op_group_leave(req, ctx);
    case op_kind::group_stats:
      return op_group_stats(req, ctx);
    case op_kind::group_list:
      return op_group_list(req, ctx);
  }
  throw request_error(error_code::internal_error, "unreachable op kind");
}

json::value num(double v) { return json::value::number(v); }
json::value num_u(std::uint64_t v) {
  return json::value::number(static_cast<double>(v));
}

json::value request_id(const json::value& req) {
  const json::value* id = req.get("id");
  if (id == nullptr) return json::value();
  switch (id->type()) {
    case json::value::kind::null:
    case json::value::kind::number:
    case json::value::kind::string:
      return *id;
    default:
      throw request_error(error_code::bad_request,
                          "field 'id' must be a string, number or null");
  }
}

std::shared_ptr<const graph> resolve_topology(const json::value& req,
                                              const op_context& ctx) {
  const std::string name = require_string(req, "topology");
  const std::uint64_t seed = u64_or(req, "topology_seed", 7);
  const std::uint64_t budget =
      bounded_u64(req, "budget", 0, 0, ctx.limits.max_budget);
  if (budget != 0 && budget < 64) {
    throw request_error(error_code::bad_request,
                        "field 'budget' must be 0 (native size) or >= 64");
  }
  return ctx.resolve(name, seed, static_cast<node_id>(budget));
}

namespace {

// Latency attribution: one registry histogram per op name. Unknown ops
// record nothing — they never ran a handler.
void record_op_latency(const std::string& op, std::uint64_t ns) noexcept {
  using obs::histogram;
  if (op == "lmhat") {
    obs::record(histogram::svc_op_lmhat_ns, ns);
  } else if (op == "lm_estimate") {
    obs::record(histogram::svc_op_lm_estimate_ns, ns);
  } else if (op == "reachability") {
    obs::record(histogram::svc_op_reachability_ns, ns);
  } else if (op == "batch") {
    obs::record(histogram::svc_op_batch_ns, ns);
  } else if (op == "metrics" || op == "healthz") {
    obs::record(histogram::svc_op_admin_ns, ns);
  } else if (op.rfind("group_", 0) == 0) {
    obs::record(histogram::svc_op_group_ns, ns);
  }
}

// Access-log annotation on the frontend thread. A batch envelope's slots
// pass through here first and the envelope last, so the record that
// survives describes the envelope — which is the request on the wire.
void annotate_access(const json::value& req, const std::string& op,
                     const std::string& trace, const char* outcome,
                     const json::value* result) noexcept {
  obs::access_entry* entry = obs::access_current();
  if (entry == nullptr) return;
  entry->op = op;
  entry->token = trace;
  entry->outcome = outcome;
  entry->shed = outcome == std::string("shed");
  const json::value* topo = req.get("topology");
  if (topo != nullptr && topo->is(json::value::kind::string)) {
    entry->topology = topo->as_string();
  }
  if (result != nullptr) {
    const json::value* degraded = result->get("degraded");
    if (degraded != nullptr && degraded->is(json::value::kind::boolean) &&
        degraded->as_bool()) {
      entry->degraded = true;
    }
  }
}

}  // namespace

json::value response_document(const json::value& req,
                              const run_fn& run) noexcept {
  json::value id;  // null until the request parses far enough to have one
  std::string trace;
  std::string op;
  try {
    id = request_id(req);
    trace = trace_token(req);
    op = require_string(req, "op");
    const auto begun = std::chrono::steady_clock::now();
    json::value result = run(op, req);
    record_op_latency(
        op, static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - begun)
                    .count()));
    annotate_access(req, op, trace, "ok", &result);
    return ok_document(op, std::move(result), id, trace);
  } catch (const request_error& e) {
    annotate_access(req, op, trace, error_code_name(e.code()), nullptr);
    return error_document(e.code(), e.what(), id, trace);
  } catch (const std::invalid_argument& e) {
    // Domain preconditions (unknown catalog name, bad grid, ...) surface
    // as std::invalid_argument from the measurement stack.
    annotate_access(req, op, trace, error_code_name(error_code::bad_request),
                    nullptr);
    return error_document(error_code::bad_request, e.what(), id, trace);
  } catch (const std::exception& e) {
    annotate_access(req, op, trace, error_code_name(error_code::internal_error),
                    nullptr);
    return error_document(error_code::internal_error, e.what(), id, trace);
  } catch (...) {
    annotate_access(req, op, trace, error_code_name(error_code::internal_error),
                    nullptr);
    return error_document(error_code::internal_error, "unknown error", id,
                          trace);
  }
}

const json::value& batch_subops(const json::value& req,
                                const service_limits& limits) {
  const json::value& ops = require_member(req, "ops");
  if (!ops.is(json::value::kind::array)) {
    throw request_error(error_code::bad_request,
                        "field 'ops' must be an array of requests");
  }
  if (ops.items().empty()) {
    throw request_error(error_code::bad_request,
                        "field 'ops' must not be empty");
  }
  if (ops.items().size() > limits.max_batch_ops) {
    throw request_error(error_code::limit_exceeded,
                        "field 'ops' exceeds the service cap of " +
                            std::to_string(limits.max_batch_ops) +
                            " sub-ops");
  }
  return ops;
}

json::value subop_document(const json::value& sub,
                           const run_fn& run) noexcept {
  return subop_document(sub, run, std::string());
}

json::value subop_document(const json::value& sub, const run_fn& run,
                           const std::string& parent_trace) noexcept {
  obs::span subop_span("batch.subop");
  if (!sub.is(json::value::kind::object)) {
    return error_document(error_code::bad_request,
                          "batch sub-op must be a JSON object",
                          json::value(), parent_trace);
  }
  // Slots without their own token inherit the envelope's, so per-slot
  // typed errors still correlate to the parent request client-side. A
  // slot that sets one keeps it (and its document stays byte-for-byte
  // the standalone response).
  if (!parent_trace.empty() && sub.get("trace") == nullptr) {
    json::value copy = sub;
    copy.set("trace", json::value::string(parent_trace));
    return response_document(copy, run);
  }
  return response_document(sub, run);
}

void reject_nested_batch(const std::string& op) {
  if (op == "batch") {
    throw request_error(error_code::bad_request,
                        "batch must not contain a nested batch");
  }
}

json::value make_batch_result(std::vector<json::value>&& docs) {
  std::size_t ok_count = 0;
  json::value results = json::value::array();
  for (json::value& doc : docs) {
    const json::value* ok = doc.get("ok");
    if (ok != nullptr && ok->is(json::value::kind::boolean) && ok->as_bool()) {
      ++ok_count;
    }
    results.push(std::move(doc));
  }
  json::value result = json::value::object();
  result.set("count", num_u(docs.size()));
  result.set("ok_count", num_u(ok_count));
  result.set("error_count", num_u(docs.size() - ok_count));
  result.set("results", std::move(results));
  return result;
}

}  // namespace mcast::service
