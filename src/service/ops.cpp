#include "service/ops.hpp"

#include <utility>

namespace mcast::service {

namespace {

const op_entry op_table[] = {
    {"lmhat", op_kind::lmhat, /*sheddable=*/false, /*needs_topology=*/false},
    {"lm_estimate", op_kind::lm_estimate, true, true},
    {"reachability", op_kind::reachability, true, true},
    {"metrics", op_kind::metrics, false, false},
    {"healthz", op_kind::healthz, false, false},
};

}  // namespace

const op_entry* find_op(const std::string& op) noexcept {
  for (const op_entry& e : op_table) {
    if (op == e.name) return &e;
  }
  return nullptr;
}

json::value run_op(const op_entry& entry, const json::value& req,
                   const op_context& ctx, bool degraded) {
  switch (entry.kind) {
    case op_kind::lmhat:
      return op_lmhat(req, ctx);
    case op_kind::lm_estimate:
      return op_lm_estimate(req, ctx, degraded);
    case op_kind::reachability:
      return op_reachability(req, ctx, degraded);
    case op_kind::metrics:
      return op_metrics(req, ctx);
    case op_kind::healthz:
      return op_healthz(req, ctx);
  }
  throw request_error(error_code::internal_error, "unreachable op kind");
}

json::value num(double v) { return json::value::number(v); }
json::value num_u(std::uint64_t v) {
  return json::value::number(static_cast<double>(v));
}

json::value request_id(const json::value& req) {
  const json::value* id = req.get("id");
  if (id == nullptr) return json::value();
  switch (id->type()) {
    case json::value::kind::null:
    case json::value::kind::number:
    case json::value::kind::string:
      return *id;
    default:
      throw request_error(error_code::bad_request,
                          "field 'id' must be a string, number or null");
  }
}

std::shared_ptr<const graph> resolve_topology(const json::value& req,
                                              const op_context& ctx) {
  const std::string name = require_string(req, "topology");
  const std::uint64_t seed = u64_or(req, "topology_seed", 7);
  const std::uint64_t budget =
      bounded_u64(req, "budget", 0, 0, ctx.limits.max_budget);
  if (budget != 0 && budget < 64) {
    throw request_error(error_code::bad_request,
                        "field 'budget' must be 0 (native size) or >= 64");
  }
  return ctx.resolve(name, seed, static_cast<node_id>(budget));
}

json::value response_document(const json::value& req,
                              const run_fn& run) noexcept {
  json::value id;  // null until the request parses far enough to have one
  try {
    id = request_id(req);
    const std::string op = require_string(req, "op");
    return ok_document(op, run(op, req), id);
  } catch (const request_error& e) {
    return error_document(e.code(), e.what(), id);
  } catch (const std::invalid_argument& e) {
    // Domain preconditions (unknown catalog name, bad grid, ...) surface
    // as std::invalid_argument from the measurement stack.
    return error_document(error_code::bad_request, e.what(), id);
  } catch (const std::exception& e) {
    return error_document(error_code::internal_error, e.what(), id);
  } catch (...) {
    return error_document(error_code::internal_error, "unknown error", id);
  }
}

const json::value& batch_subops(const json::value& req,
                                const service_limits& limits) {
  const json::value& ops = require_member(req, "ops");
  if (!ops.is(json::value::kind::array)) {
    throw request_error(error_code::bad_request,
                        "field 'ops' must be an array of requests");
  }
  if (ops.items().empty()) {
    throw request_error(error_code::bad_request,
                        "field 'ops' must not be empty");
  }
  if (ops.items().size() > limits.max_batch_ops) {
    throw request_error(error_code::limit_exceeded,
                        "field 'ops' exceeds the service cap of " +
                            std::to_string(limits.max_batch_ops) +
                            " sub-ops");
  }
  return ops;
}

json::value subop_document(const json::value& sub,
                           const run_fn& run) noexcept {
  if (!sub.is(json::value::kind::object)) {
    return error_document(error_code::bad_request,
                          "batch sub-op must be a JSON object",
                          json::value());
  }
  return response_document(sub, run);
}

void reject_nested_batch(const std::string& op) {
  if (op == "batch") {
    throw request_error(error_code::bad_request,
                        "batch must not contain a nested batch");
  }
}

json::value make_batch_result(std::vector<json::value>&& docs) {
  std::size_t ok_count = 0;
  json::value results = json::value::array();
  for (json::value& doc : docs) {
    const json::value* ok = doc.get("ok");
    if (ok != nullptr && ok->is(json::value::kind::boolean) && ok->as_bool()) {
      ++ok_count;
    }
    results.push(std::move(doc));
  }
  json::value result = json::value::object();
  result.set("count", num_u(docs.size()));
  result.set("ok_count", num_u(ok_count));
  result.set("error_count", num_u(docs.size() - ok_count));
  result.set("results", std::move(results));
  return result;
}

}  // namespace mcast::service
