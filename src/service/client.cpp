#include "service/client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mcast::service {
namespace {

/// What one attempt produced. `retry_ambiguous` marks failures where the
/// server may have executed the request (only idempotent requests may
/// re-send); `retry_safe` marks failures where it provably did not.
enum class attempt_kind {
  ok,
  final_error,      // typed non-retryable error line
  retry_safe,       // connect refused / typed retryable error
  retry_ambiguous,  // timeout or connection lost mid-call
};

struct attempt_outcome {
  attempt_kind kind = attempt_kind::retry_ambiguous;
  call_status status = call_status::connection_lost;
  std::string response;
  std::string error_code;
};

/// The typed code out of an error line, or "" when the line is not a
/// well-formed error response.
std::string extract_error_code(const json::value& doc) {
  const json::value* err = doc.get("error");
  if (err == nullptr || !err->is(json::value::kind::object)) return "";
  const json::value* code = err->get("code");
  if (code == nullptr || !code->is(json::value::kind::string)) return "";
  return code->as_string();
}

long long elapsed_ms(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

const char* call_status_name(call_status status) noexcept {
  switch (status) {
    case call_status::ok: return "ok";
    case call_status::server_error: return "server_error";
    case call_status::timeout: return "timeout";
    case call_status::connect_refused: return "connect_refused";
    case call_status::connection_lost: return "connection_lost";
  }
  return "connection_lost";
}

bool idempotent_request(const std::string& line) noexcept {
  json::value doc;
  try {
    doc = json::parse(line);
  } catch (...) {
    return true;  // deterministic parse_error on the server; re-send is safe
  }
  if (!doc.is(json::value::kind::object)) return true;  // ditto
  const json::value* op = doc.get("op");
  if (op == nullptr || !op->is(json::value::kind::string)) return true;
  const std::string& name = op->as_string();
  // The query catalog (docs/service.md): every op is a pure function of
  // the request line. New ops must be added here only if they stay pure.
  return name == "lmhat" || name == "lm_estimate" || name == "reachability" ||
         name == "metrics" || name == "healthz" || name == "batch";
}

bool retryable_error_code(const std::string& code) noexcept {
  return code == "overloaded" || code == "shed";
}

retry_client::retry_client(std::uint16_t port, retry_policy policy)
    : port_(port), policy_(policy), jitter_(policy.seed) {}

void retry_client::disconnect() noexcept {
  reader_.reset();
  conn_.reset();
}

bool retry_client::ensure_connected() noexcept {
  if (conn_.valid()) return true;
  try {
    conn_ = net::connect_loopback(port_);
  } catch (...) {
    return false;
  }
  reader_ = std::make_unique<net::line_reader>(conn_.get(), 1 << 26);
  return true;
}

long long retry_client::next_backoff_ms(int retry_index) {
  long long ms = policy_.backoff_base_ms;
  for (int i = 0; i < retry_index && ms < policy_.backoff_max_ms; ++i) ms *= 2;
  ms = std::min<long long>(ms, policy_.backoff_max_ms);
  const double scale = 1.0 - policy_.jitter * jitter_.uniform();
  ms = static_cast<long long>(static_cast<double>(ms) * scale);
  return std::max<long long>(ms, 0);
}

std::string retry_client::attempt_line(const std::string& request,
                                       int attempt) const {
  if (policy_.trace_base.empty()) return request;
  json::value doc;
  try {
    doc = json::parse(request);
  } catch (...) {
    return request;  // unparseable: the server answers parse_error anyway
  }
  if (!doc.is(json::value::kind::object)) return request;
  if (doc.get("trace") != nullptr) return request;  // caller's token wins
  doc.set("trace", json::value::string(policy_.trace_base + "-a" +
                                       std::to_string(attempt)));
  return json::dump_compact(doc);
}

call_result retry_client::call(const std::string& request) {
  const auto started = std::chrono::steady_clock::now();
  const bool may_retry_ambiguous =
      policy_.retry_nonidempotent || idempotent_request(request);

  // Client-side trace identity: one deterministic id per logical call, so
  // a profiled client's call/attempt spans group per request and line up
  // with the server's spans when both traces are inspected together.
  const std::uint64_t call_index = calls_++;
  obs::trace_scope trace_guard(obs::trace_context{
      obs::trace_request_id(policy_.seed ^ 0x636c69656e746964ull, call_index,
                            0),
      0});
  obs::span call_span("client.call");

  call_result result;
  for (int attempt = 0; attempt < std::max(1, policy_.max_attempts);
       ++attempt) {
    ++result.attempts;
    obs::add(obs::counter::retry_attempts);

    attempt_outcome out;
    {
      obs::span attempt_span("client.attempt");
      const std::string line_out = attempt_line(request, result.attempts);
      if (!ensure_connected()) {
        out.kind = attempt_kind::retry_safe;  // nothing was sent
        out.status = call_status::connect_refused;
      } else if (!net::send_all(conn_.get(), line_out + "\n")) {
        disconnect();
        out.kind = attempt_kind::retry_ambiguous;
        out.status = call_status::connection_lost;
      } else {
        std::string line;
        const net::line_reader::status st =
            reader_->read_line(line, policy_.attempt_timeout_ms);
        if (st == net::line_reader::status::line) {
          out.response = std::move(line);
          json::value doc;
          bool parsed = true;
          try {
            doc = json::parse(out.response);
          } catch (...) {
            parsed = false;
          }
          const json::value* ok = parsed ? doc.get("ok") : nullptr;
          if (parsed && ok != nullptr && ok->is(json::value::kind::boolean) &&
              ok->as_bool()) {
            out.kind = attempt_kind::ok;
            out.status = call_status::ok;
          } else {
            out.error_code = parsed ? extract_error_code(doc) : "";
            out.status = call_status::server_error;
            // overloaded/shed mean "not executed, come back later" — the
            // retry case backoff exists for. Anything else is final.
            out.kind = retryable_error_code(out.error_code)
                           ? attempt_kind::retry_safe
                           : attempt_kind::final_error;
          }
        } else if (st == net::line_reader::status::timeout) {
          // The response may still arrive after we gave up; this connection
          // can never be reused (a late line would answer the wrong call).
          disconnect();
          out.kind = attempt_kind::retry_ambiguous;
          out.status = call_status::timeout;
        } else {
          disconnect();
          out.kind = attempt_kind::retry_ambiguous;
          out.status = call_status::connection_lost;
        }
      }
    }

    result.status = out.status;
    if (!out.response.empty()) result.response = out.response;
    result.error_code = out.error_code;

    if (out.kind == attempt_kind::ok) {
      obs::add(obs::counter::retry_successes);
      return result;
    }
    if (out.kind == attempt_kind::final_error) return result;
    if (out.kind == attempt_kind::retry_ambiguous && !may_retry_ambiguous) {
      return result;
    }
    if (result.attempts >= policy_.max_attempts) break;

    const long long backoff = next_backoff_ms(result.attempts - 1);
    if (elapsed_ms(started) + backoff > policy_.budget_ms) break;
    obs::add(obs::counter::retry_retries);
    obs::record(obs::histogram::retry_backoff_ms,
                static_cast<std::uint64_t>(backoff));
    if (backoff > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
    }
    result.backoff_total_ms += backoff;
  }
  obs::add(obs::counter::retry_exhausted);
  return result;
}

}  // namespace mcast::service
