#include "service/query_service.hpp"

#include <chrono>
#include <utility>
#include <vector>

#include "obs/access_log.hpp"
#include "obs/metrics.hpp"
#include "topo/cache.hpp"

namespace mcast::service {

query_service::query_service(service_limits limits) {
  ctx_.limits = limits;
  ctx_.resolve = [](const std::string& name, std::uint64_t seed,
                    node_id budget) {
    return shared_topology_cache().get(name, seed, budget);
  };
  // One manager holds every live group; group_list falls back to its
  // list(), so no group_list_all merge hook is needed on the monolith.
  ctx_.groups = std::make_shared<group_manager>();
}

void query_service::set_stats_source(std::function<net::server_stats()> fn) {
  ctx_.stats = std::move(fn);
}

void query_service::set_pressure_source(std::function<double()> fn) {
  pressure_fn_ = std::move(fn);
}

double query_service::pressure() const {
  return pressure_fn_ ? pressure_fn_() : 0.0;
}

std::string query_service::handle(const std::string& line) noexcept {
  json::value req;
  try {
    req = parse_request(line);
  } catch (const request_error& e) {
    if (obs::access_entry* entry = obs::access_current()) {
      entry->outcome = error_code_name(e.code());
    }
    return error_response(e.code(), e.what(), json::value());
  }
  json::value doc = response_document(
      req, [this](const std::string& op, const json::value& r) {
        return dispatch(op, r);
      });
  const auto begun = std::chrono::steady_clock::now();
  std::string response = json::dump_compact(doc);
  const std::uint64_t serialize_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - begun)
          .count());
  obs::record(obs::histogram::svc_serialize_ns, serialize_ns);
  if (obs::access_entry* entry = obs::access_current()) {
    entry->serialize_ns = serialize_ns;
  }
  return response;
}

bool query_service::shed_gate(const std::string& op) const {
  // Cost-aware shedding: only the Monte-Carlo ops pay the overload
  // bill. Cheap ops (lmhat, metrics, healthz) stay live at any pressure
  // so health checks and closed-form queries keep working.
  const double p = pressure();
  if (p >= shed_.refuse_at) {
    obs::add(obs::counter::svc_shed_refused);
    throw request_error(error_code::shed,
                        "op '" + op + "' shed under load (pressure " +
                            std::to_string(p) + "); retry with backoff");
  }
  if (p >= shed_.degrade_at) {
    obs::add(obs::counter::svc_shed_degraded);
    return true;
  }
  return false;
}

json::value query_service::dispatch(const std::string& op,
                                    const json::value& req) {
  if (op == "batch") return run_batch(req);
  const op_entry* entry = find_op(op);
  if (entry == nullptr) {
    throw request_error(error_code::unknown_op, "unknown op '" + op + "'");
  }
  const bool degraded = entry->sheddable ? shed_gate(op) : false;
  return run_op(*entry, req, ctx_, degraded);
}

json::value query_service::run_batch(const json::value& req) {
  static const char* const allowed[] = {"op", "id", "trace", "ops", nullptr};
  reject_unknown_keys(req, allowed);
  const json::value& ops = batch_subops(req, ctx_.limits);
  const std::string parent_trace = trace_token(req);
  obs::add(obs::counter::svc_batch_requests);

  // Serial reference semantics: sub-ops run in request order on this
  // thread. The sharded host scatters the same slots and splices the same
  // documents back in slot order (shard_router.cpp).
  std::vector<json::value> docs;
  docs.reserve(ops.items().size());
  for (const json::value& sub : ops.items()) {
    obs::add(obs::counter::svc_batch_subops);
    docs.push_back(subop_document(
        sub,
        [this](const std::string& op, const json::value& r) {
          reject_nested_batch(op);
          return dispatch(op, r);
        },
        parent_trace));
    obs::add(obs::counter::svc_batch_spliced);
  }
  return make_batch_result(std::move(docs));
}

}  // namespace mcast::service
