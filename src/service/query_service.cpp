#include "service/query_service.hpp"

#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "analysis/kary_exact.hpp"
#include "analysis/reachability.hpp"
#include "core/runner.hpp"
#include "core/scaling_law.hpp"
#include "obs/metrics.hpp"
#include "obs/metrics_json.hpp"
#include "sim/rng.hpp"
#include "topo/cache.hpp"

namespace mcast::service {
namespace {

json::value num(double v) { return json::value::number(v); }
json::value num_u(std::uint64_t v) {
  return json::value::number(static_cast<double>(v));
}

/// The request "id" echoed in responses: absent → null; anything but a
/// string/number/null is a client bug worth naming.
json::value request_id(const json::value& req) {
  const json::value* id = req.get("id");
  if (id == nullptr) return json::value();
  switch (id->type()) {
    case json::value::kind::null:
    case json::value::kind::number:
    case json::value::kind::string:
      return *id;
    default:
      throw request_error(error_code::bad_request,
                          "field 'id' must be a string, number or null");
  }
}

/// `n` as a grid: a single number or an array of numbers, each >= 0.
std::vector<double> n_grid(const json::value& req, std::size_t max_points) {
  const json::value& n = require_member(req, "n");
  std::vector<double> grid;
  if (n.is(json::value::kind::number)) {
    grid.push_back(n.as_number());
  } else if (n.is(json::value::kind::array)) {
    if (n.items().empty()) {
      throw request_error(error_code::bad_request,
                          "field 'n' must not be an empty array");
    }
    if (n.items().size() > max_points) {
      throw request_error(error_code::limit_exceeded,
                          "field 'n' exceeds the service cap of " +
                              std::to_string(max_points) + " points");
    }
    for (const json::value& item : n.items()) {
      if (!item.is(json::value::kind::number)) {
        throw request_error(error_code::bad_request,
                            "field 'n' must contain only numbers");
      }
      grid.push_back(item.as_number());
    }
  } else {
    throw request_error(error_code::bad_request,
                        "field 'n' must be a number or an array of numbers");
  }
  for (const double v : grid) {
    if (!std::isfinite(v) || v < 0.0) {
      throw request_error(error_code::bad_request,
                          "field 'n' values must be finite and >= 0");
    }
  }
  return grid;
}

/// Shared topology resolution: catalog name + optional seed/budget.
/// budget 0 means the entry's native size; otherwise the same scaled
/// build `mcast_lab run` uses (which requires budget >= 64).
std::shared_ptr<const graph> resolve_topology(const json::value& req,
                                              const service_limits& limits) {
  const std::string name = require_string(req, "topology");
  const std::uint64_t seed = u64_or(req, "topology_seed", 7);
  const std::uint64_t budget =
      bounded_u64(req, "budget", 0, 0, limits.max_budget);
  if (budget != 0 && budget < 64) {
    throw request_error(error_code::bad_request,
                        "field 'budget' must be 0 (native size) or >= 64");
  }
  return shared_topology_cache().get(name, seed, static_cast<node_id>(budget));
}

json::value point_row(const scaling_point& p) {
  json::value row = json::value::object();
  row.set("group_size", num_u(p.group_size));
  row.set("tree_links_mean", num(p.tree_links_mean));
  row.set("tree_links_stderr", num(p.tree_links_stderr));
  row.set("unicast_mean", num(p.unicast_mean));
  row.set("ratio_mean", num(p.ratio_mean));
  row.set("ratio_stderr", num(p.ratio_stderr));
  row.set("samples", num_u(p.samples));
  return row;
}

}  // namespace

query_service::query_service(service_limits limits)
    : limits_(limits), started_(std::chrono::steady_clock::now()) {}

void query_service::set_stats_source(std::function<net::server_stats()> fn) {
  stats_fn_ = std::move(fn);
}

void query_service::set_pressure_source(std::function<double()> fn) {
  pressure_fn_ = std::move(fn);
}

double query_service::pressure() const {
  return pressure_fn_ ? pressure_fn_() : 0.0;
}

std::string query_service::handle(const std::string& line) noexcept {
  json::value id;  // null until the request parses far enough to have one
  try {
    const json::value req = parse_request(line);
    id = request_id(req);
    const std::string op = require_string(req, "op");
    return ok_response(op, dispatch(op, req), id);
  } catch (const request_error& e) {
    return error_response(e.code(), e.what(), id);
  } catch (const std::invalid_argument& e) {
    // Domain preconditions (unknown catalog name, bad grid, ...) surface
    // as std::invalid_argument from the measurement stack.
    return error_response(error_code::bad_request, e.what(), id);
  } catch (const std::exception& e) {
    return error_response(error_code::internal_error, e.what(), id);
  } catch (...) {
    return error_response(error_code::internal_error, "unknown error", id);
  }
}

json::value query_service::dispatch(const std::string& op,
                                    const json::value& req) {
  static const char* const bare[] = {"op", "id", nullptr};
  if (op == "lmhat") return op_lmhat(req);
  if (op == "lm_estimate" || op == "reachability") {
    // Cost-aware shedding: only the Monte-Carlo ops pay the overload
    // bill. Cheap ops (lmhat, metrics, healthz) stay live at any pressure
    // so health checks and closed-form queries keep working.
    const double p = pressure();
    bool degraded = false;
    if (p >= shed_.refuse_at) {
      obs::add(obs::counter::svc_shed_refused);
      throw request_error(error_code::shed,
                          "op '" + op + "' shed under load (pressure " +
                              std::to_string(p) + "); retry with backoff");
    }
    if (p >= shed_.degrade_at) {
      obs::add(obs::counter::svc_shed_degraded);
      degraded = true;
    }
    return op == "lm_estimate" ? op_lm_estimate(req, degraded)
                               : op_reachability(req, degraded);
  }
  if (op == "metrics") {
    reject_unknown_keys(req, bare);
    return op_metrics();
  }
  if (op == "healthz") {
    reject_unknown_keys(req, bare);
    return op_healthz();
  }
  throw request_error(error_code::unknown_op, "unknown op '" + op + "'");
}

json::value query_service::op_lmhat(const json::value& req) const {
  static const char* const allowed[] = {"op", "id", "k",     "depth",
                                        "n",  "model", nullptr};
  reject_unknown_keys(req, allowed);
  require_member(req, "k");
  require_member(req, "depth");
  const unsigned k =
      static_cast<unsigned>(bounded_u64(req, "k", 0, 2, limits_.max_kary_k));
  const unsigned depth = static_cast<unsigned>(
      bounded_u64(req, "depth", 0, 1, limits_.max_kary_depth));
  const std::string model = string_or(req, "model", "leaves");
  if (model != "leaves" && model != "all_sites") {
    throw request_error(error_code::bad_request,
                        "field 'model' must be 'leaves' or 'all_sites'");
  }
  const bool leaves = model == "leaves";
  const std::vector<double> grid = n_grid(req, limits_.max_points);

  const double sites =
      leaves ? kary_leaf_count(k, depth) : kary_site_count_all(k, depth);
  const double ubar = leaves ? kary_unicast_mean_leaves(depth)
                             : kary_unicast_mean_all_sites(k, depth);

  json::value rows = json::value::array();
  for (const double n : grid) {
    const double lhat = leaves ? kary_tree_size_leaves(k, depth, n)
                               : kary_tree_size_all_sites(k, depth, n);
    json::value row = json::value::object();
    row.set("n", num(n));
    row.set("lhat", num(lhat));
    row.set("lhat_over_ubar", num(lhat / ubar));
    rows.push(std::move(row));
  }

  json::value result = json::value::object();
  result.set("k", num_u(k));
  result.set("depth", num_u(depth));
  result.set("model", json::value::string(model));
  result.set("sites", num(sites));
  result.set("unicast_mean", num(ubar));
  result.set("rows", std::move(rows));
  return result;
}

json::value query_service::op_lm_estimate(const json::value& req,
                                          bool degraded) const {
  static const char* const allowed[] = {
      "op",          "id",    "topology",      "topology_seed",
      "budget",      "seed",  "group_sizes",   "grid_points",
      "sources",     "model", "receiver_sets", "threads",
      nullptr};
  reject_unknown_keys(req, allowed);
  const auto shared = resolve_topology(req, limits_);
  const graph& g = *shared;
  const std::uint64_t sites = g.node_count() - 1;

  const std::string model = string_or(req, "model", "distinct");
  if (model != "distinct" && model != "replacement") {
    throw request_error(error_code::bad_request,
                        "field 'model' must be 'distinct' or 'replacement'");
  }
  const bool distinct = model == "distinct";

  std::vector<std::uint64_t> grid;
  if (req.get("group_sizes") != nullptr) {
    if (req.get("grid_points") != nullptr) {
      throw request_error(
          error_code::bad_request,
          "give either 'group_sizes' or 'grid_points', not both");
    }
    const json::value& gs = require_member(req, "group_sizes");
    if (!gs.is(json::value::kind::array) || gs.items().empty()) {
      throw request_error(error_code::bad_request,
                          "field 'group_sizes' must be a non-empty array");
    }
    if (gs.items().size() > limits_.max_group_sizes) {
      throw request_error(error_code::limit_exceeded,
                          "field 'group_sizes' exceeds the service cap of " +
                              std::to_string(limits_.max_group_sizes));
    }
    for (const json::value& item : gs.items()) {
      if (!item.is(json::value::kind::number) || item.as_number() < 1.0 ||
          item.as_number() != std::floor(item.as_number())) {
        throw request_error(error_code::bad_request,
                            "field 'group_sizes' must hold integers >= 1");
      }
      grid.push_back(static_cast<std::uint64_t>(item.as_number()));
    }
  } else {
    const std::uint64_t points = bounded_u64(req, "grid_points", 12, 2,
                                             limits_.max_group_sizes);
    grid = default_group_grid(sites, static_cast<std::size_t>(points));
  }
  if (distinct) {
    for (const std::uint64_t m : grid) {
      if (m > sites) {
        throw request_error(error_code::bad_request,
                            "group size " + std::to_string(m) +
                                " exceeds the topology's " +
                                std::to_string(sites) + " candidate sites");
      }
    }
  }

  monte_carlo_params mc;
  mc.seed = u64_or(req, "seed", 1999);
  mc.sources = static_cast<std::size_t>(
      bounded_u64(req, "sources", 20, 1, limits_.max_sources));
  mc.receiver_sets = static_cast<std::size_t>(
      bounded_u64(req, "receiver_sets", 20, 1, limits_.max_receiver_sets));
  mc.threads = static_cast<std::size_t>(
      bounded_u64(req, "threads", 1, 1, limits_.max_threads));

  std::vector<scaling_point> points;
  if (degraded) {
    // Under pressure: answer from the Chuang-Sirbu closed form (Eq 4),
    // L(m) ≈ ū·m^0.8, with ū from a single BFS instead of the full
    // Monte-Carlo sweep. samples = 0 marks every row as model-derived.
    const double ubar = reachability_from(g, 0).mean_distance();
    points.reserve(grid.size());
    for (const std::uint64_t m : grid) {
      scaling_point p;
      p.group_size = m;
      p.ratio_mean = std::pow(static_cast<double>(m), 0.8);
      p.tree_links_mean = ubar * p.ratio_mean;
      p.tree_links_stderr = 0.0;
      p.unicast_mean = ubar;
      p.ratio_stderr = 0.0;
      p.samples = 0;
      points.push_back(p);
    }
  } else {
    points = distinct ? measure_distinct_receivers(g, grid, mc)
                      : measure_with_replacement(g, grid, mc);
  }

  json::value rows = json::value::array();
  for (const scaling_point& p : points) rows.push(point_row(p));

  json::value result = json::value::object();
  result.set("topology", json::value::string(g.name()));
  result.set("nodes", num_u(g.node_count()));
  result.set("edges", num_u(g.edge_count()));
  result.set("model", json::value::string(model));
  result.set("seed", num_u(mc.seed));
  // Present only when shed to the closed form, so the fault-free response
  // stays byte-identical to what it was before shedding existed.
  if (degraded) result.set("degraded", json::value::boolean(true));
  result.set("rows", std::move(rows));

  // The Chuang-Sirbu fit over the paper's window, when enough of the
  // grid falls inside it to be meaningful.
  std::size_t usable = 0;
  for (const scaling_point& p : points) {
    if (p.samples > 0 && p.group_size >= 2 && p.group_size <= 500) ++usable;
  }
  if (usable >= 3) {
    const scaling_law law = scaling_law::fit_to(points, 2.0, 500.0);
    json::value fit = json::value::object();
    fit.set("amplitude", num(law.amplitude()));
    fit.set("exponent", num(law.exponent()));
    fit.set("r_squared", num(law.r_squared()));
    result.set("fit", std::move(fit));
  }
  return result;
}

json::value query_service::op_reachability(const json::value& req,
                                           bool degraded) const {
  static const char* const allowed[] = {
      "op",     "id",      "topology", "topology_seed",
      "budget", "source",  "sources",  "seed",
      nullptr};
  reject_unknown_keys(req, allowed);
  const auto shared = resolve_topology(req, limits_);
  const graph& g = *shared;

  reachability_profile prof;
  if (req.get("source") != nullptr) {
    if (req.get("sources") != nullptr) {
      throw request_error(error_code::bad_request,
                          "give either 'source' or 'sources', not both");
    }
    const std::uint64_t source = require_u64(req, "source");
    if (source >= g.node_count()) {
      throw request_error(error_code::bad_request,
                          "field 'source' must be < " +
                              std::to_string(g.node_count()));
    }
    prof = reachability_from(g, static_cast<node_id>(source));
  } else {
    const std::uint64_t sources =
        bounded_u64(req, "sources", 32, 1, limits_.max_sources);
    rng gen(u64_or(req, "seed", 777));
    // Under pressure the multi-source mean collapses to one sampled
    // source — a single BFS instead of `sources` of them.
    prof = mean_reachability(
        g, degraded ? 1 : static_cast<std::size_t>(sources), gen);
  }

  json::value s = json::value::array();
  json::value t = json::value::array();
  for (const double v : prof.s) s.push(num(v));
  for (const double v : prof.t) t.push(num(v));

  const reachability_growth_fit fit = fit_reachability_growth(prof);
  json::value growth = json::value::object();
  growth.set("lambda", num(fit.lambda));
  growth.set("r_squared", num(fit.r_squared));
  growth.set("radii_used", num_u(fit.radii_used));

  json::value result = json::value::object();
  result.set("topology", json::value::string(g.name()));
  result.set("nodes", num_u(g.node_count()));
  if (degraded) result.set("degraded", json::value::boolean(true));
  result.set("s", std::move(s));
  result.set("t", std::move(t));
  result.set("max_radius", num_u(prof.max_radius()));
  result.set("total_sites", num(prof.total_sites()));
  result.set("mean_distance", num(prof.mean_distance()));
  result.set("growth_fit", std::move(growth));
  return result;
}

json::value query_service::op_metrics() const {
  const net::server_stats stats =
      stats_fn_ ? stats_fn_() : net::server_stats{};
  json::value server = json::value::object();
  server.set("accepted", num_u(stats.accepted));
  server.set("rejected", num_u(stats.rejected));
  server.set("requests", num_u(stats.requests));
  server.set("queue_depth", num_u(stats.queue_depth));
  server.set("inflight", num_u(stats.inflight));

  json::value result = json::value::object();
  result.set("uptime_seconds",
             num(stats_fn_ ? stats.uptime_seconds
                           : std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - started_)
                                 .count()));
  result.set("server", std::move(server));
  result.set("metrics", obs::metrics_to_json(obs::snapshot()));
  return result;
}

json::value query_service::op_healthz() const {
  const net::server_stats stats =
      stats_fn_ ? stats_fn_() : net::server_stats{};
  json::value result = json::value::object();
  result.set("status", json::value::string("ok"));
  result.set("uptime_seconds",
             num(stats_fn_ ? stats.uptime_seconds
                           : std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - started_)
                                 .count()));
  result.set("accepted", num_u(stats.accepted));
  result.set("rejected", num_u(stats.rejected));
  result.set("requests", num_u(stats.requests));
  result.set("queue_depth", num_u(stats.queue_depth));
  result.set("inflight", num_u(stats.inflight));
  return result;
}

}  // namespace mcast::service
