// retry_client — the recommended way to talk to mcast_serve.
//
// One call() maps a request line to the server's response line, absorbing
// the transient failures the resilience layer documents
// (docs/resilience.md): refused connects while the daemon restarts,
// `overloaded` admission rejections, `shed` load-shedding refusals, RSTs
// and truncated frames from an unlucky connection. Between attempts it
// sleeps a jittered exponential backoff whose jitter stream is seeded
// (sim/rng.hpp), so a test or bench re-run retries at the exact same
// moments — determinism extends through the failure path.
//
// Retry safety is idempotency-aware. Every op in the query catalog is a
// pure function of its request line (explicit seeds; see
// service/query_service.hpp), so `idempotent_request` whitelists them for
// retry after *ambiguous* failures (timeout, connection lost mid-read,
// where the server may or may not have executed the request). Requests
// naming an unknown op are retried only where no execution can have
// happened (connect failure) or the server said so with a typed
// retryable error (`overloaded`, `shed`) — unless the policy opts in
// with `retry_nonidempotent`.
//
// All attempts/retries/outcomes are mirrored into the obs registry under
// retry.* so bench/svc_load can report client-side retry pressure next to
// server-side chaos counts.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "net/socket.hpp"
#include "sim/rng.hpp"

namespace mcast::service {

struct retry_policy {
  int max_attempts = 4;          ///< total tries (first attempt included)
  int attempt_timeout_ms = 5000; ///< per-attempt response deadline
  int backoff_base_ms = 10;      ///< first backoff; doubles per retry
  int backoff_max_ms = 500;      ///< exponential growth cap
  double jitter = 0.5;           ///< backoff *= (1 - jitter * u), u in [0,1)
  std::uint64_t seed = 42;       ///< jitter stream seed (deterministic)
  long long budget_ms = 60000;   ///< wall-clock cap across all attempts
  /// Retry ambiguous failures even for requests `idempotent_request`
  /// does not recognize. Off by default: an unknown op might not be pure.
  bool retry_nonidempotent = false;
  /// Attempt-chain correlation: when non-empty, every attempt is sent
  /// with `"trace": "<trace_base>-a<N>"` (N = 1-based attempt number) and
  /// the server echoes it, so the access log and the final response both
  /// say which attempt of which logical call produced them. Requests that
  /// already carry a "trace" field keep it. "" disables the rewrite and
  /// sends the request byte-for-byte as given.
  std::string trace_base;
};

enum class call_status {
  ok,               ///< a response line with "ok": true
  server_error,     ///< a typed, non-retryable error line (final)
  timeout,          ///< no response within the deadline, retries exhausted
  connect_refused,  ///< could not connect, retries exhausted
  connection_lost,  ///< peer closed/reset mid-call, retries exhausted
};

const char* call_status_name(call_status status) noexcept;

struct call_result {
  call_status status = call_status::connection_lost;
  std::string response;    ///< last response line ("" if none arrived)
  std::string error_code;  ///< typed code when the server answered an error
  int attempts = 0;        ///< attempts actually made (>= 1)
  long long backoff_total_ms = 0;  ///< total time slept between attempts
  bool ok() const noexcept { return status == call_status::ok; }
};

/// True when `line` names an op from the query catalog — all of which are
/// pure functions of the request (safe to re-send after an ambiguous
/// failure). Unparseable lines are also safe: the server answers them
/// with a deterministic parse_error and executes nothing.
bool idempotent_request(const std::string& line) noexcept;

/// True for the typed error codes that invite a retry: the server refused
/// before executing (`overloaded` admission, `shed` load shedding).
bool retryable_error_code(const std::string& code) noexcept;

class retry_client {
 public:
  explicit retry_client(std::uint16_t port, retry_policy policy = {});

  /// Sends `request` (no trailing newline) and returns the final outcome
  /// after at most policy.max_attempts tries. Never throws.
  call_result call(const std::string& request);

  /// Drops the cached connection; the next call() reconnects.
  void disconnect() noexcept;

  const retry_policy& policy() const noexcept { return policy_; }

 private:
  bool ensure_connected() noexcept;
  long long next_backoff_ms(int retry_index);
  /// The line attempt `attempt` (1-based) actually sends: `request`
  /// itself, or the trace_base rewrite described at retry_policy.
  std::string attempt_line(const std::string& request, int attempt) const;

  std::uint16_t port_;
  retry_policy policy_;
  rng jitter_;
  std::uint64_t calls_ = 0;  ///< call() count; keys the client trace ids
  net::unique_fd conn_;
  std::unique_ptr<net::line_reader> reader_;
};

}  // namespace mcast::service
