// CLI entry points for the query service: `mcast_lab serve` and
// `mcast_lab query`. Kept out of src/lab so the service stack does not
// depend on the experiment engine (the lab CLI links *us*).
#pragma once

#include <string>
#include <vector>

namespace mcast::service {

/// `mcast_lab serve [--port=N] [--threads=K] [--queue=N] [--max-line=B]
///                  [--drain-ms=MS|off] [--line-deadline-ms=MS|off]
///                  [--write-deadline-ms=MS|off]
///                  [--shed-degrade=F] [--shed-refuse=F] [--chaos=SPEC]
///                  [--metrics-summary] [--profile=FILE]`
///
/// Runs the line server until SIGINT or SIGTERM, then drains gracefully
/// (bounded by --drain-ms) and returns 0. Prints "listening on
/// 127.0.0.1:<port>" to stderr once the socket is bound (the line scripts
/// and tests key on). --shed-degrade/--shed-refuse are queue-pressure
/// fractions enabling cost-aware shedding; --chaos enables deterministic
/// fault injection (net/chaos.hpp grammar; see docs/resilience.md).
/// Throws std::invalid_argument on bad flags (the caller maps it to
/// exit code 1, like every other lab command).
int run_serve(const std::vector<std::string>& args);

/// `mcast_lab query --port=N [--timeout-ms=MS] [--retries=N]
///                  [--backoff-ms=MS] [--seed=S] [request-line ...]`
///
/// Sends each request line (or stdin lines when none are given) through
/// the retry client (service/client.hpp), printing one response line per
/// request on stdout. Exit codes: 0 every response ok, 1 usage error,
/// 2 typed server error, 3 connection refused after retries, 4 timeout or
/// connection lost after retries.
int run_query(const std::vector<std::string>& args);

}  // namespace mcast::service
