// CLI entry points for the query service: `mcast_lab serve` and
// `mcast_lab query`. Kept out of src/lab so the service stack does not
// depend on the experiment engine (the lab CLI links *us*).
#pragma once

#include <string>
#include <vector>

namespace mcast::service {

/// `mcast_lab serve [--port=N] [--threads=K] [--queue=N] [--max-line=B]
///                  [--metrics-summary] [--profile=FILE]`
///
/// Runs the line server until SIGINT or SIGTERM, then drains gracefully
/// and returns 0. Prints "listening on 127.0.0.1:<port>" to stderr once
/// the socket is bound (the line scripts and tests key on).
/// Throws std::invalid_argument on bad flags (the caller maps it to
/// exit code 1, like every other lab command).
int run_serve(const std::vector<std::string>& args);

/// `mcast_lab query --port=N [request-line ...]`
///
/// Sends each request line (or stdin lines when none are given) to a
/// running server, printing one response line per request on stdout.
/// Returns 0 iff every response had "ok": true.
int run_query(const std::vector<std::string>& args);

}  // namespace mcast::service
