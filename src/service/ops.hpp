// Shard-agnostic op handlers behind the query service dispatch table.
//
// Every operation of the line protocol lives here as a pure function of
// (request, op_context): the monolithic query_service and the sharded
// service (service/shard_router.hpp) both dispatch through the same table
// and the same handler bodies, which is what makes their responses
// byte-identical — the only thing a host service chooses is *where* a
// handler runs (inline, on a shard worker, or scattered across shards)
// and how topologies resolve (process-wide cache vs per-shard tiers).
//
// Handler units:
//   ops_lmhat.cpp        — closed-form k-ary L̂(n) (Eq 2/3)
//   ops_estimate.cpp     — Monte-Carlo L(m), split into plan / run /
//                          render so the source range can scatter across
//                          shards and splice back in index order
//   ops_reachability.cpp — reachability profiles + growth fit
//   ops_admin.cpp        — metrics / healthz (live state; exempt from the
//                          byte-identity guarantee)
//   ops.cpp              — the table, response documents, batch envelope
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "core/runner.hpp"
#include "graph/graph.hpp"
#include "group/group_manager.hpp"
#include "net/server.hpp"
#include "service/protocol.hpp"

namespace mcast::service {

/// Cost-aware load shedding (docs/resilience.md). Pressure is a number in
/// [0, 1] (typically queue_depth / queue_capacity). The expensive
/// Monte-Carlo ops degrade first and refuse last; lmhat/metrics/healthz
/// are never shed. Thresholds above 1 disable the corresponding tier,
/// which is the default: shedding must be asked for.
struct shed_policy {
  /// At or above this pressure, lm_estimate answers with the Eq 4 closed
  /// form (marked `"degraded": true`) and reachability with a single-BFS
  /// profile instead of the Monte-Carlo mean.
  double degrade_at = 2.0;
  /// At or above this pressure, lm_estimate/reachability are refused with
  /// the retryable typed error `shed`.
  double refuse_at = 2.0;
};

/// Resolves (catalog name, seed, budget) to a shared immutable graph. The
/// monolith binds the process-wide topology cache; each shard binds its
/// own two-tier cache (warm tier + shard LRU).
using topology_resolver = std::function<std::shared_ptr<const graph>(
    const std::string& name, std::uint64_t seed, node_id budget)>;

/// Everything a handler needs from its host service. Cheap to copy into
/// shard workers; the callbacks must be thread-safe (they are: the
/// resolvers are caches, the stats sources read atomics).
struct op_context {
  service_limits limits;
  topology_resolver resolve;                    ///< required
  std::function<net::server_stats()> stats;     ///< null => zeros + own uptime
  std::function<json::value()> shard_metrics;   ///< null => no "shards" array
  /// Live group state for the group_* ops. The monolith binds its one
  /// manager; the sharded host binds one per shard, so a group lives on
  /// the shard its topology key routes to. Null in contexts that never
  /// run group ops (the sharded frontend).
  std::shared_ptr<group_manager> groups;
  /// All live groups across the whole host — what group_list renders. The
  /// monolith lists its manager; the sharded frontend merges every
  /// shard's manager (each group exists on exactly one shard, so the
  /// merge is a disjoint union).
  std::function<std::vector<group_snapshot>()> group_list_all;
  std::chrono::steady_clock::time_point started =
      std::chrono::steady_clock::now();
};

// --- dispatch table ----------------------------------------------------

enum class op_kind {
  lmhat,
  lm_estimate,
  reachability,
  metrics,
  healthz,
  group_create,
  group_join,
  group_leave,
  group_stats,
  group_list,
};

struct op_entry {
  const char* name;
  op_kind kind;
  /// Participates in cost-aware shedding (the Monte-Carlo ops).
  bool sheddable;
  /// Resolves a topology, hence routes by topology key when sharded.
  bool needs_topology;
};

/// Table lookup; nullptr for unknown ops. "batch" is deliberately not in
/// the table — it is an envelope the host service unpacks, not a handler.
const op_entry* find_op(const std::string& op) noexcept;

/// Runs the table entry's handler. `degraded` only matters for sheddable
/// ops; the host computed it from its shed policy before dispatching.
json::value run_op(const op_entry& entry, const json::value& req,
                   const op_context& ctx, bool degraded);

// --- handlers (result payloads; throw request_error on bad input) ------

json::value op_lmhat(const json::value& req, const op_context& ctx);
json::value op_lm_estimate(const json::value& req, const op_context& ctx,
                           bool degraded);
json::value op_reachability(const json::value& req, const op_context& ctx,
                            bool degraded);
json::value op_metrics(const json::value& req, const op_context& ctx);
json::value op_healthz(const json::value& req, const op_context& ctx);

// Group membership ops (service/ops_group.cpp). Stateful: the result is a
// deterministic function of the request and the owning group's op
// history, so responses stay byte-identical across shard counts as long
// as per-group request order is preserved (which routing by topology key
// guarantees for pipelined clients).
json::value op_group_create(const json::value& req, const op_context& ctx);
json::value op_group_join(const json::value& req, const op_context& ctx);
json::value op_group_leave(const json::value& req, const op_context& ctx);
json::value op_group_stats(const json::value& req, const op_context& ctx);
json::value op_group_list(const json::value& req, const op_context& ctx);

/// The canonical scope string for a request's topology fields
/// ("<name>:<seed>:<budget>", same defaults as resolve_topology). Group
/// identity is (scope, group name); every host composes it identically,
/// which is what keeps group state portable between monolith and shards.
std::string group_scope(const json::value& req, const op_context& ctx);

// --- shared request plumbing -------------------------------------------

/// The request "id" echoed in responses: absent → null; anything but a
/// string/number/null is a client bug worth naming.
json::value request_id(const json::value& req);

/// Shared topology resolution: catalog name + optional seed/budget.
/// budget 0 means the entry's native size; otherwise the same scaled
/// build `mcast_lab run` uses (which requires budget >= 64).
std::shared_ptr<const graph> resolve_topology(const json::value& req,
                                              const op_context& ctx);

/// JSON number shorthands shared by the handler units.
json::value num(double v);
json::value num_u(std::uint64_t v);

/// Builds the full response document for one parsed request: extracts the
/// id and op, calls `run(op, req)` for the result payload, and maps every
/// failure to the typed error document of the wire protocol. Never throws.
using run_fn =
    std::function<json::value(const std::string& op, const json::value& req)>;
json::value response_document(const json::value& req,
                              const run_fn& run) noexcept;

// --- batch envelope ----------------------------------------------------
//
//   {"op":"batch","id":7,"ops":[{"op":"lmhat",...},{"op":"healthz"}]}
//   → {"id":7,"ok":true,"op":"batch","result":{"count":2,"ok_count":2,
//      "error_count":0,"results":[<full response doc>, ...]}}
//
// Sub-op documents are exactly the lines the same requests would get
// standalone, in request order; one bad sub-op never fails the envelope
// (its slot carries the typed error instead). Envelopes must not nest.

/// Validates the envelope's "ops" member: present, an array, non-empty,
/// at most limits.max_batch_ops entries. Returns the array.
const json::value& batch_subops(const json::value& req,
                                const service_limits& limits);

/// The response document for one batch slot: non-objects get a typed
/// bad_request doc, objects run through response_document(sub, run).
/// Each slot is wrapped in a "batch.subop" span. A non-empty
/// `parent_trace` (the envelope's token) is inherited by slots that lack
/// their own "trace", so per-slot errors correlate to the parent request.
json::value subop_document(const json::value& sub, const run_fn& run) noexcept;
json::value subop_document(const json::value& sub, const run_fn& run,
                           const std::string& parent_trace) noexcept;

/// Throws the canonical bad_request for a nested "batch" sub-op. Both
/// services call this from their sub-op runner so the message matches.
void reject_nested_batch(const std::string& op);

/// Assembles the envelope's result payload from per-slot response docs
/// (already in request order).
json::value make_batch_result(std::vector<json::value>&& docs);

// --- lm_estimate scatter/gather ----------------------------------------
//
// The Monte-Carlo measurement is a fold over independent source tasks, so
// a sharded host can run disjoint source ranges on different shards and
// splice the un-merged per-source blocks back in index order — the exact
// accumulation sequence of the serial path, hence byte-identical rows
// (core/runner.hpp, mc_cell). plan → run (per range) → splice → render.

struct lm_plan {
  std::shared_ptr<const graph> g;
  std::string model;  ///< "distinct" | "replacement"
  bool distinct = true;
  std::vector<std::uint64_t> grid;
  monte_carlo_params mc;
};

/// Full request validation + topology resolution, on the calling thread.
/// Everything op_lm_estimate checks, checked once before any scatter.
lm_plan plan_lm_estimate(const json::value& req, const op_context& ctx);

/// Accumulator blocks for source tasks [begin, end) of the plan.
std::vector<std::vector<mc_cell>> run_lm_sources(const lm_plan& plan,
                                                 std::size_t begin,
                                                 std::size_t end);

/// The Eq 4 closed-form rows used when the op is degraded under load
/// (samples = 0 marks every row as model-derived).
std::vector<scaling_point> lm_closed_form(const lm_plan& plan);

/// The op's result payload from spliced rows.
json::value render_lm_estimate(const lm_plan& plan,
                               const std::vector<scaling_point>& points,
                               bool degraded);

}  // namespace mcast::service
