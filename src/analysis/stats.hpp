// Small statistics toolkit for Monte-Carlo aggregation.
//
// Welford-style running accumulation (numerically stable), summary
// extraction and a two-sided normal confidence half-width. Every figure in
// the reproduction averages N_rcvr x N_source samples with these.
#pragma once

#include <cstddef>
#include <vector>

namespace mcast {

/// Single-pass mean/variance accumulator (Welford).
class running_stats {
 public:
  /// Adds one observation.
  void add(double x);

  /// Number of observations so far.
  std::size_t count() const noexcept { return n_; }

  /// Sample mean; 0 when empty.
  double mean() const noexcept { return mean_; }

  /// Unbiased sample variance; 0 with fewer than two observations.
  double variance() const noexcept;

  /// Sample standard deviation.
  double stddev() const noexcept;

  /// Standard error of the mean; 0 with fewer than two observations.
  double stderr_mean() const noexcept;

  /// Smallest / largest observation; 0 when empty.
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }

  /// Merges another accumulator (parallel reduction).
  void merge(const running_stats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean of a sample; 0 when empty.
double mean_of(const std::vector<double>& xs);

/// Unbiased sample variance; 0 with fewer than two values.
double variance_of(const std::vector<double>& xs);

/// ~95% confidence half-width for the mean (1.96 * stderr).
double confidence_halfwidth95(const running_stats& s);

}  // namespace mcast
