#include "analysis/fit.hpp"

#include <cmath>

#include "common/contract.hpp"

namespace mcast {

linear_fit fit_linear(const std::vector<double>& x, const std::vector<double>& y) {
  expects(x.size() == y.size(), "fit_linear: x/y size mismatch");
  expects(x.size() >= 2, "fit_linear: need at least two points");

  const double n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  expects(sxx > 0.0, "fit_linear: x values are constant");

  linear_fit f;
  f.slope = sxy / sxx;
  f.intercept = my - f.slope * mx;
  f.points = x.size();
  if (syy > 0.0) {
    f.r_squared = (sxy * sxy) / (sxx * syy);
  } else {
    f.r_squared = 1.0;  // y constant and perfectly reproduced by slope 0
  }
  return f;
}

power_law_fit fit_power_law(const std::vector<double>& x,
                            const std::vector<double>& y) {
  expects(x.size() == y.size(), "fit_power_law: x/y size mismatch");
  std::vector<double> lx, ly;
  lx.reserve(x.size());
  ly.reserve(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    expects(x[i] > 0.0 && y[i] > 0.0,
            "fit_power_law: all values must be positive");
    lx.push_back(std::log(x[i]));
    ly.push_back(std::log(y[i]));
  }
  const linear_fit lf = fit_linear(lx, ly);
  power_law_fit f;
  f.exponent = lf.slope;
  f.amplitude = std::exp(lf.intercept);
  f.r_squared = lf.r_squared;
  f.points = lf.points;
  return f;
}

power_law_fit fit_power_law_windowed(const std::vector<double>& x,
                                     const std::vector<double>& y,
                                     double x_lo, double x_hi) {
  expects(x.size() == y.size(), "fit_power_law_windowed: x/y size mismatch");
  expects(x_lo <= x_hi, "fit_power_law_windowed: need x_lo <= x_hi");
  std::vector<double> wx, wy;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] >= x_lo && x[i] <= x_hi) {
      wx.push_back(x[i]);
      wy.push_back(y[i]);
    }
  }
  expects(wx.size() >= 2, "fit_power_law_windowed: window contains < 2 points");
  return fit_power_law(wx, wy);
}

}  // namespace mcast
