#include "analysis/kary_exact.hpp"

#include <cmath>

#include "analysis/mapping.hpp"
#include "common/contract.hpp"

namespace mcast {

namespace {

void check_tree(unsigned k, unsigned depth) {
  expects(k >= 2, "kary analysis: k must be >= 2");
  expects(depth >= 1, "kary analysis: depth must be >= 1");
  expects(depth <= 63, "kary analysis: depth too large");
}

// (1 - p)^n in the log domain; exact 0^0 = 1 handling is irrelevant here
// because p is always in (0,1).
double pow_one_minus(double p, double n) { return std::exp(n * std::log1p(-p)); }

}  // namespace

double kary_tree_size_leaves(unsigned k, unsigned depth, double n) {
  check_tree(k, depth);
  expects(n >= 0.0, "kary_tree_size_leaves: n must be non-negative");
  double total = 0.0;
  double kl = 1.0;  // k^l
  for (unsigned l = 1; l <= depth; ++l) {
    kl *= k;
    total += kl * (1.0 - pow_one_minus(1.0 / kl, n));
  }
  return total;
}

double kary_tree_size_delta_leaves(unsigned k, unsigned depth, double n) {
  check_tree(k, depth);
  expects(n >= 0.0, "kary_tree_size_delta_leaves: n must be non-negative");
  double total = 0.0;
  double kl = 1.0;
  for (unsigned l = 1; l <= depth; ++l) {
    kl *= k;
    total += pow_one_minus(1.0 / kl, n);
  }
  return total;
}

double kary_tree_size_delta2_leaves(unsigned k, unsigned depth, double n) {
  check_tree(k, depth);
  expects(n >= 0.0, "kary_tree_size_delta2_leaves: n must be non-negative");
  double total = 0.0;
  double kl = 1.0;
  for (unsigned l = 1; l <= depth; ++l) {
    kl *= k;
    total -= (1.0 / kl) * pow_one_minus(1.0 / kl, n);
  }
  return total;
}

double kary_h_exact(unsigned k, unsigned depth, double x) {
  check_tree(k, depth);
  expects(x > 0.0, "kary_h_exact: x must be positive");
  const double m_sites = kary_leaf_count(k, depth);
  const double ubar = kary_unicast_mean_leaves(depth);
  const double d2 = kary_tree_size_delta2_leaves(k, depth, x * m_sites);
  const double inner = -x * m_sites * std::log(m_sites) * d2 / ubar;
  expects(inner > 0.0, "kary_h_exact: argument underflowed to zero");
  return -std::log(inner);
}

double kary_link_probability_all_sites(unsigned k, unsigned depth,
                                       unsigned level) {
  check_tree(k, depth);
  expects(level >= 1 && level <= depth,
          "kary_link_probability_all_sites: level out of range");
  // (k^{D+1} - k^l) / (k^{D+1} - k) * k^{-l}: the receiver must land at or
  // below level l, then under this particular link.
  const double k_d1 = std::pow(static_cast<double>(k), depth + 1.0);
  const double k_l = std::pow(static_cast<double>(k), static_cast<double>(level));
  return (k_d1 - k_l) / (k_d1 - static_cast<double>(k)) / k_l;
}

double kary_tree_size_all_sites(unsigned k, unsigned depth, double n) {
  check_tree(k, depth);
  expects(n >= 0.0, "kary_tree_size_all_sites: n must be non-negative");
  double total = 0.0;
  double kl = 1.0;
  for (unsigned l = 1; l <= depth; ++l) {
    kl *= k;
    const double p = kary_link_probability_all_sites(k, depth, l);
    total += kl * (1.0 - pow_one_minus(p, n));
  }
  return total;
}

double kary_leaf_count(unsigned k, unsigned depth) {
  check_tree(k, depth);
  return std::pow(static_cast<double>(k), static_cast<double>(depth));
}

double kary_site_count_all(unsigned k, unsigned depth) {
  check_tree(k, depth);
  // (k^{D+1} - 1)/(k - 1) - 1 = (k^{D+1} - k)/(k - 1).
  const double k_d1 = std::pow(static_cast<double>(k), depth + 1.0);
  return (k_d1 - static_cast<double>(k)) / (static_cast<double>(k) - 1.0);
}

double kary_unicast_mean_leaves(unsigned depth) {
  expects(depth >= 1, "kary_unicast_mean_leaves: depth must be >= 1");
  return static_cast<double>(depth);
}

double kary_unicast_mean_all_sites(unsigned k, unsigned depth) {
  check_tree(k, depth);
  double num = 0.0;
  double den = 0.0;
  double kl = 1.0;
  for (unsigned l = 1; l <= depth; ++l) {
    kl *= k;
    num += static_cast<double>(l) * kl;
    den += kl;
  }
  return num / den;
}

double kary_tree_size_distinct_leaves(unsigned k, unsigned depth, double m) {
  check_tree(k, depth);
  const double m_sites = kary_leaf_count(k, depth);
  expects(m >= 0.0 && m < m_sites,
          "kary_tree_size_distinct_leaves: need 0 <= m < k^depth");
  const double n = draws_for_expected_distinct(m_sites, m);
  return kary_tree_size_leaves(k, depth, n);
}

}  // namespace mcast
