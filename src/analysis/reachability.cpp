#include "analysis/reachability.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/fit.hpp"
#include "common/contract.hpp"
#include "graph/bfs.hpp"

namespace mcast {

unsigned reachability_profile::max_radius() const {
  for (std::size_t r = s.size(); r > 0; --r) {
    if (s[r - 1] > 0.0) return static_cast<unsigned>(r - 1);
  }
  return 0;
}

double reachability_profile::mean_distance() const {
  double num = 0.0;
  double den = 0.0;
  for (std::size_t r = 1; r < s.size(); ++r) {
    num += static_cast<double>(r) * s[r];
    den += s[r];
  }
  return den == 0.0 ? 0.0 : num / den;
}

reachability_profile reachability_from(const graph& g, node_id source) {
  const std::vector<hop_count> dist = bfs_distances(g, source);
  reachability_profile p;
  p.s.assign(1, 0.0);
  for (node_id v = 0; v < g.node_count(); ++v) {
    const hop_count d = dist[v];
    if (d == unreachable || d == 0) continue;
    if (p.s.size() <= d) p.s.resize(d + 1, 0.0);
    p.s[d] += 1.0;
  }
  p.t.assign(p.s.size(), 0.0);
  for (std::size_t r = 1; r < p.s.size(); ++r) p.t[r] = p.t[r - 1] + p.s[r];
  return p;
}

reachability_profile mean_reachability(const graph& g, std::size_t sources,
                                       rng& gen) {
  expects(sources >= 1, "mean_reachability: need at least one source");
  expects(!g.empty(), "mean_reachability: graph is empty");
  reachability_profile acc;
  acc.s.assign(1, 0.0);
  for (std::size_t i = 0; i < sources; ++i) {
    const node_id src = static_cast<node_id>(gen.below(g.node_count()));
    const reachability_profile one = reachability_from(g, src);
    if (acc.s.size() < one.s.size()) acc.s.resize(one.s.size(), 0.0);
    for (std::size_t r = 0; r < one.s.size(); ++r) acc.s[r] += one.s[r];
  }
  for (double& v : acc.s) v /= static_cast<double>(sources);
  acc.t.assign(acc.s.size(), 0.0);
  for (std::size_t r = 1; r < acc.s.size(); ++r) acc.t[r] = acc.t[r - 1] + acc.s[r];
  return acc;
}

double general_tree_size_leaves(const std::vector<double>& s, double n) {
  expects(n >= 0.0, "general_tree_size_leaves: n must be non-negative");
  double total = 0.0;
  for (std::size_t r = 1; r < s.size(); ++r) {
    if (s[r] <= 0.0) continue;
    const double p = 1.0 / s[r];
    // S(r) (1 - (1 - 1/S(r))^n); p can be 1 (S(r) = 1): log1p(-1) = -inf,
    // exp(-inf * n) = 0 for n > 0, handled explicitly.
    const double miss = (p >= 1.0) ? (n > 0.0 ? 0.0 : 1.0)
                                   : std::exp(n * std::log1p(-p));
    total += s[r] * (1.0 - miss);
  }
  return total;
}

double general_tree_size_all_sites(const std::vector<double>& s, double n) {
  expects(n >= 0.0, "general_tree_size_all_sites: n must be non-negative");
  // T(r) prefix sums.
  std::vector<double> t(s.size(), 0.0);
  for (std::size_t r = 1; r < s.size(); ++r) t[r] = t[r - 1] + std::max(0.0, s[r]);
  const double total_sites = t.empty() ? 0.0 : t.back();
  if (total_sites <= 0.0) return 0.0;

  double total = 0.0;
  for (std::size_t l = 1; l < s.size(); ++l) {
    if (s[l] <= 0.0) continue;
    const double at_or_beyond = total_sites - t[l - 1];
    const double p = at_or_beyond / (s[l] * total_sites);
    const double miss = (p >= 1.0) ? (n > 0.0 ? 0.0 : 1.0)
                                   : std::exp(n * std::log1p(-p));
    total += s[l] * (1.0 - miss);
  }
  return total;
}

std::vector<double> synthetic_reachability_exponential(double base,
                                                       unsigned depth) {
  expects(base > 1.0, "synthetic_reachability_exponential: base must be > 1");
  expects(depth >= 1, "synthetic_reachability_exponential: depth must be >= 1");
  std::vector<double> s(depth + 1, 0.0);
  for (unsigned r = 1; r <= depth; ++r) {
    s[r] = std::pow(base, static_cast<double>(r));
  }
  return s;
}

std::vector<double> synthetic_reachability_power(double lambda, unsigned depth,
                                                 double s_at_depth) {
  expects(lambda > 0.0, "synthetic_reachability_power: lambda must be > 0");
  expects(depth >= 1, "synthetic_reachability_power: depth must be >= 1");
  expects(s_at_depth >= 1.0,
          "synthetic_reachability_power: s_at_depth must be >= 1");
  const double c = s_at_depth / std::pow(static_cast<double>(depth), lambda);
  std::vector<double> s(depth + 1, 0.0);
  for (unsigned r = 1; r <= depth; ++r) {
    s[r] = c * std::pow(static_cast<double>(r), lambda);
  }
  return s;
}

std::vector<double> synthetic_reachability_superexponential(double lambda,
                                                            unsigned depth,
                                                            double s_at_depth) {
  expects(lambda > 0.0,
          "synthetic_reachability_superexponential: lambda must be > 0");
  expects(depth >= 1,
          "synthetic_reachability_superexponential: depth must be >= 1");
  expects(s_at_depth >= 1.0,
          "synthetic_reachability_superexponential: s_at_depth must be >= 1");
  const double d = static_cast<double>(depth);
  const double log_c = std::log(s_at_depth) - lambda * d * d;
  std::vector<double> s(depth + 1, 0.0);
  for (unsigned r = 1; r <= depth; ++r) {
    const double rr = static_cast<double>(r);
    s[r] = std::exp(log_c + lambda * rr * rr);
  }
  return s;
}

reachability_growth_fit fit_reachability_growth(const reachability_profile& p,
                                                double saturation_fraction) {
  expects(saturation_fraction > 0.0 && saturation_fraction <= 1.0,
          "fit_reachability_growth: saturation_fraction must be in (0,1]");
  const double cutoff = saturation_fraction * p.total_sites();
  std::vector<double> xs, ys;
  for (std::size_t r = 1; r < p.t.size(); ++r) {
    if (p.t[r] <= 0.0) continue;
    if (p.t[r] > cutoff) break;
    xs.push_back(static_cast<double>(r));
    ys.push_back(std::log(p.t[r]));
  }
  reachability_growth_fit out;
  if (xs.size() < 2) return out;
  const linear_fit lf = fit_linear(xs, ys);
  out.lambda = lf.slope;
  out.r_squared = lf.r_squared;
  out.radii_used = static_cast<unsigned>(xs.size());
  return out;
}

}  // namespace mcast
