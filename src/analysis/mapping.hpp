// The n <-> m correspondence (Section 3, Equations 1-2).
//
// The paper computes L̂(n) for n receivers drawn *with* replacement because
// it is analytically tractable, then converts to L(m) for m *distinct*
// receivers through the expected-coverage relation
//
//     m̄ = M (1 - (1 - 1/M)^n)          (finite M)
//     y  = 1 - e^{-x},  x = n/M, y = m/M  (large-M limit)
//
// and the approximation L(m) ≈ L̂(n(m)) with n(m) = the draws whose
// expected distinct coverage is m (Equation 2: L(m) ≈ L̂(-M ln(1 - m/M))).
#pragma once

namespace mcast {

/// Expected distinct sites after `n` with-replacement draws from `M` sites:
/// m̄ = M(1 - (1 - 1/M)^n). Requires M >= 1, n >= 0. Stable for huge n.
double expected_distinct(double universe_size, double n);

/// Inverse of expected_distinct: n = ln(1 - m/M) / ln(1 - 1/M).
/// Requires M >= 2 and 0 <= m < M.
double draws_for_expected_distinct(double universe_size, double m);

/// Large-M limit of the coverage fraction: y(x) = 1 - e^{-x} for x = n/M.
double coverage_fraction(double x);

/// Inverse of coverage_fraction: x(y) = -ln(1 - y). Requires 0 <= y < 1.
double draws_fraction(double y);

/// The asymptotic form of Equation 2's argument: n(m) = -M ln(1 - m/M).
/// Requires 0 <= m < M.
double equivalent_draws_asymptotic(double universe_size, double m);

}  // namespace mcast
