// Exact k-ary tree expressions from Section 3 of the paper.
//
// Setting: a complete k-ary tree of depth D, source at the root, and n
// receivers drawn uniformly *with replacement* — from the k^D leaves
// (Sections 3.1-3.3) or from all non-root sites (Section 3.4).
//
//   Eq 4   L̂(n)  = Σ_{l=1..D} k^l (1 - (1 - k^{-l})^n)
//   Eq 5   ΔL̂(n) = Σ_{l=1..D} (1 - k^{-l})^n
//   Eq 6   Δ²L̂(n)= -Σ_{l=1..D} k^{-l} (1 - k^{-l})^n
//   Eq 11  h(x)  = -ln( -x (M ln M) Δ²L̂(xM) / ū ),  M = k^D, ū = D
//   Eq 21  L̂(n) for receivers at all non-root sites, where a level-l link
//          is used by one draw with probability
//          p_l = [(k^{D+1} - k^l) / (k^{D+1} - k)] · k^{-l}
//
// Each function accepts a real-valued n: the expressions are analytic in n
// and the paper itself evaluates them along continuous grids. All powers
// (1-p)^n are computed as exp(n·log1p(-p)) so n up to 1e12 stays stable.
#pragma once

namespace mcast {

/// Eq 4. Requires k >= 2, depth >= 1, n >= 0.
double kary_tree_size_leaves(unsigned k, unsigned depth, double n);

/// Eq 5 (analytic continuation of the forward difference).
double kary_tree_size_delta_leaves(unsigned k, unsigned depth, double n);

/// Eq 6 (analytic continuation of the second difference; negative).
double kary_tree_size_delta2_leaves(unsigned k, unsigned depth, double n);

/// Eq 11 with the exact Eq 6 inside. Requires 0 < x; x is n/M.
/// (Diverges logarithmically as x -> 0, as the paper notes.)
double kary_h_exact(unsigned k, unsigned depth, double x);

/// Probability that a fixed level-l link is used by a single uniform draw
/// over all non-root sites (Eq 19 in the fixed-D form used by Eq 21).
/// Requires 1 <= level <= depth.
double kary_link_probability_all_sites(unsigned k, unsigned depth, unsigned level);

/// Eq 21: L̂(n) with receivers spread uniformly over all non-root sites.
double kary_tree_size_all_sites(unsigned k, unsigned depth, double n);

/// Number of candidate receiver sites: k^depth (leaves model).
double kary_leaf_count(unsigned k, unsigned depth);

/// Number of candidate receiver sites: all nodes except the root.
double kary_site_count_all(unsigned k, unsigned depth);

/// Average root-to-site hop distance when sites are the leaves (== depth).
double kary_unicast_mean_leaves(unsigned depth);

/// Average root-to-site hop distance over all non-root sites:
/// Σ_{l=1..D} l·k^l / Σ_{l=1..D} k^l.
double kary_unicast_mean_all_sites(unsigned k, unsigned depth);

/// L(m) for m expected-distinct leaf receivers: Eq 4 composed with the
/// finite-M mapping n(m) of Equation 1 (analysis/mapping.hpp).
/// Requires 0 <= m < k^depth.
double kary_tree_size_distinct_leaves(unsigned k, unsigned depth, double m);

}  // namespace mcast
