#include "analysis/mapping.hpp"

#include <cmath>

#include "common/contract.hpp"

namespace mcast {

double expected_distinct(double universe_size, double n) {
  expects(universe_size >= 1.0, "expected_distinct: universe must be >= 1");
  expects(n >= 0.0, "expected_distinct: n must be non-negative");
  // M (1 - (1 - 1/M)^n), computed in the log domain for stability.
  return universe_size * -std::expm1(n * std::log1p(-1.0 / universe_size));
}

double draws_for_expected_distinct(double universe_size, double m) {
  expects(universe_size >= 2.0,
          "draws_for_expected_distinct: universe must be >= 2");
  expects(m >= 0.0 && m < universe_size,
          "draws_for_expected_distinct: need 0 <= m < M");
  return std::log1p(-m / universe_size) / std::log1p(-1.0 / universe_size);
}

double coverage_fraction(double x) {
  expects(x >= 0.0, "coverage_fraction: x must be non-negative");
  return -std::expm1(-x);
}

double draws_fraction(double y) {
  expects(y >= 0.0 && y < 1.0, "draws_fraction: need 0 <= y < 1");
  return -std::log1p(-y);
}

double equivalent_draws_asymptotic(double universe_size, double m) {
  expects(universe_size >= 1.0,
          "equivalent_draws_asymptotic: universe must be >= 1");
  expects(m >= 0.0 && m < universe_size,
          "equivalent_draws_asymptotic: need 0 <= m < M");
  return -universe_size * std::log1p(-m / universe_size);
}

}  // namespace mcast
