#include "analysis/series.hpp"

#include <algorithm>
#include <cmath>

#include "common/contract.hpp"

namespace mcast {

void xy_series::add(double xv, double yv) {
  expects(yerr.empty(), "xy_series::add: series already carries error bars");
  x.push_back(xv);
  y.push_back(yv);
}

void xy_series::add(double xv, double yv, double err) {
  expects(yerr.size() == y.size(),
          "xy_series::add: mixing points with and without error bars");
  x.push_back(xv);
  y.push_back(yv);
  yerr.push_back(err);
}

std::vector<std::uint64_t> log_grid_integers(std::uint64_t lo, std::uint64_t hi,
                                             std::size_t points) {
  expects(lo >= 1 && lo <= hi, "log_grid_integers: need 1 <= lo <= hi");
  expects(points >= 1, "log_grid_integers: need at least one point");
  std::vector<std::uint64_t> out;
  if (points == 1 || lo == hi) {
    out.push_back(lo);
    if (lo != hi) out.push_back(hi);
    return out;
  }
  const double llo = std::log(static_cast<double>(lo));
  const double lhi = std::log(static_cast<double>(hi));
  for (std::size_t i = 0; i < points; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(points - 1);
    const double v = std::exp(llo + t * (lhi - llo));
    out.push_back(static_cast<std::uint64_t>(std::llround(v)));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  out.front() = lo;
  out.back() = hi;
  return out;
}

std::vector<double> log_grid(double lo, double hi, std::size_t points) {
  expects(lo > 0.0 && lo <= hi, "log_grid: need 0 < lo <= hi");
  expects(points >= 1, "log_grid: need at least one point");
  std::vector<double> out;
  if (points == 1 || lo == hi) {
    out.push_back(lo);
    return out;
  }
  const double llo = std::log(lo);
  const double lhi = std::log(hi);
  for (std::size_t i = 0; i < points; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(points - 1);
    out.push_back(std::exp(llo + t * (lhi - llo)));
  }
  return out;
}

std::vector<double> linear_grid(double lo, double hi, std::size_t points) {
  expects(lo <= hi, "linear_grid: need lo <= hi");
  expects(points >= 1, "linear_grid: need at least one point");
  std::vector<double> out;
  if (points == 1 || lo == hi) {
    out.push_back(lo);
    return out;
  }
  for (std::size_t i = 0; i < points; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(points - 1);
    out.push_back(lo + t * (hi - lo));
  }
  return out;
}

}  // namespace mcast
