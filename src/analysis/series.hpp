// x/y series containers and the log-spaced sampling grids every figure in
// the paper uses on its group-size axis.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mcast {

/// A named curve: paired x/y values (plus optional per-point error bars).
struct xy_series {
  std::string label;
  std::vector<double> x;
  std::vector<double> y;
  std::vector<double> yerr;  // empty, or same size as y

  /// Appends a point (no error bar).
  void add(double xv, double yv);

  /// Appends a point with a symmetric error bar.
  void add(double xv, double yv, double err);

  std::size_t size() const noexcept { return x.size(); }
};

/// Roughly `points` integers log-spaced over [lo, hi], deduplicated and
/// sorted (the paper's m-axis: 1, 2, 3, 5, ..., up to network size).
/// Requires 1 <= lo <= hi.
std::vector<std::uint64_t> log_grid_integers(std::uint64_t lo, std::uint64_t hi,
                                             std::size_t points);

/// `points` doubles log-spaced over [lo, hi] inclusive. Requires
/// 0 < lo <= hi and points >= 1 (points >= 2 when lo < hi).
std::vector<double> log_grid(double lo, double hi, std::size_t points);

/// `points` doubles linearly spaced over [lo, hi] inclusive.
std::vector<double> linear_grid(double lo, double hi, std::size_t points);

}  // namespace mcast
