// Reachability functions S(r), T(r) and the generalized tree-size
// predictors of Section 4.
//
// For a graph and source, S(r) counts the sites exactly r hops away and
// T(r) = Σ_{j=1..r} S(j) the sites within r hops (excluding the source
// itself, matching the paper's usage). The paper's generalization of the
// k-ary result replaces k^l by S(l):
//
//   Eq 23  L̂(n) = Σ_{r=1..D} S(r) (1 - (1 - 1/S(r))^n)
//          (receivers at "leaves": sites at distance exactly D)
//   Eq 30  L̂(n) = Σ_{l=1..D} S(l) (1 - (1 - (T(D)-T(l-1)) / (S(l)·T(D)))^n)
//          (receivers anywhere; a level-l link is used when the receiver
//          is at or beyond l hops AND under that link)
//
// Section 4.2/4.3 then asks when S(r) is exponential; the synthetic S
// families below regenerate Figure 8's three contrasting cases.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "sim/rng.hpp"

namespace mcast {

/// S(r)/T(r) profile from one source, or averaged over several sources.
/// Index r runs 0..max_radius; s[0] = 0 by convention (the source is not a
/// receiver site), t[r] = s[1] + ... + s[r].
struct reachability_profile {
  std::vector<double> s;
  std::vector<double> t;

  /// Largest radius with s[r] > 0.
  unsigned max_radius() const;

  /// Total reachable sites T(D).
  double total_sites() const { return t.empty() ? 0.0 : t.back(); }

  /// Average hop distance from the source over all reachable sites
  /// (the ū that normalizes Fig 6).
  double mean_distance() const;
};

/// Exact profile from a single source (one BFS).
reachability_profile reachability_from(const graph& g, node_id source);

/// Profile averaged over `sources` random sources drawn with replacement
/// (the paper averages T(r) over its N_source source choices, Fig 7).
reachability_profile mean_reachability(const graph& g, std::size_t sources,
                                       rng& gen);

/// Eq 23 with an arbitrary S(r) (s[0] ignored; radii with s[r] <= 0 are
/// skipped). `n` may be huge; computed in the log domain.
double general_tree_size_leaves(const std::vector<double>& s, double n);

/// Eq 30 with an arbitrary S(r).
double general_tree_size_all_sites(const std::vector<double>& s, double n);

// --- synthetic S(r) families for Figure 8 -------------------------------
// All three are normalized to the same S(D) (hence comparable saturation
// size), with the exponential case S(r) = base^r as the anchor.

/// S(r) = base^r for r = 1..depth. Requires base > 1, depth >= 1.
std::vector<double> synthetic_reachability_exponential(double base, unsigned depth);

/// S(r) = c·r^lambda with c chosen so S(depth) = s_at_depth.
/// Requires lambda > 0, s_at_depth >= 1.
std::vector<double> synthetic_reachability_power(double lambda, unsigned depth,
                                                 double s_at_depth);

/// S(r) = c·e^{lambda·r²} with c chosen so S(depth) = s_at_depth (grows
/// faster than exponential). Requires lambda > 0, s_at_depth >= 1.
std::vector<double> synthetic_reachability_superexponential(double lambda,
                                                            unsigned depth,
                                                            double s_at_depth);

/// Fits ln T(r) against r over the pre-saturation range (T(r) <=
/// `saturation_fraction` * T(D)) and reports the exponential growth rate λ
/// and R² — the tool used to classify networks as exponential vs
/// sub-exponential (Section 4.2).
struct reachability_growth_fit {
  double lambda = 0.0;     ///< slope of ln T(r) vs r
  double r_squared = 0.0;  ///< linearity of ln T(r) (1 = pure exponential)
  unsigned radii_used = 0;
};

reachability_growth_fit fit_reachability_growth(const reachability_profile& p,
                                                double saturation_fraction = 0.9);

}  // namespace mcast
