#include "analysis/stats.hpp"

#include <algorithm>
#include <cmath>

namespace mcast {

void running_stats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double running_stats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double running_stats::stddev() const noexcept { return std::sqrt(variance()); }

double running_stats::stderr_mean() const noexcept {
  return n_ < 2 ? 0.0 : stddev() / std::sqrt(static_cast<double>(n_));
}

void running_stats::merge(const running_stats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(n_ + other.n_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / total;
  mean_ += delta * static_cast<double>(other.n_) / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double mean_of(const std::vector<double>& xs) {
  running_stats s;
  for (double x : xs) s.add(x);
  return s.mean();
}

double variance_of(const std::vector<double>& xs) {
  running_stats s;
  for (double x : xs) s.add(x);
  return s.variance();
}

double confidence_halfwidth95(const running_stats& s) {
  return 1.96 * s.stderr_mean();
}

}  // namespace mcast
