// Asymptotic k-ary forms from Sections 3.2-3.3 of the paper.
//
//   Eq 12  h(x) ≈ x·k^{-1/2}
//   Eq 14  L̂(n) ≈ nD - [(n+1)ln(n+1) - (n+1)]/ln k      (finite form)
//   Eq 16  L̂(n)/n ≈ 1/ln k - ln(n/M)/ln k              (large-n/M limit)
//   Eq 17  L̂(n) ≈ n (c - ln(n/M)/ln k)  — linear with log correction
//   Eq 18  L(m) via Eq 16 composed with the asymptotic n(m) mapping
//
// plus the Chuang-Sirbu reference curve m^0.8 every figure compares
// against. The k = 1 limit is meaningful here (the paper varies k
// continuously), so these functions require only k > 1.0 as a real value.
#pragma once

namespace mcast {

/// Eq 12: the predicted straight line of Figure 2. Requires k > 1.
double kary_h_approx(double k, double x);

/// Eq 16 right-hand side: predicted L̂(n)/n at x = n/M. Requires k > 1,
/// x > 0.
double kary_tree_size_per_receiver_approx(double k, double x);

/// Eq 14: the finite-n approximate L̂(n). Requires k > 1, depth >= 1,
/// n >= 0.
double kary_tree_size_approx(double k, unsigned depth, double n);

/// Eq 18: approximate L(m) for m expected-distinct leaf receivers, using
/// the asymptotic mapping n(m) = -M ln(1 - m/M). Requires 0 <= m < k^depth.
double kary_tree_size_distinct_approx(double k, unsigned depth, double m);

/// The Chuang-Sirbu scaling-law reference: amplitude * m^exponent with the
/// paper's canonical exponent 0.8. Requires m > 0.
double chuang_sirbu_curve(double m, double exponent = 0.8,
                          double amplitude = 1.0);

}  // namespace mcast
