#include "analysis/degree_powerlaw.hpp"

#include <cmath>

#include "analysis/fit.hpp"
#include "common/contract.hpp"
#include "graph/metrics.hpp"

namespace mcast {

std::vector<ccdf_point> degree_ccdf(const graph& g) {
  std::vector<ccdf_point> out;
  if (g.empty()) return out;
  const degree_stats stats = compute_degree_stats(g);
  const double n = static_cast<double>(g.node_count());

  // Walk degrees descending, accumulating the tail mass.
  std::size_t tail = 0;
  std::vector<ccdf_point> reversed;
  for (std::size_t d = stats.histogram.size(); d-- > 0;) {
    if (stats.histogram[d] == 0) continue;
    tail += stats.histogram[d];
    reversed.push_back({d, static_cast<double>(tail) / n});
  }
  out.assign(reversed.rbegin(), reversed.rend());
  return out;
}

degree_powerlaw_fit fit_degree_powerlaw(const graph& g, std::size_t min_degree) {
  const std::vector<ccdf_point> ccdf = degree_ccdf(g);
  std::vector<double> xs, ys;
  for (const ccdf_point& p : ccdf) {
    if (p.degree >= min_degree && p.degree > 0 && p.fraction > 0.0) {
      xs.push_back(std::log(static_cast<double>(p.degree)));
      ys.push_back(std::log(p.fraction));
    }
  }
  expects(xs.size() >= 2,
          "fit_degree_powerlaw: need >= 2 distinct degrees above min_degree");
  const linear_fit lf = fit_linear(xs, ys);
  degree_powerlaw_fit out;
  out.exponent = 1.0 - lf.slope;  // CCDF slope = -(γ - 1)
  out.r_squared = lf.r_squared;
  out.points = xs.size();
  return out;
}

}  // namespace mcast
