// Least-squares fitting.
//
// The Chuang-Sirbu claim is a power law L(m) ∝ m^0.8; measuring "how 0.8"
// a topology is means an ordinary least-squares fit of ln L against ln m.
// The paper's own reference curves (Figs 3, 5, 6) are straight lines in
// semi-log coordinates, fit here with the same OLS machinery.
#pragma once

#include <vector>

namespace mcast {

/// y = slope * x + intercept fit summary.
struct linear_fit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;  ///< coefficient of determination, in [0,1]
  std::size_t points = 0;
};

/// Ordinary least squares over the given points. Requires at least two
/// points and non-constant x.
linear_fit fit_linear(const std::vector<double>& x, const std::vector<double>& y);

/// Power-law fit y = amplitude * x^exponent via OLS in log-log space.
/// Requires all x and y strictly positive.
struct power_law_fit {
  double exponent = 0.0;
  double amplitude = 0.0;
  double r_squared = 0.0;
  std::size_t points = 0;
};

power_law_fit fit_power_law(const std::vector<double>& x,
                            const std::vector<double>& y);

/// Power-law fit restricted to points with x in [x_lo, x_hi] — the paper
/// fits the intermediate-m regime, away from the m=1 and saturation ends.
power_law_fit fit_power_law_windowed(const std::vector<double>& x,
                                     const std::vector<double>& y,
                                     double x_lo, double x_hi);

}  // namespace mcast
