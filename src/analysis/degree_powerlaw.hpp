// Degree-distribution power laws — the diagnostic of the paper's
// reference [8] (Faloutsos, Faloutsos & Faloutsos, SIGCOMM '99), cited
// when discussing whether real Internet maps have exponential reachability.
// Used here to check that the Internet/AS substitutes actually exhibit the
// heavy-tailed degrees the real maps were famous for.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"

namespace mcast {

/// One point of the degree CCDF: fraction of nodes with degree >= degree.
struct ccdf_point {
  std::size_t degree = 0;
  double fraction = 0.0;
};

/// Complementary CDF of the degree distribution, one point per distinct
/// degree value, ascending. Empty for an empty graph.
std::vector<ccdf_point> degree_ccdf(const graph& g);

/// Power-law tail fit: assuming P(D >= d) ∝ d^{-(γ-1)} (i.e. pdf exponent
/// γ), fits the CCDF in log-log space over degrees >= min_degree.
struct degree_powerlaw_fit {
  double exponent = 0.0;   ///< γ, the pdf exponent (CCDF slope is 1 - γ)
  double r_squared = 0.0;  ///< log-log linearity of the CCDF tail
  std::size_t points = 0;  ///< distinct degree values used
};

/// Fits the degree tail. Requires at least two distinct degrees >=
/// min_degree (throws std::invalid_argument otherwise).
degree_powerlaw_fit fit_degree_powerlaw(const graph& g,
                                        std::size_t min_degree = 1);

}  // namespace mcast
