#include "analysis/kary_asymptotic.hpp"

#include <cmath>

#include "common/contract.hpp"

namespace mcast {

namespace {

void check_k(double k) {
  expects(k > 1.0, "kary asymptotics: k must be > 1");
}

}  // namespace

double kary_h_approx(double k, double x) {
  check_k(k);
  expects(x >= 0.0, "kary_h_approx: x must be non-negative");
  return x / std::sqrt(k);
}

double kary_tree_size_per_receiver_approx(double k, double x) {
  check_k(k);
  expects(x > 0.0, "kary_tree_size_per_receiver_approx: x must be positive");
  return (1.0 - std::log(x)) / std::log(k);
}

double kary_tree_size_approx(double k, unsigned depth, double n) {
  check_k(k);
  expects(depth >= 1, "kary_tree_size_approx: depth must be >= 1");
  expects(n >= 0.0, "kary_tree_size_approx: n must be non-negative");
  const double lnk = std::log(k);
  // Eq 14 with boundary conditions L̂(0) = 0, L̂(1) = D.
  return n * static_cast<double>(depth) -
         ((n + 1.0) * std::log(n + 1.0) - (n + 1.0) + 1.0) / lnk;
}

double kary_tree_size_distinct_approx(double k, unsigned depth, double m) {
  check_k(k);
  expects(depth >= 1, "kary_tree_size_distinct_approx: depth must be >= 1");
  const double m_sites = std::pow(k, static_cast<double>(depth));
  expects(m >= 0.0 && m < m_sites,
          "kary_tree_size_distinct_approx: need 0 <= m < k^depth");
  if (m == 0.0) return 0.0;
  // Asymptotic mapping (Eq 2): n = -M ln(1 - m/M), then Eq 16.
  const double n = -m_sites * std::log1p(-m / m_sites);
  const double x = n / m_sites;
  return n * kary_tree_size_per_receiver_approx(k, x);
}

double chuang_sirbu_curve(double m, double exponent, double amplitude) {
  expects(m > 0.0, "chuang_sirbu_curve: m must be positive");
  expects(amplitude > 0.0, "chuang_sirbu_curve: amplitude must be positive");
  return amplitude * std::pow(m, exponent);
}

}  // namespace mcast
