#include "check/spec.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/json.hpp"
#include "obs/metrics.hpp"

namespace mcast::check {

const char* cmp_name(cmp_op op) noexcept {
  switch (op) {
    case cmp_op::eq: return "==";
    case cmp_op::ne: return "!=";
    case cmp_op::lt: return "<";
    case cmp_op::le: return "<=";
    case cmp_op::gt: return ">";
    case cmp_op::ge: return ">=";
  }
  return "?";
}

bool cmp_eval(double lhs, cmp_op op, double rhs) noexcept {
  switch (op) {
    case cmp_op::eq: return lhs == rhs;
    case cmp_op::ne: return lhs != rhs;
    case cmp_op::lt: return lhs < rhs;
    case cmp_op::le: return lhs <= rhs;
    case cmp_op::gt: return lhs > rhs;
    case cmp_op::ge: return lhs >= rhs;
  }
  return false;
}

bool glob_match(const std::string& glob, const std::string& text) noexcept {
  // Iterative '*' matcher with backtracking to the last star.
  std::size_t g = 0, t = 0, star = std::string::npos, mark = 0;
  while (t < text.size()) {
    if (g < glob.size() && (glob[g] == text[t])) {
      ++g, ++t;
    } else if (g < glob.size() && glob[g] == '*') {
      star = g++;
      mark = t;
    } else if (star != std::string::npos) {
      g = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (g < glob.size() && glob[g] == '*') ++g;
  return g == glob.size();
}

bool spec::needs_trace() const noexcept {
  for (const rule& r : rules) {
    switch (r.kind) {
      case rule_kind::span_within:
      case rule_kind::span_budget_ms:
      case rule_kind::span_count:
      case rule_kind::trace_dropped:
      case rule_kind::trace_nested:
        return true;
      default:
        break;
    }
  }
  return false;
}

bool spec::needs_baseline() const noexcept {
  for (const rule& r : rules) {
    if (r.kind == rule_kind::gate) return true;
  }
  return false;
}

std::string validate_metric_path(const std::string& path) {
  const auto starts = [&path](const char* prefix) {
    return path.rfind(prefix, 0) == 0;
  };
  if (starts("counter.")) {
    obs::counter c;
    if (obs::counter_from_name(path.substr(8), c)) return {};
    return "unknown metric '" + path + "'";
  }
  if (starts("gauge.")) {
    obs::gauge g;
    if (obs::gauge_from_name(path.substr(6), g)) return {};
    return "unknown metric '" + path + "'";
  }
  if (starts("hist.")) {
    const std::string rest = path.substr(5);
    const std::size_t dot = rest.rfind('.');
    if (dot == std::string::npos || dot == 0 || dot + 1 == rest.size()) {
      return "histogram metric needs the form hist.<name>.<field>, got '" +
             path + "'";
    }
    const std::string field = rest.substr(dot + 1);
    if (field != "count" && field != "sum" && field != "mean" &&
        field != "p50" && field != "p95" && field != "p99") {
      return "unknown histogram field '" + field +
             "' (want count/sum/mean/p50/p95/p99)";
    }
    obs::histogram h;
    if (obs::histogram_from_name(rest.substr(0, dot), h)) return {};
    return "unknown metric '" + path + "'";
  }
  if (starts("derived.")) {
    const std::string rest = path.substr(8);
    if (rest == "spt_cache_hit_rate" || rest == "scheduler_busy_fraction" ||
        rest == "traversal_passes") {
      return {};
    }
    return "unknown metric '" + path + "'";
  }
  if (starts("fit.")) {
    const std::string rest = path.substr(4);
    const std::size_t dot = rest.rfind('.');
    if (dot == std::string::npos || dot == 0 || dot + 1 == rest.size()) {
      return "fit metric needs the form fit.<label>.<key>, got '" + path +
             "'";
    }
    return {};  // labels are experiment-defined; resolved at eval time
  }
  if (path == "wall_seconds" || path == "cpu_seconds" || path == "scale" ||
      path == "threads") {
    return {};
  }
  return "unknown metric '" + path + "'";
}

namespace {

struct token {
  std::string text;
  std::size_t col = 1;  ///< 1-based column of the first character
};

std::vector<token> tokenize(const std::string& line) {
  std::vector<token> out;
  std::size_t i = 0;
  while (i < line.size()) {
    if (std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
      continue;
    }
    const std::size_t begin = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    out.push_back({line.substr(begin, i - begin), begin + 1});
  }
  return out;
}

[[noreturn]] void fail(const std::string& filename, int line_no,
                       std::size_t col, const std::string& line,
                       const std::string& message) {
  std::ostringstream out;
  out << filename << ":" << line_no << ":" << col << ": " << message << "\n"
      << "  " << line << "\n"
      << "  " << std::string(col == 0 ? 0 : col - 1, ' ') << "^";
  throw spec_error(out.str());
}

// Strict finite double: the whole token must parse (lab/params style).
bool strict_number(const std::string& text, double& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || errno == ERANGE ||
      !std::isfinite(v)) {
    return false;
  }
  out = v;
  return true;
}

bool parse_cmp(const std::string& text, cmp_op& out) {
  if (text == "==") out = cmp_op::eq;
  else if (text == "!=") out = cmp_op::ne;
  else if (text == "<") out = cmp_op::lt;
  else if (text == "<=") out = cmp_op::le;
  else if (text == ">") out = cmp_op::gt;
  else if (text == ">=") out = cmp_op::ge;
  else return false;
  return true;
}

bool is_cmp_token(const std::string& text) {
  cmp_op ignored;
  return parse_cmp(text, ignored);
}

// Context threaded through the directive parsers for error reporting.
struct cursor {
  const std::string& filename;
  int line_no;
  const std::string& line;
  const std::vector<token>& tokens;
  std::size_t next = 0;

  [[noreturn]] void fail_at(std::size_t col, const std::string& msg) const {
    fail(filename, line_no, col, line, msg);
  }
  [[noreturn]] void fail_here(const std::string& msg) const {
    // Point past the end of the line when a token is missing.
    fail_at(next < tokens.size() ? tokens[next].col : line.size() + 1, msg);
  }
  const token& take(const std::string& what) {
    if (next >= tokens.size()) fail_here("expected " + what);
    return tokens[next++];
  }
  void done() {
    if (next < tokens.size()) {
      fail_at(tokens[next].col,
              "unexpected trailing token '" + tokens[next].text + "'");
    }
  }
};

std::string parse_metric(cursor& c) {
  const token& t = c.take("a metric name");
  const std::string problem = validate_metric_path(t.text);
  if (!problem.empty()) c.fail_at(t.col, problem);
  return t.text;
}

double parse_number(cursor& c, const std::string& what) {
  const token& t = c.take(what);
  double v = 0.0;
  if (!strict_number(t.text, v)) {
    c.fail_at(t.col, what + " must be a finite number, got '" + t.text + "'");
  }
  return v;
}

cmp_op parse_cmp_token(cursor& c) {
  const token& t = c.take("a comparison operator");
  cmp_op op;
  if (!parse_cmp(t.text, op)) {
    c.fail_at(t.col, "bad operator '" + t.text +
                         "' (want == != < <= > >=)");
  }
  return op;
}

// Parses a signed sum of metric refs and literals, stopping before a
// comparison operator or end of line.
expr parse_expr(cursor& c, const char* side) {
  expr e;
  const std::size_t begin_col =
      c.next < c.tokens.size() ? c.tokens[c.next].col : c.line.size() + 1;
  double sign = 1.0;
  bool expect_term = true;
  while (true) {
    if (c.next >= c.tokens.size() || is_cmp_token(c.tokens[c.next].text)) {
      if (expect_term) {
        c.fail_here(std::string("expected a metric or number on the ") +
                    side + " side");
      }
      break;
    }
    const token& t = c.tokens[c.next];
    if (expect_term) {
      term term_;
      term_.sign = sign;
      const char first = t.text[0];
      if (std::isalpha(static_cast<unsigned char>(first)) || first == '_') {
        const std::string problem = validate_metric_path(t.text);
        if (!problem.empty()) c.fail_at(t.col, problem);
        term_.metric = t.text;
      } else {
        term_.is_literal = true;
        if (!strict_number(t.text, term_.literal)) {
          c.fail_at(t.col, "expected a metric or number, got '" + t.text +
                               "'");
        }
      }
      e.terms.push_back(std::move(term_));
      ++c.next;
      expect_term = false;
    } else {
      if (t.text == "+") sign = 1.0;
      else if (t.text == "-") sign = -1.0;
      else c.fail_at(t.col, "expected '+', '-' or a comparison operator, "
                            "got '" + t.text + "'");
      ++c.next;
      expect_term = true;
    }
  }
  const std::size_t end_col =
      c.next < c.tokens.size() ? c.tokens[c.next].col : c.line.size() + 1;
  if (end_col > begin_col && begin_col <= c.line.size()) {
    e.source = c.line.substr(begin_col - 1, end_col - begin_col);
    while (!e.source.empty() && e.source.back() == ' ') e.source.pop_back();
  }
  return e;
}

rule parse_directive(const std::string& line, int line_no,
                     const std::string& filename) {
  const std::vector<token> tokens = tokenize(line);
  cursor c{filename, line_no, line, tokens};
  rule r;
  r.line = line_no;
  r.source = line;
  // Trim for the stored source (messages quote it verbatim otherwise).
  while (!r.source.empty() &&
         std::isspace(static_cast<unsigned char>(r.source.front()))) {
    r.source.erase(r.source.begin());
  }
  while (!r.source.empty() &&
         std::isspace(static_cast<unsigned char>(r.source.back()))) {
    r.source.pop_back();
  }

  const token& head = c.take("a directive");
  if (head.text == "assert") {
    r.kind = rule_kind::assert_cmp;
    r.lhs = parse_expr(c, "left");
    r.op = parse_cmp_token(c);
    r.rhs = parse_expr(c, "right");
    c.done();
  } else if (head.text == "range") {
    r.kind = rule_kind::range;
    r.metric = parse_metric(c);
    const std::size_t lo_col =
        c.next < tokens.size() ? tokens[c.next].col : line.size() + 1;
    r.lo = parse_number(c, "range low bound");
    r.hi = parse_number(c, "range high bound");
    if (r.lo > r.hi) {
      c.fail_at(lo_col, "range bounds are inverted (low > high)");
    }
    c.done();
  } else if (head.text == "present" || head.text == "absent") {
    const bool present = head.text == "present";
    const token& what = c.take("'group' or 'fit'");
    if (what.text == "group") {
      r.kind = present ? rule_kind::present_group : rule_kind::absent_group;
    } else if (what.text == "fit" && present) {
      r.kind = rule_kind::present_fit;
    } else {
      c.fail_at(what.col, present
                              ? "expected 'group' or 'fit', got '" +
                                    what.text + "'"
                              : "expected 'group', got '" + what.text + "'");
    }
    r.name = c.take("a name").text;
    c.done();
  } else if (head.text == "span") {
    r.name = c.take("a span name glob").text;
    const token& verb = c.take("'within', 'budget_ms' or 'count'");
    if (verb.text == "within") {
      r.kind = rule_kind::span_within;
      r.parent = c.take("a parent span glob").text;
      if (c.next < tokens.size()) {
        const token& mod = c.take("'same_trace'");
        if (mod.text != "same_trace") {
          c.fail_at(mod.col,
                    "expected 'same_trace' or end of line, got '" + mod.text +
                        "'");
        }
        r.same_trace = true;
      }
    } else if (verb.text == "budget_ms") {
      r.kind = rule_kind::span_budget_ms;
      const std::size_t col =
          c.next < tokens.size() ? tokens[c.next].col : line.size() + 1;
      r.number = parse_number(c, "span budget (ms)");
      if (r.number < 0.0) c.fail_at(col, "span budget must be >= 0");
    } else if (verb.text == "count") {
      r.kind = rule_kind::span_count;
      r.op = parse_cmp_token(c);
      r.number = parse_number(c, "span count");
    } else {
      c.fail_at(verb.col, "expected 'within', 'budget_ms' or 'count', got '" +
                              verb.text + "'");
    }
    c.done();
  } else if (head.text == "trace") {
    const token& what = c.take("'dropped' or 'nested'");
    if (what.text == "dropped") {
      r.kind = rule_kind::trace_dropped;
      r.op = parse_cmp_token(c);
      r.number = parse_number(c, "dropped-event count");
    } else if (what.text == "nested") {
      r.kind = rule_kind::trace_nested;
    } else {
      c.fail_at(what.col,
                "expected 'dropped' or 'nested', got '" + what.text + "'");
    }
    c.done();
  } else if (head.text == "gate") {
    r.kind = rule_kind::gate;
    r.metric = parse_metric(c);
    const token& dir = c.take("'higher_better' or 'lower_better'");
    if (dir.text == "higher_better") r.higher_better = true;
    else if (dir.text == "lower_better") r.higher_better = false;
    else {
      c.fail_at(dir.col, "expected 'higher_better' or 'lower_better', got '" +
                             dir.text + "'");
    }
    const std::size_t col =
        c.next < tokens.size() ? tokens[c.next].col : line.size() + 1;
    r.number = parse_number(c, "relative tolerance");
    if (r.number < 0.0) c.fail_at(col, "relative tolerance must be >= 0");
    c.done();
  } else {
    c.fail_at(head.col, "unknown directive '" + head.text +
                            "' (want assert/range/present/absent/span/"
                            "trace/gate)");
  }
  return r;
}

spec parse_text_spec(const std::string& text, const std::string& filename) {
  spec s;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    s.rules.push_back(parse_directive(line, line_no, filename));
  }
  return s;
}

spec parse_json_spec(const std::string& text, const std::string& filename) {
  json::value doc;
  try {
    doc = json::parse(text);
  } catch (const std::exception& e) {
    throw spec_error(filename + ": bad JSON spec: " + e.what());
  }
  if (!doc.is(json::value::kind::object)) {
    throw spec_error(filename + ": JSON spec must be an object with a "
                                "'rules' array of directive strings");
  }
  for (const auto& [key, v] : doc.members()) {
    (void)v;
    if (key != "rules") {
      throw spec_error(filename + ": unknown key '" + key +
                       "' in JSON spec (only 'rules' is allowed)");
    }
  }
  const json::value* rules = doc.get("rules");
  if (rules == nullptr || !rules->is(json::value::kind::array)) {
    throw spec_error(filename + ": JSON spec needs a 'rules' array");
  }
  spec s;
  for (std::size_t i = 0; i < rules->items().size(); ++i) {
    const json::value& entry = rules->items()[i];
    if (!entry.is(json::value::kind::string)) {
      throw spec_error(filename + ": rules[" + std::to_string(i) +
                       "] is not a string");
    }
    s.rules.push_back(
        parse_directive(entry.as_string(), static_cast<int>(i) + 1,
                        filename + ":rules[" + std::to_string(i) + "]"));
  }
  return s;
}

}  // namespace

spec parse_spec(const std::string& text, const std::string& filename) {
  const std::size_t first = text.find_first_not_of(" \t\r\n");
  spec s = (first != std::string::npos && text[first] == '{')
               ? parse_json_spec(text, filename)
               : parse_text_spec(text, filename);
  if (s.rules.empty()) {
    throw spec_error(filename +
                     ": no rules (empty or comment-only expectation files "
                     "are rejected; they would silently pass everything)");
  }
  return s;
}

spec parse_spec_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw spec_error(path + ": cannot open expectation file");
  std::ostringstream text;
  text << in.rdbuf();
  return parse_spec(text.str(), path);
}

}  // namespace mcast::check
