// Perf-trajectory gate: diffs the current BENCH_<id>.json against a
// committed baseline manifest, metric by metric, with per-metric relative
// tolerances declared by `gate` rules.
//
// Semantics per gate rule `gate <metric> <direction> <tol>`:
//   higher_better — fail when current < baseline * (1 - tol)
//   lower_better  — fail when current > baseline * (1 + tol)
//
// Absence handling is asymmetric by design:
//   * metric missing from the *current* manifest -> "missing" (fail): a
//     benchmark silently dropping a metric is exactly the regression
//     class this gate exists to catch;
//   * metric missing from the *baseline* -> "new" (pass): adding a metric
//     must not break CI until the baseline is refreshed.
#pragma once

#include <string>
#include <vector>

#include "check/eval.hpp"
#include "check/spec.hpp"
#include "common/json.hpp"

namespace mcast::check {

struct gate_result {
  int line = 0;
  std::string rule;         ///< directive text, verbatim
  std::string metric;
  std::string status;       ///< "ok" | "regression" | "missing" | "new"
  bool higher_better = true;
  double tolerance = 0.0;
  double baseline = 0.0;    ///< 0 when status == "new"
  double current = 0.0;     ///< 0 when status == "missing"
};

/// Evaluates every gate rule; one result per rule, in spec order.
std::vector<gate_result> eval_gates(const spec& s,
                                    const json::value& baseline,
                                    const json::value& current);

/// Gate failures rendered as violations (status "regression"/"missing").
std::vector<violation> gate_violations(const std::vector<gate_result>& gates);

}  // namespace mcast::check
