#include "check/trace_cmd.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "check/command.hpp"
#include "check/trace_check.hpp"
#include "common/json.hpp"
#include "obs/access_log.hpp"

namespace mcast::check {

namespace {

struct trace_args {
  std::string profile_path;
  std::string access_log_path;  // optional
  std::uint64_t trace_id = 0;   // 0 = no filter
  std::size_t top = 10;
};

[[noreturn]] void usage_error(const std::string& message) {
  throw std::invalid_argument(message);
}

bool parse_hex_id(const std::string& text, std::uint64_t& out) {
  if (text.empty() || text.size() > 16) return false;
  out = 0;
  for (const char ch : text) {
    int digit;
    if (ch >= '0' && ch <= '9') digit = ch - '0';
    else if (ch >= 'a' && ch <= 'f') digit = ch - 'a' + 10;
    else if (ch >= 'A' && ch <= 'F') digit = ch - 'A' + 10;
    else return false;
    out = (out << 4) | static_cast<std::uint64_t>(digit);
  }
  return true;
}

std::string fmt_id(std::uint64_t id) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

std::string fmt_us(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

std::string fmt_ns_as_us(std::uint64_t ns) {
  return fmt_us(static_cast<double>(ns) / 1000.0);
}

trace_args parse_args(const std::vector<std::string>& args) {
  trace_args out;
  const auto value_of = [&args](std::size_t& i,
                                const std::string& flag) -> std::string {
    const std::string& arg = args[i];
    if (arg.size() > flag.size() && arg.compare(0, flag.size(), flag) == 0 &&
        arg[flag.size()] == '=') {
      return arg.substr(flag.size() + 1);
    }
    if (i + 1 >= args.size()) usage_error("trace: " + flag + " needs a value");
    return args[++i];
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto is_flag = [&arg](const char* flag) {
      return arg == flag || arg.rfind(std::string(flag) + "=", 0) == 0;
    };
    if (is_flag("--profile")) {
      out.profile_path = value_of(i, "--profile");
    } else if (is_flag("--access-log")) {
      out.access_log_path = value_of(i, "--access-log");
    } else if (is_flag("--trace-id")) {
      const std::string text = value_of(i, "--trace-id");
      if (!parse_hex_id(text, out.trace_id) || out.trace_id == 0) {
        usage_error("trace: --trace-id wants a nonzero hex id (<= 16 "
                    "digits), got '" +
                    text + "'");
      }
    } else if (is_flag("--top")) {
      const std::string text = value_of(i, "--top");
      std::size_t pos = 0;
      unsigned long long v = 0;
      try {
        v = std::stoull(text, &pos);
      } catch (...) {
        pos = 0;
      }
      if (pos != text.size() || text.empty()) {
        usage_error("trace: --top wants a non-negative integer, got '" +
                    text + "'");
      }
      out.top = static_cast<std::size_t>(v);
    } else {
      usage_error("trace: unknown argument '" + arg + "'");
    }
  }
  if (out.profile_path.empty()) usage_error("trace: --profile is required");
  return out;
}

json::value load_json(const std::string& path, const char* what) {
  std::ifstream in(path);
  if (!in) {
    throw spec_error(std::string(what) + " '" + path + "': cannot open");
  }
  std::ostringstream text;
  text << in.rdbuf();
  try {
    return json::parse(text.str());
  } catch (const std::exception& e) {
    throw spec_error(std::string(what) + " '" + path + "': " + e.what());
  }
}

/// One parsed access-log record (schema mcast-access-log/1).
struct access_record {
  std::uint64_t trace_id = 0;
  std::string token;
  std::string op;
  std::string outcome;
  std::int64_t shard = -1;
  std::uint64_t queue_wait_ns = 0;
  std::uint64_t compute_ns = 0;
  std::uint64_t serialize_ns = 0;
  std::uint64_t write_ns = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t fanout = 0;
  std::uint64_t fallbacks = 0;
  bool degraded = false;
  bool shed = false;
  bool chaos = false;
  bool slow = false;
  int line_no = 0;
};

[[noreturn]] void bad_record(const std::string& path, int line_no,
                             const std::string& what) {
  throw spec_error("access log '" + path + "': line " +
                   std::to_string(line_no) + ": " + what);
}

std::string string_field(const json::value& doc, const std::string& path,
                         int line_no, const char* key) {
  const json::value* v = doc.get(key);
  if (v == nullptr || !v->is(json::value::kind::string)) {
    bad_record(path, line_no, std::string("missing or non-string '") + key +
                                  "'");
  }
  return v->as_string();
}

std::uint64_t u64_field(const json::value& doc, const std::string& path,
                        int line_no, const char* key) {
  const json::value* v = doc.get(key);
  if (v == nullptr || !v->is(json::value::kind::number)) {
    bad_record(path, line_no, std::string("missing or non-number '") + key +
                                  "'");
  }
  return static_cast<std::uint64_t>(v->as_number());
}

bool bool_field(const json::value& doc, const std::string& path, int line_no,
                const char* key) {
  const json::value* v = doc.get(key);
  if (v == nullptr || !v->is(json::value::kind::boolean)) {
    bad_record(path, line_no, std::string("missing or non-boolean '") + key +
                                  "'");
  }
  return v->as_bool();
}

std::vector<access_record> load_access_log(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw spec_error("access log '" + path + "': cannot open");
  std::vector<access_record> out;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    json::value doc;
    try {
      doc = json::parse(line);
    } catch (const std::exception& e) {
      bad_record(path, line_no, e.what());
    }
    if (!doc.is(json::value::kind::object)) {
      bad_record(path, line_no, "record is not an object");
    }
    const std::string schema = string_field(doc, path, line_no, "schema");
    if (schema != obs::k_access_log_schema) {
      bad_record(path, line_no,
                 "unexpected schema '" + schema + "' (want " +
                     obs::k_access_log_schema + ")");
    }
    access_record r;
    r.line_no = line_no;
    const std::string id = string_field(doc, path, line_no, "trace");
    if (!parse_hex_id(id, r.trace_id)) {
      bad_record(path, line_no, "'trace' is not a hex id: '" + id + "'");
    }
    r.token = string_field(doc, path, line_no, "token");
    r.op = string_field(doc, path, line_no, "op");
    r.outcome = string_field(doc, path, line_no, "outcome");
    const json::value* shard = doc.get("shard");
    if (shard == nullptr || !shard->is(json::value::kind::number)) {
      bad_record(path, line_no, "missing or non-number 'shard'");
    }
    r.shard = static_cast<std::int64_t>(shard->as_number());
    r.queue_wait_ns = u64_field(doc, path, line_no, "queue_wait_ns");
    r.compute_ns = u64_field(doc, path, line_no, "compute_ns");
    r.serialize_ns = u64_field(doc, path, line_no, "serialize_ns");
    r.write_ns = u64_field(doc, path, line_no, "write_ns");
    r.total_ns = u64_field(doc, path, line_no, "total_ns");
    r.fanout = u64_field(doc, path, line_no, "fanout");
    r.fallbacks = u64_field(doc, path, line_no, "fallbacks");
    r.degraded = bool_field(doc, path, line_no, "degraded");
    r.shed = bool_field(doc, path, line_no, "shed");
    r.chaos = bool_field(doc, path, line_no, "chaos");
    r.slow = bool_field(doc, path, line_no, "slow");
    out.push_back(std::move(r));
  }
  return out;
}

/// One traced request assembled from both artifacts. Either side may be
/// missing: spans without an access record (client-side traces, or the
/// log was off), access records without spans (ring overwrote them).
struct request_view {
  std::uint64_t trace_id = 0;
  std::vector<const span_event*> spans;  // start-ordered
  std::vector<const access_record*> records;

  const span_event* root() const noexcept {
    return spans.empty() ? nullptr : spans.front();
  }
  /// Slowness key: the access log's wall time when present (it covers
  /// the full request, including the socket write), else the root span.
  double wall_us() const noexcept {
    if (!records.empty()) {
      std::uint64_t ns = 0;
      for (const access_record* r : records) ns = std::max(ns, r->total_ns);
      return static_cast<double>(ns) / 1000.0;
    }
    const span_event* r = root();
    return r == nullptr ? 0.0 : r->dur_us;
  }
};

std::map<std::uint64_t, request_view> group_requests(
    const parsed_trace& trace, const std::vector<access_record>& records) {
  std::map<std::uint64_t, request_view> out;
  for (const span_event& span : trace.spans) {
    if (span.trace_id == 0) continue;
    request_view& view = out[span.trace_id];
    view.trace_id = span.trace_id;
    view.spans.push_back(&span);
  }
  for (auto& [id, view] : out) {
    (void)id;
    std::stable_sort(view.spans.begin(), view.spans.end(),
                     [](const span_event* a, const span_event* b) {
                       if (a->ts_us != b->ts_us) return a->ts_us < b->ts_us;
                       return a->dur_us > b->dur_us;
                     });
  }
  for (const access_record& r : records) {
    request_view& view = out[r.trace_id];
    view.trace_id = r.trace_id;
    view.records.push_back(&r);
  }
  return out;
}

std::string describe_record(const access_record& r) {
  std::string out = "op=" + (r.op.empty() ? std::string("?") : r.op) +
                    " outcome=" +
                    (r.outcome.empty() ? std::string("?") : r.outcome) +
                    " total=" + fmt_ns_as_us(r.total_ns) + "us";
  if (r.shard >= 0) out += " shard=" + std::to_string(r.shard);
  if (r.fanout > 0) out += " fanout=" + std::to_string(r.fanout);
  if (r.fallbacks > 0) out += " fallbacks=" + std::to_string(r.fallbacks);
  if (!r.token.empty()) out += " token=" + r.token;
  if (r.degraded) out += " degraded";
  if (r.shed) out += " shed";
  if (r.chaos) out += " chaos";
  if (r.slow) out += " slow";
  return out;
}

void print_request_detail(const request_view& view) {
  std::cout << "trace " << fmt_id(view.trace_id) << ": "
            << view.spans.size() << " span(s), " << view.records.size()
            << " access record(s)\n";
  for (const span_event* s : view.spans) {
    std::cout << "  span ts=" << fmt_us(s->ts_us) << "us dur="
              << fmt_us(s->dur_us) << "us lane=" << s->tid << " "
              << s->name << "\n";
  }
  for (const access_record* r : view.records) {
    std::cout << "  access line " << r->line_no << ": "
              << describe_record(*r) << " (queue_wait="
              << fmt_ns_as_us(r->queue_wait_ns) << "us compute="
              << fmt_ns_as_us(r->compute_ns) << "us serialize="
              << fmt_ns_as_us(r->serialize_ns) << "us write="
              << fmt_ns_as_us(r->write_ns) << "us)\n";
  }
}

/// Splits a retry-client token "<base>-a<N>" into (base, N); false when
/// the token is not of that shape.
bool split_attempt_token(const std::string& token, std::string& base,
                         int& attempt) {
  const std::size_t pos = token.rfind("-a");
  if (pos == std::string::npos || pos == 0 ||
      pos + 2 >= token.size()) {
    return false;
  }
  int n = 0;
  for (std::size_t i = pos + 2; i < token.size(); ++i) {
    const char ch = token[i];
    if (ch < '0' || ch > '9') return false;
    n = n * 10 + (ch - '0');
    if (n > 1000000) return false;
  }
  if (n < 1) return false;
  base = token.substr(0, pos);
  attempt = n;
  return true;
}

void print_attempt_chains(const std::vector<access_record>& records) {
  // base token -> attempts seen, in attempt order.
  std::map<std::string, std::vector<std::pair<int, const access_record*>>>
      chains;
  for (const access_record& r : records) {
    std::string base;
    int attempt = 0;
    if (split_attempt_token(r.token, base, attempt)) {
      chains[base].emplace_back(attempt, &r);
    }
  }
  // A chain retried iff some attempt number exceeds 1 — several calls
  // may share a base (one `query --trace=BASE` run), so size alone lies.
  const auto retried = [](const std::vector<
                           std::pair<int, const access_record*>>& attempts) {
    for (const auto& [n, r] : attempts) {
      (void)r;
      if (n > 1) return true;
    }
    return false;
  };
  std::size_t multi = 0;
  for (auto& [base, attempts] : chains) {
    (void)base;
    std::sort(attempts.begin(), attempts.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    if (retried(attempts)) ++multi;
  }
  if (chains.empty()) return;
  std::cout << "attempt chains: " << chains.size() << " call(s), " << multi
            << " with retries\n";
  for (const auto& [base, attempts] : chains) {
    if (!retried(attempts)) continue;  // single-attempt calls are noise
    std::cout << "  " << base << ":";
    for (const auto& [n, r] : attempts) {
      std::cout << " a" << n << "="
                << (r->outcome.empty() ? std::string("?") : r->outcome);
    }
    std::cout << "\n";
  }
}

}  // namespace

int run_trace(const std::vector<std::string>& args) {
  const trace_args a = parse_args(args);
  parsed_trace trace;
  std::vector<access_record> records;
  try {
    try {
      trace = parse_trace(load_json(a.profile_path, "profile"));
    } catch (const std::invalid_argument& e) {
      throw spec_error("profile '" + a.profile_path + "': " + e.what());
    }
    if (!a.access_log_path.empty()) {
      records = load_access_log(a.access_log_path);
    }
  } catch (const spec_error& e) {
    std::cerr << "mcast_lab trace: " << e.what() << "\n";
    return exit_spec_error;
  }

  const std::map<std::uint64_t, request_view> requests =
      group_requests(trace, records);

  if (a.trace_id != 0) {
    const auto it = requests.find(a.trace_id);
    if (it == requests.end()) {
      std::cerr << "mcast_lab trace: trace id " << fmt_id(a.trace_id)
                << " appears in neither artifact\n";
      return exit_spec_error;
    }
    print_request_detail(it->second);
    return exit_ok;
  }

  std::size_t tagged = 0;
  for (const span_event& s : trace.spans) {
    if (s.trace_id != 0) ++tagged;
  }
  std::cout << "trace: " << requests.size() << " request(s), " << tagged
            << " tagged span(s), " << (trace.spans.size() - tagged)
            << " untagged, " << records.size() << " access record(s), "
            << trace.dropped << " dropped event(s)\n";

  for (const auto& [id, view] : requests) {
    std::cout << "  " << fmt_id(id) << " spans=" << view.spans.size();
    if (const span_event* root = view.root()) {
      std::cout << " root=" << root->name;
    }
    std::cout << " wall=" << fmt_us(view.wall_us()) << "us";
    for (const access_record* r : view.records) {
      std::cout << " [" << describe_record(*r) << "]";
    }
    std::cout << "\n";
  }

  if (a.top > 0 && !requests.empty()) {
    std::vector<const request_view*> slowest;
    slowest.reserve(requests.size());
    for (const auto& [id, view] : requests) {
      (void)id;
      slowest.push_back(&view);
    }
    std::stable_sort(slowest.begin(), slowest.end(),
                     [](const request_view* x, const request_view* y) {
                       return x->wall_us() > y->wall_us();
                     });
    if (slowest.size() > a.top) slowest.resize(a.top);
    std::cout << "top " << slowest.size() << " slowest:\n";
    for (std::size_t i = 0; i < slowest.size(); ++i) {
      const request_view& view = *slowest[i];
      std::cout << "  " << (i + 1) << ". " << fmt_id(view.trace_id)
                << " wall=" << fmt_us(view.wall_us()) << "us";
      if (!view.records.empty()) {
        std::cout << " " << describe_record(*view.records.front());
      } else if (const span_event* root = view.root()) {
        std::cout << " root=" << root->name;
      }
      std::cout << "\n";
    }
  }

  if (!records.empty()) print_attempt_chains(records);
  return exit_ok;
}

}  // namespace mcast::check
