#include "check/perf_gate.hpp"

#include <cstdio>

namespace mcast::check {

namespace {

std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::vector<gate_result> eval_gates(const spec& s,
                                    const json::value& baseline,
                                    const json::value& current) {
  std::vector<gate_result> out;
  for (const rule& r : s.rules) {
    if (r.kind != rule_kind::gate) continue;
    gate_result g;
    g.line = r.line;
    g.rule = r.source;
    g.metric = r.metric;
    g.higher_better = r.higher_better;
    g.tolerance = r.number;
    std::string why;
    if (!resolve_metric(current, r.metric, g.current, why)) {
      g.status = "missing";
      out.push_back(std::move(g));
      continue;
    }
    if (!resolve_metric(baseline, r.metric, g.baseline, why)) {
      g.status = "new";
      out.push_back(std::move(g));
      continue;
    }
    const bool regressed =
        g.higher_better ? g.current < g.baseline * (1.0 - g.tolerance)
                        : g.current > g.baseline * (1.0 + g.tolerance);
    g.status = regressed ? "regression" : "ok";
    out.push_back(std::move(g));
  }
  return out;
}

std::vector<violation> gate_violations(const std::vector<gate_result>& gates) {
  std::vector<violation> out;
  for (const gate_result& g : gates) {
    if (g.status == "regression") {
      const double bound = g.higher_better
                               ? g.baseline * (1.0 - g.tolerance)
                               : g.baseline * (1.0 + g.tolerance);
      out.push_back(
          {g.line, g.rule,
           g.metric + " regressed: current " + fmt(g.current) + " vs " +
               "baseline " + fmt(g.baseline) + " (" +
               (g.higher_better ? "must stay >= " : "must stay <= ") +
               fmt(bound) + " at tolerance " + fmt(g.tolerance) + ")"});
    } else if (g.status == "missing") {
      out.push_back({g.line, g.rule,
                     g.metric +
                         " is gated but missing from the current manifest"});
    }
  }
  return out;
}

}  // namespace mcast::check
