#include "check/trace_check.hpp"

#include <algorithm>
#include <cstdio>

namespace mcast::check {

namespace {

// ts and dur are serialized independently at %.3f µs, so a child's
// rounded end can exceed its parent's by one rounding step per endpoint.
constexpr double k_eps_us = 0.002;

std::string fmt_us(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

[[noreturn]] void bad_event(std::size_t index, const std::string& what) {
  throw std::invalid_argument("traceEvents[" + std::to_string(index) +
                              "]: " + what);
}

double number_field(const json::value& event, std::size_t index,
                    const char* field) {
  const json::value* v = event.get(field);
  if (v == nullptr) bad_event(index, std::string("missing '") + field + "'");
  if (!v->is(json::value::kind::number)) {
    bad_event(index, std::string("'") + field + "' is not a number");
  }
  return v->as_number();
}

// args.trace_id as written by obs::write_chrome_trace: a %016llx hex
// string. Absent args (untraced spans) yield 0; a present-but-malformed
// id is a spec error like any other malformed field.
std::uint64_t trace_id_field(const json::value& event, std::size_t index) {
  const json::value* args = event.get("args");
  if (args == nullptr) return 0;
  if (!args->is(json::value::kind::object)) {
    bad_event(index, "'args' is not an object");
  }
  const json::value* id = args->get("trace_id");
  if (id == nullptr) return 0;
  if (!id->is(json::value::kind::string)) {
    bad_event(index, "'args.trace_id' is not a string");
  }
  const std::string& text = id->as_string();
  if (text.empty() || text.size() > 16) {
    bad_event(index, "'args.trace_id' is not a hex id: '" + text + "'");
  }
  std::uint64_t out = 0;
  for (const char ch : text) {
    int digit;
    if (ch >= '0' && ch <= '9') digit = ch - '0';
    else if (ch >= 'a' && ch <= 'f') digit = ch - 'a' + 10;
    else if (ch >= 'A' && ch <= 'F') digit = ch - 'A' + 10;
    else {
      bad_event(index, "'args.trace_id' is not a hex id: '" + text + "'");
    }
    out = (out << 4) | static_cast<std::uint64_t>(digit);
  }
  return out;
}

}  // namespace

parsed_trace parse_trace(const json::value& doc) {
  const json::value* events = &doc;
  parsed_trace out;
  if (doc.is(json::value::kind::object)) {
    events = doc.get("traceEvents");
    if (events == nullptr || !events->is(json::value::kind::array)) {
      throw std::invalid_argument("trace has no 'traceEvents' array");
    }
    if (const json::value* other = doc.get("otherData");
        other != nullptr && other->is(json::value::kind::object)) {
      if (const json::value* dropped = other->get("dropped");
          dropped != nullptr && dropped->is(json::value::kind::number)) {
        out.dropped = static_cast<std::uint64_t>(dropped->as_number());
      }
    }
  } else if (!doc.is(json::value::kind::array)) {
    throw std::invalid_argument(
        "trace is neither a trace_event object nor a bare event array");
  }
  for (std::size_t i = 0; i < events->items().size(); ++i) {
    const json::value& e = events->items()[i];
    if (!e.is(json::value::kind::object)) {
      bad_event(i, "event is not an object");
    }
    ++out.events;
    const json::value* ph = e.get("ph");
    if (ph == nullptr || !ph->is(json::value::kind::string)) {
      bad_event(i, "missing or non-string 'ph'");
    }
    if (ph->as_string() != "X") continue;  // other phases carry no spans
    const json::value* name = e.get("name");
    if (name == nullptr || !name->is(json::value::kind::string)) {
      bad_event(i, "missing or non-string 'name'");
    }
    span_event span;
    span.name = name->as_string();
    span.ts_us = number_field(e, i, "ts");
    span.dur_us = number_field(e, i, "dur");
    if (span.dur_us < 0.0) bad_event(i, "'dur' is negative");
    span.tid = static_cast<std::uint32_t>(number_field(e, i, "tid"));
    span.trace_id = trace_id_field(e, i);
    out.spans.push_back(std::move(span));
  }
  return out;
}

namespace {

std::string describe(const span_event& s) {
  return "'" + s.name + "' (tid " + std::to_string(s.tid) + ", ts=" +
         fmt_us(s.ts_us) + "us, dur=" + fmt_us(s.dur_us) + "us)";
}

// Per-lane structural nesting: sort one lane's spans by (start asc,
// duration desc) and sweep with a stack of open scopes; a span that
// starts inside the innermost open scope but ends after it partially
// overlaps — impossible for well-formed RAII spans on one thread.
void check_lane_nesting(const rule& r, std::vector<const span_event*> lane,
                        std::vector<violation>& out) {
  std::stable_sort(lane.begin(), lane.end(),
                   [](const span_event* a, const span_event* b) {
                     if (a->ts_us != b->ts_us) return a->ts_us < b->ts_us;
                     return a->dur_us > b->dur_us;
                   });
  std::vector<const span_event*> open;
  for (const span_event* s : lane) {
    while (!open.empty() &&
           open.back()->ts_us + open.back()->dur_us <= s->ts_us + k_eps_us) {
      open.pop_back();
    }
    if (!open.empty()) {
      const span_event* top = open.back();
      if (s->ts_us + s->dur_us > top->ts_us + top->dur_us + k_eps_us) {
        out.push_back({r.line, r.source,
                       "spans overlap without nesting on lane " +
                           std::to_string(s->tid) + ": " + describe(*s) +
                           " crosses the end of " + describe(*top)});
        continue;  // do not open the malformed span
      }
    }
    open.push_back(s);
  }
}

}  // namespace

std::vector<violation> eval_trace_rules(const spec& s,
                                        const parsed_trace& trace) {
  std::vector<violation> out;
  for (const rule& r : s.rules) {
    switch (r.kind) {
      case rule_kind::span_within: {
        for (const span_event& child : trace.spans) {
          if (!glob_match(r.name, child.name)) continue;
          if (r.same_trace && child.trace_id == 0) {
            out.push_back({r.line, r.source,
                           "span " + describe(child) +
                               " carries no trace id, required by "
                               "'same_trace'"});
            continue;
          }
          bool enclosed = false;
          for (const span_event& parent : trace.spans) {
            if (&parent == &child || !glob_match(r.parent, parent.name)) {
              continue;
            }
            if (r.same_trace && parent.trace_id != child.trace_id) continue;
            if (parent.ts_us <= child.ts_us + k_eps_us &&
                parent.ts_us + parent.dur_us + k_eps_us >=
                    child.ts_us + child.dur_us) {
              enclosed = true;
              break;
            }
          }
          if (!enclosed) {
            out.push_back(
                {r.line, r.source,
                 "span " + describe(child) +
                     " not enclosed by any span matching '" + r.parent +
                     (r.same_trace ? "' with the same trace id" : "'")});
          }
        }
        break;
      }
      case rule_kind::span_budget_ms: {
        for (const span_event& span : trace.spans) {
          if (!glob_match(r.name, span.name)) continue;
          if (span.dur_us > r.number * 1000.0) {
            out.push_back({r.line, r.source,
                           "span " + describe(span) + " exceeds budget " +
                               fmt_us(r.number * 1000.0) + "us"});
          }
        }
        break;
      }
      case rule_kind::span_count: {
        std::size_t count = 0;
        for (const span_event& span : trace.spans) {
          if (glob_match(r.name, span.name)) ++count;
        }
        if (!cmp_eval(static_cast<double>(count), r.op, r.number)) {
          out.push_back({r.line, r.source,
                         "span count for '" + r.name + "' is " +
                             std::to_string(count) + ", want " +
                             cmp_name(r.op) + " " +
                             std::to_string(static_cast<long long>(r.number))});
        }
        break;
      }
      case rule_kind::trace_dropped: {
        if (!cmp_eval(static_cast<double>(trace.dropped), r.op, r.number)) {
          out.push_back({r.line, r.source,
                         "trace dropped " + std::to_string(trace.dropped) +
                             " event(s), want " + cmp_name(r.op) + " " +
                             std::to_string(static_cast<long long>(r.number))});
        }
        break;
      }
      case rule_kind::trace_nested: {
        // Group spans by lane, preserving file order within a lane.
        std::vector<std::uint32_t> tids;
        for (const span_event& span : trace.spans) {
          if (std::find(tids.begin(), tids.end(), span.tid) == tids.end()) {
            tids.push_back(span.tid);
          }
        }
        std::sort(tids.begin(), tids.end());
        for (const std::uint32_t tid : tids) {
          std::vector<const span_event*> lane;
          for (const span_event& span : trace.spans) {
            if (span.tid == tid) lane.push_back(&span);
          }
          check_lane_nesting(r, std::move(lane), out);
        }
        break;
      }
      default:
        break;  // manifest / gate rules evaluate elsewhere
    }
  }
  return out;
}

}  // namespace mcast::check
