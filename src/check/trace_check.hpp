// Chrome-trace validation: parses the `mcast_lab run --profile` output
// (trace_event JSON) and evaluates the span rules of an expectation spec.
//
// Checks available through the spec grammar:
//   span <child> within <parent>  — every child span is enclosed in time
//       by some parent span (cross-lane: the scheduler's sweep_point
//       spans live on worker lanes while experiment:* lives on the main
//       lane, so enclosure is a wall-clock property, not a stack one);
//       with the `same_trace` modifier, enclosure additionally requires
//       the parent to carry the child's (nonzero) trace id — the
//       per-request form used by the service specs, where concurrent
//       requests interleave and timing containment alone is ambiguous;
//   span <glob> budget_ms <B>     — per-span duration budget;
//   span <glob> count <cmp> <N>   — population assertions;
//   trace dropped <cmp> <N>       — ring-buffer overwrite limit;
//   trace nested                  — per-lane structural check: two spans
//       on one lane must nest or be disjoint. RAII spans can never
//       partially overlap on their own thread, so a partial overlap is
//       evidence of clock trouble or ring truncation splitting a scope.
//
// parse_trace is strict: a malformed event (wrong type, missing field)
// throws std::invalid_argument naming the index — the spec-error exit
// path of `mcast_lab check`, mirroring tools/trace_summary.py.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/eval.hpp"
#include "check/spec.hpp"
#include "common/json.hpp"

namespace mcast::check {

/// One complete ("ph": "X") event. Times are microseconds, as serialized.
struct span_event {
  std::string name;
  double ts_us = 0.0;
  double dur_us = 0.0;
  std::uint32_t tid = 0;
  std::uint64_t trace_id = 0;  ///< args.trace_id (hex), 0 when untagged
};

struct parsed_trace {
  std::vector<span_event> spans;  ///< "X" events, file order
  std::size_t events = 0;         ///< all events, any phase
  std::uint64_t dropped = 0;      ///< otherData.dropped
};

/// Parses a trace_event document ({"traceEvents": [...]} or a bare
/// array). Throws std::invalid_argument on a malformed event.
parsed_trace parse_trace(const json::value& doc);

/// Evaluates every trace-scoped rule in `s`.
std::vector<violation> eval_trace_rules(const spec& s,
                                        const parsed_trace& trace);

}  // namespace mcast::check
