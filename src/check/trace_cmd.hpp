// The `mcast_lab trace` verb: request-centric views over the tracing
// artifacts — a Chrome-trace profile (`--profile`, span events tagged
// with args.trace_id) optionally joined with the structured access log
// (`--access-log`, JSONL, schema mcast-access-log/1) on the trace id.
//
// Views:
//   * default         — one line per traced request: id, root span, span
//     count, wall time, and (when the access log is given) the joined
//     op/outcome/latency-split record; followed by the top-K slowest
//     requests and, from the access log, reconstructed retry attempt
//     chains (client tokens of the form "<base>-a<N>").
//   * --trace-id=HEX  — a single request in full: its spans in start
//     order with lane and duration, plus every access record that
//     carries the id.
//
// Exit codes mirror `mcast_lab check`:
//   0 — artifacts parsed and the view was printed
//   1 — usage error (mapped by the lab CLI)
//   2 — input error: unreadable/malformed profile or access log, or a
//       --trace-id that appears in neither artifact
#pragma once

#include <string>
#include <vector>

namespace mcast::check {

/// Runs `trace` with the verb's arguments (everything after "trace").
int run_trace(const std::vector<std::string>& args);

}  // namespace mcast::check
