#include "check/eval.hpp"

#include <cstdio>

namespace mcast::check {

namespace {

// %.17g matches the manifest serializer, so quoted values round-trip.
std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

const json::value* object_member(const json::value& doc, const char* a,
                                 const char* b, const std::string& name) {
  const json::value* section = doc.get(a);
  if (section == nullptr) return nullptr;
  if (b != nullptr) {
    section = section->get(b);
    if (section == nullptr) return nullptr;
  }
  return section->get(name);
}

}  // namespace

bool resolve_metric(const json::value& manifest, const std::string& path,
                    double& out, std::string& why) {
  const auto starts = [&path](const char* prefix) {
    return path.rfind(prefix, 0) == 0;
  };
  const json::value* v = nullptr;
  if (starts("counter.")) {
    v = object_member(manifest, "metrics", "counters", path.substr(8));
  } else if (starts("gauge.")) {
    v = object_member(manifest, "metrics", "gauges", path.substr(6));
  } else if (starts("hist.")) {
    const std::string rest = path.substr(5);
    const std::size_t dot = rest.rfind('.');
    const json::value* hist =
        object_member(manifest, "metrics", "histograms", rest.substr(0, dot));
    if (hist != nullptr) v = hist->get(rest.substr(dot + 1));
  } else if (starts("derived.")) {
    v = object_member(manifest, "metrics", "derived", path.substr(8));
  } else if (starts("fit.")) {
    const std::string rest = path.substr(4);
    const std::size_t dot = rest.rfind('.');
    const std::string label = rest.substr(0, dot);
    const std::string key = rest.substr(dot + 1);
    const json::value* fits = manifest.get("fits");
    if (fits == nullptr || !fits->is(json::value::kind::array)) {
      why = "manifest has no 'fits' array";
      return false;
    }
    const json::value* match = nullptr;
    for (const json::value& fit : fits->items()) {
      const json::value* l = fit.get("label");
      if (l != nullptr && l->is(json::value::kind::string) &&
          l->as_string() == label) {
        match = &fit;
        break;
      }
    }
    if (match == nullptr) {
      why = "no fit labeled '" + label + "' in manifest";
      return false;
    }
    const json::value* values = match->get("values");
    if (values != nullptr) v = values->get(key);
    if (v == nullptr) {
      why = "fit '" + label + "' has no value '" + key + "'";
      return false;
    }
  } else {
    v = manifest.get(path);  // wall_seconds / cpu_seconds / scale / threads
  }
  if (v == nullptr) {
    why = "metric '" + path + "' not present in manifest";
    return false;
  }
  if (!v->is(json::value::kind::number)) {
    why = "metric '" + path + "' is not a number in the manifest";
    return false;
  }
  out = v->as_number();
  return true;
}

namespace {

// Sums an expression; appends "name=value" renderings so violation
// messages show every input. Returns false (with `why`) on a missing
// metric.
bool eval_expr(const json::value& manifest, const expr& e, double& out,
               std::string& detail, std::string& why) {
  double sum = 0.0;
  for (const term& t : e.terms) {
    double v = t.literal;
    if (!t.is_literal && !resolve_metric(manifest, t.metric, v, why)) {
      return false;
    }
    if (!t.is_literal) {
      if (!detail.empty()) detail += ", ";
      detail += t.metric + "=" + fmt(v);
    }
    sum += t.sign * v;
  }
  out = sum;
  return true;
}

bool has_group(const json::value& manifest, const std::string& name) {
  const json::value* groups = manifest.get("metric_groups");
  if (groups == nullptr || !groups->is(json::value::kind::array)) {
    return false;
  }
  for (const json::value& g : groups->items()) {
    if (g.is(json::value::kind::string) && g.as_string() == name) return true;
  }
  return false;
}

bool has_fit(const json::value& manifest, const std::string& label) {
  const json::value* fits = manifest.get("fits");
  if (fits == nullptr || !fits->is(json::value::kind::array)) return false;
  for (const json::value& fit : fits->items()) {
    const json::value* l = fit.get("label");
    if (l != nullptr && l->is(json::value::kind::string) &&
        l->as_string() == label) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::vector<violation> eval_manifest_rules(const spec& s,
                                           const json::value& manifest) {
  std::vector<violation> out;
  const auto violate = [&out](const rule& r, std::string message) {
    out.push_back({r.line, r.source, std::move(message)});
  };
  for (const rule& r : s.rules) {
    switch (r.kind) {
      case rule_kind::assert_cmp: {
        double lhs = 0.0, rhs = 0.0;
        std::string detail, why;
        if (!eval_expr(manifest, r.lhs, lhs, detail, why) ||
            !eval_expr(manifest, r.rhs, rhs, detail, why)) {
          violate(r, why);
          break;
        }
        if (!cmp_eval(lhs, r.op, rhs)) {
          violate(r, "assert failed: " + fmt(lhs) + " " + cmp_name(r.op) +
                         " " + fmt(rhs) + " is false (" + detail + ")");
        }
        break;
      }
      case rule_kind::range: {
        double v = 0.0;
        std::string why;
        if (!resolve_metric(manifest, r.metric, v, why)) {
          violate(r, why);
          break;
        }
        if (v < r.lo || v > r.hi) {
          violate(r, r.metric + " = " + fmt(v) + " outside [" + fmt(r.lo) +
                         ", " + fmt(r.hi) + "]");
        }
        break;
      }
      case rule_kind::present_group:
        if (!has_group(manifest, r.name)) {
          violate(r, "metric group '" + r.name + "' not declared");
        }
        break;
      case rule_kind::absent_group:
        if (has_group(manifest, r.name)) {
          violate(r, "metric group '" + r.name +
                         "' declared but expected absent");
        }
        break;
      case rule_kind::present_fit:
        if (!has_fit(manifest, r.name)) {
          violate(r, "no fit labeled '" + r.name + "'");
        }
        break;
      default:
        break;  // trace / gate rules evaluate elsewhere
    }
  }
  return out;
}

}  // namespace mcast::check
