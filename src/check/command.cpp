#include "check/command.hpp"

#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "check/eval.hpp"
#include "check/perf_gate.hpp"
#include "check/spec.hpp"
#include "check/trace_check.hpp"
#include "common/json.hpp"

namespace mcast::check {

namespace {

struct check_args {
  std::string manifest_path;
  std::string expect_path;
  std::string trace_path;     // optional
  std::string baseline_path;  // optional
  std::string report_path;    // optional
};

[[noreturn]] void usage_error(const std::string& message) {
  throw std::invalid_argument(message);
}

check_args parse_args(const std::vector<std::string>& args) {
  check_args out;
  const auto value_of = [&args](std::size_t& i,
                                const std::string& flag) -> std::string {
    const std::string& arg = args[i];
    if (arg.size() > flag.size() && arg.compare(0, flag.size(), flag) == 0 &&
        arg[flag.size()] == '=') {
      return arg.substr(flag.size() + 1);
    }
    if (i + 1 >= args.size()) usage_error("check: " + flag + " needs a value");
    return args[++i];
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto is_flag = [&arg](const char* flag) {
      return arg == flag || arg.rfind(std::string(flag) + "=", 0) == 0;
    };
    if (is_flag("--manifest")) {
      out.manifest_path = value_of(i, "--manifest");
    } else if (is_flag("--expect")) {
      out.expect_path = value_of(i, "--expect");
    } else if (is_flag("--trace")) {
      out.trace_path = value_of(i, "--trace");
    } else if (is_flag("--baseline")) {
      out.baseline_path = value_of(i, "--baseline");
    } else if (is_flag("--report")) {
      out.report_path = value_of(i, "--report");
    } else {
      usage_error("check: unknown argument '" + arg + "'");
    }
  }
  if (out.manifest_path.empty()) usage_error("check: --manifest is required");
  if (out.expect_path.empty()) usage_error("check: --expect is required");
  return out;
}

// Loads and parses a JSON artifact; failures become spec-error exits.
json::value load_json(const std::string& path, const char* what) {
  std::ifstream in(path);
  if (!in) {
    throw spec_error(std::string(what) + " '" + path + "': cannot open");
  }
  std::ostringstream text;
  text << in.rdbuf();
  try {
    return json::parse(text.str());
  } catch (const std::exception& e) {
    throw spec_error(std::string(what) + " '" + path + "': " + e.what());
  }
}

json::value report_to_json(std::size_t rules,
                           const std::vector<violation>& violations,
                           const std::vector<gate_result>& gates) {
  json::value doc = json::value::object();
  doc.set("schema", json::value::string(report_schema));
  doc.set("pass", json::value::boolean(violations.empty()));
  doc.set("rules", json::value::number(static_cast<double>(rules)));
  json::value vio = json::value::array();
  for (const violation& v : violations) {
    json::value entry = json::value::object();
    entry.set("line", json::value::number(v.line));
    entry.set("rule", json::value::string(v.rule));
    entry.set("message", json::value::string(v.message));
    vio.push(std::move(entry));
  }
  doc.set("violations", std::move(vio));
  json::value gs = json::value::array();
  for (const gate_result& g : gates) {
    json::value entry = json::value::object();
    entry.set("metric", json::value::string(g.metric));
    entry.set("status", json::value::string(g.status));
    entry.set("direction", json::value::string(
                               g.higher_better ? "higher_better"
                                               : "lower_better"));
    entry.set("tolerance", json::value::number(g.tolerance));
    entry.set("baseline", json::value::number(g.baseline));
    entry.set("current", json::value::number(g.current));
    gs.push(std::move(entry));
  }
  doc.set("gates", std::move(gs));
  return doc;
}

}  // namespace

int run_check(const std::vector<std::string>& args) {
  const check_args a = parse_args(args);
  spec s;
  json::value manifest;
  parsed_trace trace;
  json::value baseline;
  try {
    s = parse_spec_file(a.expect_path);
    if (s.needs_trace() && a.trace_path.empty()) {
      throw spec_error(a.expect_path +
                       ": spec has span/trace rules but no --trace was "
                       "given");
    }
    if (s.needs_baseline() && a.baseline_path.empty()) {
      throw spec_error(a.expect_path +
                       ": spec has gate rules but no --baseline was given");
    }
    manifest = load_json(a.manifest_path, "manifest");
    if (!a.trace_path.empty()) {
      try {
        trace = parse_trace(load_json(a.trace_path, "trace"));
      } catch (const std::invalid_argument& e) {
        throw spec_error("trace '" + a.trace_path + "': " + e.what());
      }
    }
    if (!a.baseline_path.empty()) {
      baseline = load_json(a.baseline_path, "baseline");
    }
  } catch (const spec_error& e) {
    std::cerr << "mcast_lab check: " << e.what() << "\n";
    return exit_spec_error;
  }

  std::vector<violation> violations = eval_manifest_rules(s, manifest);
  if (!a.trace_path.empty()) {
    std::vector<violation> tv = eval_trace_rules(s, trace);
    violations.insert(violations.end(), tv.begin(), tv.end());
  }
  std::vector<gate_result> gates;
  if (!a.baseline_path.empty()) {
    gates = eval_gates(s, baseline, manifest);
    std::vector<violation> gv = gate_violations(gates);
    violations.insert(violations.end(), gv.begin(), gv.end());
  }

  for (const violation& v : violations) {
    std::cout << a.expect_path << ":" << v.line << ": FAIL " << v.rule
              << "\n    " << v.message << "\n";
  }
  for (const gate_result& g : gates) {
    if (g.status == "new") {
      std::cout << a.expect_path << ":" << g.line << ": note: " << g.metric
                << " has no baseline yet (passes until the baseline is "
                   "refreshed)\n";
    }
  }
  std::cout << "check: " << s.rules.size() << " rule(s), "
            << violations.size() << " violation(s): "
            << (violations.empty() ? "pass" : "FAIL") << "\n";

  if (!a.report_path.empty()) {
    const json::value report =
        report_to_json(s.rules.size(), violations, gates);
    std::ofstream out(a.report_path, std::ios::trunc);
    if (!out) {
      std::cerr << "mcast_lab check: cannot open report '" << a.report_path
                << "' for writing\n";
      return exit_spec_error;
    }
    out << json::dump(report) << "\n";
    if (!out) {
      std::cerr << "mcast_lab check: write to '" << a.report_path
                << "' failed\n";
      return exit_spec_error;
    }
  }
  return violations.empty() ? exit_ok : exit_violations;
}

}  // namespace mcast::check
