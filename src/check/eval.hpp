// Evaluation of manifest-scoped expectation rules (assert / range /
// present / absent) against a parsed BENCH_<id>.json document.
//
// Metric paths resolve into the manifest/2 layout:
//   counter.<name>   -> metrics.counters.<name>
//   gauge.<name>     -> metrics.gauges.<name>
//   hist.<name>.<f>  -> metrics.histograms.<name>.<f>
//   derived.<name>   -> metrics.derived.<name>
//   fit.<label>.<k>  -> fits[label == <label>].values.<k>
//   wall_seconds, cpu_seconds, scale, threads -> top level
//
// A metric a rule names but the manifest lacks is a *violation*, not a
// spec error: the spec already passed the closed-universe name check at
// parse time, so absence here means the artifact is broken (e.g. an
// experiment stopped emitting a fit).
#pragma once

#include <string>
#include <vector>

#include "check/spec.hpp"
#include "common/json.hpp"

namespace mcast::check {

/// One violated expectation, with enough context to act on.
struct violation {
  int line = 0;         ///< spec line the rule came from
  std::string rule;     ///< directive text, verbatim
  std::string message;  ///< what failed, with the observed values
};

/// Resolves a metric path. Returns true and sets `out`; on failure sets
/// `why` (e.g. "no fit labeled 'SvcLoad'").
bool resolve_metric(const json::value& manifest, const std::string& path,
                    double& out, std::string& why);

/// Evaluates every manifest-scoped rule in `s` (trace and gate rules are
/// skipped here; see trace_check.hpp / perf_gate.hpp).
std::vector<violation> eval_manifest_rules(const spec& s,
                                           const json::value& manifest);

}  // namespace mcast::check
