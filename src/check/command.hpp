// The `mcast_lab check` verb: load an expectation spec, evaluate it
// against a run manifest (and optionally a Chrome trace and a perf
// baseline), print the violations, and write a machine-readable report.
//
// Exit codes (distinct per failure class, so CI can tell a broken spec
// from a broken system under test):
//   0 — every expectation holds
//   1 — usage error (thrown as std::invalid_argument; the lab CLI maps
//       those to exit 1 like every other verb)
//   2 — spec/input error: unparseable expectation file, unreadable or
//       malformed manifest/trace/baseline, or a spec that needs an
//       artifact (--trace / --baseline) that was not supplied
//   3 — one or more expectations violated
#pragma once

#include <string>
#include <vector>

namespace mcast::check {

inline constexpr int exit_ok = 0;
inline constexpr int exit_spec_error = 2;
inline constexpr int exit_violations = 3;

inline constexpr const char* report_schema = "mcast-check-report/1";

/// Runs `check` with the verb's arguments (everything after "check").
int run_check(const std::vector<std::string>& args);

}  // namespace mcast::check
