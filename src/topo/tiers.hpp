// TIERS-style hierarchical topologies after Doar (GLOBECOM '96) — the
// generator behind the paper's ti5000 network.
//
// Three tiers: one WAN, `man_count` MANs, and `lans_per_man` LANs hanging
// off each MAN. WAN and MAN networks place their routers uniformly in a
// plane and wire them with a Euclidean minimum spanning tree plus a
// redundancy parameter R: each router also links to its (R-1) next-nearest
// neighbors. LANs are stars (one gateway, `lan_size - 1` hosts), which is
// what gives TIERS maps their many degree-1 nodes, large diameter and the
// sub-exponential reachability growth the paper observes for ti5000
// (Fig 7a).
//
// Inter-tier wiring: each MAN gateway connects to `man_wan_redundancy`
// distinct WAN routers; each LAN gateway connects to one MAN router.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "sim/rng.hpp"

namespace mcast {

struct tiers_params {
  unsigned wan_size = 200;          ///< routers in the WAN, >= 1
  unsigned man_count = 20;          ///< number of MANs
  unsigned man_size = 40;           ///< routers per MAN, >= 1
  unsigned lans_per_man = 20;       ///< LANs attached to each MAN
  unsigned lan_size = 10;           ///< nodes per LAN (gateway + hosts), >= 1
  unsigned wan_redundancy = 2;      ///< R for the WAN mesh, >= 1
  unsigned man_redundancy = 1;      ///< R for each MAN mesh, >= 1
  unsigned man_wan_redundancy = 1;  ///< WAN attachment links per MAN, >= 1
};

/// Total nodes the parameterization will produce.
std::uint64_t tiers_node_count(const tiers_params& p);

/// Generates a TIERS-style graph. Deterministic given (params, seed);
/// connected by construction.
graph make_tiers(const tiers_params& params, rng& gen);

/// Convenience overload seeding a fresh engine from `seed`.
graph make_tiers(const tiers_params& params, std::uint64_t seed);

/// Parameters reproducing the character of the paper's ti5000
/// (5000 nodes: 200 WAN + 20x40 MAN + 400x10 LAN).
tiers_params ti5000_params();

}  // namespace mcast
