#include "topo/transit_stub.hpp"

#include <cmath>
#include <string>
#include <vector>

#include "common/contract.hpp"
#include "graph/builder.hpp"

namespace mcast {

namespace {

// Wires `members` into a connected random subgraph: a random recursive
// spanning tree plus independent extra edges with probability `extra_prob`.
void wire_domain(graph_builder& b, const std::vector<node_id>& members,
                 double extra_prob, rng& gen) {
  for (std::size_t i = 1; i < members.size(); ++i) {
    const std::size_t j = gen.below(i);
    b.add_edge(members[i], members[j]);
  }
  for (std::size_t i = 0; i < members.size(); ++i) {
    for (std::size_t j = i + 1; j < members.size(); ++j) {
      if (gen.chance(extra_prob)) b.add_edge(members[i], members[j]);
    }
  }
}

}  // namespace

std::uint64_t transit_stub_node_count(const transit_stub_params& p) {
  return static_cast<std::uint64_t>(p.transit_domains) * p.transit_domain_size *
         (1ULL + static_cast<std::uint64_t>(p.stubs_per_transit_node) *
                     p.stub_domain_size);
}

graph make_transit_stub(const transit_stub_params& p, rng& gen) {
  expects(p.transit_domains >= 1, "make_transit_stub: need >= 1 transit domain");
  expects(p.transit_domain_size >= 1,
          "make_transit_stub: transit_domain_size must be >= 1");
  expects(p.stub_domain_size >= 1,
          "make_transit_stub: stub_domain_size must be >= 1");
  expects(p.transit_edge_prob >= 0.0 && p.transit_edge_prob <= 1.0 &&
              p.stub_edge_prob >= 0.0 && p.stub_edge_prob <= 1.0,
          "make_transit_stub: edge probabilities must be in [0,1]");
  expects(p.extra_transit_stub_edges >= 0.0 && p.extra_stub_stub_edges >= 0.0,
          "make_transit_stub: shortcut edge counts must be non-negative");

  const std::uint64_t total = transit_stub_node_count(p);
  expects(total <= 0xFFFFFFF0ULL, "make_transit_stub: too many nodes");
  graph_builder b(static_cast<node_id>(total));

  // Node layout: transit routers first (domain-major), then stub domains in
  // order of their hosting transit router.
  const unsigned transit_total = p.transit_domains * p.transit_domain_size;
  std::vector<std::vector<node_id>> transit_members(p.transit_domains);
  node_id next = 0;
  for (unsigned d = 0; d < p.transit_domains; ++d) {
    for (unsigned i = 0; i < p.transit_domain_size; ++i) {
      transit_members[d].push_back(next++);
    }
  }

  // Intra-transit wiring.
  for (const auto& members : transit_members) {
    wire_domain(b, members, p.transit_edge_prob, gen);
  }
  // Top-level wiring: random recursive tree over domains, edge between
  // random routers of the two domains.
  for (unsigned d = 1; d < p.transit_domains; ++d) {
    const unsigned other = static_cast<unsigned>(gen.below(d));
    const node_id u = transit_members[d][gen.below(p.transit_domain_size)];
    const node_id v = transit_members[other][gen.below(p.transit_domain_size)];
    b.add_edge(u, v);
  }

  // Stub domains.
  struct stub_domain {
    node_id host;                   // transit router it hangs off
    std::vector<node_id> members;
  };
  std::vector<stub_domain> stubs;
  stubs.reserve(static_cast<std::size_t>(transit_total) * p.stubs_per_transit_node);
  for (node_id t = 0; t < transit_total; ++t) {
    for (unsigned s = 0; s < p.stubs_per_transit_node; ++s) {
      stub_domain sd;
      sd.host = t;
      for (unsigned i = 0; i < p.stub_domain_size; ++i) sd.members.push_back(next++);
      wire_domain(b, sd.members, p.stub_edge_prob, gen);
      b.add_edge(sd.host, sd.members[gen.below(sd.members.size())]);
      stubs.push_back(std::move(sd));
    }
  }
  MCAST_ASSERT(next == total);

  // Shortcut edges. Endpoints are random; counts are the rounded
  // expectations so graphs of a given parameterization have stable density.
  const auto shortcuts = [&gen, &stubs](double how_many, auto&& make_one) {
    const std::size_t count = static_cast<std::size_t>(std::llround(how_many));
    for (std::size_t i = 0; i < count && !stubs.empty(); ++i) make_one();
  };
  shortcuts(p.extra_transit_stub_edges, [&] {
    const stub_domain& sd = stubs[gen.below(stubs.size())];
    const node_id t = static_cast<node_id>(gen.below(transit_total));
    b.add_edge(t, sd.members[gen.below(sd.members.size())]);
  });
  shortcuts(p.extra_stub_stub_edges, [&] {
    const stub_domain& s1 = stubs[gen.below(stubs.size())];
    const stub_domain& s2 = stubs[gen.below(stubs.size())];
    b.add_edge(s1.members[gen.below(s1.members.size())],
               s2.members[gen.below(s2.members.size())]);
  });

  b.set_name("ts" + std::to_string(total));
  return b.build();
}

graph make_transit_stub(const transit_stub_params& params, std::uint64_t seed) {
  rng gen(seed);
  return make_transit_stub(params, gen);
}

transit_stub_params ts1000_params() {
  // 5 transit domains x 8 routers; 3 stubs x 8 routers per transit router:
  // 5*8*(1 + 3*8) = 1000 nodes, average degree ~3.6 (paper: 3.6).
  transit_stub_params p;
  p.transit_domains = 5;
  p.transit_domain_size = 8;
  p.stubs_per_transit_node = 3;
  p.stub_domain_size = 8;
  p.transit_edge_prob = 0.6;
  p.stub_edge_prob = 0.2;
  p.extra_transit_stub_edges = 100.0;
  p.extra_stub_stub_edges = 100.0;
  return p;
}

transit_stub_params ts1008_params() {
  // 6 transit domains x 6 routers; 3 stubs x 9 routers per transit router:
  // 6*6*(1 + 3*9) = 1008 nodes, average degree ~7.5 (paper: 7.5).
  transit_stub_params p;
  p.transit_domains = 6;
  p.transit_domain_size = 6;
  p.stubs_per_transit_node = 3;
  p.stub_domain_size = 9;
  p.transit_edge_prob = 0.9;
  p.stub_edge_prob = 0.55;
  p.extra_transit_stub_edges = 250.0;
  p.extra_stub_stub_edges = 800.0;
  return p;
}

}  // namespace mcast
