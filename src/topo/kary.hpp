// Complete k-ary trees — the analytically tractable topology of Sections 3
// and 5 of the paper.
//
// Node numbering is heap order: the root (the multicast source) is node 0
// and the children of node v are k*v+1 ... k*v+k. This gives O(depth)
// parent/LCA/distance arithmetic without touching the graph at all, which
// the affinity Metropolis sampler (multicast/affinity.hpp) relies on for
// its inner loop.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace mcast {

/// Index geometry of a complete k-ary tree of depth D (edges on a
/// root-to-leaf path). Pure arithmetic; no adjacency storage.
class kary_shape {
 public:
  /// Requires k >= 2 and depth >= 0, and total node count <= 2^32 - 2.
  kary_shape(unsigned k, unsigned depth);

  unsigned k() const noexcept { return k_; }
  unsigned depth() const noexcept { return depth_; }

  /// Total number of nodes = (k^(D+1) - 1) / (k - 1).
  std::uint64_t node_count() const noexcept { return total_; }

  /// Number of leaves = k^D  (the paper's M when receivers sit at leaves).
  std::uint64_t leaf_count() const noexcept { return leaves_; }

  /// Number of nodes at level l (root = level 0). Requires l <= depth.
  std::uint64_t level_size(unsigned l) const;

  /// First node id at level l. Requires l <= depth.
  node_id level_begin(unsigned l) const;

  /// Id of the first leaf (== level_begin(depth)).
  node_id first_leaf() const { return level_begin(depth_); }

  /// Level of node v (0 for the root). Requires v < node_count().
  unsigned level_of(node_id v) const;

  /// Parent of v; invalid_node for the root. Requires v < node_count().
  node_id parent(node_id v) const;

  /// Lowest common ancestor of a and b. Requires both < node_count().
  node_id lca(node_id a, node_id b) const;

  /// Hop distance between a and b in the tree. O(depth).
  unsigned distance(node_id a, node_id b) const;

  /// Materializes the adjacency structure as a graph named "kary<k>x<D>".
  graph to_graph() const;

 private:
  unsigned k_;
  unsigned depth_;
  std::uint64_t total_;
  std::uint64_t leaves_;
  std::vector<node_id> level_begin_;  // size depth+2; [depth+1] == total
};

/// Convenience: the graph of a complete k-ary tree of the given depth.
graph make_kary_tree(unsigned k, unsigned depth);

}  // namespace mcast
