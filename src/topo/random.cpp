#include "topo/random.hpp"

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/contract.hpp"
#include "graph/builder.hpp"
#include "graph/components.hpp"

namespace mcast {

graph make_erdos_renyi(const erdos_renyi_params& p, rng& gen) {
  expects(p.nodes >= 1, "make_erdos_renyi: nodes must be >= 1");
  expects(p.edge_prob >= 0.0 && p.edge_prob <= 1.0,
          "make_erdos_renyi: edge_prob must be in [0,1]");

  graph_builder b(p.nodes);
  b.set_name("er" + std::to_string(p.nodes));
  if (p.edge_prob >= 1.0) {
    for (node_id u = 0; u < p.nodes; ++u) {
      for (node_id v = u + 1; v < p.nodes; ++v) b.add_edge(u, v);
    }
  } else if (p.edge_prob > 0.0) {
    // Walk the strictly-upper-triangular pair sequence with geometric
    // skips: the next linked pair is Geometric(p) steps away.
    const double log_q = std::log1p(-p.edge_prob);
    const std::uint64_t total_pairs =
        static_cast<std::uint64_t>(p.nodes) * (p.nodes - 1) / 2;
    // Map a linear pair index to (u, v), u < v, row-major over u.
    auto pair_of = [&](std::uint64_t idx) {
      // Find u such that idx falls into u's row of (nodes-1-u) pairs.
      node_id u = 0;
      std::uint64_t row = p.nodes - 1;
      while (idx >= row) {
        idx -= row;
        ++u;
        --row;
      }
      return edge{u, static_cast<node_id>(u + 1 + idx)};
    };
    std::uint64_t idx = 0;
    while (true) {
      const double r = 1.0 - gen.uniform();  // (0, 1]
      const double skip = std::floor(std::log(r) / log_q);
      if (skip >= static_cast<double>(total_pairs)) break;  // no more pairs
      idx += static_cast<std::uint64_t>(skip);
      if (idx >= total_pairs) break;
      const edge e = pair_of(idx);
      b.add_edge(e.a, e.b);
      ++idx;
      if (idx >= total_pairs) break;
    }
  }
  graph g = b.build();
  if (p.keep_largest_component && !g.empty()) {
    std::string name = g.name();
    g = largest_component(g);
    g.set_name(std::move(name));
  }
  return g;
}

graph make_erdos_renyi(const erdos_renyi_params& params, std::uint64_t seed) {
  rng gen(seed);
  return make_erdos_renyi(params, gen);
}

graph make_random_regular(const random_regular_params& p, rng& gen) {
  expects(p.nodes >= 2, "make_random_regular: nodes must be >= 2");
  expects(p.degree >= 1, "make_random_regular: degree must be >= 1");
  expects(p.degree < p.nodes, "make_random_regular: degree must be < nodes");
  expects((static_cast<std::uint64_t>(p.nodes) * p.degree) % 2 == 0,
          "make_random_regular: nodes * degree must be even");
  expects(p.max_attempts >= 1, "make_random_regular: need >= 1 attempt");

  // Pairing model: d "stubs" per node, shuffled and paired consecutively;
  // reject matchings with self-loops or parallel edges and reshuffle.
  std::vector<node_id> stubs;
  stubs.reserve(static_cast<std::size_t>(p.nodes) * p.degree);
  for (node_id v = 0; v < p.nodes; ++v) {
    for (unsigned i = 0; i < p.degree; ++i) stubs.push_back(v);
  }

  for (unsigned attempt = 0; attempt < p.max_attempts; ++attempt) {
    for (std::size_t i = stubs.size(); i > 1; --i) {
      const std::size_t j = gen.below(i);
      std::swap(stubs[i - 1], stubs[j]);
    }
    graph_builder b(p.nodes);
    bool simple = true;
    // Track adjacency with a per-attempt hash-free check: since degree is
    // small, scan the builder's per-node short lists via a local table.
    std::vector<std::vector<node_id>> adj(p.nodes);
    for (std::size_t i = 0; i + 1 < stubs.size() && simple; i += 2) {
      const node_id a = stubs[i];
      const node_id c = stubs[i + 1];
      if (a == c) {
        simple = false;
        break;
      }
      for (node_id w : adj[a]) {
        if (w == c) {
          simple = false;
          break;
        }
      }
      if (!simple) break;
      adj[a].push_back(c);
      adj[c].push_back(a);
      b.add_edge(a, c);
    }
    if (simple) {
      b.set_name("rr" + std::to_string(p.nodes) + "d" + std::to_string(p.degree));
      return b.build();
    }
  }
  throw std::runtime_error(
      "mcast: make_random_regular: no simple matching found; raise "
      "max_attempts or lower the degree");
}

graph make_random_regular(const random_regular_params& params,
                          std::uint64_t seed) {
  rng gen(seed);
  return make_random_regular(params, gen);
}

}  // namespace mcast
