// Deterministic regular topologies: path, ring, star, complete graph and
// 2-D grid. These serve three roles: hand-checkable fixtures for the test
// suite, building blocks for the MBone-like overlay generator, and the
// polynomial-reachability extreme in the Fig 8 discussion (a grid has
// S(r) ~ r, the slow-growth case of Section 4.3).
#pragma once

#include "graph/graph.hpp"

namespace mcast {

/// Path 0-1-...-(n-1). Requires n >= 1.
graph make_path(node_id n);

/// Cycle on n nodes. Requires n >= 3.
graph make_ring(node_id n);

/// Star with center 0 and n-1 spokes. Requires n >= 1.
graph make_star(node_id n);

/// Complete graph K_n. Requires n >= 1.
graph make_complete(node_id n);

/// rows x cols 4-neighbor grid, node (r,c) = r*cols + c.
/// Requires rows >= 1 and cols >= 1.
graph make_grid(node_id rows, node_id cols);

/// rows x cols torus (grid with wrap-around links): S(r) grows linearly —
/// the polynomial-reachability regime of Section 4.3 as an actual graph.
/// Requires rows >= 3 and cols >= 3 (smaller wraps collapse to multi-edges).
graph make_torus(node_id rows, node_id cols);

/// dim-dimensional hypercube (2^dim nodes, node ids are coordinate
/// bitmasks): S(r) = C(dim, r), a super-exponential-then-collapsing
/// reachability profile. Requires 1 <= dim <= 20.
graph make_hypercube(unsigned dim);

}  // namespace mcast
