// The "ARPA" topology: a fixed 47-node network with the structural
// character of the ARPANET backbone used by the paper (and by Wei/Estrin
// and Chuang/Sirbu before it): 47 nodes, average degree ~2.7, large
// diameter relative to its size, and the concave (sub-exponential)
// reachability growth the paper reports in Fig 7(b).
//
// The original map file is not redistributable; this is a hand-laid
// substitute committed as a literal edge list (see DESIGN.md §3). It is a
// long national "backbone" sweep with regional spurs and a handful of
// cross-country trunks, mirroring how the ARPANET was actually wired.
#pragma once

#include "graph/graph.hpp"

namespace mcast {

/// Returns the fixed 47-node ARPA topology (name "ARPA"). Deterministic;
/// the same graph on every call.
graph make_arpanet();

}  // namespace mcast
