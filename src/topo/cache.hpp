// Content-keyed topology cache — build every catalog graph at most once.
//
// Both the experiment engine (context::topology) and the query service
// (service/query_service.hpp) resolve catalog topologies as a pure function
// of (name, seed, budget):
//
//   budget == 0  -> find_network(name).build(seed)  (native parameters)
//   budget  > 0  -> scaled_networks({find_network(name)}, budget)[0]
//                   .build(seed)  (the smoke-tier shrink rule)
//
// followed by largest_component(), which is what every consumer traverses.
// Because the result is deterministic in the key, memoizing it cannot
// change any output byte — it only skips generator work (the Internet
// entry alone takes seconds at native size). Entries are shared immutable
// CSR graphs handed out as shared_ptr<const graph>, so an evicted graph
// stays alive for whoever is still measuring on it.
//
// Unlike spt_cache (per-worker by design), this cache IS thread-safe: the
// service's workers and the lab scheduler's sweep threads hit one shared
// instance. Concurrent misses on the same key are coalesced — one thread
// builds while the others wait — and a build failure is rethrown to every
// waiter. Bounded LRU over completed entries; obs counters under
// `topo_cache.*` record hits/misses/evictions and build latency.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"

namespace mcast {

class topology_cache {
 public:
  struct cache_stats {
    std::uint64_t hits = 0;        ///< includes waits coalesced onto a build
    std::uint64_t misses = 0;      ///< builds actually performed
    std::uint64_t evictions = 0;   ///< completed entries displaced when full
  };

  /// Caches at most `capacity` built graphs (>= 1).
  explicit topology_cache(std::size_t capacity = 16);

  /// The largest component of the catalog topology `name` built at `seed`,
  /// scaled to `budget` nodes when budget > 0 (see header comment for the
  /// exact rule). Throws std::invalid_argument for unknown names and
  /// budget values scaled_networks rejects (0 < budget < 64).
  std::shared_ptr<const graph> get(const std::string& name,
                                   std::uint64_t seed, node_id budget = 0);

  /// Drops every completed entry (in-flight builds finish and re-insert).
  void clear();

  std::size_t size() const;
  std::size_t capacity() const noexcept { return capacity_; }
  cache_stats stats() const;

 private:
  struct key {
    std::string name;
    std::uint64_t seed = 0;
    node_id budget = 0;
    friend bool operator==(const key&, const key&) = default;
  };
  struct key_hash {
    std::size_t operator()(const key& k) const noexcept;
  };
  struct entry {
    std::shared_ptr<const graph> g;
    std::uint64_t last_use = 0;
  };

  void evict_locked();

  mutable std::mutex mutex_;
  std::condition_variable built_;
  std::size_t capacity_;
  std::uint64_t tick_ = 0;  // LRU clock
  std::unordered_map<key, entry, key_hash> entries_;
  /// Keys currently being built by some thread (misses coalesce on these).
  std::unordered_map<key, bool, key_hash> building_;
  cache_stats stats_;
};

/// The process-wide instance shared by the lab engine and the service.
/// Capacity 16 — the full paper suite (8 networks x {native, one scaled
/// tier}) fits without eviction.
topology_cache& shared_topology_cache();

}  // namespace mcast
