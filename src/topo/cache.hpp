// Content-keyed topology cache — build every catalog graph at most once.
//
// Both the experiment engine (context::topology) and the query service
// (service/query_service.hpp) resolve catalog topologies as a pure function
// of (name, seed, budget):
//
//   budget == 0  -> find_network(name).build(seed)  (native parameters)
//   budget  > 0  -> scaled_networks({find_network(name)}, budget)[0]
//                   .build(seed)  (the smoke-tier shrink rule)
//
// followed by largest_component(), which is what every consumer traverses.
// Because the result is deterministic in the key, memoizing it cannot
// change any output byte — it only skips generator work (the Internet
// entry alone takes seconds at native size). Entries are shared immutable
// CSR graphs handed out as shared_ptr<const graph>, so an evicted graph
// stays alive for whoever is still measuring on it.
//
// Unlike spt_cache (per-worker by design), this cache IS thread-safe: the
// service's workers and the lab scheduler's sweep threads hit one shared
// instance. Concurrent misses on the same key are coalesced — one thread
// builds while the others wait — and a build failure is rethrown to every
// waiter. Bounded LRU over completed entries; obs counters under
// `topo_cache.*` record hits/misses/evictions and build latency.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"

namespace mcast {

/// The identity of one cached topology: the build rule is a pure function
/// of this triple, so it doubles as the routing key of the service's
/// consistent-hash ring (service/shard_router.hpp).
struct topology_key {
  std::string name;
  std::uint64_t seed = 0;
  node_id budget = 0;
  friend bool operator==(const topology_key&, const topology_key&) = default;
};

struct topology_key_hash {
  std::size_t operator()(const topology_key& k) const noexcept;
};

/// Stable 64-bit hash of a topology key, identical across processes, runs
/// and standard libraries (FNV-1a over the name bytes, splitmix64-mixed
/// with seed and budget). std::hash gives no such guarantee, and the shard
/// ring needs placement to be reproducible — tests assert it.
std::uint64_t topology_routing_hash(const topology_key& k) noexcept;

/// The canonical build rule shared by every tier: find_network(name),
/// scaled to `budget` nodes when budget > 0, built at `seed`, reduced to
/// its largest component. Throws std::invalid_argument for unknown names
/// and budgets scaled_networks rejects (0 < budget < 64).
graph build_catalog_topology(const std::string& name, std::uint64_t seed,
                             node_id budget);

class topology_cache {
 public:
  struct cache_stats {
    std::uint64_t hits = 0;        ///< includes waits coalesced onto a build
    std::uint64_t misses = 0;      ///< builds actually performed
    std::uint64_t evictions = 0;   ///< completed entries displaced when full
  };

  /// Caches at most `capacity` built graphs (>= 1).
  explicit topology_cache(std::size_t capacity = 16);

  /// The largest component of the catalog topology `name` built at `seed`,
  /// scaled to `budget` nodes when budget > 0 (see header comment for the
  /// exact rule). Throws std::invalid_argument for unknown names and
  /// budget values scaled_networks rejects (0 < budget < 64).
  std::shared_ptr<const graph> get(const std::string& name,
                                   std::uint64_t seed, node_id budget = 0);

  /// Drops every completed entry (in-flight builds finish and re-insert).
  void clear();

  std::size_t size() const;
  std::size_t capacity() const noexcept { return capacity_; }
  cache_stats stats() const;

 private:
  using key = topology_key;
  using key_hash = topology_key_hash;
  struct entry {
    std::shared_ptr<const graph> g;
    std::uint64_t last_use = 0;
  };

  void evict_locked();

  mutable std::mutex mutex_;
  std::condition_variable built_;
  std::size_t capacity_;
  std::uint64_t tick_ = 0;  // LRU clock
  std::unordered_map<key, entry, key_hash> entries_;
  /// Keys currently being built by some thread (misses coalesce on these).
  std::unordered_map<key, bool, key_hash> building_;
  cache_stats stats_;
};

/// The process-wide instance shared by the lab engine and the service.
/// Capacity 16 — the full paper suite (8 networks x {native, one scaled
/// tier}) fits without eviction.
topology_cache& shared_topology_cache();

/// Read-mostly warm tier: catalog graphs built once, up front, and shared
/// immutably by every shard. populate() is the only writer; after it
/// returns, find() takes a shared lock and never blocks on a build, so the
/// hot serving path for the standard networks is contention-free. Lookups
/// that hit count `topo_cache.warm_hits`; the entry count is published on
/// the `topo_cache.warm_entries` gauge.
class warm_topology_tier {
 public:
  /// Builds every key not already present (duplicate keys are built once).
  /// Throws on unknown names / bad budgets — a warm spec typo should fail
  /// startup loudly, not silently degrade to cold builds.
  void populate(const std::vector<topology_key>& keys);

  /// The warm graph for the key, or nullptr when the key was never warmed.
  std::shared_ptr<const graph> find(const std::string& name,
                                    std::uint64_t seed,
                                    node_id budget = 0) const;

  std::size_t size() const;
  std::uint64_t hits() const;
  /// The warmed keys, sorted by routing hash — handy for diagnostics.
  std::vector<topology_key> keys() const;

 private:
  mutable std::shared_mutex mutex_;
  std::unordered_map<topology_key, std::shared_ptr<const graph>,
                     topology_key_hash>
      entries_;
  mutable std::atomic<std::uint64_t> hits_{0};
};

/// Two-tier resolver handed to each service shard: the shared warm tier
/// (may be null) answers first, the shard's own bounded LRU takes the
/// misses. Shards therefore never contend on the standard networks and
/// never duplicate warm graphs in their LRU budgets; ad-hoc keys (custom
/// seeds, scaled budgets) stay shard-local, which is what makes the
/// consistent-hash routing pay off — a given ad-hoc key is only ever built
/// and cached by its owning shard.
class tiered_topology_cache {
 public:
  explicit tiered_topology_cache(const warm_topology_tier* warm,
                                 std::size_t lru_capacity = 16);

  std::shared_ptr<const graph> get(const std::string& name,
                                   std::uint64_t seed, node_id budget = 0);

  const topology_cache& lru() const noexcept { return lru_; }

 private:
  const warm_topology_tier* warm_;  // not owned; null => single-tier
  topology_cache lru_;
};

}  // namespace mcast
