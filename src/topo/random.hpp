// Classic random-graph models.
//
// Section 4.2 opens with "Random graphs and k-ary trees have the property
// that S(r) is exponentially increasing" — these two generators make that
// claim testable directly:
//   * Erdős–Rényi G(n, p): every pair linked independently with
//     probability p.
//   * Random d-regular graphs (configuration/pairing model): every node
//     has exactly degree d; locally tree-like, S(r) ≈ d·(d-1)^{r-1}.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "sim/rng.hpp"

namespace mcast {

struct erdos_renyi_params {
  node_id nodes = 100;   ///< >= 1
  double edge_prob = 0.05;  ///< in [0, 1]
  /// Return only the largest connected component (renumbered); sparse G(n,p)
  /// below the connectivity threshold is otherwise fragmented.
  bool keep_largest_component = true;
};

/// Generates G(n, p) with geometric pair-skipping (O(n + E) expected).
/// Deterministic given (params, seed).
graph make_erdos_renyi(const erdos_renyi_params& params, rng& gen);

/// Convenience overload seeding a fresh engine from `seed`.
graph make_erdos_renyi(const erdos_renyi_params& params, std::uint64_t seed);

struct random_regular_params {
  node_id nodes = 100;  ///< >= 2
  unsigned degree = 3;  ///< >= 1; nodes * degree must be even, degree < nodes
  /// Pairing-model retries before giving up (a fresh shuffle each time).
  unsigned max_attempts = 200;
};

/// Generates a uniform-ish random d-regular simple graph via the pairing
/// model with rejection. Throws std::runtime_error if no simple matching is
/// found within max_attempts (vanishingly unlikely for d << n).
/// Deterministic given (params, seed).
graph make_random_regular(const random_regular_params& params, rng& gen);

/// Convenience overload seeding a fresh engine from `seed`.
graph make_random_regular(const random_regular_params& params, std::uint64_t seed);

}  // namespace mcast
