#include "topo/mbone.hpp"

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "common/contract.hpp"
#include "graph/bfs.hpp"
#include "graph/builder.hpp"

namespace mcast {

graph make_mbone(const mbone_params& p, rng& gen) {
  expects(p.overlay_nodes >= 2, "make_mbone: overlay_nodes must be >= 2");
  expects(p.overlay_nodes <= p.substrate.nodes,
          "make_mbone: overlay_nodes must not exceed substrate nodes");
  expects(p.extra_tunnel_fraction >= 0.0,
          "make_mbone: extra_tunnel_fraction must be non-negative");

  const graph substrate = make_waxman(p.substrate, gen);

  // Choose overlay routers: a uniform sample without replacement
  // (partial Fisher-Yates over the node ids).
  std::vector<node_id> ids(substrate.node_count());
  for (node_id v = 0; v < substrate.node_count(); ++v) ids[v] = v;
  for (node_id i = 0; i < p.overlay_nodes; ++i) {
    const std::size_t j = i + gen.below(ids.size() - i);
    std::swap(ids[i], ids[j]);
  }
  ids.resize(p.overlay_nodes);

  // Hop distances between overlay routers: one BFS per overlay node.
  const std::size_t n = p.overlay_nodes;
  std::vector<std::uint16_t> dist(n * n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::vector<hop_count> d = bfs_distances(substrate, ids[i]);
    for (std::size_t j = 0; j < n; ++j) {
      MCAST_ASSERT(d[ids[j]] != unreachable);
      dist[i * n + j] = static_cast<std::uint16_t>(d[ids[j]]);
    }
  }

  // Tunnel MST over the hop-distance metric (Prim). Chain-heavy by nature.
  graph_builder b(p.overlay_nodes);
  b.set_name("MBone" + std::to_string(p.overlay_nodes));
  std::vector<bool> in_tree(n, false);
  std::vector<std::uint32_t> best(n, std::numeric_limits<std::uint32_t>::max());
  std::vector<std::size_t> best_from(n, 0);
  in_tree[0] = true;
  for (std::size_t j = 1; j < n; ++j) {
    best[j] = dist[j];  // row 0
    best_from[j] = 0;
  }
  for (std::size_t step = 1; step < n; ++step) {
    std::size_t pick = n;
    std::uint32_t pick_d = std::numeric_limits<std::uint32_t>::max();
    for (std::size_t j = 0; j < n; ++j) {
      if (!in_tree[j] && best[j] < pick_d) {
        pick_d = best[j];
        pick = j;
      }
    }
    MCAST_ASSERT(pick < n);
    in_tree[pick] = true;
    b.add_edge(static_cast<node_id>(pick), static_cast<node_id>(best_from[pick]));
    const std::uint16_t* row = &dist[pick * n];
    for (std::size_t j = 0; j < n; ++j) {
      if (!in_tree[j] && row[j] < best[j]) {
        best[j] = row[j];
        best_from[j] = pick;
      }
    }
  }

  // Redundant tunnels between random overlay pairs (prefer short ones:
  // rejection-sample against distance so tunnels stay regional, as real
  // MBone redundancy did).
  const std::size_t extra = static_cast<std::size_t>(
      std::llround(p.extra_tunnel_fraction * static_cast<double>(n)));
  std::uint32_t max_d = 1;
  for (std::uint16_t d : dist) max_d = std::max<std::uint32_t>(max_d, d);
  for (std::size_t e = 0; e < extra; ++e) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      const std::size_t i = gen.below(n);
      const std::size_t j = gen.below(n);
      if (i == j) continue;
      const double closeness =
          1.0 - static_cast<double>(dist[i * n + j]) / static_cast<double>(max_d);
      if (gen.chance(closeness * closeness)) {
        b.add_edge(static_cast<node_id>(i), static_cast<node_id>(j));
        break;
      }
    }
  }
  return b.build();
}

graph make_mbone(const mbone_params& params, std::uint64_t seed) {
  rng gen(seed);
  return make_mbone(params, gen);
}

}  // namespace mcast
