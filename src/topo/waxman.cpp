#include "topo/waxman.hpp"

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "common/contract.hpp"
#include "graph/builder.hpp"
#include "graph/components.hpp"

namespace mcast {

namespace {

struct point {
  double x = 0.0;
  double y = 0.0;
};

double dist(const point& a, const point& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

// Links the components of `g` by repeatedly adding the geometrically
// shortest edge between the component containing node 0 and the rest.
graph connect_by_nearest(const graph& g, const std::vector<point>& pos) {
  graph current = g;
  while (true) {
    const component_map cm = connected_components(current);
    if (cm.count <= 1) return current;
    const node_id home = cm.label[0];
    double best = std::numeric_limits<double>::infinity();
    node_id best_in = invalid_node;
    node_id best_out = invalid_node;
    for (node_id u = 0; u < current.node_count(); ++u) {
      if (cm.label[u] != home) continue;
      for (node_id v = 0; v < current.node_count(); ++v) {
        if (cm.label[v] == home) continue;
        const double d = dist(pos[u], pos[v]);
        if (d < best) {
          best = d;
          best_in = u;
          best_out = v;
        }
      }
    }
    graph_builder b(current.node_count());
    b.set_name(current.name());
    for (const edge& e : current.edges()) b.add_edge(e.a, e.b);
    b.add_edge(best_in, best_out);
    current = b.build();
  }
}

}  // namespace

graph make_waxman(const waxman_params& p, rng& gen,
                  std::vector<point2d>* positions) {
  expects(p.nodes >= 1, "make_waxman: nodes must be >= 1");
  expects(p.alpha > 0.0 && p.alpha <= 1.0, "make_waxman: alpha must be in (0,1]");
  expects(p.beta > 0.0 && p.beta <= 1.0, "make_waxman: beta must be in (0,1]");
  expects(p.plane_size > 0.0, "make_waxman: plane_size must be positive");

  std::vector<point> pos(p.nodes);
  for (point& q : pos) {
    q.x = gen.uniform() * p.plane_size;
    q.y = gen.uniform() * p.plane_size;
  }
  if (positions != nullptr) {
    positions->clear();
    positions->reserve(p.nodes);
    for (const point& q : pos) positions->push_back({q.x, q.y});
  }
  const double scale = p.beta * p.plane_size * std::sqrt(2.0);

  graph_builder b(p.nodes);
  b.set_name("waxman" + std::to_string(p.nodes));
  for (node_id u = 0; u < p.nodes; ++u) {
    for (node_id v = u + 1; v < p.nodes; ++v) {
      const double prob = p.alpha * std::exp(-dist(pos[u], pos[v]) / scale);
      if (gen.chance(prob)) b.add_edge(u, v);
    }
  }
  graph g = b.build();
  if (p.ensure_connected) g = connect_by_nearest(g, pos);
  return g;
}

graph make_waxman(const waxman_params& params, std::uint64_t seed) {
  rng gen(seed);
  return make_waxman(params, gen);
}

}  // namespace mcast
