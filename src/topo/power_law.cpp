#include "topo/power_law.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/contract.hpp"
#include "graph/builder.hpp"
#include "graph/components.hpp"

namespace mcast {

graph make_barabasi_albert(const barabasi_albert_params& p, rng& gen) {
  expects(p.nodes >= 2, "make_barabasi_albert: nodes must be >= 2");
  expects(p.edges_per_node >= 1,
          "make_barabasi_albert: edges_per_node must be >= 1");
  expects(p.edges_per_node < p.nodes,
          "make_barabasi_albert: edges_per_node must be < nodes");

  graph_builder b(p.nodes);
  b.set_name("ba" + std::to_string(p.nodes));

  // `endpoints` holds every edge endpoint seen so far; sampling an entry
  // uniformly is sampling a node proportionally to its degree.
  std::vector<node_id> endpoints;
  endpoints.reserve(static_cast<std::size_t>(p.nodes) * p.edges_per_node * 2);

  // Seed core: a star over the first m+1 nodes (connected, gives every
  // seed node nonzero degree so preferential attachment is well defined).
  const node_id core = p.edges_per_node + 1;
  for (node_id v = 1; v < core; ++v) {
    b.add_edge(0, v);
    endpoints.push_back(0);
    endpoints.push_back(v);
  }

  std::vector<node_id> chosen;
  for (node_id v = core; v < p.nodes; ++v) {
    chosen.clear();
    // Draw `edges_per_node` distinct targets proportional to degree.
    while (chosen.size() < p.edges_per_node) {
      const node_id t = endpoints[gen.below(endpoints.size())];
      if (std::find(chosen.begin(), chosen.end(), t) == chosen.end()) {
        chosen.push_back(t);
      }
    }
    for (node_id t : chosen) {
      b.add_edge(v, t);
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return b.build();
}

graph make_barabasi_albert(const barabasi_albert_params& params,
                           std::uint64_t seed) {
  rng gen(seed);
  return make_barabasi_albert(params, gen);
}

graph make_chung_lu(const chung_lu_params& p, rng& gen) {
  expects(p.nodes >= 2, "make_chung_lu: nodes must be >= 2");
  expects(p.exponent > 1.0, "make_chung_lu: exponent must be > 1");
  expects(p.min_degree > 0.0, "make_chung_lu: min_degree must be positive");
  expects(p.max_degree_fraction > 0.0 && p.max_degree_fraction <= 1.0,
          "make_chung_lu: max_degree_fraction must be in (0,1]");

  // Expected degrees w_i = min_degree * (i+1)^{-1/(exponent-1)} scaled:
  // the standard continuous power-law rank sequence, capped.
  const double inv = 1.0 / (p.exponent - 1.0);
  const double cap = p.max_degree_fraction * static_cast<double>(p.nodes);
  std::vector<double> w(p.nodes);
  double wsum = 0.0;
  for (node_id i = 0; i < p.nodes; ++i) {
    const double rank = static_cast<double>(i) + 1.0;
    w[i] = std::min(cap, p.min_degree * std::pow(static_cast<double>(p.nodes) / rank, inv));
    wsum += w[i];
  }

  // Efficient Chung-Lu sampling (Miller & Hagberg '11): walk pairs in rank
  // order with geometric skipping, since w is non-increasing.
  graph_builder b(p.nodes);
  b.set_name("cl" + std::to_string(p.nodes));
  for (node_id u = 0; u < p.nodes; ++u) {
    node_id v = u + 1;
    double prob_prev = 1.0;
    while (v < p.nodes) {
      double prob = std::min(1.0, w[u] * w[v] / wsum);
      if (prob < prob_prev) prob_prev = prob;
      if (prob_prev <= 0.0) break;
      // Geometric skip: number of trials until the next success at rate
      // prob_prev, then accept with prob/prob_prev.
      if (prob_prev < 1.0) {
        const double r = 1.0 - gen.uniform();  // in (0, 1]
        const double skip = std::floor(std::log(r) / std::log(1.0 - prob_prev));
        v += static_cast<node_id>(std::min(skip, 4.0e9));
        if (v >= p.nodes) break;
        prob = std::min(1.0, w[u] * w[v] / wsum);
      }
      if (gen.uniform() < prob / prob_prev) b.add_edge(u, v);
      prob_prev = prob;
      ++v;
    }
  }
  graph g = b.build();
  if (p.keep_largest_component) {
    std::string name = g.name();
    g = largest_component(g);
    g.set_name(std::move(name));
  }
  return g;
}

graph make_chung_lu(const chung_lu_params& params, std::uint64_t seed) {
  rng gen(seed);
  return make_chung_lu(params, gen);
}

}  // namespace mcast
