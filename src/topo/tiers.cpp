#include "topo/tiers.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "common/contract.hpp"
#include "graph/builder.hpp"

namespace mcast {

namespace {

struct point {
  double x = 0.0;
  double y = 0.0;
};

double sqdist(const point& a, const point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

// Wires `members` (with coordinates pos[i] for members[i]) as a Euclidean
// MST (Prim) plus redundancy: each node links to its (redundancy - 1)
// nearest non-neighbor nodes.
void wire_mesh(graph_builder& b, const std::vector<node_id>& members,
               const std::vector<point>& pos, unsigned redundancy) {
  const std::size_t n = members.size();
  if (n <= 1) return;

  // Prim's MST over the complete Euclidean graph.
  std::vector<bool> in_tree(n, false);
  std::vector<double> best(n, std::numeric_limits<double>::infinity());
  std::vector<std::size_t> best_from(n, 0);
  in_tree[0] = true;
  for (std::size_t j = 1; j < n; ++j) {
    best[j] = sqdist(pos[0], pos[j]);
    best_from[j] = 0;
  }
  std::vector<std::vector<std::size_t>> adj(n);
  for (std::size_t step = 1; step < n; ++step) {
    std::size_t pick = n;
    double pick_d = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < n; ++j) {
      if (!in_tree[j] && best[j] < pick_d) {
        pick_d = best[j];
        pick = j;
      }
    }
    MCAST_ASSERT(pick < n);
    in_tree[pick] = true;
    b.add_edge(members[pick], members[best_from[pick]]);
    adj[pick].push_back(best_from[pick]);
    adj[best_from[pick]].push_back(pick);
    for (std::size_t j = 0; j < n; ++j) {
      if (!in_tree[j]) {
        const double d = sqdist(pos[pick], pos[j]);
        if (d < best[j]) {
          best[j] = d;
          best_from[j] = pick;
        }
      }
    }
  }

  // Redundancy: (redundancy - 1) extra links per node to nearest non-neighbors.
  if (redundancy <= 1) return;
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  for (std::size_t i = 0; i < n; ++i) {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t c) {
      return sqdist(pos[i], pos[a]) < sqdist(pos[i], pos[c]);
    });
    unsigned added = 0;
    for (std::size_t j : order) {
      if (added + 1 >= redundancy) break;
      if (j == i) continue;
      if (std::find(adj[i].begin(), adj[i].end(), j) != adj[i].end()) continue;
      b.add_edge(members[i], members[j]);
      adj[i].push_back(j);
      adj[j].push_back(i);
      ++added;
    }
  }
}

}  // namespace

std::uint64_t tiers_node_count(const tiers_params& p) {
  return static_cast<std::uint64_t>(p.wan_size) +
         static_cast<std::uint64_t>(p.man_count) * p.man_size +
         static_cast<std::uint64_t>(p.man_count) * p.lans_per_man * p.lan_size;
}

graph make_tiers(const tiers_params& p, rng& gen) {
  expects(p.wan_size >= 1, "make_tiers: wan_size must be >= 1");
  expects(p.man_size >= 1 || p.man_count == 0, "make_tiers: man_size must be >= 1");
  expects(p.lan_size >= 1 || p.lans_per_man == 0,
          "make_tiers: lan_size must be >= 1");
  expects(p.wan_redundancy >= 1 && p.man_redundancy >= 1,
          "make_tiers: redundancy must be >= 1");
  expects(p.man_wan_redundancy >= 1,
          "make_tiers: man_wan_redundancy must be >= 1");

  const std::uint64_t total = tiers_node_count(p);
  expects(total <= 0xFFFFFFF0ULL, "make_tiers: too many nodes");
  graph_builder b(static_cast<node_id>(total));
  b.set_name("ti" + std::to_string(total));

  auto place = [&gen](std::size_t n) {
    std::vector<point> pos(n);
    for (point& q : pos) {
      q.x = gen.uniform() * 100.0;
      q.y = gen.uniform() * 100.0;
    }
    return pos;
  };

  node_id next = 0;
  // WAN tier.
  std::vector<node_id> wan(p.wan_size);
  for (node_id& v : wan) v = next++;
  wire_mesh(b, wan, place(p.wan_size), p.wan_redundancy);

  // MAN tier.
  std::vector<std::vector<node_id>> mans(p.man_count);
  for (auto& man : mans) {
    man.resize(p.man_size);
    for (node_id& v : man) v = next++;
    wire_mesh(b, man, place(p.man_size), p.man_redundancy);
    // Attach the MAN to the WAN: gateway is the MAN's first router;
    // man_wan_redundancy distinct WAN routers.
    std::vector<node_id> targets;
    for (unsigned r = 0; r < p.man_wan_redundancy; ++r) {
      node_id t = wan[gen.below(wan.size())];
      while (std::find(targets.begin(), targets.end(), t) != targets.end() &&
             targets.size() < wan.size()) {
        t = wan[gen.below(wan.size())];
      }
      targets.push_back(t);
      b.add_edge(man[0], t);
    }
  }

  // LAN tier: stars hanging off random routers of the owning MAN.
  for (const auto& man : mans) {
    for (unsigned l = 0; l < p.lans_per_man; ++l) {
      const node_id gateway = next++;
      b.add_edge(gateway, man[gen.below(man.size())]);
      for (unsigned h = 1; h < p.lan_size; ++h) {
        b.add_edge(gateway, next++);
      }
    }
  }
  MCAST_ASSERT(next == total);
  return b.build();
}

graph make_tiers(const tiers_params& params, std::uint64_t seed) {
  rng gen(seed);
  return make_tiers(params, gen);
}

tiers_params ti5000_params() {
  // 200 + 20*40 + 20*20*10 = 5000 nodes, most of them degree-1 LAN hosts,
  // matching the sparse (deg ~2) high-diameter character of TIERS maps.
  tiers_params p;
  p.wan_size = 200;
  p.man_count = 20;
  p.man_size = 40;
  p.lans_per_man = 20;
  p.lan_size = 10;
  p.wan_redundancy = 2;
  p.man_redundancy = 1;
  p.man_wan_redundancy = 1;
  return p;
}

}  // namespace mcast
