// The paper's eight-network evaluation suite (Table 1), reproduced with
// this library's generators and substitutions (DESIGN.md §3):
//
//   generated: r100 (Waxman), ts1000, ts1008 (transit-stub), ti5000 (TIERS)
//   real-ish : ARPA (embedded), MBone (overlay model),
//              Internet (Barabási–Albert, 30k), AS (Barabási–Albert, 4750)
//
// Each entry builds lazily — the Internet-scale graphs take a couple of
// seconds — and deterministically from (entry seed base, caller seed).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace mcast {

/// Which half of Figure 1 / 6 / 7 a network belongs to.
enum class network_kind { generated, real };

/// A named, lazily-constructed topology.
struct network_entry {
  std::string name;
  network_kind kind = network_kind::generated;
  /// Builds the topology; `seed` perturbs the generator (ARPA ignores it).
  std::function<graph(std::uint64_t seed)> build;
};

/// All eight networks in the paper's Table 1 order.
std::vector<network_entry> paper_networks();

/// The subset used in Figure 1(a)/6(a)/7(a): r100, ts1000, ts1008, ti5000.
std::vector<network_entry> generated_networks();

/// The subset used in Figure 1(b)/6(b)/7(b): ARPA, MBone, Internet, AS.
std::vector<network_entry> real_networks();

/// Looks an entry up by name ("r100", "ARPA", ...). Throws
/// std::invalid_argument for unknown names.
network_entry find_network(const std::string& name);

/// Scales a network suite down for quick runs: entries whose default size
/// exceeds `max_nodes` get rebuilt with a smaller parameterization of the
/// same style. Used by tests and by benches under MCAST_BENCH_SCALE=0.
std::vector<network_entry> scaled_networks(const std::vector<network_entry>& suite,
                                           node_id max_nodes);

}  // namespace mcast
