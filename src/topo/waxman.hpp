// Waxman random graphs [Waxman '88] — the "pure random" model used by the
// GT-ITM generator for its flat random ("r") topologies such as the
// paper's r100 network.
//
// Nodes are placed uniformly at random on an L x L plane; each pair (u,v)
// gets an edge independently with probability
//
//     P(u,v) = alpha * exp(-d(u,v) / (beta * L * sqrt(2)))
//
// where d is Euclidean distance. alpha controls density, beta the
// prevalence of long edges. Because multicast experiments require a
// connected substrate, the generator can optionally repair connectivity by
// linking components along nearest pairs (the same post-processing GT-ITM
// users apply in practice).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "sim/rng.hpp"

namespace mcast {

struct waxman_params {
  node_id nodes = 100;
  double alpha = 0.2;        ///< edge-probability scale, in (0, 1]
  double beta = 0.15;        ///< long-edge prevalence, in (0, 1]
  double plane_size = 100.0; ///< side L of the placement square, > 0
  bool ensure_connected = true;  ///< repair connectivity via nearest pairs
};

/// A node's position on the Waxman placement plane.
struct point2d {
  double x = 0.0;
  double y = 0.0;
};

/// Generates a Waxman graph. Deterministic given (params, seed).
/// When `positions` is non-null it receives every node's coordinates —
/// the raw material for Euclidean link weights (graph/weights.hpp).
/// Throws std::invalid_argument on out-of-range parameters.
graph make_waxman(const waxman_params& params, rng& gen,
                  std::vector<point2d>* positions = nullptr);

/// Convenience overload seeding a fresh engine from `seed`.
graph make_waxman(const waxman_params& params, std::uint64_t seed);

}  // namespace mcast
