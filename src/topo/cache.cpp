#include "topo/cache.hpp"

#include <algorithm>
#include <chrono>
#include <functional>
#include <utility>

#include "common/contract.hpp"
#include "graph/components.hpp"
#include "obs/metrics.hpp"
#include "topo/catalog.hpp"

namespace mcast {

namespace {

std::uint64_t splitmix64_mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

graph build_catalog_topology(const std::string& name, std::uint64_t seed,
                             node_id budget) {
  network_entry entry = find_network(name);
  if (budget > 0) {
    entry = scaled_networks(std::vector<network_entry>{entry}, budget)[0];
  }
  return largest_component(entry.build(seed));
}

std::uint64_t topology_routing_hash(const topology_key& k) noexcept {
  // FNV-1a over the name bytes; seed/budget folded in through splitmix64 so
  // nearby values land far apart on the ring.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : k.name) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  h = splitmix64_mix(h ^ splitmix64_mix(k.seed));
  return splitmix64_mix(h ^ splitmix64_mix(k.budget));
}

std::size_t topology_key_hash::operator()(
    const topology_key& k) const noexcept {
  std::size_t h = std::hash<std::string>{}(k.name);
  h ^= std::hash<std::uint64_t>{}(k.seed) + 0x9e3779b97f4a7c15ULL + (h << 6) +
       (h >> 2);
  h ^= std::hash<std::uint64_t>{}(k.budget) + 0x9e3779b97f4a7c15ULL +
       (h << 6) + (h >> 2);
  return h;
}

topology_cache::topology_cache(std::size_t capacity) : capacity_(capacity) {
  expects(capacity >= 1, "topology_cache: capacity must be >= 1");
}

std::shared_ptr<const graph> topology_cache::get(const std::string& name,
                                                 std::uint64_t seed,
                                                 node_id budget) {
  const key k{name, seed, budget};
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (auto it = entries_.find(k); it != entries_.end()) {
      it->second.last_use = ++tick_;
      ++stats_.hits;
      obs::add(obs::counter::topo_cache_hits);
      return it->second.g;
    }
    if (building_.find(k) != building_.end()) {
      // Another thread is generating this exact graph; wait for it rather
      // than duplicating seconds of generator work.
      built_.wait(lock);
      continue;
    }
    break;
  }
  building_.emplace(k, true);
  ++stats_.misses;
  obs::add(obs::counter::topo_cache_misses);
  lock.unlock();

  std::shared_ptr<const graph> built;
  const auto start = std::chrono::steady_clock::now();
  try {
    built = std::make_shared<const graph>(
        build_catalog_topology(name, seed, budget));
  } catch (...) {
    // Release the claim so a waiter can retry (and hit the same,
    // deterministic failure itself).
    lock.lock();
    building_.erase(k);
    built_.notify_all();
    throw;
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  obs::record(
      obs::histogram::topo_cache_build_ns,
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count()));

  lock.lock();
  entries_[k] = entry{built, ++tick_};
  evict_locked();
  obs::gauge_max(obs::gauge::topo_cache_peak_entries, entries_.size());
  building_.erase(k);
  built_.notify_all();
  return built;
}

void topology_cache::evict_locked() {
  while (entries_.size() > capacity_) {
    auto victim = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.last_use < victim->second.last_use) victim = it;
    }
    entries_.erase(victim);
    ++stats_.evictions;
    obs::add(obs::counter::topo_cache_evictions);
  }
}

void topology_cache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

std::size_t topology_cache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

topology_cache::cache_stats topology_cache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

topology_cache& shared_topology_cache() {
  static topology_cache cache(16);
  return cache;
}

void warm_topology_tier::populate(const std::vector<topology_key>& keys) {
  for (const topology_key& k : keys) {
    {
      std::shared_lock<std::shared_mutex> read(mutex_);
      if (entries_.find(k) != entries_.end()) continue;
    }
    // Build outside the lock: warm graphs can take seconds (Internet at
    // native size) and readers of already-warm entries must not stall.
    auto built = std::make_shared<const graph>(
        build_catalog_topology(k.name, k.seed, k.budget));
    std::unique_lock<std::shared_mutex> write(mutex_);
    entries_.emplace(k, std::move(built));
    obs::gauge_max(obs::gauge::topo_cache_warm_entries, entries_.size());
  }
}

std::shared_ptr<const graph> warm_topology_tier::find(const std::string& name,
                                                      std::uint64_t seed,
                                                      node_id budget) const {
  const topology_key k{name, seed, budget};
  std::shared_lock<std::shared_mutex> read(mutex_);
  auto it = entries_.find(k);
  if (it == entries_.end()) return nullptr;
  hits_.fetch_add(1, std::memory_order_relaxed);
  obs::add(obs::counter::topo_cache_warm_hits);
  return it->second;
}

std::size_t warm_topology_tier::size() const {
  std::shared_lock<std::shared_mutex> read(mutex_);
  return entries_.size();
}

std::uint64_t warm_topology_tier::hits() const {
  return hits_.load(std::memory_order_relaxed);
}

std::vector<topology_key> warm_topology_tier::keys() const {
  std::shared_lock<std::shared_mutex> read(mutex_);
  std::vector<topology_key> out;
  out.reserve(entries_.size());
  for (const auto& [k, g] : entries_) out.push_back(k);
  std::sort(out.begin(), out.end(),
            [](const topology_key& a, const topology_key& b) {
              return topology_routing_hash(a) < topology_routing_hash(b);
            });
  return out;
}

tiered_topology_cache::tiered_topology_cache(const warm_topology_tier* warm,
                                             std::size_t lru_capacity)
    : warm_(warm), lru_(lru_capacity) {}

std::shared_ptr<const graph> tiered_topology_cache::get(
    const std::string& name, std::uint64_t seed, node_id budget) {
  if (warm_ != nullptr) {
    if (auto g = warm_->find(name, seed, budget)) return g;
  }
  return lru_.get(name, seed, budget);
}

}  // namespace mcast
