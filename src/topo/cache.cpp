#include "topo/cache.hpp"

#include <chrono>
#include <functional>
#include <utility>

#include "common/contract.hpp"
#include "graph/components.hpp"
#include "obs/metrics.hpp"
#include "topo/catalog.hpp"

namespace mcast {

namespace {

graph build_topology(const std::string& name, std::uint64_t seed,
                     node_id budget) {
  network_entry entry = find_network(name);
  if (budget > 0) {
    entry = scaled_networks(std::vector<network_entry>{entry}, budget)[0];
  }
  return largest_component(entry.build(seed));
}

}  // namespace

std::size_t topology_cache::key_hash::operator()(const key& k) const noexcept {
  std::size_t h = std::hash<std::string>{}(k.name);
  h ^= std::hash<std::uint64_t>{}(k.seed) + 0x9e3779b97f4a7c15ULL + (h << 6) +
       (h >> 2);
  h ^= std::hash<std::uint64_t>{}(k.budget) + 0x9e3779b97f4a7c15ULL +
       (h << 6) + (h >> 2);
  return h;
}

topology_cache::topology_cache(std::size_t capacity) : capacity_(capacity) {
  expects(capacity >= 1, "topology_cache: capacity must be >= 1");
}

std::shared_ptr<const graph> topology_cache::get(const std::string& name,
                                                 std::uint64_t seed,
                                                 node_id budget) {
  const key k{name, seed, budget};
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (auto it = entries_.find(k); it != entries_.end()) {
      it->second.last_use = ++tick_;
      ++stats_.hits;
      obs::add(obs::counter::topo_cache_hits);
      return it->second.g;
    }
    if (building_.find(k) != building_.end()) {
      // Another thread is generating this exact graph; wait for it rather
      // than duplicating seconds of generator work.
      built_.wait(lock);
      continue;
    }
    break;
  }
  building_.emplace(k, true);
  ++stats_.misses;
  obs::add(obs::counter::topo_cache_misses);
  lock.unlock();

  std::shared_ptr<const graph> built;
  const auto start = std::chrono::steady_clock::now();
  try {
    built = std::make_shared<const graph>(build_topology(name, seed, budget));
  } catch (...) {
    // Release the claim so a waiter can retry (and hit the same,
    // deterministic failure itself).
    lock.lock();
    building_.erase(k);
    built_.notify_all();
    throw;
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  obs::record(
      obs::histogram::topo_cache_build_ns,
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count()));

  lock.lock();
  entries_[k] = entry{built, ++tick_};
  evict_locked();
  obs::gauge_max(obs::gauge::topo_cache_peak_entries, entries_.size());
  building_.erase(k);
  built_.notify_all();
  return built;
}

void topology_cache::evict_locked() {
  while (entries_.size() > capacity_) {
    auto victim = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.last_use < victim->second.last_use) victim = it;
    }
    entries_.erase(victim);
    ++stats_.evictions;
    obs::add(obs::counter::topo_cache_evictions);
  }
}

void topology_cache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

std::size_t topology_cache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

topology_cache::cache_stats topology_cache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

topology_cache& shared_topology_cache() {
  static topology_cache cache(16);
  return cache;
}

}  // namespace mcast
