#include "topo/arpanet.hpp"

#include <utility>

#include "graph/builder.hpp"

namespace mcast {

graph make_arpanet() {
  // 47 nodes, 63 links, average degree 2.68. Nodes 0..36 form the national
  // backbone sweep (west to east), 37..46 are regional spur sites, and the
  // chord list supplies the sparse cross-country trunks.
  static constexpr std::pair<unsigned, unsigned> chords[] = {
      {0, 5},   {2, 9},   {6, 13},  {10, 17}, {14, 21}, {18, 25}, {22, 29},
      {26, 33}, {30, 36}, {4, 11},  {8, 19},  {15, 27}, {21, 32}, {0, 36},
      {5, 12},  {13, 20}, {29, 35},
  };
  static constexpr std::pair<unsigned, unsigned> spurs[] = {
      {37, 3},  {38, 7},  {39, 12}, {40, 16}, {41, 20},
      {42, 24}, {43, 28}, {44, 31}, {45, 34}, {46, 36},
  };

  graph_builder b(47);
  b.set_name("ARPA");
  for (unsigned v = 0; v + 1 <= 36; ++v) b.add_edge(v, v + 1);
  for (auto [a, c] : spurs) b.add_edge(a, c);
  for (auto [a, c] : chords) b.add_edge(a, c);
  return b.build();
}

}  // namespace mcast
