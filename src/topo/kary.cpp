#include "topo/kary.hpp"

#include <bit>
#include <limits>
#include <string>

#include "common/contract.hpp"
#include "graph/builder.hpp"

namespace mcast {

kary_shape::kary_shape(unsigned k, unsigned depth) : k_(k), depth_(depth) {
  expects(k >= 2, "kary_shape: k must be >= 2");
  level_begin_.reserve(depth + 2);
  std::uint64_t begin = 0;
  std::uint64_t width = 1;
  for (unsigned l = 0; l <= depth; ++l) {
    expects(begin <= std::numeric_limits<node_id>::max() - 1,
            "kary_shape: tree too large for 32-bit node ids");
    level_begin_.push_back(static_cast<node_id>(begin));
    begin += width;
    if (l < depth) {
      expects(width <= std::numeric_limits<std::uint64_t>::max() / k,
              "kary_shape: tree too large");
      width *= k;
    }
  }
  expects(begin <= std::numeric_limits<node_id>::max() - 1,
          "kary_shape: tree too large for 32-bit node ids");
  level_begin_.push_back(static_cast<node_id>(begin));
  total_ = begin;
  leaves_ = width;
}

std::uint64_t kary_shape::level_size(unsigned l) const {
  expects_in_range(l <= depth_, "kary_shape::level_size: level out of range");
  return static_cast<std::uint64_t>(level_begin_[l + 1]) - level_begin_[l];
}

node_id kary_shape::level_begin(unsigned l) const {
  expects_in_range(l <= depth_, "kary_shape::level_begin: level out of range");
  return level_begin_[l];
}

unsigned kary_shape::level_of(node_id v) const {
  expects_in_range(v < total_, "kary_shape::level_of: node out of range");
  // Levels are few (<= ~40 for any representable tree): linear scan is fine
  // and branch-predicts well, but the affinity inner loop wants speed, so
  // use a tight upward scan from the top.
  unsigned l = 0;
  while (v >= level_begin_[l + 1]) ++l;
  return l;
}

node_id kary_shape::parent(node_id v) const {
  expects_in_range(v < total_, "kary_shape::parent: node out of range");
  if (v == 0) return invalid_node;
  return static_cast<node_id>((static_cast<std::uint64_t>(v) - 1) / k_);
}

node_id kary_shape::lca(node_id a, node_id b) const {
  expects_in_range(a < total_ && b < total_, "kary_shape::lca: node out of range");
  unsigned la = level_of(a);
  unsigned lb = level_of(b);
  while (la > lb) {
    a = static_cast<node_id>((static_cast<std::uint64_t>(a) - 1) / k_);
    --la;
  }
  while (lb > la) {
    b = static_cast<node_id>((static_cast<std::uint64_t>(b) - 1) / k_);
    --lb;
  }
  while (a != b) {
    a = static_cast<node_id>((static_cast<std::uint64_t>(a) - 1) / k_);
    b = static_cast<node_id>((static_cast<std::uint64_t>(b) - 1) / k_);
  }
  return a;
}

unsigned kary_shape::distance(node_id a, node_id b) const {
  expects_in_range(a < total_ && b < total_,
                   "kary_shape::distance: node out of range");
  if (k_ == 2) {
    // Binary heap order: node v+1 lies in [2^l, 2^{l+1}), so the level is
    // bit_width(v+1)-1 and the parent is (v-1)>>1. This branch is the inner
    // loop of the affinity Metropolis chain — keep it divisions-free.
    std::uint32_t x = a + 1;
    std::uint32_t y = b + 1;
    unsigned lx = std::bit_width(x);
    unsigned ly = std::bit_width(y);
    unsigned d = 0;
    if (lx > ly) {
      d += lx - ly;
      x >>= (lx - ly);
    } else if (ly > lx) {
      d += ly - lx;
      y >>= (ly - lx);
    }
    while (x != y) {
      x >>= 1;
      y >>= 1;
      d += 2;
    }
    return d;
  }
  unsigned la = level_of(a);
  unsigned lb = level_of(b);
  unsigned d = 0;
  while (la > lb) {
    a = static_cast<node_id>((static_cast<std::uint64_t>(a) - 1) / k_);
    --la;
    ++d;
  }
  while (lb > la) {
    b = static_cast<node_id>((static_cast<std::uint64_t>(b) - 1) / k_);
    --lb;
    ++d;
  }
  while (a != b) {
    a = static_cast<node_id>((static_cast<std::uint64_t>(a) - 1) / k_);
    b = static_cast<node_id>((static_cast<std::uint64_t>(b) - 1) / k_);
    d += 2;
  }
  return d;
}

graph kary_shape::to_graph() const {
  graph_builder b(static_cast<node_id>(total_));
  b.set_name("kary" + std::to_string(k_) + "x" + std::to_string(depth_));
  for (std::uint64_t v = 1; v < total_; ++v) {
    b.add_edge(static_cast<node_id>(v), static_cast<node_id>((v - 1) / k_));
  }
  return b.build();
}

graph make_kary_tree(unsigned k, unsigned depth) {
  return kary_shape(k, depth).to_graph();
}

}  // namespace mcast
