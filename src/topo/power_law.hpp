// Power-law random graphs.
//
// The paper's "Internet" (SCAN router map, 56k nodes) and "AS" (NLANR
// BGP map) topologies are not redistributable; we substitute generative
// models with the property the paper actually relies on — power-law degree
// distributions (Faloutsos^3, SIGCOMM '99, the paper's reference [8])
// combined with exponential neighborhood growth T(r) until saturation
// (Fig 7b).
//
// Two models:
//  * Barabási–Albert preferential attachment: grows a connected graph,
//    each new node attaching to `edges_per_node` existing nodes chosen
//    proportionally to degree.
//  * Chung–Lu: expected-degree model for a prescribed power-law exponent;
//    useful to sweep the exponent independently of growth dynamics.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "sim/rng.hpp"

namespace mcast {

struct barabasi_albert_params {
  node_id nodes = 1000;        ///< >= 2
  unsigned edges_per_node = 2; ///< attachments per new node, >= 1
};

/// Generates a Barabási–Albert graph (connected by construction).
/// Deterministic given (params, seed).
graph make_barabasi_albert(const barabasi_albert_params& params, rng& gen);

/// Convenience overload seeding a fresh engine from `seed`.
graph make_barabasi_albert(const barabasi_albert_params& params,
                           std::uint64_t seed);

struct chung_lu_params {
  node_id nodes = 1000;    ///< >= 2
  double exponent = 2.5;   ///< power-law exponent of expected degrees, > 1
  double min_degree = 1.0; ///< expected-degree floor, > 0
  double max_degree_fraction = 0.1;  ///< cap = fraction * nodes, in (0,1]
  bool keep_largest_component = true;
};

/// Generates a Chung–Lu expected-degree power-law graph. When
/// keep_largest_component is set, the returned graph is the (renumbered)
/// giant component. Deterministic given (params, seed).
graph make_chung_lu(const chung_lu_params& params, rng& gen);

/// Convenience overload seeding a fresh engine from `seed`.
graph make_chung_lu(const chung_lu_params& params, std::uint64_t seed);

}  // namespace mcast
