#include "topo/catalog.hpp"

#include <algorithm>

#include "common/contract.hpp"
#include "topo/arpanet.hpp"
#include "topo/mbone.hpp"
#include "topo/power_law.hpp"
#include "topo/tiers.hpp"
#include "topo/transit_stub.hpp"
#include "topo/waxman.hpp"

namespace mcast {

namespace {

graph named(graph g, const std::string& name) {
  g.set_name(name);
  return g;
}

network_entry r100_entry() {
  return {"r100", network_kind::generated, [](std::uint64_t seed) {
            waxman_params p;
            p.nodes = 100;
            p.alpha = 0.25;
            p.beta = 0.2;
            return named(make_waxman(p, seed ^ 0x7231303000ULL), "r100");
          }};
}

network_entry ts1000_entry() {
  return {"ts1000", network_kind::generated, [](std::uint64_t seed) {
            return named(make_transit_stub(ts1000_params(), seed ^ 0x747331303030ULL),
                         "ts1000");
          }};
}

network_entry ts1008_entry() {
  return {"ts1008", network_kind::generated, [](std::uint64_t seed) {
            return named(make_transit_stub(ts1008_params(), seed ^ 0x747331303038ULL),
                         "ts1008");
          }};
}

network_entry ti5000_entry() {
  return {"ti5000", network_kind::generated, [](std::uint64_t seed) {
            return named(make_tiers(ti5000_params(), seed ^ 0x746935303030ULL),
                         "ti5000");
          }};
}

network_entry arpa_entry() {
  return {"ARPA", network_kind::real,
          [](std::uint64_t /*seed*/) { return make_arpanet(); }};
}

network_entry mbone_entry() {
  return {"MBone", network_kind::real, [](std::uint64_t seed) {
            mbone_params p;
            return named(make_mbone(p, seed ^ 0x6d626f6e65ULL), "MBone");
          }};
}

network_entry internet_entry() {
  return {"Internet", network_kind::real, [](std::uint64_t seed) {
            barabasi_albert_params p;
            p.nodes = 30000;  // paper: 56,317-node SCAN router map
            p.edges_per_node = 2;
            return named(make_barabasi_albert(p, seed ^ 0x696e6574ULL), "Internet");
          }};
}

network_entry as_entry() {
  return {"AS", network_kind::real, [](std::uint64_t seed) {
            barabasi_albert_params p;
            p.nodes = 4750;  // paper: NLANR AS map, 1999-03-24
            p.edges_per_node = 2;
            return named(make_barabasi_albert(p, seed ^ 0x617353ULL), "AS");
          }};
}

}  // namespace

std::vector<network_entry> generated_networks() {
  return {r100_entry(), ts1000_entry(), ts1008_entry(), ti5000_entry()};
}

std::vector<network_entry> real_networks() {
  return {arpa_entry(), mbone_entry(), internet_entry(), as_entry()};
}

std::vector<network_entry> paper_networks() {
  std::vector<network_entry> all = generated_networks();
  for (auto& e : real_networks()) all.push_back(std::move(e));
  return all;
}

network_entry find_network(const std::string& name) {
  for (auto& e : paper_networks()) {
    if (e.name == name) return e;
  }
  throw std::invalid_argument("mcast: unknown network name: " + name);
}

std::vector<network_entry> scaled_networks(const std::vector<network_entry>& suite,
                                           node_id max_nodes) {
  expects(max_nodes >= 64, "scaled_networks: max_nodes must be >= 64");
  std::vector<network_entry> out;
  out.reserve(suite.size());
  for (const network_entry& e : suite) {
    network_entry small = e;
    if (e.name == "ts1000" || e.name == "ts1008") {
      const bool dense = e.name == "ts1008";
      small.build = [dense, max_nodes, name = e.name](std::uint64_t seed) {
        transit_stub_params p = dense ? ts1008_params() : ts1000_params();
        // Shrink by cutting stub fanout until under budget.
        while (transit_stub_node_count(p) > max_nodes && p.stub_domain_size > 1) {
          --p.stub_domain_size;
        }
        while (transit_stub_node_count(p) > max_nodes && p.transit_domains > 1) {
          --p.transit_domains;
        }
        return named(make_transit_stub(p, seed), name);
      };
    } else if (e.name == "ti5000") {
      small.build = [max_nodes](std::uint64_t seed) {
        tiers_params p = ti5000_params();
        while (tiers_node_count(p) > max_nodes && p.man_count > 1) --p.man_count;
        while (tiers_node_count(p) > max_nodes && p.lans_per_man > 1) --p.lans_per_man;
        while (tiers_node_count(p) > max_nodes && p.wan_size > 8) p.wan_size /= 2;
        return named(make_tiers(p, seed), "ti5000");
      };
    } else if (e.name == "MBone") {
      small.build = [max_nodes](std::uint64_t seed) {
        mbone_params p;
        p.substrate.nodes = std::max<node_id>(64, max_nodes * 3);
        p.overlay_nodes = std::max<node_id>(32, max_nodes / 2);
        return named(make_mbone(p, seed), "MBone");
      };
    } else if (e.name == "Internet" || e.name == "AS") {
      const bool is_as = e.name == "AS";
      const node_id nodes = std::min<node_id>(max_nodes, is_as ? 4750 : 30000);
      // Perturb the seed per entry so a budget that shrinks both to the
      // same size still yields two different graphs.
      const std::uint64_t salt = is_as ? 0x617353ULL : 0x696e6574ULL;
      small.build = [nodes, salt, name = e.name](std::uint64_t seed) {
        barabasi_albert_params p;
        p.nodes = std::max<node_id>(64, nodes);
        p.edges_per_node = 2;
        return named(make_barabasi_albert(p, seed ^ salt), name);
      };
    }
    // r100 and ARPA are already tiny.
    out.push_back(std::move(small));
  }
  return out;
}

}  // namespace mcast
