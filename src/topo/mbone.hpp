// MBone-like overlay topologies.
//
// The paper's MBone map (collected by the SCAN project) is an *overlay*:
// multicast routers connected by DVMRP tunnels that ride on top of unicast
// paths. The paper observes that this overlay character gives the MBone a
// sub-exponential reachability function T(r) (Section 4.2, Fig 7b), making
// it one of the topologies where the k-ary-tree asymptotics fit poorly.
//
// We reproduce the *mechanism*, not just the symptom: generate a unicast
// substrate (Waxman), choose a subset of its nodes to run multicast, and
// wire them with tunnels along a minimum spanning tree of substrate hop
// distance, plus a small fraction of redundant tunnels. MSTs over graph
// metrics are chain-heavy, which yields the long tendrils and slight T(r)
// concavity of the real MBone.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "sim/rng.hpp"
#include "topo/waxman.hpp"

namespace mcast {

struct mbone_params {
  /// Substrate the tunnels ride on.
  waxman_params substrate{.nodes = 8000, .alpha = 0.08, .beta = 0.12,
                          .plane_size = 100.0, .ensure_connected = true};
  node_id overlay_nodes = 2500;   ///< multicast routers, >= 2, <= substrate
  /// Extra (redundant) tunnels as a fraction of overlay_nodes, >= 0.
  double extra_tunnel_fraction = 0.08;
};

/// Generates an MBone-like overlay graph: nodes are the overlay routers
/// (renumbered 0..overlay_nodes-1), edges are tunnels. Connected by
/// construction. Deterministic given (params, seed).
graph make_mbone(const mbone_params& params, rng& gen);

/// Convenience overload seeding a fresh engine from `seed`.
graph make_mbone(const mbone_params& params, std::uint64_t seed);

}  // namespace mcast
