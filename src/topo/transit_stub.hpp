// Transit-stub topologies after the GT-ITM model of Calvert, Doar and
// Zegura (IEEE Communications Magazine '97) — the generator behind the
// paper's ts1000 and ts1008 networks.
//
// Structure (three levels of hierarchy):
//   * a connected top-level graph of `transit_domains` transit domains;
//   * each transit domain is a connected random graph of
//     `transit_domain_size` routers; an inter-domain edge joins random
//     routers of the two domains;
//   * every transit router hosts `stubs_per_transit_node` stub domains,
//     each a connected random graph of `stub_domain_size` routers attached
//     to its transit router through one random member;
//   * optional extra transit-stub and stub-stub edges add the cross links
//     real maps exhibit.
//
// Intra-domain connectivity uses a uniform random spanning tree plus
// independent extra edges with probability `edge_prob`, which is GT-ITM's
// "random graph, repaired to connected" recipe. Total node count is
//   transit_domains * transit_domain_size * (1 + stubs_per_transit_node *
//   stub_domain_size).
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "sim/rng.hpp"

namespace mcast {

struct transit_stub_params {
  unsigned transit_domains = 4;          ///< >= 1
  unsigned transit_domain_size = 10;     ///< routers per transit domain, >= 1
  unsigned stubs_per_transit_node = 3;   ///< stub domains per transit router
  unsigned stub_domain_size = 8;         ///< routers per stub domain, >= 1
  double transit_edge_prob = 0.6;        ///< extra intra-transit edges, [0,1]
  double stub_edge_prob = 0.2;           ///< extra intra-stub edges, [0,1]
  /// Expected number of extra transit-stub shortcut edges for the whole
  /// graph (drawn Poisson-ish by Bernoulli trials over stub domains).
  double extra_transit_stub_edges = 0.0;
  /// Expected number of extra stub-stub shortcut edges.
  double extra_stub_stub_edges = 0.0;
};

/// Total nodes the parameterization will produce.
std::uint64_t transit_stub_node_count(const transit_stub_params& p);

/// Generates a transit-stub graph. Deterministic given (params, seed).
/// The result is connected by construction.
graph make_transit_stub(const transit_stub_params& params, rng& gen);

/// Convenience overload seeding a fresh engine from `seed`.
graph make_transit_stub(const transit_stub_params& params, std::uint64_t seed);

/// Parameters reproducing the character of the paper's ts1000
/// (1000 nodes, average degree ~= 3.6).
transit_stub_params ts1000_params();

/// Parameters reproducing the character of the paper's ts1008
/// (1008 nodes, average degree ~= 7.5 via dense intra-domain wiring and
/// many shortcut edges).
transit_stub_params ts1008_params();

}  // namespace mcast
