#include "topo/regular.hpp"

#include <string>

#include "common/contract.hpp"
#include "graph/builder.hpp"

namespace mcast {

graph make_path(node_id n) {
  expects(n >= 1, "make_path: n must be >= 1");
  graph_builder b(n);
  b.set_name("path" + std::to_string(n));
  for (node_id v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return b.build();
}

graph make_ring(node_id n) {
  expects(n >= 3, "make_ring: n must be >= 3");
  graph_builder b(n);
  b.set_name("ring" + std::to_string(n));
  for (node_id v = 0; v < n; ++v) b.add_edge(v, (v + 1) % n);
  return b.build();
}

graph make_star(node_id n) {
  expects(n >= 1, "make_star: n must be >= 1");
  graph_builder b(n);
  b.set_name("star" + std::to_string(n));
  for (node_id v = 1; v < n; ++v) b.add_edge(0, v);
  return b.build();
}

graph make_complete(node_id n) {
  expects(n >= 1, "make_complete: n must be >= 1");
  graph_builder b(n);
  b.set_name("K" + std::to_string(n));
  for (node_id v = 0; v < n; ++v) {
    for (node_id w = v + 1; w < n; ++w) b.add_edge(v, w);
  }
  return b.build();
}

graph make_torus(node_id rows, node_id cols) {
  expects(rows >= 3 && cols >= 3, "make_torus: rows and cols must be >= 3");
  graph_builder b(rows * cols);
  b.set_name("torus" + std::to_string(rows) + "x" + std::to_string(cols));
  for (node_id r = 0; r < rows; ++r) {
    for (node_id c = 0; c < cols; ++c) {
      const node_id v = r * cols + c;
      b.add_edge(v, r * cols + (c + 1) % cols);
      b.add_edge(v, ((r + 1) % rows) * cols + c);
    }
  }
  return b.build();
}

graph make_hypercube(unsigned dim) {
  expects(dim >= 1 && dim <= 20, "make_hypercube: dim must be in [1, 20]");
  const node_id n = static_cast<node_id>(1u) << dim;
  graph_builder b(n);
  b.set_name("hypercube" + std::to_string(dim));
  for (node_id v = 0; v < n; ++v) {
    for (unsigned bit = 0; bit < dim; ++bit) {
      const node_id w = v ^ (static_cast<node_id>(1u) << bit);
      if (v < w) b.add_edge(v, w);
    }
  }
  return b.build();
}

graph make_grid(node_id rows, node_id cols) {
  expects(rows >= 1 && cols >= 1, "make_grid: rows and cols must be >= 1");
  graph_builder b(rows * cols);
  b.set_name("grid" + std::to_string(rows) + "x" + std::to_string(cols));
  for (node_id r = 0; r < rows; ++r) {
    for (node_id c = 0; c < cols; ++c) {
      const node_id v = r * cols + c;
      if (c + 1 < cols) b.add_edge(v, v + 1);
      if (r + 1 < rows) b.add_edge(v, v + cols);
    }
  }
  return b.build();
}

}  // namespace mcast
