#include "obs/access_log.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace mcast::obs {

namespace {

void escape_json(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_string(std::string& out, const char* key, const std::string& v) {
  out += ",\"";
  out += key;
  out += "\":\"";
  escape_json(out, v);
  out += '"';
}

void append_u64(std::string& out, const char* key, std::uint64_t v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, ",\"%s\":%" PRIu64, key, v);
  out += buf;
}

void append_bool(std::string& out, const char* key, bool v) {
  out += ",\"";
  out += key;
  out += v ? "\":true" : "\":false";
}

}  // namespace

std::string access_log_line(const access_entry& e, bool slow) {
  std::string out = "{\"schema\":\"";
  out += k_access_log_schema;
  out += '"';
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(e.trace_id));
  append_string(out, "trace", buf);
  append_string(out, "token", e.token);
  append_string(out, "op", e.op);
  append_string(out, "topology", e.topology);
  std::snprintf(buf, sizeof buf, ",\"shard\":%lld",
                static_cast<long long>(e.shard));
  out += buf;
  append_u64(out, "queue_wait_ns", e.queue_wait_ns);
  append_u64(out, "compute_ns", e.compute_ns);
  append_u64(out, "serialize_ns", e.serialize_ns);
  append_u64(out, "write_ns", e.write_ns);
  append_u64(out, "total_ns", e.total_ns);
  append_u64(out, "bytes_in", e.bytes_in);
  append_u64(out, "bytes_out", e.bytes_out);
  append_u64(out, "fanout", e.fanout);
  append_u64(out, "fallbacks", e.fallbacks);
  append_string(out, "outcome", e.outcome);
  append_bool(out, "degraded", e.degraded);
  append_bool(out, "shed", e.shed);
  append_bool(out, "chaos", e.chaos);
  append_bool(out, "slow", slow);
  out += '}';
  return out;
}

#if !defined(MCAST_OBS_DISABLED)

namespace {

// The sink. One mutex around an ofstream: a request finishes with one
// formatted line already built, so the critical section is a single
// append — far below the syscall cost of serving the request itself.
struct sink_state {
  std::mutex mutex;
  std::ofstream out;
  bool open = false;
  std::uint64_t slow_ns = 0;
};

sink_state& sink() {
  static sink_state* s = new sink_state();  // leaked: usable at exit
  return *s;
}

thread_local access_entry g_entry;
thread_local bool g_active = false;

}  // namespace

void access_log_enable(const std::string& path, std::uint64_t slow_ns) {
  sink_state& s = sink();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.out.close();
  s.out.clear();
  s.out.open(path, std::ios::trunc);
  if (!s.out) {
    s.open = false;
    throw std::runtime_error("access_log: cannot open '" + path +
                             "' for writing");
  }
  s.open = true;
  s.slow_ns = slow_ns;
}

void access_log_disable() {
  sink_state& s = sink();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.out.close();
  s.open = false;
}

bool access_log_enabled() noexcept {
  sink_state& s = sink();
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.open;
}

bool access_begin(std::uint64_t trace_id) {
  if (!access_log_enabled()) return false;
  g_entry = access_entry{};
  g_entry.trace_id = trace_id;
  g_active = true;
  return true;
}

access_entry* access_current() noexcept { return g_active ? &g_entry : nullptr; }

void access_finish() {
  if (!g_active) return;
  g_active = false;
  sink_state& s = sink();
  std::lock_guard<std::mutex> lock(s.mutex);
  if (!s.open) return;
  const bool slow = s.slow_ns != 0 && g_entry.total_ns >= s.slow_ns;
  s.out << access_log_line(g_entry, slow) << '\n';
  add(counter::svc_access_records);
  if (slow) add(counter::svc_access_slow);
}

#endif  // !MCAST_OBS_DISABLED

}  // namespace mcast::obs
