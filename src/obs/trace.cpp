#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "obs/metrics.hpp"

namespace mcast::obs {

namespace {

void escape_json(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

void write_chrome_trace(std::ostream& out, const trace_dump& dump) {
  std::uint64_t base = 0;
  if (!dump.events.empty()) {
    base = dump.events.front().start_ns;
    for (const trace_event& e : dump.events) base = std::min(base, e.start_ns);
  }
  std::string text = "{\"traceEvents\": [";
  char buf[160];
  bool first = true;
  auto comma = [&] {
    text += first ? "\n" : ",\n";
    first = false;
  };
  for (const trace_event& e : dump.events) {
    comma();
    text += "  {\"name\": \"";
    escape_json(text, e.name);
    std::snprintf(buf, sizeof buf,
                  "\", \"ph\": \"X\", \"ts\": %.3f, \"dur\": %.3f, "
                  "\"pid\": 1, \"tid\": %u",
                  static_cast<double>(e.start_ns - base) / 1000.0,
                  static_cast<double>(e.dur_ns) / 1000.0, e.tid);
    text += buf;
    if (e.trace_id != 0) {
      std::snprintf(buf, sizeof buf,
                    ", \"args\": {\"trace_id\": \"%016llx\", \"span\": "
                    "\"%016llx\", \"parent\": \"%016llx\"}",
                    static_cast<unsigned long long>(e.trace_id),
                    static_cast<unsigned long long>(e.span_id),
                    static_cast<unsigned long long>(e.parent_id));
      text += buf;
    }
    text += "}";
  }
  // Flow events: one "s" at a trace's root plus a "t" step at each span
  // on another lane, so the viewer draws the request's cross-lane arc.
  // Synthesized here — zero hot-path cost — and bound by id, which is the
  // trace_id in hex. Phases other than "X" are skipped by our own trace
  // consumers (trace_check, trace_summary).
  std::vector<const trace_event*> roots;
  for (const trace_event& e : dump.events) {
    if (e.trace_id == 0) continue;
    bool seen = false;
    for (const trace_event* r : roots) {
      if (r->trace_id == e.trace_id) {
        seen = true;
        break;
      }
    }
    if (!seen) roots.push_back(&e);  // events are start-ordered: first wins
  }
  for (const trace_event* root : roots) {
    bool crosses = false;
    for (const trace_event& e : dump.events) {
      if (e.trace_id == root->trace_id && e.tid != root->tid) {
        crosses = true;
        break;
      }
    }
    if (!crosses) continue;
    comma();
    std::snprintf(buf, sizeof buf,
                  "  {\"name\": \"request\", \"cat\": \"trace\", \"ph\": "
                  "\"s\", \"id\": \"%016llx\", \"ts\": %.3f, \"pid\": 1, "
                  "\"tid\": %u}",
                  static_cast<unsigned long long>(root->trace_id),
                  static_cast<double>(root->start_ns - base) / 1000.0,
                  root->tid);
    text += buf;
    for (const trace_event& e : dump.events) {
      if (e.trace_id != root->trace_id || e.tid == root->tid) continue;
      comma();
      std::snprintf(buf, sizeof buf,
                    "  {\"name\": \"request\", \"cat\": \"trace\", \"ph\": "
                    "\"t\", \"id\": \"%016llx\", \"ts\": %.3f, \"pid\": 1, "
                    "\"tid\": %u}",
                    static_cast<unsigned long long>(e.trace_id),
                    static_cast<double>(e.start_ns - base) / 1000.0, e.tid);
      text += buf;
    }
  }
  text += "\n], \"displayTimeUnit\": \"ms\", \"otherData\": {\"dropped\": ";
  std::snprintf(buf, sizeof buf, "%llu",
                static_cast<unsigned long long>(dump.dropped));
  text += buf;
  text += "}}\n";
  out << text;
}

void write_chrome_trace_file(const std::string& path, const trace_dump& dump) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("trace: cannot open '" + path + "' for writing");
  }
  write_chrome_trace(out, dump);
  if (!out) throw std::runtime_error("trace: write to '" + path + "' failed");
}

#if !defined(MCAST_OBS_DISABLED)

namespace {

std::atomic<bool> g_tracing{false};
std::atomic<std::size_t> g_capacity{4096};

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// One thread's span ring. `events` grows to capacity, then `head` marks
// the oldest slot and new events overwrite it — classic ring wraparound.
struct ring {
  std::mutex mutex;
  std::vector<trace_event> events;
  std::size_t head = 0;
  std::uint64_t dropped = 0;
  std::uint32_t tid = 0;

  void push(trace_event e) {
    std::lock_guard<std::mutex> lock(mutex);
    const std::size_t cap =
        std::max<std::size_t>(1, g_capacity.load(std::memory_order_relaxed));
    e.tid = tid;
    if (events.size() < cap) {
      events.push_back(std::move(e));
    } else {
      if (head >= events.size()) head = 0;  // capacity shrank since fill
      events[head] = std::move(e);
      head = (head + 1) % events.size();
      ++dropped;
    }
  }
};

// Pool mirroring the metric shard pool: rings of exited threads are
// parked with their events intact and reused by later threads. Leaked on
// purpose so thread_local destructors at exit can still park safely.
class ring_registry {
 public:
  static ring_registry& instance() {
    static ring_registry* r = new ring_registry();
    return *r;
  }

  ring* acquire() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!parked_.empty()) {
      ring* r = parked_.back();
      parked_.pop_back();
      return r;
    }
    rings_.push_back(std::make_unique<ring>());
    return rings_.back().get();
  }

  void park(ring* r) {
    std::lock_guard<std::mutex> lock(mutex_);
    parked_.push_back(r);
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& r : rings_) {
      std::lock_guard<std::mutex> ring_lock(r->mutex);
      r->events.clear();
      r->head = 0;
      r->dropped = 0;
    }
  }

  trace_dump collect() {
    trace_dump dump;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& r : rings_) {
      std::lock_guard<std::mutex> ring_lock(r->mutex);
      dump.dropped += r->dropped;
      // Oldest-first: a full ring starts at head, a partial one at 0.
      const std::size_t n = r->events.size();
      const std::size_t start = n == 0 ? 0 : r->head % n;
      for (std::size_t i = 0; i < n; ++i) {
        dump.events.push_back(r->events[(start + i) % n]);
      }
    }
    std::stable_sort(dump.events.begin(), dump.events.end(),
                     [](const trace_event& a, const trace_event& b) {
                       return std::tie(a.start_ns, a.tid, a.name) <
                              std::tie(b.start_ns, b.tid, b.name);
                     });
    return dump;
  }

 private:
  ring_registry() = default;

  std::mutex mutex_;
  std::vector<std::unique_ptr<ring>> rings_;
  std::vector<ring*> parked_;
};

struct ring_handle {
  ring* r;
  ring_handle() : r(ring_registry::instance().acquire()) {
    // Share the metric shard's lane id so a worker's spans and counters
    // line up in the merged trace.
    r->tid = detail::local_shard().tid;
  }
  ~ring_handle() { ring_registry::instance().park(r); }
};

ring& local_ring() {
  thread_local ring_handle handle;
  return *handle.r;
}

}  // namespace

void trace_enable(std::size_t ring_capacity) noexcept {
  g_capacity.store(std::max<std::size_t>(1, ring_capacity),
                   std::memory_order_relaxed);
  g_tracing.store(true, std::memory_order_relaxed);
}

void trace_disable() noexcept {
  g_tracing.store(false, std::memory_order_relaxed);
}

bool trace_enabled() noexcept {
  return g_tracing.load(std::memory_order_relaxed);
}

void trace_clear() noexcept { ring_registry::instance().clear(); }

trace_dump trace_collect() { return ring_registry::instance().collect(); }

namespace {

// The thread's active request context plus a process-wide span-id mint.
// Span ids only disambiguate parent/child linkage inside one collected
// trace; they are not part of any response, so a plain counter is fine.
thread_local trace_context g_trace_ctx;
std::atomic<std::uint64_t> g_next_span_id{1};

}  // namespace

trace_context current_trace() noexcept { return g_trace_ctx; }

trace_scope::trace_scope(trace_context ctx) noexcept : prev_(g_trace_ctx) {
  g_trace_ctx = ctx;
}

trace_scope::~trace_scope() { g_trace_ctx = prev_; }

void span::begin() noexcept {
  start_ns_ = now_ns();
  const trace_context ctx = g_trace_ctx;
  if (ctx.trace_id == 0) return;
  trace_id_ = ctx.trace_id;
  parent_id_ = ctx.parent_span;
  span_id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  prev_parent_ = ctx.parent_span;
  g_trace_ctx.parent_span = span_id_;
}

span::span(const char* name) noexcept {
  if (!trace_enabled()) return;
  name_ = name;
  begin();
}

span::span(std::string name) noexcept {
  if (!trace_enabled()) return;
  name_ = std::move(name);
  begin();
}

span::~span() {
  if (start_ns_ == 0) return;
  if (span_id_ != 0) g_trace_ctx.parent_span = prev_parent_;
  trace_event e;
  e.name = std::move(name_);
  e.start_ns = start_ns_;
  e.dur_ns = now_ns() - start_ns_;
  e.trace_id = trace_id_;
  e.span_id = span_id_;
  e.parent_id = parent_id_;
  local_ring().push(std::move(e));
}

#endif  // !MCAST_OBS_DISABLED

}  // namespace mcast::obs
