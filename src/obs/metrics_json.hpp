// JSON serialization of an obs metrics snapshot.
//
// One schema, two consumers: the run-manifest layer embeds it as the
// `metrics` section of every BENCH_<id>.json (mcast-lab-manifest/2), and
// the query service returns it verbatim from the `metrics` endpoint. The
// document is fully populated (every counter, gauge and histogram, zeros
// included) so its shape is deterministic and schema-checkable.
#pragma once

#include "common/json.hpp"
#include "obs/metrics.hpp"

namespace mcast::obs {

/// Object with `enabled`, `counters`, `gauges`, `histograms`
/// (count/sum/mean/p50/p95/p99 each) and `derived` headline rates.
json::value metrics_to_json(const metrics_snapshot& s);

}  // namespace mcast::obs
