// mcast_obs — low-overhead metrics for the traversal/cache/scheduler stack.
//
// The Monte-Carlo sweeps behind every figure are fast (workspace reuse,
// SPT cache, parallel scheduler) but were opaque: BENCH_<id>.json recorded
// wall/CPU time and nothing about *why* a run was fast or slow. This
// registry closes that gap with three primitive kinds:
//
//  * counters    — monotonic uint64 sums ("BFS passes", "cache hits");
//  * gauges      — max-merged levels ("scheduler workers granted");
//  * histograms  — fixed log2-bucket distributions of latencies/sizes,
//                  summarized as count/sum/p50/p95/p99.
//
// Design rules, in priority order:
//
//  1. Never perturb results. Hooks observe; they cannot change a single
//     output byte (locked down by tests/test_manifest_metrics.cpp).
//  2. Stay off the contended path. Every mutation lands in a per-thread
//     *shard* — an aligned block of relaxed atomics owned by one thread —
//     so the traversal inner loop never touches a shared cache line.
//     Aggregation (snapshot) walks all shards under the registry lock;
//     it is meant for run boundaries, not inner loops.
//  3. Be removable. Compiling with -DMCAST_OBS_DISABLED (CMake option of
//     the same name) turns every hook into an empty inline function so
//     bench/micro_core can prove the instrumented hot path is within
//     noise of the uninstrumented one. A runtime switch (set_enabled)
//     approximates the same A/B inside one binary.
//
// Shards are pooled: when a worker thread exits, its shard is parked (its
// values keep contributing to totals — counters are cumulative since the
// last reset) and the next thread to start reuses it, so thread churn
// across many runs cannot grow memory without bound.
//
// See docs/observability.md for the full tour and overhead methodology.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace mcast::obs {

// X-macros keep the enums and the dotted metric names in lockstep; the
// name is what manifests, the summary table and tests key on.
#define MCAST_OBS_COUNTERS(X)                                    \
  X(bfs_passes, "traversal.bfs_passes")                          \
  X(dijkstra_passes, "traversal.dijkstra_passes")                \
  X(nodes_visited, "traversal.nodes_visited")                    \
  X(edges_scanned, "traversal.edges_scanned")                    \
  X(workspace_grows, "workspace.grows")                          \
  X(workspace_reuses, "workspace.reuses")                        \
  X(spt_cache_hits, "spt_cache.hits")                            \
  X(spt_cache_misses, "spt_cache.misses")                        \
  X(spt_cache_evictions, "spt_cache.evictions")                  \
  X(spt_cache_invalidations, "spt_cache.invalidations")          \
  X(repair_trees, "repair.trees_repaired")                       \
  X(repair_unaffected, "repair.receivers_unaffected")            \
  X(repair_rerouted, "repair.receivers_rerouted")                \
  X(repair_partitioned, "repair.receivers_partitioned")          \
  X(sim_events, "sim.events_processed")                          \
  X(sim_degraded_transitions, "sim.degraded_transitions")        \
  X(mc_source_tasks, "mc.source_tasks")                          \
  X(sched_tasks, "sched.tasks")                                  \
  X(sched_busy_ns, "sched.busy_ns")                              \
  X(sched_worker_ns, "sched.worker_ns")                          \
  X(sched_splice_wait_ns, "sched.splice_wait_ns")                \
  X(topo_cache_hits, "topo_cache.hits")                          \
  X(topo_cache_misses, "topo_cache.misses")                      \
  X(topo_cache_evictions, "topo_cache.evictions")                \
  X(topo_cache_warm_hits, "topo_cache.warm_hits")                \
  X(svc_connections_accepted, "svc.connections_accepted")        \
  X(svc_connections_rejected, "svc.connections_rejected")        \
  X(svc_requests, "svc.requests")                                \
  X(svc_responses_error, "svc.responses_error")                  \
  X(svc_lines_oversized, "svc.lines_oversized")                  \
  X(svc_deadline_exceeded, "svc.deadline_exceeded")              \
  X(svc_drain_forced, "svc.drain_forced_closes")                 \
  X(svc_shed_degraded, "svc.shed.degraded")                      \
  X(svc_shed_refused, "svc.shed.refused")                        \
  X(svc_chaos_drops, "svc.chaos.drops")                          \
  X(svc_chaos_resets, "svc.chaos.resets")                        \
  X(svc_chaos_delays, "svc.chaos.delays")                        \
  X(svc_chaos_truncates, "svc.chaos.truncates")                  \
  X(svc_chaos_stalls, "svc.chaos.stalls")                        \
  X(svc_shard_tasks, "svc.shard.tasks_executed")                 \
  X(svc_shard_rejected, "svc.shard.rejected")                    \
  X(svc_batch_requests, "svc.batch.requests")                    \
  X(svc_batch_subops, "svc.batch.subops_dispatched")             \
  X(svc_batch_spliced, "svc.batch.subops_spliced")               \
  X(svc_scatter_requests, "svc.scatter.requests")                \
  X(svc_scatter_chunks, "svc.scatter.chunks_dispatched")         \
  X(svc_scatter_spliced, "svc.scatter.chunks_spliced")           \
  X(retry_attempts, "retry.attempts")                            \
  X(retry_retries, "retry.retries")                              \
  X(retry_successes, "retry.successes")                          \
  X(retry_exhausted, "retry.exhausted")                          \
  X(svc_access_records, "svc.access.records")                    \
  X(svc_access_slow, "svc.access.slow")                          \
  X(group_created, "group.created")                              \
  X(group_removed, "group.removed")                              \
  X(group_joins, "group.joins")                                  \
  X(group_leaves, "group.leaves")                                \
  X(group_links_grafted, "group.links_grafted")                  \
  X(group_links_pruned, "group.links_pruned")                    \
  X(group_rebases, "group.rebases")                              \
  X(svc_group_creates, "svc.group.creates")                      \
  X(svc_group_joins, "svc.group.joins")                          \
  X(svc_group_leaves, "svc.group.leaves")                        \
  X(svc_group_stats, "svc.group.stats_reads")                    \
  X(svc_group_lists, "svc.group.lists")

#define MCAST_OBS_GAUGES(X)                  \
  X(sched_workers, "sched.workers")          \
  X(spt_cache_peak_entries, "spt_cache.peak_entries")  \
  X(topo_cache_peak_entries, "topo_cache.peak_entries")  \
  X(svc_queue_depth_peak, "svc.queue_depth_peak")         \
  X(svc_inflight_peak, "svc.inflight_peak")               \
  X(svc_shard_queue_depth_peak, "svc.shard.queue_depth_peak")  \
  X(svc_shard_inflight_peak, "svc.shard.inflight_peak")   \
  X(topo_cache_warm_entries, "topo_cache.warm_entries")    \
  X(group_peak_groups, "group.peak_groups")                \
  X(group_peak_members, "group.peak_members")

#define MCAST_OBS_HISTOGRAMS(X)                          \
  X(visited_per_pass, "traversal.visited_per_pass")      \
  X(repair_latency_ns, "repair.latency_ns")              \
  X(sched_task_ns, "sched.task_ns")                      \
  X(sched_tasks_per_worker, "sched.tasks_per_worker")    \
  X(topo_cache_build_ns, "topo_cache.build_ns")          \
  X(svc_request_ns, "svc.request_ns")                    \
  X(svc_queue_wait_ns, "svc.queue_wait_ns")              \
  X(retry_backoff_ms, "retry.backoff_ms")                \
  X(svc_op_lmhat_ns, "svc.op.lmhat_ns")                  \
  X(svc_op_lm_estimate_ns, "svc.op.lm_estimate_ns")      \
  X(svc_op_reachability_ns, "svc.op.reachability_ns")    \
  X(svc_op_batch_ns, "svc.op.batch_ns")                  \
  X(svc_op_admin_ns, "svc.op.admin_ns")                  \
  X(svc_shard_queue_wait_ns, "svc.shard.queue_wait_ns")  \
  X(svc_shard_task_ns, "svc.shard.task_ns")              \
  X(svc_serialize_ns, "svc.serialize_ns")                \
  X(svc_write_ns, "svc.write_ns")                        \
  X(group_graft_links, "group.graft_links_per_join")     \
  X(group_prune_links, "group.prune_links_per_leave")    \
  X(svc_op_group_ns, "svc.op.group_ns")

#define MCAST_OBS_ENUM(id, name) id,
enum class counter : std::uint16_t { MCAST_OBS_COUNTERS(MCAST_OBS_ENUM) };
enum class gauge : std::uint16_t { MCAST_OBS_GAUGES(MCAST_OBS_ENUM) };
enum class histogram : std::uint16_t { MCAST_OBS_HISTOGRAMS(MCAST_OBS_ENUM) };
#undef MCAST_OBS_ENUM

#define MCAST_OBS_COUNT(id, name) +1
inline constexpr std::size_t counter_count = 0 MCAST_OBS_COUNTERS(MCAST_OBS_COUNT);
inline constexpr std::size_t gauge_count = 0 MCAST_OBS_GAUGES(MCAST_OBS_COUNT);
inline constexpr std::size_t histogram_count =
    0 MCAST_OBS_HISTOGRAMS(MCAST_OBS_COUNT);
#undef MCAST_OBS_COUNT

/// Dotted metric name ("spt_cache.hits"); stable across runs and builds.
const char* counter_name(counter c) noexcept;
const char* gauge_name(gauge g) noexcept;
const char* histogram_name(histogram h) noexcept;

/// Reverse lookups by dotted name; return false when the name is not a
/// registered metric. The name tables compile even under
/// MCAST_OBS_DISABLED, so spec validation (src/check) works identically
/// in a no-obs build.
bool counter_from_name(const std::string& name, counter& out) noexcept;
bool gauge_from_name(const std::string& name, gauge& out) noexcept;
bool histogram_from_name(const std::string& name, histogram& out) noexcept;

/// Histogram values are bucketed by bit width: bucket 0 holds the value 0,
/// bucket b >= 1 holds [2^(b-1), 2^b - 1] (the last bucket tops out at
/// uint64 max). 65 buckets cover all of uint64.
inline constexpr std::size_t histogram_buckets = 65;

/// Percentiles are bucket upper bounds: quantile(q) returns the largest
/// value the bucket containing the ceil(q*count)-th sample could hold —
/// an over-estimate by at most 2x, which is plenty to read a latency
/// distribution and cheap enough to keep the hot path branch-free.
struct histogram_summary {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;

  double mean() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// Point-in-time aggregate over every shard (live, parked, and retired).
/// Plain data: fixed arrays indexed by the enums above, so a snapshot is
/// always fully populated and serializes to a deterministic schema.
struct metrics_snapshot {
  bool compiled_in = false;  ///< false when built with MCAST_OBS_DISABLED
  bool enabled = false;      ///< runtime switch state at snapshot time
  std::array<std::uint64_t, counter_count> counters{};
  std::array<std::uint64_t, gauge_count> gauges{};
  std::array<histogram_summary, histogram_count> histograms{};

  std::uint64_t at(counter c) const noexcept {
    return counters[static_cast<std::size_t>(c)];
  }
  std::uint64_t at(gauge g) const noexcept {
    return gauges[static_cast<std::size_t>(g)];
  }
  const histogram_summary& at(histogram h) const noexcept {
    return histograms[static_cast<std::size_t>(h)];
  }
};

// Derived headline numbers (0 when the underlying counters are all zero).
double spt_cache_hit_rate(const metrics_snapshot& s) noexcept;
double scheduler_busy_fraction(const metrics_snapshot& s) noexcept;
std::uint64_t traversal_passes(const metrics_snapshot& s) noexcept;

/// Human-readable table of every non-zero metric plus the derived rates;
/// what `mcast_lab run --metrics-summary` prints to stderr.
void render_metrics_summary(std::ostream& out, const metrics_snapshot& s);

#if defined(MCAST_OBS_DISABLED)

inline constexpr bool compiled_in = false;

// Every hook is an empty inline function: the compiler deletes the call
// and any argument computation feeding only it.
inline void add(counter, std::uint64_t = 1) noexcept {}
inline void gauge_max(gauge, std::uint64_t) noexcept {}
inline void record(histogram, std::uint64_t) noexcept {}
inline void set_enabled(bool) noexcept {}
inline bool enabled() noexcept { return false; }
inline void reset_metrics() noexcept {}
inline metrics_snapshot snapshot() { return metrics_snapshot{}; }

#else

inline constexpr bool compiled_in = true;

namespace detail {

// One thread's private metric block. Relaxed atomics on a thread-owned
// cache line cost the same as plain adds but keep cross-thread reads
// (snapshot, TSan) well-defined.
struct alignas(64) shard {
  std::array<std::atomic<std::uint64_t>, counter_count> counters{};
  struct hist {
    std::array<std::atomic<std::uint64_t>, histogram_buckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
  };
  std::array<hist, histogram_count> histograms{};
  std::uint32_t tid = 0;  ///< stable shard id; doubles as the trace tid
};

/// The calling thread's shard (acquired from the pool on first use,
/// parked again when the thread exits).
shard& local_shard() noexcept;

inline std::atomic<bool> g_enabled{true};

}  // namespace detail

/// Runtime kill switch (approximates MCAST_OBS_DISABLED inside one
/// binary; bench/micro_core uses it for the A/B overhead pair). Hooks
/// check it with one relaxed load.
inline void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}
inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Adds `n` to a counter in the calling thread's shard.
inline void add(counter c, std::uint64_t n = 1) noexcept {
  if (!enabled()) return;
  detail::local_shard().counters[static_cast<std::size_t>(c)].fetch_add(
      n, std::memory_order_relaxed);
}

/// Raises a gauge to at least `v` (max-merge, so aggregation is
/// deterministic no matter which thread observed the peak).
void gauge_max(gauge g, std::uint64_t v) noexcept;

/// Records one sample into a histogram in the calling thread's shard.
inline void record(histogram h, std::uint64_t value) noexcept {
  if (!enabled()) return;
  const std::size_t b =
      value == 0 ? 0 : static_cast<std::size_t>(64 - __builtin_clzll(value));
  auto& hist = detail::local_shard().histograms[static_cast<std::size_t>(h)];
  hist.buckets[b].fetch_add(1, std::memory_order_relaxed);
  hist.count.fetch_add(1, std::memory_order_relaxed);
  hist.sum.fetch_add(value, std::memory_order_relaxed);
}

/// Zeroes every counter/gauge/histogram in every shard. Call at a run
/// boundary when no instrumented worker threads are live (the engine
/// resets between experiments; concurrent mutators would leak increments
/// across the boundary, not corrupt memory).
void reset_metrics() noexcept;

/// Aggregates all shards. Safe to call any time; values racing with live
/// writers land in whichever side of the snapshot the relaxed loads see.
metrics_snapshot snapshot();

#endif  // MCAST_OBS_DISABLED

}  // namespace mcast::obs
