#include "obs/metrics_json.hpp"

namespace mcast::obs {

json::value metrics_to_json(const metrics_snapshot& s) {
  json::value m = json::value::object();
  m.set("enabled", json::value::boolean(s.compiled_in && s.enabled));

  json::value counters = json::value::object();
  for (std::size_t i = 0; i < counter_count; ++i) {
    counters.set(counter_name(static_cast<counter>(i)),
                 json::value::number(static_cast<double>(s.counters[i])));
  }
  m.set("counters", std::move(counters));

  json::value gauges = json::value::object();
  for (std::size_t i = 0; i < gauge_count; ++i) {
    gauges.set(gauge_name(static_cast<gauge>(i)),
               json::value::number(static_cast<double>(s.gauges[i])));
  }
  m.set("gauges", std::move(gauges));

  json::value histograms = json::value::object();
  for (std::size_t i = 0; i < histogram_count; ++i) {
    const histogram_summary& h = s.histograms[i];
    json::value hist = json::value::object();
    hist.set("count", json::value::number(static_cast<double>(h.count)));
    hist.set("sum", json::value::number(static_cast<double>(h.sum)));
    hist.set("mean", json::value::number(h.mean()));
    hist.set("p50", json::value::number(h.p50));
    hist.set("p95", json::value::number(h.p95));
    hist.set("p99", json::value::number(h.p99));
    histograms.set(histogram_name(static_cast<histogram>(i)),
                   std::move(hist));
  }
  m.set("histograms", std::move(histograms));

  json::value derived = json::value::object();
  derived.set("spt_cache_hit_rate", json::value::number(spt_cache_hit_rate(s)));
  derived.set("scheduler_busy_fraction",
              json::value::number(scheduler_busy_fraction(s)));
  derived.set("traversal_passes",
              json::value::number(static_cast<double>(traversal_passes(s))));
  m.set("derived", std::move(derived));
  return m;
}

}  // namespace mcast::obs
