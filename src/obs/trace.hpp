// Scoped-span tracer emitting Chrome trace_event JSON.
//
// A `span` is an RAII scope: construction stamps a steady-clock start,
// destruction computes the duration and pushes one complete event ("ph":
// "X") into the calling thread's ring buffer. Rings are fixed-capacity and
// overwrite their oldest events (the dropped count is reported), so a
// runaway span source can never grow memory; `trace_collect` merges every
// ring into one list ordered by (start time, lane, name) — a deterministic
// order for any interleaving — and `write_chrome_trace` serializes it in
// the `{"traceEvents": [...]}` format that chrome://tracing and Perfetto
// load directly.
//
// Request identity: a thread can carry a `trace_context` (installed by the
// RAII `trace_scope`); spans opened while a context is active record its
// trace_id plus parent/child span linkage, and `write_chrome_trace` adds
// the ids as event args and synthesizes flow events ("ph": "s"/"f") so a
// request's cross-lane spans draw as one connected arc in the viewer.
// Contexts are thread-local and maintained even while tracing is off —
// installing one is two plain stores — so the access log can attribute
// records without the tracer running.
//
// Tracing is off until `trace_enable(capacity)`; a disabled span costs one
// relaxed load. Spans use the same per-thread lanes (shard tids) as the
// metric counters, so a worker's spans and counters line up. With
// MCAST_OBS_DISABLED every entry point collapses to a no-op and
// MCAST_OBS_SPAN declares an empty object.
//
// Spans are for coarse units — an experiment run, a sweep point, a tree
// repair — not the traversal inner loop; counters cover that granularity.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace mcast::obs {

/// One completed span. Times are steady-clock nanoseconds. The id triple
/// is zero for spans opened outside any request context.
struct trace_event {
  std::string name;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;  ///< lane: the emitting thread's shard id
  std::uint64_t trace_id = 0;   ///< request identity; 0 = no context
  std::uint64_t span_id = 0;    ///< this span's own id within the process
  std::uint64_t parent_id = 0;  ///< enclosing span's id; 0 = root
};

/// Everything the rings held at collection time, merged and ordered by
/// (start_ns, tid, name).
struct trace_dump {
  std::vector<trace_event> events;
  std::uint64_t dropped = 0;  ///< events overwritten by ring wraparound
};

/// Request identity carried by a thread: spans opened under it inherit
/// `trace_id` and chain `parent_span` as their parent. Copy the frontend's
/// `current_trace()` into a worker task and install it with `trace_scope`
/// to keep cross-thread spans on one trace.
struct trace_context {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;
};

/// Deterministic trace-id mint: a salted splitmix64 chain over (seed,
/// conn, op), so a fixed seed reproduces every request's id. Pure —
/// usable under MCAST_OBS_DISABLED and never 0 (0 means "no trace").
constexpr std::uint64_t trace_request_id(std::uint64_t seed,
                                         std::uint64_t conn,
                                         std::uint64_t op) noexcept {
  std::uint64_t x = seed + 0x9e3779b97f4a7c15ull;
  auto mix = [](std::uint64_t v) {
    v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ull;
    v = (v ^ (v >> 27)) * 0x94d049bb133111ebull;
    return v ^ (v >> 31);
  };
  x = mix(x + conn * 0xbf58476d1ce4e5b9ull);
  x = mix(x + op * 0x94d049bb133111ebull);
  return x == 0 ? 1 : x;
}

#if defined(MCAST_OBS_DISABLED)

class span {
 public:
  explicit span(const char*) noexcept {}
  explicit span(std::string) noexcept {}
  span(const span&) = delete;
  span& operator=(const span&) = delete;
};

class trace_scope {
 public:
  explicit trace_scope(trace_context) noexcept {}
  trace_scope(const trace_scope&) = delete;
  trace_scope& operator=(const trace_scope&) = delete;
};

inline trace_context current_trace() noexcept { return trace_context{}; }

inline void trace_enable(std::size_t = 4096) noexcept {}
inline void trace_disable() noexcept {}
inline bool trace_enabled() noexcept { return false; }
inline void trace_clear() noexcept {}
inline trace_dump trace_collect() { return trace_dump{}; }

#else

/// Starts buffering spans; each thread's ring holds up to `ring_capacity`
/// events (>= 1). Re-enabling with a different capacity re-sizes rings
/// lazily on each thread's next span.
void trace_enable(std::size_t ring_capacity = 4096) noexcept;

/// Stops buffering (already-buffered events stay until trace_clear).
void trace_disable() noexcept;
bool trace_enabled() noexcept;

/// Drops all buffered events and zeroes the dropped count.
void trace_clear() noexcept;

/// Merges every thread's ring, ordered by (start_ns, tid, name).
trace_dump trace_collect();

/// The calling thread's active request context ({0,0} when none).
trace_context current_trace() noexcept;

/// RAII: installs `ctx` as the calling thread's context, restoring the
/// previous one on destruction. Works while tracing is disabled, so the
/// access log can attribute records without the span rings running.
class trace_scope {
 public:
  explicit trace_scope(trace_context ctx) noexcept;
  ~trace_scope();
  trace_scope(const trace_scope&) = delete;
  trace_scope& operator=(const trace_scope&) = delete;

 private:
  trace_context prev_;
};

class span {
 public:
  /// The const char* overload defers the string copy until tracing is
  /// confirmed on, so a disabled span costs one relaxed load.
  explicit span(const char* name) noexcept;
  explicit span(std::string name) noexcept;
  ~span();
  span(const span&) = delete;
  span& operator=(const span&) = delete;

 private:
  void begin() noexcept;

  std::string name_;
  std::uint64_t start_ns_ = 0;  ///< 0 = tracing was off at construction
  std::uint64_t trace_id_ = 0;
  std::uint64_t span_id_ = 0;
  std::uint64_t parent_id_ = 0;
  std::uint64_t prev_parent_ = 0;
};

#endif  // MCAST_OBS_DISABLED

/// Serializes a dump as Chrome trace_event JSON (load in chrome://tracing
/// or https://ui.perfetto.dev). Timestamps are rebased to the earliest
/// event so traces start near t=0. Events with a trace_id carry it (and
/// their span/parent ids) as hex strings under "args"; traces whose spans
/// cross lanes additionally get flow events binding the lanes together.
void write_chrome_trace(std::ostream& out, const trace_dump& dump);

/// write_chrome_trace to `path`; throws std::runtime_error on I/O failure.
void write_chrome_trace_file(const std::string& path, const trace_dump& dump);

#define MCAST_OBS_CAT2(a, b) a##b
#define MCAST_OBS_CAT(a, b) MCAST_OBS_CAT2(a, b)
/// Declares a scope-lifetime span; `name` may be a const char* or string.
#define MCAST_OBS_SPAN(name) \
  ::mcast::obs::span MCAST_OBS_CAT(mcast_obs_span_, __LINE__)(name)

}  // namespace mcast::obs
