// Per-request structured access log (JSONL, schema mcast-access-log/1).
//
// One line per service request, written when the frontend finishes the
// response: op, topology key, home shard, the latency split (queue wait /
// compute / serialize / write), byte counts, outcome, and the degraded /
// shed / chaos flags. The sink is process-global and off by default;
// `access_log_enable(path, slow_ns)` opens it and sets the slow-query
// threshold (entries at or over it are flagged "slow": true and counted
// in svc.access.slow).
//
// Lifecycle mirrors how a request flows: the server worker thread calls
// `access_begin(trace_id)` before dispatching, the service layers fill in
// fields through `access_current()` (thread-local — only the frontend
// thread that began the entry may annotate; shard workers report timings
// back through the router, which annotates after the join), and the
// server calls `access_finish()` after the response bytes are written.
// When the sink is closed every call is a cheap no-op, and responses are
// byte-identical either way: the log observes a request, never alters it.
//
// With MCAST_OBS_DISABLED the stateful API collapses to no-ops;
// `access_log_line` (the pure serializer) stays available.
#pragma once

#include <cstdint>
#include <string>

namespace mcast::obs {

inline constexpr const char* k_access_log_schema = "mcast-access-log/1";

/// One request's record. Filled incrementally; see header comment.
struct access_entry {
  std::uint64_t trace_id = 0;  ///< server-minted id (see trace_request_id)
  std::string token;           ///< client "trace" token, "" when absent
  std::string op;              ///< request op, "" if the line never parsed
  std::string topology;        ///< topology key, "" for non-topology ops
  std::int64_t shard = -1;     ///< home shard; -1 = frontend/inline
  std::uint64_t queue_wait_ns = 0;  ///< max shard-queue wait across chunks
  std::uint64_t compute_ns = 0;     ///< handler time (parse + dispatch)
  std::uint64_t serialize_ns = 0;   ///< response document -> bytes
  std::uint64_t write_ns = 0;       ///< socket write of the response line
  std::uint64_t total_ns = 0;       ///< begin -> finish wall time
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t fanout = 0;     ///< scatter chunks dispatched to shards
  std::uint64_t fallbacks = 0;  ///< chunks refused by a full shard queue
  std::string outcome;          ///< "ok" or the typed error code
  bool degraded = false;
  bool shed = false;
  bool chaos = false;  ///< a chaos fault touched this connection's request
};

/// Serializes one entry as a single JSON line (no trailing newline).
/// `slow` marks entries at or over the configured threshold. Pure; also
/// available under MCAST_OBS_DISABLED.
std::string access_log_line(const access_entry& e, bool slow = false);

#if defined(MCAST_OBS_DISABLED)

inline void access_log_enable(const std::string&, std::uint64_t = 0) {}
inline void access_log_disable() noexcept {}
inline bool access_log_enabled() noexcept { return false; }
inline bool access_begin(std::uint64_t) noexcept { return false; }
inline access_entry* access_current() noexcept { return nullptr; }
inline void access_finish() noexcept {}

#else

/// Opens (truncates) the JSONL sink at `path`; entries whose total_ns is
/// >= `slow_ns` are flagged slow (0 disables the threshold). Throws
/// std::runtime_error if the file cannot be opened.
void access_log_enable(const std::string& path, std::uint64_t slow_ns = 0);

/// Flushes and closes the sink; subsequent calls become no-ops.
void access_log_disable();
bool access_log_enabled() noexcept;

/// Starts this thread's entry for one request. Returns false (and stays
/// inactive) when the sink is closed.
bool access_begin(std::uint64_t trace_id);

/// The in-flight entry begun on this thread, or nullptr when none.
access_entry* access_current() noexcept;

/// Writes the entry begun on this thread and deactivates it.
void access_finish();

#endif  // MCAST_OBS_DISABLED

}  // namespace mcast::obs
