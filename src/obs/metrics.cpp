#include "obs/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

namespace mcast::obs {

namespace {

#define MCAST_OBS_NAME(id, name) name,
constexpr const char* k_counter_names[] = {MCAST_OBS_COUNTERS(MCAST_OBS_NAME)};
constexpr const char* k_gauge_names[] = {MCAST_OBS_GAUGES(MCAST_OBS_NAME)};
constexpr const char* k_histogram_names[] = {
    MCAST_OBS_HISTOGRAMS(MCAST_OBS_NAME)};
#undef MCAST_OBS_NAME

static_assert(std::size(k_counter_names) == counter_count);
static_assert(std::size(k_gauge_names) == gauge_count);
static_assert(std::size(k_histogram_names) == histogram_count);

}  // namespace

const char* counter_name(counter c) noexcept {
  return k_counter_names[static_cast<std::size_t>(c)];
}
const char* gauge_name(gauge g) noexcept {
  return k_gauge_names[static_cast<std::size_t>(g)];
}
const char* histogram_name(histogram h) noexcept {
  return k_histogram_names[static_cast<std::size_t>(h)];
}

namespace {

// Linear scan: the tables are small and lookups happen at spec-parse
// time, never on a hot path.
template <typename Enum, std::size_t N>
bool enum_from_name(const char* const (&names)[N], const std::string& name,
                    Enum& out) noexcept {
  for (std::size_t i = 0; i < N; ++i) {
    if (name == names[i]) {
      out = static_cast<Enum>(i);
      return true;
    }
  }
  return false;
}

}  // namespace

bool counter_from_name(const std::string& name, counter& out) noexcept {
  return enum_from_name(k_counter_names, name, out);
}
bool gauge_from_name(const std::string& name, gauge& out) noexcept {
  return enum_from_name(k_gauge_names, name, out);
}
bool histogram_from_name(const std::string& name, histogram& out) noexcept {
  return enum_from_name(k_histogram_names, name, out);
}

double spt_cache_hit_rate(const metrics_snapshot& s) noexcept {
  const double hits = static_cast<double>(s.at(counter::spt_cache_hits));
  const double total = hits + static_cast<double>(s.at(counter::spt_cache_misses));
  return total == 0.0 ? 0.0 : hits / total;
}

double scheduler_busy_fraction(const metrics_snapshot& s) noexcept {
  const double busy = static_cast<double>(s.at(counter::sched_busy_ns));
  const double worker = static_cast<double>(s.at(counter::sched_worker_ns));
  return worker == 0.0 ? 0.0 : std::min(1.0, busy / worker);
}

std::uint64_t traversal_passes(const metrics_snapshot& s) noexcept {
  return s.at(counter::bfs_passes) + s.at(counter::dijkstra_passes);
}

void render_metrics_summary(std::ostream& out, const metrics_snapshot& s) {
  char line[160];
  out << "-- metrics"
      << (s.compiled_in ? (s.enabled ? "" : " (runtime-disabled)")
                        : " (compiled out)")
      << " --\n";
  for (std::size_t i = 0; i < counter_count; ++i) {
    if (s.counters[i] == 0) continue;
    std::snprintf(line, sizeof line, "  %-32s %20" PRIu64 "\n",
                  k_counter_names[i], s.counters[i]);
    out << line;
  }
  for (std::size_t i = 0; i < gauge_count; ++i) {
    if (s.gauges[i] == 0) continue;
    std::snprintf(line, sizeof line, "  %-32s %20" PRIu64 "  (gauge)\n",
                  k_gauge_names[i], s.gauges[i]);
    out << line;
  }
  for (std::size_t i = 0; i < histogram_count; ++i) {
    const histogram_summary& h = s.histograms[i];
    if (h.count == 0) continue;
    std::snprintf(line, sizeof line,
                  "  %-32s count=%" PRIu64 " mean=%.1f p50<=%.0f p95<=%.0f "
                  "p99<=%.0f\n",
                  k_histogram_names[i], h.count, h.mean(), h.p50, h.p95, h.p99);
    out << line;
  }
  std::snprintf(line, sizeof line,
                "  spt_cache hit rate %.1f%%   scheduler busy %.1f%%   "
                "traversal passes %" PRIu64 "\n",
                100.0 * spt_cache_hit_rate(s),
                100.0 * scheduler_busy_fraction(s), traversal_passes(s));
  out << line;
}

#if !defined(MCAST_OBS_DISABLED)

namespace detail {

namespace {

// Owns every shard ever created. Shards of exited threads are *parked*
// (values intact, still aggregated) and handed to the next thread that
// starts, bounding memory under thread churn. Intentionally leaked so
// thread_local destructors running at process exit can still release.
class shard_registry {
 public:
  static shard_registry& instance() {
    static shard_registry* r = new shard_registry();  // leaked on purpose
    return *r;
  }

  shard* acquire() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!parked_.empty()) {
      shard* s = parked_.back();
      parked_.pop_back();
      return s;
    }
    shards_.push_back(std::make_unique<shard>());
    shard* s = shards_.back().get();
    s->tid = static_cast<std::uint32_t>(shards_.size() - 1);
    return s;
  }

  void park(shard* s) {
    std::lock_guard<std::mutex> lock(mutex_);
    parked_.push_back(s);
  }

  void reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& s : shards_) {
      for (auto& c : s->counters) c.store(0, std::memory_order_relaxed);
      for (auto& h : s->histograms) {
        for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
        h.count.store(0, std::memory_order_relaxed);
        h.sum.store(0, std::memory_order_relaxed);
      }
    }
    for (auto& g : gauges_) g.store(0, std::memory_order_relaxed);
  }

  void aggregate(metrics_snapshot& out) {
    std::lock_guard<std::mutex> lock(mutex_);
    std::array<std::array<std::uint64_t, histogram_buckets>, histogram_count>
        buckets{};
    for (const auto& s : shards_) {
      for (std::size_t i = 0; i < counter_count; ++i) {
        out.counters[i] += s->counters[i].load(std::memory_order_relaxed);
      }
      for (std::size_t i = 0; i < histogram_count; ++i) {
        const shard::hist& h = s->histograms[i];
        out.histograms[i].count += h.count.load(std::memory_order_relaxed);
        out.histograms[i].sum += h.sum.load(std::memory_order_relaxed);
        for (std::size_t b = 0; b < histogram_buckets; ++b) {
          buckets[i][b] += h.buckets[b].load(std::memory_order_relaxed);
        }
      }
    }
    for (std::size_t i = 0; i < gauge_count; ++i) {
      out.gauges[i] = gauges_[i].load(std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < histogram_count; ++i) {
      histogram_summary& h = out.histograms[i];
      h.p50 = bucket_quantile(buckets[i], h.count, 0.50);
      h.p95 = bucket_quantile(buckets[i], h.count, 0.95);
      h.p99 = bucket_quantile(buckets[i], h.count, 0.99);
    }
  }

  void gauge_max(std::size_t index, std::uint64_t v) {
    std::atomic<std::uint64_t>& g = gauges_[index];
    std::uint64_t cur = g.load(std::memory_order_relaxed);
    while (cur < v &&
           !g.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

 private:
  shard_registry() = default;

  /// Upper bound of the bucket holding the ceil(q*count)-th sample.
  static double bucket_quantile(
      const std::array<std::uint64_t, histogram_buckets>& buckets,
      std::uint64_t count, double q) {
    if (count == 0) return 0.0;
    const std::uint64_t target = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(q * static_cast<double>(count) + 0.5));
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < histogram_buckets; ++b) {
      cum += buckets[b];
      if (cum >= target) {
        if (b == 0) return 0.0;
        if (b >= 64) return 18446744073709551615.0;  // uint64 max
        return static_cast<double>((std::uint64_t{1} << b) - 1);
      }
    }
    return 0.0;  // unreachable: cum == count >= target by the last bucket
  }

  std::mutex mutex_;
  std::vector<std::unique_ptr<shard>> shards_;
  std::vector<shard*> parked_;
  std::array<std::atomic<std::uint64_t>, gauge_count> gauges_{};
};

// Acquires a shard on a thread's first metric and parks it when the
// thread exits (values intact — they stay part of the totals).
struct shard_handle {
  shard* s = shard_registry::instance().acquire();
  ~shard_handle() { shard_registry::instance().park(s); }
};

}  // namespace

shard& local_shard() noexcept {
  thread_local shard_handle handle;
  return *handle.s;
}

}  // namespace detail

void gauge_max(gauge g, std::uint64_t v) noexcept {
  if (!enabled()) return;
  detail::shard_registry::instance().gauge_max(static_cast<std::size_t>(g), v);
}

void reset_metrics() noexcept {
  detail::shard_registry::instance().reset();
}

metrics_snapshot snapshot() {
  metrics_snapshot out;
  out.compiled_in = true;
  out.enabled = enabled();
  detail::shard_registry::instance().aggregate(out);
  return out;
}

#endif  // !MCAST_OBS_DISABLED

}  // namespace mcast::obs
