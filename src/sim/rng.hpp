// Deterministic pseudo-random number generation for all experiments.
//
// Every stochastic component in mcast (topology generators, receiver
// samplers, the affinity Metropolis chain, Monte-Carlo runners) draws from
// an `rng` seeded explicitly by the caller, so every figure in the paper
// reproduction is bit-for-bit repeatable. The engine is xoshiro256**
// (Blackman & Vigna), seeded through splitmix64; it is much faster than
// std::mt19937_64 and passes BigCrush.
#pragma once

#include <cstdint>

namespace mcast {

/// Stateless 64-bit mixer; used for seeding and cheap hash-like streams.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** engine with convenience draws.
///
/// Satisfies UniformRandomBitGenerator, so it also plugs into <random>
/// distributions when needed.
class rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the engine deterministically from a single 64-bit seed.
  explicit rng(std::uint64_t seed = 0x6d636173745f3939ULL /* "mcast_99" */) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit value.
  std::uint64_t operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Lemire's unbiased multiply-shift rejection method.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool chance(double p) { return uniform() < p; }

  /// Standard exponential variate with the given rate (> 0).
  double exponential(double rate);

  /// Independent child stream; deterministic function of this stream's
  /// current state and `stream_id`. Use to give each Monte-Carlo task its
  /// own decorrelated generator without sharing mutable state.
  rng fork(std::uint64_t stream_id);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace mcast
