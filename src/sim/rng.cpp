#include "sim/rng.hpp"

#include <cmath>

#include "common/contract.hpp"

namespace mcast {

std::uint64_t rng::below(std::uint64_t bound) {
  expects(bound > 0, "rng::below: bound must be positive");
  // Lemire 2019: multiply-shift with rejection in the biased zone.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t rng::between(std::uint64_t lo, std::uint64_t hi) {
  expects(lo <= hi, "rng::between: requires lo <= hi");
  return lo + below(hi - lo + 1);
}

double rng::exponential(double rate) {
  expects(rate > 0.0, "rng::exponential: rate must be positive");
  // -log(1-U)/rate; 1-uniform() is in (0,1], avoiding log(0).
  return -std::log(1.0 - uniform()) / rate;
}

rng rng::fork(std::uint64_t stream_id) {
  // Derive the child seed from fresh output plus the stream id, mixed hard.
  std::uint64_t mixer = (*this)() ^ (stream_id * 0x9e3779b97f4a7c15ULL);
  return rng(splitmix64(mixer));
}

}  // namespace mcast
