// Minimal discrete-event core: a time-ordered queue of callbacks.
//
// Substrate for the session-level simulator (session/simulator.hpp), which
// needs Poisson arrivals, exponential lifetimes and churn — all expressed
// as events. Deliberately tiny: schedule, cancel, run. Determinism comes
// from strict (time, sequence) ordering, so ties fire in scheduling order.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace mcast {

class event_queue {
 public:
  using handler = std::function<void()>;
  /// Token for cancellation; monotonically increasing per schedule() call.
  using event_id = std::uint64_t;

  /// Schedules `fn` at absolute time `when` (>= now()). Returns an id that
  /// can be passed to cancel().
  event_id schedule(double when, handler fn);

  /// Cancels a pending event; cancelling an already-fired or unknown id is
  /// a no-op (returns false).
  bool cancel(event_id id);

  /// Current simulation time (the time of the last fired event, 0 before
  /// any event fires).
  double now() const noexcept { return now_; }

  /// Number of pending (non-cancelled) events.
  std::size_t pending() const noexcept { return pending_; }

  /// Fires events in (time, schedule order) until the queue is empty or
  /// the next event is after `t_end`; now() advances to min(t_end, last
  /// fired time... precisely: to t_end when the run stops on the horizon).
  /// Returns the number of events fired.
  std::size_t run_until(double t_end);

  /// Fires exactly one event if any is pending; returns whether one fired.
  bool step();

 private:
  struct entry {
    double when;
    event_id id;
    bool operator>(const entry& other) const {
      return when != other.when ? when > other.when : id > other.id;
    }
  };

  std::priority_queue<entry, std::vector<entry>, std::greater<>> queue_;
  std::vector<handler> handlers_;  // indexed by id; empty fn = cancelled
  double now_ = 0.0;
  std::size_t pending_ = 0;
};

}  // namespace mcast
