#include "sim/csv.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/contract.hpp"

namespace mcast {

table_writer::table_writer(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  expects(!headers_.empty(), "table_writer: need at least one column");
}

void table_writer::add_row(std::vector<std::string> cells) {
  expects(cells.size() == headers_.size(),
          "table_writer::add_row: cell count must match header count");
  rows_.push_back(std::move(cells));
}

std::string table_writer::num(double value, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << value;
  return os.str();
}

void table_writer::print(std::ostream& out) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
    }
    out << "\n";
  };
  emit(headers_);
  std::size_t rule = 0;
  for (std::size_t w : width) rule += w + 2;
  out << std::string(rule, '-') << "\n";
  for (const auto& row : rows_) emit(row);
}

void print_series(std::ostream& out, const std::string& label,
                  const std::vector<double>& x, const std::vector<double>& y) {
  expects(x.size() == y.size(), "print_series: x/y size mismatch");
  out << "# series: " << label << "\n";
  for (std::size_t i = 0; i < x.size(); ++i) {
    out << std::setprecision(10) << x[i] << " " << y[i] << "\n";
  }
  out << "\n";
}

void print_fit_line(std::ostream& out, const std::string& label,
                    const std::string& text) {
  out << "FIT: " << label << " " << text << "\n";
}

}  // namespace mcast
