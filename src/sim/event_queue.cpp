#include "sim/event_queue.hpp"

#include "common/contract.hpp"
#include "obs/metrics.hpp"

namespace mcast {

event_queue::event_id event_queue::schedule(double when, handler fn) {
  expects(when >= now_, "event_queue::schedule: cannot schedule in the past");
  expects(static_cast<bool>(fn), "event_queue::schedule: handler must be callable");
  const event_id id = handlers_.size();
  handlers_.push_back(std::move(fn));
  queue_.push({when, id});
  ++pending_;
  return id;
}

bool event_queue::cancel(event_id id) {
  if (id >= handlers_.size() || !handlers_[id]) return false;
  handlers_[id] = nullptr;  // lazily dropped when popped
  --pending_;
  return true;
}

bool event_queue::step() {
  while (!queue_.empty()) {
    const entry e = queue_.top();
    queue_.pop();
    if (!handlers_[e.id]) continue;  // cancelled
    now_ = e.when;
    handler fn = std::move(handlers_[e.id]);
    handlers_[e.id] = nullptr;
    --pending_;
    obs::add(obs::counter::sim_events);
    fn();
    return true;
  }
  return false;
}

std::size_t event_queue::run_until(double t_end) {
  expects(t_end >= now_, "event_queue::run_until: horizon is in the past");
  std::size_t fired = 0;
  while (!queue_.empty()) {
    // Skip cancelled entries without advancing time.
    const entry e = queue_.top();
    if (!handlers_[e.id]) {
      queue_.pop();
      continue;
    }
    if (e.when > t_end) break;
    step();
    ++fired;
  }
  now_ = t_end;
  return fired;
}

}  // namespace mcast
