// Tabular output for the benchmark harness.
//
// Every bench binary regenerating a paper table/figure emits:
//   * a `table_writer` block — aligned, human-readable columns, and/or
//   * `series_block`s — gnuplot-ready "# series: <label>" sections of
//     x y pairs, one block per curve of the figure.
// Keeping this format stable lets EXPERIMENTS.md quote bench output
// verbatim and lets users pipe straight into gnuplot.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mcast {

/// Accumulates rows and prints them with aligned columns.
class table_writer {
 public:
  /// Column headers. Must be non-empty.
  explicit table_writer(std::vector<std::string> headers);

  /// Adds a row; must have exactly one cell per header.
  void add_row(std::vector<std::string> cells);

  /// Formats a double with `precision` significant digits (helper for rows).
  static std::string num(double value, int precision = 5);

  /// Writes the table: header line, rule, rows.
  void print(std::ostream& out) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Writes one named x/y series in gnuplot-friendly form:
///   # series: <label>
///   <x> <y>
///   ...
///   <blank line>
void print_series(std::ostream& out, const std::string& label,
                  const std::vector<double>& x, const std::vector<double>& y);

/// Writes "FIT: <label> <text>" — the one-line machine-greppable summary
/// each bench emits for EXPERIMENTS.md (measured exponent, slope, ...).
void print_fit_line(std::ostream& out, const std::string& label,
                    const std::string& text);

}  // namespace mcast
