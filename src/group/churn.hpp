// Churn drivers — the workloads that make a group's tree a process.
//
// Two drivers feed join/leave sequences to one group_manager group over
// the discrete-event core (sim/event_queue.hpp):
//
//   * Poisson churn — an M/M/∞ membership: joins arrive Poisson(join_rate)
//     at uniform random non-root sites and each member stays an
//     exponential(mean_lifetime) holding time, so the stationary mean
//     group size is join_rate * mean_lifetime. This is the workload the
//     ext_churn experiment sweeps to ask whether the m^0.8 law holds for
//     the *time-averaged* tree.
//   * Trace replay — a recorded membership_event sequence applied
//     verbatim. run_poisson_churn can emit the trace it played, and
//     replaying that trace on a fresh group must land byte-identical
//     final state and time-averages (tests/test_group.cpp pins this), so
//     measured workloads can be re-run against other tree modes.
//
// Both integrate links(t), cost(t) and members(t) lazily over the
// post-warmup window and histogram completed member lifetimes in
// power-of-two buckets. Deterministic given the seed.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "group/group_manager.hpp"

namespace mcast {

struct churn_workload {
  double join_rate = 1.0;       ///< member joins per unit time, > 0
  double mean_lifetime = 5.0;   ///< exponential holding time mean, > 0
  double horizon = 100.0;       ///< simulated span after warmup, > 0
  double warmup = 0.0;          ///< settle-in span excluded from averages
};

/// Lifetime histogram: bucket 0 holds lifetimes < 1/64 time units, bucket
/// b holds [2^(b-7), 2^(b-6)), the last bucket everything longer.
inline constexpr std::size_t churn_lifetime_buckets = 24;

struct churn_metrics {
  double duration = 0.0;          ///< measured span (the workload horizon)
  double time_avg_links = 0.0;    ///< ⟨links(t)⟩ over the window
  double time_avg_cost = 0.0;     ///< ⟨cost(t)⟩ (== links unweighted)
  double time_avg_members = 0.0;  ///< ⟨members(t)⟩
  std::size_t peak_members = 0;
  std::size_t peak_links = 0;
  std::uint64_t joins = 0;        ///< joins applied inside the window
  std::uint64_t leaves = 0;
  std::uint64_t links_grafted = 0;  ///< graft cost inside the window
  std::uint64_t links_pruned = 0;   ///< prune cost inside the window
  double mean_lifetime = 0.0;       ///< mean of completed lifetimes
  std::array<std::uint64_t, churn_lifetime_buckets> lifetime_histogram{};
};

/// One membership change of a trace: a join (or leave) at `site`.
struct membership_event {
  double time = 0.0;
  node_id site = 0;
  bool join = true;
};

/// Runs Poisson churn against the named group (which must exist, be empty,
/// and span at least 2 reachable nodes). Join sites are drawn uniformly
/// from the non-root nodes the routing base reaches. When `trace` is
/// non-null the applied events are appended to it in firing order.
/// Deterministic given `seed`; the group is left with whatever members
/// the horizon cut off mid-lifetime.
churn_metrics run_poisson_churn(group_manager& groups,
                                const std::string& scope,
                                const std::string& name,
                                const churn_workload& workload,
                                std::uint64_t seed,
                                std::vector<membership_event>* trace = nullptr);

/// Replays a recorded trace against the named group (same preconditions).
/// Events must be time-ordered and non-negative; the measurement window
/// is [warmup, warmup + horizon) exactly as in run_poisson_churn.
churn_metrics replay_membership(group_manager& groups,
                                const std::string& scope,
                                const std::string& name,
                                const std::vector<membership_event>& trace,
                                double horizon, double warmup);

}  // namespace mcast
