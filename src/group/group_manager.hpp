// Group membership control plane (extension) — named, long-lived groups.
//
// The Chuang-Sirbu law prices a group frozen at size m; a serving system
// holds groups that *live*: members join, leave, and the delivery tree
// grafts and prunes branches as they do. This manager is the stateful
// layer between the data-plane primitive (multicast/dynamic_tree.hpp,
// O(path) graft/prune via link refcounts) and everything that drives it —
// the churn workloads (group/churn.hpp), the session simulator
// (session/simulator.cpp) and the live `group_*` service ops
// (service/ops_group.cpp).
//
// A group is keyed by (scope, name): the scope is an opaque partition
// label its creator chooses — the query service uses the canonical
// topology key ("ts1000:7:300"), so every group of one topology shares a
// scope and, under the sharded service, lives on exactly one shard. Two
// routing modes mirror the tree families the library measures:
//
//   * source mode — the tree is rooted at a fixed sender (the paper's
//     source-specific SPT model);
//   * shared mode — the root is a rendezvous core chosen by the
//     ext_shared_tree strategies (multicast/shared_tree.hpp), so the
//     group tracks the receivers->core union of a CBT/PIM-SM shared tree.
//
// Determinism contract: every mutation runs under the manager mutex and a
// group's state is a pure function of the op sequence applied to it — no
// wall clock, no thread identity, no iteration-order dependence. N
// threads mutating disjoint groups therefore leave byte-identical state
// to any serial interleaving of their per-group sequences (locked down by
// tests/test_group.cpp and the service loopback suite).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "graph/weights.hpp"
#include "multicast/dynamic_tree.hpp"
#include "multicast/shared_tree.hpp"
#include "multicast/spt.hpp"

namespace mcast {

/// How a group routes: rooted at a fixed source, or at a chosen core.
enum class group_mode { source, shared };

/// Creation-time routing choices for the graph-backed create() overload.
struct group_config {
  group_mode mode = group_mode::source;
  /// Source mode: the sender the tree is rooted at.
  node_id root = 0;
  /// Shared mode: core placement strategy and the seed of its RNG draw
  /// (the ext_shared_tree knobs; deterministic given the seed).
  core_strategy core = core_strategy::path_center;
  std::uint64_t core_seed = 1;
  std::size_t core_probes = 16;
  /// Optional cost model: when set, snapshots report the weighted link
  /// sum as `cost`. Must outlive the group and match the graph.
  const edge_weights* weights = nullptr;
};

/// Point-in-time view of one group; every mutating call returns the
/// post-op snapshot so callers never need a second lookup.
struct group_snapshot {
  std::string scope;
  std::string name;
  group_mode mode = group_mode::source;
  node_id root = 0;
  /// Bumped on every successful mutation (join/leave/rebase); create is
  /// generation 0. Lets clients detect missed updates cheaply.
  std::uint64_t generation = 0;
  std::size_t members = 0;  ///< receiver instances currently joined
  std::size_t sites = 0;    ///< distinct nodes hosting >= 1 instance
  std::size_t links = 0;    ///< current delivery-tree links
  double cost = 0.0;        ///< weighted link sum (== links unweighted)
  std::uint64_t joins = 0;
  std::uint64_t leaves = 0;
  std::uint64_t links_grafted = 0;  ///< links gained across all joins
  std::uint64_t links_pruned = 0;   ///< links dropped across all leaves
  std::size_t peak_members = 0;
  std::size_t peak_links = 0;
  /// Links the op producing this snapshot gained/dropped (0 for reads).
  std::size_t last_grafted = 0;
  std::size_t last_pruned = 0;
};

/// Thread-safe registry of live groups. All operations are O(path) in the
/// tree walk plus one ordered-map lookup; list() is O(groups).
class group_manager {
 public:
  group_manager() = default;

  group_manager(const group_manager&) = delete;
  group_manager& operator=(const group_manager&) = delete;

  /// Creates a group routed over `g` per `config` (source mode: BFS tree
  /// from config.root; shared mode: BFS tree from the chosen core).
  /// Throws std::invalid_argument on a duplicate key or an empty name,
  /// std::out_of_range on an out-of-range root.
  group_snapshot create(const std::string& scope, const std::string& name,
                        std::shared_ptr<const graph> g,
                        const group_config& config);

  /// Embedder path: the caller supplies the routing base directly (e.g.
  /// the session simulator's SPT over a degraded view). Mode is `source`
  /// with root = routing->source(); `weights`, when set, must outlive the
  /// group and match the routing topology.
  group_snapshot create(const std::string& scope, const std::string& name,
                        std::shared_ptr<const source_tree> routing,
                        const edge_weights* weights = nullptr);

  /// Adds `count` receiver instances at `site`, grafting missing links.
  /// Throws std::invalid_argument for an unknown group or an unreachable
  /// site, std::out_of_range for a site outside the topology.
  group_snapshot join(const std::string& scope, const std::string& name,
                      node_id site, std::uint32_t count = 1);

  /// Removes `count` receiver instances at `site`, pruning emptied links.
  /// Throws std::invalid_argument when fewer than `count` instances are
  /// joined there.
  group_snapshot leave(const std::string& scope, const std::string& name,
                       node_id site, std::uint32_t count = 1);

  /// Read-only snapshot; throws std::invalid_argument for unknown groups.
  group_snapshot stats(const std::string& scope,
                       const std::string& name) const;

  /// Replaces the routing base and delivery tree in one step — the repair
  /// hook: the session simulator re-converges a group onto a degraded
  /// view and hands the rebuilt tree back here. Counters survive, the
  /// generation bumps, and links/cost re-sync to the new tree (the link
  /// delta is deliberately NOT counted as graft/prune: it is convergence
  /// churn, not membership churn).
  group_snapshot rebase(const std::string& scope, const std::string& name,
                        std::shared_ptr<const source_tree> routing,
                        std::unique_ptr<dynamic_delivery_tree> delivery);

  /// The live delivery tree (for embedders that need to hand it to
  /// repair_delivery_tree). The reference is invalidated by rebase/erase;
  /// throws std::invalid_argument for unknown groups.
  const dynamic_delivery_tree& delivery(const std::string& scope,
                                        const std::string& name) const;

  bool contains(const std::string& scope, const std::string& name) const;

  /// Drops a group; false when it does not exist.
  bool erase(const std::string& scope, const std::string& name);

  /// Snapshots of every live group, sorted by (scope, name) — the
  /// deterministic order the `group_list` op renders regardless of which
  /// shard (or thread) owned which group.
  std::vector<group_snapshot> list() const;

  std::size_t size() const;

 private:
  struct group_state {
    group_mode mode = group_mode::source;
    std::shared_ptr<const graph> keepalive;  ///< null on the embedder path
    std::shared_ptr<const source_tree> routing;
    std::unique_ptr<dynamic_delivery_tree> delivery;
    std::uint64_t generation = 0;
    std::uint64_t joins = 0;
    std::uint64_t leaves = 0;
    std::uint64_t links_grafted = 0;
    std::uint64_t links_pruned = 0;
    std::size_t peak_members = 0;
    std::size_t peak_links = 0;
  };
  using group_key = std::pair<std::string, std::string>;

  group_snapshot insert_locked(const std::string& scope,
                               const std::string& name, group_state state);
  group_state& find_locked(const std::string& scope, const std::string& name);
  const group_state& find_locked(const std::string& scope,
                                 const std::string& name) const;
  group_snapshot snapshot_locked(const group_key& key,
                                 const group_state& state) const;

  mutable std::mutex mu_;
  std::map<group_key, group_state> groups_;
};

}  // namespace mcast
