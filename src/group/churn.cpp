#include "group/churn.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <functional>
#include <vector>

#include "common/contract.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace mcast {

namespace {

// Shared accounting for both drivers: lazy integrals over the
// [warmup, warmup + horizon) window, window-scoped counters, and the
// FIFO per-site lifetime pairing. Pairing is FIFO in both drivers on
// purpose — instances at one site are indistinguishable to the tree, and
// a replayed trace must histogram the same lifetimes the live run did.
struct churn_accumulator {
  double t_begin;
  double t_end;
  double last_change;
  double links_integral = 0.0;
  double cost_integral = 0.0;
  double members_integral = 0.0;
  std::size_t links = 0;
  double cost = 0.0;
  std::size_t members = 0;
  churn_metrics metrics;
  std::vector<std::deque<double>> join_times;  // per site, FIFO
  double lifetime_sum = 0.0;
  std::uint64_t lifetime_count = 0;

  churn_accumulator(double warmup, double horizon, std::size_t nodes)
      : t_begin(warmup),
        t_end(warmup + horizon),
        last_change(0.0),
        join_times(nodes) {
    metrics.duration = horizon;
  }

  void account(double now) {
    const double from = std::max(last_change, t_begin);
    const double to = std::min(now, t_end);
    if (to > from) {
      const double dt = to - from;
      links_integral += static_cast<double>(links) * dt;
      cost_integral += cost * dt;
      members_integral += static_cast<double>(members) * dt;
    }
    last_change = now;
  }

  bool in_window(double now) const { return now >= t_begin && now <= t_end; }

  void on_join(double now, node_id site, const group_snapshot& snap) {
    links = snap.links;
    cost = snap.cost;
    members = snap.members;
    join_times[site].push_back(now);
    if (in_window(now)) {
      ++metrics.joins;
      metrics.links_grafted += snap.last_grafted;
      metrics.peak_members = std::max(metrics.peak_members, snap.members);
      metrics.peak_links = std::max(metrics.peak_links, snap.links);
    }
  }

  void on_leave(double now, node_id site, const group_snapshot& snap) {
    links = snap.links;
    cost = snap.cost;
    members = snap.members;
    MCAST_ASSERT(!join_times[site].empty());
    const double lifetime = now - join_times[site].front();
    join_times[site].pop_front();
    if (in_window(now)) {
      ++metrics.leaves;
      metrics.links_pruned += snap.last_pruned;
      lifetime_sum += lifetime;
      ++lifetime_count;
      // Power-of-two buckets: bucket b covers [2^(b-7), 2^(b-6)); the
      // ends clamp, so bucket 0 also holds anything shorter.
      int b = 0;
      if (lifetime > 0.0) {
        b = static_cast<int>(std::floor(std::log2(lifetime))) + 7;
      }
      b = std::clamp(b, 0, static_cast<int>(churn_lifetime_buckets) - 1);
      ++metrics.lifetime_histogram[static_cast<std::size_t>(b)];
    }
  }

  churn_metrics finish(double horizon) {
    account(t_end);
    metrics.time_avg_links = links_integral / horizon;
    metrics.time_avg_cost = cost_integral / horizon;
    metrics.time_avg_members = members_integral / horizon;
    metrics.mean_lifetime =
        lifetime_count == 0
            ? 0.0
            : lifetime_sum / static_cast<double>(lifetime_count);
    return metrics;
  }
};

const source_tree& churn_base(group_manager& groups, const std::string& scope,
                              const std::string& name) {
  expects(groups.contains(scope, name), "churn: group does not exist");
  const group_snapshot snap = groups.stats(scope, name);
  expects(snap.members == 0, "churn: group must start empty");
  return groups.delivery(scope, name).base();
}

}  // namespace

churn_metrics run_poisson_churn(group_manager& groups,
                                const std::string& scope,
                                const std::string& name,
                                const churn_workload& w, std::uint64_t seed,
                                std::vector<membership_event>* trace) {
  expects(w.join_rate > 0.0 && w.mean_lifetime > 0.0,
          "run_poisson_churn: rates must be positive");
  expects(w.horizon > 0.0 && w.warmup >= 0.0,
          "run_poisson_churn: horizon must be positive, warmup non-negative");
  const source_tree& base = churn_base(groups, scope, name);

  // Join sites: every non-root node the routing base reaches.
  std::vector<node_id> eligible;
  eligible.reserve(base.node_count());
  for (node_id v = 0; v < base.node_count(); ++v) {
    if (v != base.source() && base.distance(v) != unreachable) {
      eligible.push_back(v);
    }
  }
  expects(!eligible.empty(),
          "run_poisson_churn: routing base reaches no joinable site");

  rng gen(seed);
  event_queue events;
  churn_accumulator acc(w.warmup, w.horizon, base.node_count());
  const double t_end = w.warmup + w.horizon;

  // Per join, the draw order is fixed (site, lifetime, next inter-arrival)
  // so the trajectory is a pure function of the seed.
  std::function<void()> next_join = [&] {
    acc.account(events.now());
    const node_id site = eligible[gen.below(eligible.size())];
    const group_snapshot snap = groups.join(scope, name, site);
    acc.on_join(events.now(), site, snap);
    if (trace != nullptr) {
      trace->push_back({events.now(), site, /*join=*/true});
    }
    events.schedule(events.now() + gen.exponential(1.0 / w.mean_lifetime),
                    [&, site] {
                      acc.account(events.now());
                      const group_snapshot after =
                          groups.leave(scope, name, site);
                      acc.on_leave(events.now(), site, after);
                      if (trace != nullptr) {
                        trace->push_back({events.now(), site, /*join=*/false});
                      }
                    });
    events.schedule(events.now() + gen.exponential(w.join_rate), next_join);
  };
  events.schedule(gen.exponential(w.join_rate), next_join);
  events.run_until(t_end);
  return acc.finish(w.horizon);
}

churn_metrics replay_membership(group_manager& groups,
                                const std::string& scope,
                                const std::string& name,
                                const std::vector<membership_event>& trace,
                                double horizon, double warmup) {
  expects(horizon > 0.0 && warmup >= 0.0,
          "replay_membership: horizon must be positive, warmup non-negative");
  const source_tree& base = churn_base(groups, scope, name);
  churn_accumulator acc(warmup, horizon, base.node_count());
  const double t_end = warmup + horizon;

  double prev = 0.0;
  for (const membership_event& ev : trace) {
    expects(ev.time >= prev,
            "replay_membership: trace must be time-ordered and non-negative");
    prev = ev.time;
    if (ev.time > t_end) break;  // same horizon cut as the live run
    acc.account(ev.time);
    if (ev.join) {
      const group_snapshot snap = groups.join(scope, name, ev.site);
      acc.on_join(ev.time, ev.site, snap);
    } else {
      const group_snapshot snap = groups.leave(scope, name, ev.site);
      acc.on_leave(ev.time, ev.site, snap);
    }
  }
  return acc.finish(horizon);
}

}  // namespace mcast
