#include "group/group_manager.hpp"

#include <algorithm>
#include <utility>

#include "common/contract.hpp"
#include "obs/metrics.hpp"
#include "sim/rng.hpp"

namespace mcast {

group_snapshot group_manager::create(const std::string& scope,
                                     const std::string& name,
                                     std::shared_ptr<const graph> g,
                                     const group_config& config) {
  expects(g != nullptr, "group_manager::create: null graph");
  expects(!name.empty(), "group_manager::create: empty group name");
  node_id root = config.root;
  if (config.mode == group_mode::shared) {
    rng gen(config.core_seed);
    root = choose_core(*g, config.core, gen, config.core_probes);
  } else {
    expects_in_range(root < g->node_count(),
                     "group_manager::create: root out of range");
  }
  if (config.weights != nullptr) {
    expects(&config.weights->topology() == g.get(),
            "group_manager::create: weights bound to a different graph");
  }

  group_state state;
  state.mode = config.mode;
  state.keepalive = g;
  state.routing = std::make_shared<const source_tree>(*g, root);
  state.delivery =
      config.weights == nullptr
          ? std::make_unique<dynamic_delivery_tree>(*state.routing)
          : std::make_unique<dynamic_delivery_tree>(*state.routing,
                                                    *config.weights);

  std::lock_guard<std::mutex> lock(mu_);
  return insert_locked(scope, name, std::move(state));
}

group_snapshot group_manager::create(const std::string& scope,
                                     const std::string& name,
                                     std::shared_ptr<const source_tree> routing,
                                     const edge_weights* weights) {
  expects(routing != nullptr, "group_manager::create: null routing base");
  expects(!name.empty(), "group_manager::create: empty group name");

  group_state state;
  state.mode = group_mode::source;
  state.routing = std::move(routing);
  state.delivery =
      weights == nullptr
          ? std::make_unique<dynamic_delivery_tree>(*state.routing)
          : std::make_unique<dynamic_delivery_tree>(*state.routing, *weights);

  std::lock_guard<std::mutex> lock(mu_);
  return insert_locked(scope, name, std::move(state));
}

group_snapshot group_manager::insert_locked(const std::string& scope,
                                            const std::string& name,
                                            group_state state) {
  const group_key key{scope, name};
  auto [it, inserted] = groups_.emplace(key, std::move(state));
  expects(inserted, "group_manager::create: group already exists");
  obs::add(obs::counter::group_created);
  obs::gauge_max(obs::gauge::group_peak_groups, groups_.size());
  return snapshot_locked(key, it->second);
}

group_snapshot group_manager::join(const std::string& scope,
                                   const std::string& name, node_id site,
                                   std::uint32_t count) {
  expects(count >= 1, "group_manager::join: count must be >= 1");
  std::lock_guard<std::mutex> lock(mu_);
  group_state& s = find_locked(scope, name);
  std::size_t gained = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    gained += s.delivery->join(site);
  }
  s.joins += count;
  s.links_grafted += gained;
  ++s.generation;
  s.peak_members = std::max(s.peak_members, s.delivery->receiver_count());
  s.peak_links = std::max(s.peak_links, s.delivery->link_count());
  obs::add(obs::counter::group_joins, count);
  obs::add(obs::counter::group_links_grafted, gained);
  obs::record(obs::histogram::group_graft_links, gained);
  obs::gauge_max(obs::gauge::group_peak_members, s.delivery->receiver_count());
  group_snapshot snap = snapshot_locked({scope, name}, s);
  snap.last_grafted = gained;
  return snap;
}

group_snapshot group_manager::leave(const std::string& scope,
                                    const std::string& name, node_id site,
                                    std::uint32_t count) {
  expects(count >= 1, "group_manager::leave: count must be >= 1");
  std::lock_guard<std::mutex> lock(mu_);
  group_state& s = find_locked(scope, name);
  expects(site < s.routing->node_count() && s.delivery->receivers_at(site) >= count,
          "group_manager::leave: fewer receivers joined than asked to leave");
  std::size_t dropped = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    dropped += s.delivery->leave(site);
  }
  s.leaves += count;
  s.links_pruned += dropped;
  ++s.generation;
  obs::add(obs::counter::group_leaves, count);
  obs::add(obs::counter::group_links_pruned, dropped);
  obs::record(obs::histogram::group_prune_links, dropped);
  group_snapshot snap = snapshot_locked({scope, name}, s);
  snap.last_pruned = dropped;
  return snap;
}

group_snapshot group_manager::stats(const std::string& scope,
                                    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_locked({scope, name}, find_locked(scope, name));
}

group_snapshot group_manager::rebase(
    const std::string& scope, const std::string& name,
    std::shared_ptr<const source_tree> routing,
    std::unique_ptr<dynamic_delivery_tree> delivery) {
  expects(routing != nullptr && delivery != nullptr,
          "group_manager::rebase: null routing or delivery");
  std::lock_guard<std::mutex> lock(mu_);
  group_state& s = find_locked(scope, name);
  s.routing = std::move(routing);
  s.delivery = std::move(delivery);
  ++s.generation;
  s.peak_members = std::max(s.peak_members, s.delivery->receiver_count());
  s.peak_links = std::max(s.peak_links, s.delivery->link_count());
  obs::add(obs::counter::group_rebases);
  return snapshot_locked({scope, name}, s);
}

const dynamic_delivery_tree& group_manager::delivery(
    const std::string& scope, const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return *find_locked(scope, name).delivery;
}

bool group_manager::contains(const std::string& scope,
                             const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return groups_.find({scope, name}) != groups_.end();
}

bool group_manager::erase(const std::string& scope, const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const bool erased = groups_.erase({scope, name}) > 0;
  if (erased) obs::add(obs::counter::group_removed);
  return erased;
}

std::vector<group_snapshot> group_manager::list() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<group_snapshot> out;
  out.reserve(groups_.size());
  // std::map iterates in (scope, name) order — already the deterministic
  // listing order the service renders.
  for (const auto& [key, state] : groups_) {
    out.push_back(snapshot_locked(key, state));
  }
  return out;
}

std::size_t group_manager::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return groups_.size();
}

group_manager::group_state& group_manager::find_locked(
    const std::string& scope, const std::string& name) {
  auto it = groups_.find({scope, name});
  expects(it != groups_.end(), "group_manager: unknown group");
  return it->second;
}

const group_manager::group_state& group_manager::find_locked(
    const std::string& scope, const std::string& name) const {
  auto it = groups_.find({scope, name});
  expects(it != groups_.end(), "group_manager: unknown group");
  return it->second;
}

group_snapshot group_manager::snapshot_locked(const group_key& key,
                                              const group_state& state) const {
  group_snapshot snap;
  snap.scope = key.first;
  snap.name = key.second;
  snap.mode = state.mode;
  snap.root = state.routing->source();
  snap.generation = state.generation;
  snap.members = state.delivery->receiver_count();
  snap.sites = state.delivery->distinct_receiver_sites();
  snap.links = state.delivery->link_count();
  snap.cost = state.delivery->link_cost();
  snap.joins = state.joins;
  snap.leaves = state.leaves;
  snap.links_grafted = state.links_grafted;
  snap.links_pruned = state.links_pruned;
  snap.peak_members = state.peak_members;
  snap.peak_links = state.peak_links;
  return snap;
}

}  // namespace mcast
