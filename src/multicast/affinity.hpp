// Receiver affinity and disaffinity (Section 5 of the paper).
//
// The paper weights receiver configurations α by W_α(β) ∝ exp(−β·d̄(α)),
// where d̄(α) is the mean pairwise hop distance between receivers: β > 0
// makes receivers cluster (teleconference), β < 0 makes them spread out
// (sensor network), β = 0 recovers the uniform model. Three tools here:
//
//  * metropolis_affinity_sampler — samples configurations from W_α(β) with
//    a Metropolis–Hastings chain (move one receiver to a uniform site) and
//    measures the mean delivery-tree size L̂_β(n). This regenerates Fig 9.
//  * greedy extreme placements — the β = ±∞ limits, built constructively
//    by maximizing (disaffinity) or minimizing (affinity) the marginal
//    links each new receiver adds (Sections 5.2/5.3).
//  * closed forms for k-ary trees with receivers at leaves — Eq 33–38:
//    extreme_disaffinity_kary_tree_size  L₋∞(m) = Σ_l min(m, k^l)
//    extreme_affinity_kary_tree_size     L∞(m) = Σ_l ceil(m / k^{D−l})
//    (the paper prints these via the ΔL sequences; the sums here are the
//    closed evaluations, verified against the sequences in tests).
//
// Distances come through a distance_oracle so k-ary trees can use O(depth)
// index arithmetic in the Metropolis inner loop while general graphs fall
// back to cached BFS rows.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "multicast/delivery_tree.hpp"
#include "multicast/spt.hpp"
#include "sim/rng.hpp"
#include "topo/kary.hpp"

namespace mcast {

/// Pairwise hop-distance provider for the affinity model.
class distance_oracle {
 public:
  virtual ~distance_oracle() = default;
  /// Hop distance between nodes a and b.
  virtual unsigned distance(node_id a, node_id b) const = 0;
};

/// O(depth) arithmetic distances on a complete k-ary tree.
class kary_distance_oracle final : public distance_oracle {
 public:
  explicit kary_distance_oracle(kary_shape shape) : shape_(std::move(shape)) {}
  unsigned distance(node_id a, node_id b) const override {
    return shape_.distance(a, b);
  }

 private:
  kary_shape shape_;
};

/// BFS-backed distances on an arbitrary graph; rows are computed lazily and
/// cached (memory: one row per distinct node ever queried as `a`).
class graph_distance_oracle final : public distance_oracle {
 public:
  /// The graph must outlive the oracle.
  explicit graph_distance_oracle(const graph& g);
  unsigned distance(node_id a, node_id b) const override;

 private:
  const graph* g_;
  mutable std::vector<std::unique_ptr<std::vector<hop_count>>> rows_;
};

/// Tuning for the Metropolis chain. Effort is expressed in sweeps: one
/// sweep = n proposed single-receiver moves.
struct affinity_chain_params {
  double beta = 0.0;            ///< affinity strength (paper's β)
  unsigned burn_in_sweeps = 12; ///< sweeps discarded before measuring
  unsigned sample_sweeps = 6;   ///< sweeps spanned by the measurement phase
  unsigned measurements = 12;   ///< L̂ evaluations averaged over that span
};

/// Result of one chain run.
struct affinity_estimate {
  double mean_tree_size = 0.0;      ///< ⟨L⟩ under W(β)
  double mean_pair_distance = 0.0;  ///< ⟨d̄⟩ under W(β) (diagnostic)
  double acceptance_rate = 0.0;     ///< fraction of accepted moves
};

/// Estimates L̂_β(n): places n receivers (with replacement) from `universe`
/// under the affinity weight and returns the averaged delivery-tree size.
/// Deterministic given `gen`'s state. Requires n >= 1 and a non-empty
/// universe; receivers must be reachable from the tree's source.
affinity_estimate sample_affinity_tree_size(const source_tree& tree,
                                            const std::vector<node_id>& universe,
                                            std::size_t n,
                                            const distance_oracle& distances,
                                            const affinity_chain_params& params,
                                            rng& gen);

/// β = −∞ (extreme disaffinity): adds n *distinct* receivers greedily, each
/// maximizing the links gained; ties broken uniformly at random. Returns the
/// tree-size trajectory L(1..n). Requires n <= universe.size() (extreme
/// configurations place receivers at distinct sites — with replacement the
/// β=+∞ limit degenerates to "everyone at one site", paper Section 5.3).
/// O(n · |universe| · depth).
std::vector<std::size_t> greedy_disaffinity_trajectory(
    const source_tree& tree, const std::vector<node_id>& universe,
    std::size_t n, rng& gen);

/// β = +∞ (extreme affinity): same, minimizing the links gained.
std::vector<std::size_t> greedy_affinity_trajectory(
    const source_tree& tree, const std::vector<node_id>& universe,
    std::size_t n, rng& gen);

/// Closed form for L₋∞(m) on a k-ary tree of depth D with receivers at
/// leaves: Σ_{l=1..D} min(m, k^l). Requires m <= k^D.
std::uint64_t extreme_disaffinity_kary_tree_size(unsigned k, unsigned depth,
                                                 std::uint64_t m);

/// Closed form for L∞(m) on a k-ary tree of depth D with receivers at
/// leaves (leftmost-packed): Σ_{l=1..D} ceil(m / k^{D-l}). Requires
/// 1 <= m <= k^D.
std::uint64_t extreme_affinity_kary_tree_size(unsigned k, unsigned depth,
                                              std::uint64_t m);

}  // namespace mcast
