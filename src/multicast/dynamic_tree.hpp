// Dynamic delivery trees — join/leave churn (extension).
//
// The Chuang-Sirbu law prices a group by its instantaneous size m, which
// only makes sense if the tree tracks membership changes. This class keeps
// a delivery tree under receiver joins AND leaves in O(path length) per
// operation by reference-counting each tree link with the number of
// receivers whose path crosses it (i.e. the receiver population of the
// subtree below the link). A leave prunes exactly the links whose count
// drops to zero — the behavior of PIM/DVMRP prune state.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/weights.hpp"
#include "multicast/spt.hpp"

namespace mcast {

class dynamic_delivery_tree {
 public:
  /// Starts with an empty group. The source_tree must outlive this object.
  explicit dynamic_delivery_tree(const source_tree& tree);

  /// Weighted variant: link_cost() sums `weights` over the current tree
  /// links instead of counting them (the ext_weighted cost model). Both
  /// the source_tree and the weights must outlive this object, and the
  /// weights must be keyed to the same topology the tree routes over.
  dynamic_delivery_tree(const source_tree& tree, const edge_weights& weights);

  /// Adds one receiver instance at node v (the same node may join multiple
  /// times — think several hosts behind one router). Returns the number of
  /// links the tree gained. Throws when v is unreachable from the source.
  std::size_t join(node_id v);

  /// Removes one receiver instance at node v. Returns the number of links
  /// pruned. Throws std::invalid_argument when v has no joined receiver.
  std::size_t leave(node_id v);

  /// Current number of links in the delivery tree.
  std::size_t link_count() const noexcept { return links_; }

  /// Cost of the current tree: the sum of link weights when constructed
  /// with an edge_weights binding, otherwise exactly link_count().
  /// Maintained incrementally in the same O(path) join/leave walks, so a
  /// churn experiment reads it for free at every membership change.
  double link_cost() const noexcept {
    return weights_ == nullptr ? static_cast<double>(links_) : cost_;
  }

  /// The bound weights, or nullptr for the unweighted (link-count) model.
  const edge_weights* weights() const noexcept { return weights_; }

  /// Current number of receiver instances (join() minus leave() calls).
  std::size_t receiver_count() const noexcept { return receivers_; }

  /// Number of distinct nodes currently hosting at least one receiver.
  std::size_t distinct_receiver_sites() const noexcept { return distinct_sites_; }

  /// Receiver instances joined at node v.
  std::uint32_t receivers_at(node_id v) const;

  /// True when node v lies on the current delivery tree (the source is on
  /// the tree only when the group is non-empty... by convention the bare
  /// source with no receivers is an empty tree).
  bool on_tree(node_id v) const;

  /// The source_tree this delivery tree routes over.
  const source_tree& base() const noexcept { return *tree_; }

  /// The current tree links, each as an undirected edge with a < b, sorted
  /// lexicographically — the representation failure scenarios and repair
  /// reports diff against (multicast/repair.hpp). O(nodes).
  std::vector<edge> links() const;

  /// The distinct nodes currently hosting at least one receiver, ascending.
  /// O(nodes).
  std::vector<node_id> receiver_sites() const;

  /// True when the undirected link {a,b} carries this tree's traffic, i.e.
  /// it is some on-tree node's uplink to its parent. O(1).
  bool uses_link(node_id a, node_id b) const;

 private:
  const source_tree* tree_;
  const edge_weights* weights_ = nullptr;
  /// subtree_load_[v] = receivers at or below v; the link (v, parent(v))
  /// exists iff subtree_load_[v] > 0.
  std::vector<std::uint32_t> subtree_load_;
  std::vector<std::uint32_t> joined_at_;
  std::size_t links_ = 0;
  std::size_t receivers_ = 0;
  std::size_t distinct_sites_ = 0;
  double cost_ = 0.0;  ///< weighted link sum; meaningful only with weights_
};

}  // namespace mcast
