// Shared (core-based) multicast trees — the alternative the paper
// explicitly scopes out in its footnote 1 and defers to Wei & Estrin
// (INFOCOM '94, its reference [12]). Included as an extension so the
// library can reproduce that comparison too: how does the scaling of a
// core-based tree differ from the source-specific shortest-path trees the
// Chuang-Sirbu law describes?
//
// Model (CBT/PIM-SM style): a core (rendezvous point) c is chosen; the
// group's shared tree is the union of shortest paths from every receiver
// to the core. A source sends by unicasting to the core, which forwards
// down the tree, so the total link footprint for one source is
//
//     L_shared(m) = |tree(receivers -> core)| + dist(source, core)
//
// Core placement matters; three standard strategies are provided.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "multicast/spt.hpp"
#include "sim/rng.hpp"

namespace mcast {

/// How the rendezvous point is chosen.
enum class core_strategy {
  random,          ///< uniform random node
  degree_center,   ///< highest-degree node (cheap hub heuristic)
  path_center,     ///< node minimizing the eccentricity over k BFS probes
};

/// Picks a core for `g` under `strategy`. `probes` bounds the work of
/// path_center (it evaluates that many random candidates). Deterministic
/// given `gen`'s state. Throws on an empty graph.
node_id choose_core(const graph& g, core_strategy strategy, rng& gen,
                    std::size_t probes = 16);

/// Footprint of the shared tree for one (source, receivers) pair:
/// links of the receivers->core union plus the source->core path.
/// `core_tree` must be the source_tree rooted AT THE CORE.
/// Receivers and source must be reachable from the core.
std::size_t shared_tree_size(const source_tree& core_tree, node_id source,
                             std::span<const node_id> receivers);

/// The receivers->core union alone (no source tail) — the quantity whose
/// scaling mirrors L(m) with the core playing the source's role.
std::size_t shared_tree_core_size(const source_tree& core_tree,
                                  std::span<const node_id> receivers);

/// One row of the source-based vs shared comparison (Wei-Estrin style).
struct tree_comparison {
  std::uint64_t group_size = 0;
  double source_tree_links = 0.0;  ///< ⟨L⟩ for source-specific SPTs
  double shared_tree_links = 0.0;  ///< ⟨L_shared⟩ including the source tail
  double shared_over_source = 0.0; ///< ratio of the two means
};

/// Monte-Carlo comparison over random sources/receiver sets, mirroring the
/// Section 2 methodology. The graph must be connected.
std::vector<tree_comparison> compare_source_vs_shared(
    const graph& g, const std::vector<std::uint64_t>& group_sizes,
    core_strategy strategy, std::size_t receiver_sets, std::size_t sources,
    std::uint64_t seed);

}  // namespace mcast
