#include "multicast/weighted.hpp"

#include <vector>

#include "common/contract.hpp"

namespace mcast {

namespace {

// Walks rootward from every receiver, marking nodes; calls `on_link(child)`
// once per distinct link (child, parent(child)) in the union.
template <typename link_fn>
void walk_union(const weighted_tree& tree, std::span<const node_id> receivers,
                link_fn&& on_link) {
  std::vector<char> on_tree(tree.dist.size(), 0);
  on_tree[tree.source] = 1;
  for (node_id v : receivers) {
    expects_in_range(v < tree.dist.size(), "weighted tree: node out of range");
    expects(tree.dist[v] != std::numeric_limits<double>::infinity(),
            "weighted tree: receiver unreachable");
    for (node_id w = v; !on_tree[w]; w = tree.parent[w]) {
      on_tree[w] = 1;
      on_link(w);
    }
  }
}

}  // namespace

double weighted_delivery_tree_cost(const graph& g, const edge_weights& weights,
                                   const weighted_tree& tree,
                                   std::span<const node_id> receivers) {
  expects(&weights.topology() == &g,
          "weighted_delivery_tree_cost: weights belong to a different graph");
  expects(tree.dist.size() == g.node_count(),
          "weighted_delivery_tree_cost: tree does not match graph");
  double total = 0.0;
  walk_union(tree, receivers, [&](node_id child) {
    total += weights.get(child, tree.parent[child]);
  });
  return total;
}

std::size_t weighted_delivery_tree_links(const graph& g,
                                         const weighted_tree& tree,
                                         std::span<const node_id> receivers) {
  expects(tree.dist.size() == g.node_count(),
          "weighted_delivery_tree_links: tree does not match graph");
  std::size_t count = 0;
  walk_union(tree, receivers, [&](node_id) { ++count; });
  return count;
}

double weighted_unicast_total(const weighted_tree& tree,
                              std::span<const node_id> receivers) {
  double total = 0.0;
  for (node_id v : receivers) {
    expects_in_range(v < tree.dist.size(),
                     "weighted_unicast_total: node out of range");
    expects(tree.dist[v] != std::numeric_limits<double>::infinity(),
            "weighted_unicast_total: receiver unreachable");
    total += tree.dist[v];
  }
  return total;
}

}  // namespace mcast
