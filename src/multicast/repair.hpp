// Delivery-tree repair under failures (extension).
//
// When links or nodes fail, a session's delivery tree may route traffic
// over dead elements. Repair is what a link-state multicast routing plane
// converges to after the failure is flooded: recompute the shortest-path
// tree in the degraded topology and re-attach every receiver the degraded
// network can still reach. This module performs that convergence step as
// one deterministic operation and reports its cost:
//
//  * receivers are classified unaffected (their old delivery path is
//    physically intact), rerouted (old path broken, but the degraded
//    network still reaches them) or partitioned (no surviving path — they
//    are dropped from the tree);
//  * repair cost is the link churn between the old and new trees
//    (links_added + links_removed). Because the whole tree is re-converged
//    onto degraded shortest paths, even "unaffected" receivers can churn
//    links when distances elsewhere shift — exactly the collateral churn a
//    real SPT recomputation produces.
//
// The repaired tree routes only over usable elements, so by construction
// it never contains a failed link or node (asserted in tests/test_repair).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "fault/degraded.hpp"
#include "graph/workspace.hpp"
#include "multicast/dynamic_tree.hpp"
#include "multicast/spt_cache.hpp"

namespace mcast {

/// What happened to each distinct receiver site during a repair.
struct repair_report {
  std::vector<node_id> unaffected;   ///< old delivery path fully intact
  std::vector<node_id> rerouted;     ///< re-attached via degraded shortest paths
  std::vector<node_id> partitioned;  ///< unreachable in the degraded view
  std::size_t links_added = 0;       ///< links in the new tree but not the old
  std::size_t links_removed = 0;     ///< links in the old tree but not the new
  std::size_t receivers_lost = 0;    ///< receiver instances at partitioned sites
  bool source_lost = false;          ///< the source node itself has failed

  /// Total link churn — the repair-cost headline number.
  std::size_t churn() const noexcept { return links_added + links_removed; }
};

/// A repaired delivery tree: new routing base (SPT in the degraded view),
/// the rebuilt tree, and the repair accounting. The routing base is shared
/// because it may come from an spt_cache — sessions repaired after the
/// same failure event reuse one SPT per source.
struct repaired_tree {
  std::shared_ptr<const source_tree> routing;
  std::unique_ptr<dynamic_delivery_tree> delivery;
  repair_report report;
};

/// Re-converges `broken` (a delivery tree whose routing may predate the
/// failures in `view`) onto shortest paths of the degraded view. Receiver
/// multiplicities are preserved for every reachable site; partitioned
/// sites lose all their receiver instances. The view must overlay the same
/// topology the tree was built on. Deterministic.
repaired_tree repair_delivery_tree(const dynamic_delivery_tree& broken,
                                   const degraded_view& view);

/// Hot-path overload: fetches the degraded SPT through `cache` (keyed by
/// source and view generation, so stale trees can never be served) and
/// runs the BFS — when it runs at all — on `ws`. Bit-identical to the
/// overload above.
repaired_tree repair_delivery_tree(const dynamic_delivery_tree& broken,
                                   const degraded_view& view, spt_cache& cache,
                                   traversal_workspace& ws);

}  // namespace mcast
