#include "multicast/spt_cache.hpp"

#include <utility>

#include "common/contract.hpp"
#include "obs/metrics.hpp"

namespace mcast {

spt_cache::spt_cache(std::size_t capacity) : capacity_(capacity) {
  expects(capacity >= 1, "spt_cache: capacity must be >= 1");
}

void spt_cache::clear() { entries_.clear(); }

template <typename compute_fn>
std::shared_ptr<const source_tree> spt_cache::lookup(const graph& topology,
                                                     std::uint64_t generation,
                                                     node_id source,
                                                     compute_fn&& compute) {
  if (topology_ != &topology || generation_ != generation) {
    if (!entries_.empty()) {
      ++stats_.invalidations;
      obs::add(obs::counter::spt_cache_invalidations);
      entries_.clear();
    }
    topology_ = &topology;
    generation_ = generation;
  }
  ++tick_;
  if (auto it = entries_.find(source); it != entries_.end()) {
    ++stats_.hits;
    obs::add(obs::counter::spt_cache_hits);
    it->second.last_use = tick_;
    return it->second.tree;
  }
  ++stats_.misses;
  obs::add(obs::counter::spt_cache_misses);
  auto tree = compute();
  if (entries_.size() >= capacity_) {
    // Evict the least-recently-used entry; capacities are small enough
    // that a linear scan beats maintaining an intrusive list.
    auto victim = entries_.begin();
    for (auto it = std::next(victim); it != entries_.end(); ++it) {
      if (it->second.last_use < victim->second.last_use) victim = it;
    }
    entries_.erase(victim);
    ++stats_.evictions;
    obs::add(obs::counter::spt_cache_evictions);
  }
  entries_.emplace(source, entry{tree, tick_});
  obs::gauge_max(obs::gauge::spt_cache_peak_entries, entries_.size());
  return tree;
}

std::shared_ptr<const source_tree> spt_cache::get(const graph& g,
                                                  node_id source,
                                                  traversal_workspace& ws) {
  return lookup(g, /*generation=*/0, source, [&] {
    return std::make_shared<const source_tree>(g, source, ws);
  });
}

std::shared_ptr<const source_tree> spt_cache::get(const degraded_view& view,
                                                  node_id source,
                                                  traversal_workspace& ws) {
  return lookup(view.base(), view.version(), source, [&] {
    bfs_tree t;
    bfs_from(view, source, ws, t);
    return std::make_shared<const source_tree>(view.base(), std::move(t));
  });
}

}  // namespace mcast
