// Multicast delivery trees and their link counts — the paper's L(m)/L̂(n).
//
// Given a source_tree, the delivery tree for a receiver set is the union of
// the tree paths from the source to each receiver; its size is the number
// of distinct links in that union (links are unweighted, per the paper's
// footnote 3). Two interfaces:
//
//  * delivery_tree_size(): one-shot count for a receiver set.
//  * delivery_tree_builder: incremental — add receivers one at a time and
//    read the running link count. This is what the affinity sampler and the
//    extreme-β greedy constructions (Section 5.2/5.3) need, and it makes
//    the per-receiver marginal cost ΔL observable, mirroring the paper's
//    use of discrete derivatives.
//
// Both cost O(total tree size): each receiver walks rootward only over
// links not yet in the tree.
#pragma once

#include <span>
#include <vector>

#include "multicast/spt.hpp"

namespace mcast {

/// Incremental delivery-tree accumulator over a fixed source_tree.
class delivery_tree_builder {
 public:
  /// Starts from the bare source (zero links). The source_tree must
  /// outlive the builder.
  explicit delivery_tree_builder(const source_tree& tree);

  /// Adds one receiver; returns the number of links the union gained
  /// (0 when the receiver is already covered; receivers may repeat, which
  /// is how L̂(n) — sampling with replacement — is computed).
  /// Throws std::invalid_argument when v is unreachable from the source.
  std::size_t add_receiver(node_id v);

  /// Number of distinct links currently in the delivery tree.
  std::size_t link_count() const noexcept { return links_; }

  /// Number of distinct receiver *sites* added so far (repeat additions of
  /// the same node count once) — the paper's m for this sample.
  std::size_t distinct_receiver_count() const noexcept { return distinct_receivers_; }

  /// True when node v currently lies on the delivery tree.
  bool covers(node_id v) const;

  /// Resets to the bare source (O(nodes touched)).
  void reset();

  /// Re-targets the builder at another source_tree, reusing the flag
  /// arrays (they only reallocate when the node count grows). Equivalent
  /// to constructing a fresh builder on `tree`; the hot-path way to walk
  /// one builder across many sources. The source_tree must outlive the
  /// builder.
  void rebind(const source_tree& tree);

 private:
  const source_tree* tree_;
  std::vector<char> on_tree_;      // node flags: on the delivery tree
  std::vector<char> is_receiver_;  // node flags: was added as a receiver
  std::vector<node_id> touched_;   // for cheap reset
  std::size_t links_ = 0;
  std::size_t distinct_receivers_ = 0;
};

/// One-shot L for a receiver set (repeats allowed and ignored).
std::size_t delivery_tree_size(const source_tree& tree,
                               std::span<const node_id> receivers);

/// The distinct links of the delivery tree for a receiver set, each link as
/// a (child, parent) pair. Mostly for tests and visualization.
std::vector<edge> delivery_tree_links(const source_tree& tree,
                                      std::span<const node_id> receivers);

}  // namespace mcast
