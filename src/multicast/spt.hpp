// Source-specific shortest-path trees.
//
// A `source_tree` is the object the rest of the multicast layer works
// against: one BFS result from a fixed source, with helpers for unicast
// path extraction. The paper's model (Section 1, footnote 1) is exactly
// this — each receiver is served along a shortest path from the source,
// and the delivery tree is the union of the chosen paths.
#pragma once

#include <vector>

#include "graph/bfs.hpp"
#include "graph/graph.hpp"

namespace mcast {

class source_tree {
 public:
  /// Builds the deterministic (lowest-id parent) shortest-path tree rooted
  /// at `source`. Throws std::out_of_range on a bad source.
  source_tree(const graph& g, node_id source);

  /// Same tree, but the BFS runs on a reusable workspace
  /// (graph/workspace.hpp) — bit-identical result, fewer allocations.
  source_tree(const graph& g, node_id source, traversal_workspace& ws);

  /// Wraps an existing BFS result (e.g. one built with randomized parents
  /// for the tie-breaking ablation). Throws std::invalid_argument when the
  /// result's field sizes do not match `g`.
  source_tree(const graph& g, bfs_tree tree);

  node_id source() const noexcept { return tree_.source; }
  node_id node_count() const noexcept { return static_cast<node_id>(tree_.dist.size()); }

  /// Hop distance from the source (== unicast path length); `unreachable`
  /// when v is in another component.
  hop_count distance(node_id v) const;

  /// Parent on the tree; invalid_node for the source / unreachable nodes.
  node_id parent(node_id v) const;

  /// True when every node is reachable from the source.
  bool spans_graph() const;

  /// The node sequence of the unicast path source -> v (inclusive).
  /// Throws std::invalid_argument when v is unreachable.
  std::vector<node_id> path_to(node_id v) const;

  /// Access to the raw BFS result.
  const bfs_tree& raw() const noexcept { return tree_; }

 private:
  bfs_tree tree_;
};

}  // namespace mcast
