#include "multicast/affinity.hpp"

#include <algorithm>
#include <cmath>

#include "common/contract.hpp"

namespace mcast {

graph_distance_oracle::graph_distance_oracle(const graph& g)
    : g_(&g), rows_(g.node_count()) {}

unsigned graph_distance_oracle::distance(node_id a, node_id b) const {
  expects_in_range(a < g_->node_count() && b < g_->node_count(),
                   "graph_distance_oracle::distance: node out of range");
  if (!rows_[a]) {
    rows_[a] = std::make_unique<std::vector<hop_count>>(bfs_distances(*g_, a));
  }
  const hop_count d = (*rows_[a])[b];
  expects(d != unreachable, "graph_distance_oracle: nodes are disconnected");
  return d;
}

affinity_estimate sample_affinity_tree_size(const source_tree& tree,
                                            const std::vector<node_id>& universe,
                                            std::size_t n,
                                            const distance_oracle& distances,
                                            const affinity_chain_params& params,
                                            rng& gen) {
  expects(n >= 1, "sample_affinity_tree_size: n must be >= 1");
  expects(!universe.empty(), "sample_affinity_tree_size: universe is empty");
  expects(params.measurements >= 1,
          "sample_affinity_tree_size: need at least one measurement");

  // Initial configuration: uniform with replacement.
  std::vector<node_id> r(n);
  for (node_id& site : r) site = universe[gen.below(universe.size())];

  // Sum of pairwise distances, maintained incrementally.
  const double pairs = static_cast<double>(n) * (static_cast<double>(n) - 1.0) / 2.0;
  double pair_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      pair_sum += distances.distance(r[i], r[j]);
    }
  }

  std::uint64_t proposed = 0;
  std::uint64_t accepted = 0;
  auto do_move = [&] {
    ++proposed;
    const std::size_t i = gen.below(n);
    const node_id old_site = r[i];
    const node_id new_site = universe[gen.below(universe.size())];
    if (new_site == old_site) {
      ++accepted;
      return;
    }
    double delta = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      delta += static_cast<double>(distances.distance(new_site, r[j])) -
               static_cast<double>(distances.distance(old_site, r[j]));
    }
    // W ∝ exp(-beta * d̄); Metropolis acceptance on the change in d̄.
    const double dmean_delta = pairs > 0.0 ? delta / pairs : 0.0;
    const double log_accept = -params.beta * dmean_delta;
    if (log_accept >= 0.0 || gen.uniform() < std::exp(log_accept)) {
      r[i] = new_site;
      pair_sum += delta;
      ++accepted;
    }
  };

  const std::uint64_t burn_moves =
      static_cast<std::uint64_t>(params.burn_in_sweeps) * n;
  for (std::uint64_t t = 0; t < burn_moves; ++t) do_move();

  const std::uint64_t sample_moves =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(params.sample_sweeps) * n);
  const std::uint64_t stride =
      std::max<std::uint64_t>(1, sample_moves / params.measurements);

  delivery_tree_builder builder(tree);
  double tree_size_sum = 0.0;
  double pair_mean_sum = 0.0;
  std::size_t measured = 0;
  for (std::uint64_t t = 0; t < sample_moves; ++t) {
    do_move();
    if ((t + 1) % stride == 0) {
      builder.reset();
      for (node_id site : r) builder.add_receiver(site);
      tree_size_sum += static_cast<double>(builder.link_count());
      pair_mean_sum += pairs > 0.0 ? pair_sum / pairs : 0.0;
      ++measured;
    }
  }
  MCAST_ASSERT(measured >= 1);

  affinity_estimate est;
  est.mean_tree_size = tree_size_sum / static_cast<double>(measured);
  est.mean_pair_distance = pair_mean_sum / static_cast<double>(measured);
  est.acceptance_rate =
      proposed == 0 ? 1.0
                    : static_cast<double>(accepted) / static_cast<double>(proposed);
  return est;
}

namespace {

std::vector<std::size_t> greedy_extreme_trajectory(
    const source_tree& tree, const std::vector<node_id>& universe,
    std::size_t n, rng& gen, bool maximize) {
  expects(!universe.empty(), "greedy trajectory: universe is empty");
  expects(n <= universe.size(),
          "greedy trajectory: n exceeds the candidate universe (extreme "
          "placements use distinct sites)");
  delivery_tree_builder builder(tree);
  std::vector<char> used(tree.node_count(), 0);

  // Marginal gain of a candidate = links on its rootward path not yet on
  // the delivery tree; evaluated without mutating the builder.
  auto gain_of = [&](node_id v) {
    std::size_t gain = 0;
    for (node_id w = v; !builder.covers(w); w = tree.parent(w)) ++gain;
    return gain;
  };

  std::vector<std::size_t> trajectory;
  trajectory.reserve(n);
  std::vector<node_id> best_sites;
  for (std::size_t step = 0; step < n; ++step) {
    std::size_t best_gain = 0;
    bool have_any = false;
    best_sites.clear();
    for (node_id v : universe) {
      if (used[v]) continue;  // extreme configurations are distinct sites
      const std::size_t gain = gain_of(v);
      const bool better =
          !have_any || (maximize ? gain > best_gain : gain < best_gain);
      if (better) {
        best_gain = gain;
        best_sites.clear();
        have_any = true;
      }
      if (gain == best_gain) best_sites.push_back(v);
    }
    MCAST_ASSERT(!best_sites.empty());
    const node_id chosen = best_sites[gen.below(best_sites.size())];
    used[chosen] = 1;
    builder.add_receiver(chosen);
    trajectory.push_back(builder.link_count());
  }
  return trajectory;
}

}  // namespace

std::vector<std::size_t> greedy_disaffinity_trajectory(
    const source_tree& tree, const std::vector<node_id>& universe,
    std::size_t n, rng& gen) {
  return greedy_extreme_trajectory(tree, universe, n, gen, /*maximize=*/true);
}

std::vector<std::size_t> greedy_affinity_trajectory(
    const source_tree& tree, const std::vector<node_id>& universe,
    std::size_t n, rng& gen) {
  return greedy_extreme_trajectory(tree, universe, n, gen, /*maximize=*/false);
}

std::uint64_t extreme_disaffinity_kary_tree_size(unsigned k, unsigned depth,
                                                 std::uint64_t m) {
  expects(k >= 2, "extreme_disaffinity_kary_tree_size: k must be >= 2");
  std::uint64_t total = 0;
  std::uint64_t level_width = 1;
  for (unsigned l = 1; l <= depth; ++l) {
    expects(level_width <= ~0ULL / k, "extreme_disaffinity: tree too large");
    level_width *= k;
    total += std::min<std::uint64_t>(m, level_width);
  }
  expects(m <= level_width,
          "extreme_disaffinity_kary_tree_size: m exceeds leaf count");
  return total;
}

std::uint64_t extreme_affinity_kary_tree_size(unsigned k, unsigned depth,
                                              std::uint64_t m) {
  expects(k >= 2, "extreme_affinity_kary_tree_size: k must be >= 2");
  expects(m >= 1, "extreme_affinity_kary_tree_size: m must be >= 1");
  std::uint64_t leaves = 1;
  for (unsigned l = 0; l < depth; ++l) {
    expects(leaves <= ~0ULL / k, "extreme_affinity: tree too large");
    leaves *= k;
  }
  expects(m <= leaves, "extreme_affinity_kary_tree_size: m exceeds leaf count");
  // Σ_{l=1..D} ceil(m / k^{D-l}): walk l downward so the divisor grows.
  std::uint64_t total = 0;
  std::uint64_t divisor = 1;
  for (unsigned l = depth; l >= 1; --l) {
    total += (m + divisor - 1) / divisor;
    if (l > 1) {
      expects(divisor <= ~0ULL / k, "extreme_affinity: tree too large");
      divisor *= k;
    }
  }
  return total;
}

}  // namespace mcast
