// Weighted multicast delivery trees (extension — see graph/weights.hpp).
//
// Same union-of-paths construction as multicast/delivery_tree.hpp, but
// paths come from a Dijkstra least-weight tree and the figure of merit is
// total link *weight*, not link count. Lets the harness ask whether the
// Chuang-Sirbu scaling survives link costs (bench/ext_weighted).
#pragma once

#include <span>

#include "graph/dijkstra.hpp"
#include "graph/weights.hpp"

namespace mcast {

/// Weighted footprint of the multicast tree from `tree.source` to the
/// receivers: sum of weights of the distinct links in the union of
/// least-weight paths. Repeated receivers are ignored. Throws
/// std::invalid_argument when a receiver is unreachable.
double weighted_delivery_tree_cost(const graph& g, const edge_weights& weights,
                                   const weighted_tree& tree,
                                   std::span<const node_id> receivers);

/// Number of distinct links in the same union (for comparing against the
/// unweighted L(m) at identical receiver sets).
std::size_t weighted_delivery_tree_links(const graph& g,
                                         const weighted_tree& tree,
                                         std::span<const node_id> receivers);

/// Sum of weighted unicast path costs source -> receiver (each stream
/// separately; repeats count every time).
double weighted_unicast_total(const weighted_tree& tree,
                              std::span<const node_id> receivers);

}  // namespace mcast
