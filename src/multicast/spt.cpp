#include "multicast/spt.hpp"

#include <algorithm>

#include "common/contract.hpp"
#include "graph/workspace.hpp"

namespace mcast {

source_tree::source_tree(const graph& g, node_id source)
    : tree_(bfs_from(g, source)) {}

source_tree::source_tree(const graph& g, node_id source,
                         traversal_workspace& ws) {
  bfs_from(g, source, ws, tree_);
}

source_tree::source_tree(const graph& g, bfs_tree tree) : tree_(std::move(tree)) {
  expects(tree_.dist.size() == g.node_count() &&
              tree_.parent.size() == g.node_count(),
          "source_tree: BFS result does not match graph");
  expects(tree_.source < g.node_count(), "source_tree: bad source in BFS result");
}

hop_count source_tree::distance(node_id v) const {
  expects_in_range(v < node_count(), "source_tree::distance: node out of range");
  return tree_.dist[v];
}

node_id source_tree::parent(node_id v) const {
  expects_in_range(v < node_count(), "source_tree::parent: node out of range");
  return tree_.parent[v];
}

bool source_tree::spans_graph() const {
  return std::none_of(tree_.dist.begin(), tree_.dist.end(),
                      [](hop_count d) { return d == unreachable; });
}

std::vector<node_id> source_tree::path_to(node_id v) const {
  expects_in_range(v < node_count(), "source_tree::path_to: node out of range");
  expects(tree_.dist[v] != unreachable, "source_tree::path_to: node unreachable");
  std::vector<node_id> path;
  path.reserve(tree_.dist[v] + 1);
  for (node_id w = v; w != invalid_node; w = tree_.parent[w]) path.push_back(w);
  std::reverse(path.begin(), path.end());
  MCAST_ASSERT(path.front() == tree_.source);
  return path;
}

}  // namespace mcast
