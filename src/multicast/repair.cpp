#include "multicast/repair.hpp"

#include "common/contract.hpp"

namespace mcast {

namespace {

// Counts the symmetric difference of two sorted link lists.
void diff_links(const std::vector<edge>& old_links,
                const std::vector<edge>& new_links, repair_report& report) {
  const auto less = [](const edge& x, const edge& y) {
    return x.a != y.a ? x.a < y.a : x.b < y.b;
  };
  auto o = old_links.begin();
  auto n = new_links.begin();
  while (o != old_links.end() || n != new_links.end()) {
    if (n == new_links.end() || (o != old_links.end() && less(*o, *n))) {
      ++report.links_removed;
      ++o;
    } else if (o == old_links.end() || less(*n, *o)) {
      ++report.links_added;
      ++n;
    } else {
      ++o;
      ++n;
    }
  }
}

// Re-converges `broken` onto the already-computed degraded SPT `routing`.
repaired_tree reconverge(const dynamic_delivery_tree& broken,
                         const degraded_view& view,
                         std::shared_ptr<const source_tree> routing) {
  const source_tree& old_routing = broken.base();
  const node_id src = old_routing.source();

  repaired_tree out;
  out.routing = std::move(routing);
  out.delivery = std::make_unique<dynamic_delivery_tree>(*out.routing);
  out.report.source_lost = !view.node_alive(src);

  for (node_id v : broken.receiver_sites()) {
    const std::uint32_t instances = broken.receivers_at(v);
    if (out.routing->distance(v) == unreachable) {
      out.report.partitioned.push_back(v);
      out.report.receivers_lost += instances;
      continue;
    }
    // The old path survives iff every hop v -> source is still usable
    // (usable() also checks both endpoint nodes, so the walk covers v and
    // the source themselves).
    bool intact = view.node_alive(src);
    for (node_id w = v; intact && w != src; w = old_routing.parent(w)) {
      intact = view.usable(w, old_routing.parent(w));
    }
    for (std::uint32_t i = 0; i < instances; ++i) out.delivery->join(v);
    (intact ? out.report.unaffected : out.report.rerouted).push_back(v);
  }

  diff_links(broken.links(), out.delivery->links(), out.report);
  return out;
}

}  // namespace

repaired_tree repair_delivery_tree(const dynamic_delivery_tree& broken,
                                   const degraded_view& view) {
  expects(broken.base().node_count() == view.base().node_count(),
          "repair_delivery_tree: view overlays a different topology");
  const node_id src = broken.base().source();
  return reconverge(broken, view,
                    std::make_shared<const source_tree>(view.base(),
                                                        bfs_from(view, src)));
}

repaired_tree repair_delivery_tree(const dynamic_delivery_tree& broken,
                                   const degraded_view& view, spt_cache& cache,
                                   traversal_workspace& ws) {
  expects(broken.base().node_count() == view.base().node_count(),
          "repair_delivery_tree: view overlays a different topology");
  return reconverge(broken, view,
                    cache.get(view, broken.base().source(), ws));
}

}  // namespace mcast
