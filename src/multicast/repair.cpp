#include "multicast/repair.hpp"

#include <chrono>

#include "common/contract.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mcast {

namespace {

// Repair is coarse enough (one SPT + one tree rebuild) to afford a span
// and a latency histogram per call; both vanish under MCAST_OBS_DISABLED.
struct repair_probe {
#if !defined(MCAST_OBS_DISABLED)
  obs::span span{"repair_delivery_tree"};
  std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  ~repair_probe() {
    obs::add(obs::counter::repair_trees);
    obs::record(
        obs::histogram::repair_latency_ns,
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start)
                .count()));
  }
#endif
};

// Counts the symmetric difference of two sorted link lists.
void diff_links(const std::vector<edge>& old_links,
                const std::vector<edge>& new_links, repair_report& report) {
  const auto less = [](const edge& x, const edge& y) {
    return x.a != y.a ? x.a < y.a : x.b < y.b;
  };
  auto o = old_links.begin();
  auto n = new_links.begin();
  while (o != old_links.end() || n != new_links.end()) {
    if (n == new_links.end() || (o != old_links.end() && less(*o, *n))) {
      ++report.links_removed;
      ++o;
    } else if (o == old_links.end() || less(*n, *o)) {
      ++report.links_added;
      ++n;
    } else {
      ++o;
      ++n;
    }
  }
}

// Re-converges `broken` onto the already-computed degraded SPT `routing`.
repaired_tree reconverge(const dynamic_delivery_tree& broken,
                         const degraded_view& view,
                         std::shared_ptr<const source_tree> routing) {
  const source_tree& old_routing = broken.base();
  const node_id src = old_routing.source();

  repaired_tree out;
  out.routing = std::move(routing);
  out.delivery = std::make_unique<dynamic_delivery_tree>(*out.routing);
  out.report.source_lost = !view.node_alive(src);

  for (node_id v : broken.receiver_sites()) {
    const std::uint32_t instances = broken.receivers_at(v);
    if (out.routing->distance(v) == unreachable) {
      out.report.partitioned.push_back(v);
      out.report.receivers_lost += instances;
      continue;
    }
    // The old path survives iff every hop v -> source is still usable
    // (usable() also checks both endpoint nodes, so the walk covers v and
    // the source themselves).
    bool intact = view.node_alive(src);
    for (node_id w = v; intact && w != src; w = old_routing.parent(w)) {
      intact = view.usable(w, old_routing.parent(w));
    }
    for (std::uint32_t i = 0; i < instances; ++i) out.delivery->join(v);
    (intact ? out.report.unaffected : out.report.rerouted).push_back(v);
  }

  diff_links(broken.links(), out.delivery->links(), out.report);
  obs::add(obs::counter::repair_unaffected, out.report.unaffected.size());
  obs::add(obs::counter::repair_rerouted, out.report.rerouted.size());
  obs::add(obs::counter::repair_partitioned, out.report.partitioned.size());
  return out;
}

}  // namespace

repaired_tree repair_delivery_tree(const dynamic_delivery_tree& broken,
                                   const degraded_view& view) {
  expects(broken.base().node_count() == view.base().node_count(),
          "repair_delivery_tree: view overlays a different topology");
  [[maybe_unused]] const repair_probe probe;
  const node_id src = broken.base().source();
  return reconverge(broken, view,
                    std::make_shared<const source_tree>(view.base(),
                                                        bfs_from(view, src)));
}

repaired_tree repair_delivery_tree(const dynamic_delivery_tree& broken,
                                   const degraded_view& view, spt_cache& cache,
                                   traversal_workspace& ws) {
  expects(broken.base().node_count() == view.base().node_count(),
          "repair_delivery_tree: view overlays a different topology");
  [[maybe_unused]] const repair_probe probe;
  return reconverge(broken, view,
                    cache.get(view, broken.base().source(), ws));
}

}  // namespace mcast
