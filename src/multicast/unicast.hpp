// Unicast cost accounting.
//
// The paper normalizes every multicast measurement by unicast equivalents:
// the per-sample average unicast path length ū(m) (Section 2 divides the
// delivery tree size by it) and the total link-traversals ū·m that m
// separate unicast streams would consume (Section 1 — the linear baseline
// multicast is compared against).
#pragma once

#include <span>

#include "multicast/spt.hpp"

namespace mcast {

/// Sum of unicast path lengths from the tree's source to each receiver
/// (repeats count every time — n unicast streams cost n paths).
/// Throws std::invalid_argument when a receiver is unreachable.
std::uint64_t unicast_total_links(const source_tree& tree,
                                  std::span<const node_id> receivers);

/// Average unicast path length over the receiver sample; 0 for an empty
/// sample. This is the paper's ū(m) for one random receiver set.
double unicast_average_length(const source_tree& tree,
                              std::span<const node_id> receivers);

/// Average unicast path length from the source to *every* reachable node —
/// the network-wide ū used when normalizing analytic curves.
double unicast_average_length_all(const source_tree& tree);

}  // namespace mcast
