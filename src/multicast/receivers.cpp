#include "multicast/receivers.hpp"

#include <cmath>

#include "common/contract.hpp"

namespace mcast {

std::vector<node_id> all_sites_except(const graph& g, node_id source) {
  expects_in_range(source < g.node_count(),
                   "all_sites_except: source out of range");
  std::vector<node_id> sites;
  sites.reserve(g.node_count() - 1);
  for (node_id v = 0; v < g.node_count(); ++v) {
    if (v != source) sites.push_back(v);
  }
  return sites;
}

std::vector<node_id> leaf_sites(node_id first_leaf, std::uint64_t leaf_count) {
  std::vector<node_id> sites;
  sites.reserve(leaf_count);
  for (std::uint64_t i = 0; i < leaf_count; ++i) {
    sites.push_back(first_leaf + static_cast<node_id>(i));
  }
  return sites;
}

std::vector<node_id> sample_distinct(const std::vector<node_id>& universe,
                                     std::size_t m, rng& gen) {
  expects(m <= universe.size(),
          "sample_distinct: m exceeds the candidate universe");
  std::vector<node_id> pool = universe;
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t j = i + gen.below(pool.size() - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(m);
  return pool;
}

std::vector<node_id> sample_with_replacement(const std::vector<node_id>& universe,
                                             std::size_t n, rng& gen) {
  expects(!universe.empty(),
          "sample_with_replacement: candidate universe is empty");
  std::vector<node_id> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = universe[gen.below(universe.size())];
  return out;
}

void sample_distinct_into(std::vector<node_id>& pool, std::size_t m, rng& gen,
                          std::vector<node_id>& out) {
  expects(m <= pool.size(), "sample_distinct: m exceeds the candidate universe");
  out.resize(m);
  // Same partial Fisher-Yates draws as sample_distinct; `out` temporarily
  // records each step's swap target so the swaps can be undone afterwards.
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t j = i + gen.below(pool.size() - i);
    std::swap(pool[i], pool[j]);
    out[i] = static_cast<node_id>(j);
  }
  // Undo in reverse order. Step i was the last to write position i (later
  // steps only touch positions > i), so pool[i] still holds sample value i
  // when its swap is unwound.
  for (std::size_t i = m; i-- > 0;) {
    const std::size_t j = out[i];
    out[i] = pool[i];
    std::swap(pool[i], pool[j]);
  }
}

void sample_with_replacement_into(const std::vector<node_id>& universe,
                                  std::size_t n, rng& gen,
                                  std::vector<node_id>& out) {
  expects(!universe.empty(),
          "sample_with_replacement: candidate universe is empty");
  out.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = universe[gen.below(universe.size())];
  }
}

}  // namespace mcast
