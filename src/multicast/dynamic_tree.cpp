#include "multicast/dynamic_tree.hpp"

#include <algorithm>

#include "common/contract.hpp"

namespace mcast {

dynamic_delivery_tree::dynamic_delivery_tree(const source_tree& tree)
    : tree_(&tree),
      subtree_load_(tree.node_count(), 0),
      joined_at_(tree.node_count(), 0) {}

dynamic_delivery_tree::dynamic_delivery_tree(const source_tree& tree,
                                             const edge_weights& weights)
    : dynamic_delivery_tree(tree) {
  expects(weights.topology().node_count() == tree.node_count(),
          "dynamic_delivery_tree: weights keyed to a different topology");
  weights_ = &weights;
}

std::size_t dynamic_delivery_tree::join(node_id v) {
  expects_in_range(v < tree_->node_count(),
                   "dynamic_delivery_tree::join: node out of range");
  expects(tree_->distance(v) != unreachable,
          "dynamic_delivery_tree::join: receiver unreachable from source");
  if (joined_at_[v]++ == 0) ++distinct_sites_;
  ++receivers_;

  std::size_t gained = 0;
  // Walk v -> source; each node whose load was 0 contributes a new link
  // (v, parent) — except the source, which has no uplink.
  for (node_id w = v; w != tree_->source(); w = tree_->parent(w)) {
    if (subtree_load_[w]++ == 0) {
      ++gained;
      if (weights_ != nullptr) cost_ += weights_->get(w, tree_->parent(w));
    }
    // Counting continues rootward even after the path merges with the
    // existing tree: every ancestor's subtree population grows by one.
  }
  subtree_load_[tree_->source()]++;
  links_ += gained;
  return gained;
}

std::size_t dynamic_delivery_tree::leave(node_id v) {
  expects_in_range(v < tree_->node_count(),
                   "dynamic_delivery_tree::leave: node out of range");
  expects(joined_at_[v] > 0,
          "dynamic_delivery_tree::leave: no receiver joined at this node");
  if (--joined_at_[v] == 0) --distinct_sites_;
  --receivers_;

  std::size_t pruned = 0;
  for (node_id w = v; w != tree_->source(); w = tree_->parent(w)) {
    MCAST_ASSERT(subtree_load_[w] > 0);
    if (--subtree_load_[w] == 0) {
      ++pruned;
      if (weights_ != nullptr) cost_ -= weights_->get(w, tree_->parent(w));
    }
  }
  MCAST_ASSERT(subtree_load_[tree_->source()] > 0);
  subtree_load_[tree_->source()]--;
  links_ -= pruned;
  if (links_ == 0) cost_ = 0.0;  // pin the drained tree to exactly zero
  return pruned;
}

std::uint32_t dynamic_delivery_tree::receivers_at(node_id v) const {
  expects_in_range(v < tree_->node_count(),
                   "dynamic_delivery_tree::receivers_at: node out of range");
  return joined_at_[v];
}

std::vector<edge> dynamic_delivery_tree::links() const {
  std::vector<edge> out;
  out.reserve(links_);
  for (node_id v = 0; v < tree_->node_count(); ++v) {
    if (v == tree_->source() || subtree_load_[v] == 0) continue;
    const node_id p = tree_->parent(v);
    out.push_back(v < p ? edge{v, p} : edge{p, v});
  }
  std::sort(out.begin(), out.end(), [](const edge& x, const edge& y) {
    return x.a != y.a ? x.a < y.a : x.b < y.b;
  });
  return out;
}

std::vector<node_id> dynamic_delivery_tree::receiver_sites() const {
  std::vector<node_id> out;
  out.reserve(distinct_sites_);
  for (node_id v = 0; v < tree_->node_count(); ++v) {
    if (joined_at_[v] > 0) out.push_back(v);
  }
  return out;
}

bool dynamic_delivery_tree::uses_link(node_id a, node_id b) const {
  expects_in_range(a < tree_->node_count() && b < tree_->node_count(),
                   "dynamic_delivery_tree::uses_link: node out of range");
  const node_id src = tree_->source();
  return (a != src && subtree_load_[a] > 0 && tree_->parent(a) == b) ||
         (b != src && subtree_load_[b] > 0 && tree_->parent(b) == a);
}

bool dynamic_delivery_tree::on_tree(node_id v) const {
  expects_in_range(v < tree_->node_count(),
                   "dynamic_delivery_tree::on_tree: node out of range");
  return subtree_load_[v] > 0;
}

}  // namespace mcast
