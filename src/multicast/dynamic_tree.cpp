#include "multicast/dynamic_tree.hpp"

#include "common/contract.hpp"

namespace mcast {

dynamic_delivery_tree::dynamic_delivery_tree(const source_tree& tree)
    : tree_(&tree),
      subtree_load_(tree.node_count(), 0),
      joined_at_(tree.node_count(), 0) {}

std::size_t dynamic_delivery_tree::join(node_id v) {
  expects_in_range(v < tree_->node_count(),
                   "dynamic_delivery_tree::join: node out of range");
  expects(tree_->distance(v) != unreachable,
          "dynamic_delivery_tree::join: receiver unreachable from source");
  if (joined_at_[v]++ == 0) ++distinct_sites_;
  ++receivers_;

  std::size_t gained = 0;
  // Walk v -> source; each node whose load was 0 contributes a new link
  // (v, parent) — except the source, which has no uplink.
  for (node_id w = v; w != tree_->source(); w = tree_->parent(w)) {
    if (subtree_load_[w]++ == 0) ++gained;
    // Counting continues rootward even after the path merges with the
    // existing tree: every ancestor's subtree population grows by one.
  }
  subtree_load_[tree_->source()]++;
  links_ += gained;
  return gained;
}

std::size_t dynamic_delivery_tree::leave(node_id v) {
  expects_in_range(v < tree_->node_count(),
                   "dynamic_delivery_tree::leave: node out of range");
  expects(joined_at_[v] > 0,
          "dynamic_delivery_tree::leave: no receiver joined at this node");
  if (--joined_at_[v] == 0) --distinct_sites_;
  --receivers_;

  std::size_t pruned = 0;
  for (node_id w = v; w != tree_->source(); w = tree_->parent(w)) {
    MCAST_ASSERT(subtree_load_[w] > 0);
    if (--subtree_load_[w] == 0) ++pruned;
  }
  MCAST_ASSERT(subtree_load_[tree_->source()] > 0);
  subtree_load_[tree_->source()]--;
  links_ -= pruned;
  return pruned;
}

std::uint32_t dynamic_delivery_tree::receivers_at(node_id v) const {
  expects_in_range(v < tree_->node_count(),
                   "dynamic_delivery_tree::receivers_at: node out of range");
  return joined_at_[v];
}

bool dynamic_delivery_tree::on_tree(node_id v) const {
  expects_in_range(v < tree_->node_count(),
                   "dynamic_delivery_tree::on_tree: node out of range");
  return subtree_load_[v] > 0;
}

}  // namespace mcast
