#include "multicast/shared_tree.hpp"

#include <algorithm>
#include <optional>

#include "analysis/stats.hpp"
#include "common/contract.hpp"
#include "graph/components.hpp"
#include "graph/workspace.hpp"
#include "multicast/delivery_tree.hpp"
#include "multicast/receivers.hpp"
#include "multicast/spt_cache.hpp"

namespace mcast {

node_id choose_core(const graph& g, core_strategy strategy, rng& gen,
                    std::size_t probes) {
  expects(!g.empty(), "choose_core: graph is empty");
  switch (strategy) {
    case core_strategy::random:
      return static_cast<node_id>(gen.below(g.node_count()));
    case core_strategy::degree_center: {
      node_id best = 0;
      for (node_id v = 1; v < g.node_count(); ++v) {
        if (g.degree(v) > g.degree(best)) best = v;
      }
      return best;
    }
    case core_strategy::path_center: {
      expects(probes >= 1, "choose_core: path_center needs >= 1 probe");
      node_id best = invalid_node;
      std::uint64_t best_ecc = ~0ULL;
      for (std::size_t i = 0; i < probes; ++i) {
        const node_id candidate = static_cast<node_id>(gen.below(g.node_count()));
        const bfs_tree t = bfs_from(g, candidate);
        const std::uint64_t ecc = t.eccentricity();
        if (ecc < best_ecc) {
          best_ecc = ecc;
          best = candidate;
        }
      }
      return best;
    }
  }
  throw std::invalid_argument("mcast: choose_core: unknown strategy");
}

std::size_t shared_tree_core_size(const source_tree& core_tree,
                                  std::span<const node_id> receivers) {
  // Paths receiver->core in an undirected graph are the reversed
  // core->receiver shortest paths, so the union is exactly the delivery
  // tree rooted at the core.
  return delivery_tree_size(core_tree, receivers);
}

std::size_t shared_tree_size(const source_tree& core_tree, node_id source,
                             std::span<const node_id> receivers) {
  expects_in_range(source < core_tree.node_count(),
                   "shared_tree_size: source out of range");
  expects(core_tree.distance(source) != unreachable,
          "shared_tree_size: source unreachable from core");
  return shared_tree_core_size(core_tree, receivers) + core_tree.distance(source);
}

std::vector<tree_comparison> compare_source_vs_shared(
    const graph& g, const std::vector<std::uint64_t>& group_sizes,
    core_strategy strategy, std::size_t receiver_sets, std::size_t sources,
    std::uint64_t seed) {
  expects(g.node_count() >= 2, "compare_source_vs_shared: graph too small");
  expects(is_connected(g), "compare_source_vs_shared: graph must be connected");
  expects(receiver_sets >= 1 && sources >= 1,
          "compare_source_vs_shared: need >= 1 receiver set and source");
  const std::uint64_t sites = g.node_count() - 1;
  for (std::uint64_t m : group_sizes) {
    expects(m >= 1 && m <= sites,
            "compare_source_vs_shared: group size out of range");
  }

  rng gen(seed);
  const node_id core = choose_core(g, strategy, gen);
  traversal_workspace ws;
  spt_cache cache(64);
  const source_tree core_tree(g, core, ws);
  delivery_tree_builder core_builder(core_tree);

  std::vector<running_stats> src_stats(group_sizes.size());
  std::vector<running_stats> shared_stats(group_sizes.size());

  std::vector<node_id> universe;
  std::vector<node_id> receivers;
  std::optional<delivery_tree_builder> src_builder;
  for (std::size_t s = 0; s < sources; ++s) {
    const node_id source = static_cast<node_id>(gen.below(g.node_count()));
    // Sources are drawn with replacement, so repeats hit the cache; the
    // tree is deterministic either way (same draws, same numbers).
    const std::shared_ptr<const source_tree> spt = cache.get(g, source, ws);
    universe.clear();
    for (node_id v = 0; v < g.node_count(); ++v) {
      if (v != source) universe.push_back(v);
    }
    if (src_builder) {
      src_builder->rebind(*spt);
    } else {
      src_builder.emplace(*spt);
    }

    for (std::size_t gi = 0; gi < group_sizes.size(); ++gi) {
      for (std::size_t rep = 0; rep < receiver_sets; ++rep) {
        sample_distinct_into(universe, group_sizes[gi], gen, receivers);
        src_builder->reset();
        core_builder.reset();
        for (node_id v : receivers) {
          src_builder->add_receiver(v);
          core_builder.add_receiver(v);
        }
        src_stats[gi].add(static_cast<double>(src_builder->link_count()));
        shared_stats[gi].add(static_cast<double>(core_builder.link_count() +
                                                 core_tree.distance(source)));
      }
    }
  }

  std::vector<tree_comparison> out(group_sizes.size());
  for (std::size_t gi = 0; gi < group_sizes.size(); ++gi) {
    out[gi].group_size = group_sizes[gi];
    out[gi].source_tree_links = src_stats[gi].mean();
    out[gi].shared_tree_links = shared_stats[gi].mean();
    out[gi].shared_over_source =
        out[gi].shared_tree_links / out[gi].source_tree_links;
  }
  return out;
}

}  // namespace mcast
