#include "multicast/unicast.hpp"

#include "common/contract.hpp"

namespace mcast {

std::uint64_t unicast_total_links(const source_tree& tree,
                                  std::span<const node_id> receivers) {
  std::uint64_t total = 0;
  for (node_id v : receivers) {
    const hop_count d = tree.distance(v);
    expects(d != unreachable, "unicast_total_links: receiver unreachable");
    total += d;
  }
  return total;
}

double unicast_average_length(const source_tree& tree,
                              std::span<const node_id> receivers) {
  if (receivers.empty()) return 0.0;
  return static_cast<double>(unicast_total_links(tree, receivers)) /
         static_cast<double>(receivers.size());
}

double unicast_average_length_all(const source_tree& tree) {
  std::uint64_t total = 0;
  std::uint64_t count = 0;
  for (node_id v = 0; v < tree.node_count(); ++v) {
    const hop_count d = tree.distance(v);
    if (v != tree.source() && d != unreachable) {
      total += d;
      ++count;
    }
  }
  return count == 0 ? 0.0 : static_cast<double>(total) / static_cast<double>(count);
}

}  // namespace mcast
