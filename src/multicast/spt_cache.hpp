// Per-source shortest-path-tree memoization.
//
// The Section 2 methodology draws sources *with replacement*: a sweep over
// many group sizes and receiver sets recomputes the same source's SPT over
// and over. Because the tree is a pure deterministic function of
// (topology, failure state, source) — BFS with the lowest-id parent rule —
// memoizing it cannot change any result, only skip recomputation. This
// cache holds up to `capacity` trees keyed by source id and scoped to one
// (topology, view generation) pair:
//
//  * topology identity: the graph's address. A get() against a different
//    graph drops every entry and rebinds.
//  * view generation: degraded_view::version(), the monotone counter every
//    fail/restore bumps (fault/degraded.hpp). Pristine-graph lookups use
//    generation 0, matching a freshly constructed view. Any generation
//    change — i.e. any failure or recovery — invalidates the whole cache,
//    because a single link flip can reroute every tree.
//
// Trees are handed out as shared_ptr<const source_tree> so a consumer
// (e.g. a live session's delivery tree) keeps its routing base alive even
// after eviction or invalidation.
//
// NOT thread-safe by design: the Monte-Carlo engine gives each worker
// thread its own cache + workspace, which preserves the bit-identical-
// for-any-thread-count guarantee (results never depend on hit/miss
// history). Keying and invalidation rules: docs/performance.md.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "fault/degraded.hpp"
#include "graph/workspace.hpp"
#include "multicast/spt.hpp"

namespace mcast {

class spt_cache {
 public:
  struct cache_stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;      ///< single entries displaced when full
    std::uint64_t invalidations = 0;  ///< whole-cache drops (generation/topology)
  };

  /// Caches at most `capacity` trees (>= 1).
  explicit spt_cache(std::size_t capacity = 64);

  /// The SPT rooted at `source` on the pristine `g` (generation 0).
  /// Computes via `ws` on a miss. Bit-identical to source_tree(g, source).
  std::shared_ptr<const source_tree> get(const graph& g, node_id source,
                                         traversal_workspace& ws);

  /// The SPT rooted at `source` honoring `view`'s failure mask, scoped to
  /// view.version(). Bit-identical to source_tree(view.base(),
  /// bfs_from(view, source)).
  std::shared_ptr<const source_tree> get(const degraded_view& view,
                                         node_id source,
                                         traversal_workspace& ws);

  /// Drops every entry (keeps the topology binding and statistics).
  void clear();

  std::size_t size() const noexcept { return entries_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  const cache_stats& stats() const noexcept { return stats_; }

 private:
  struct entry {
    std::shared_ptr<const source_tree> tree;
    std::uint64_t last_use = 0;
  };

  /// Clears when (topology, generation) moved; then looks `source` up,
  /// computing on a miss via the overload-specific `compute`.
  template <typename compute_fn>
  std::shared_ptr<const source_tree> lookup(const graph& topology,
                                            std::uint64_t generation,
                                            node_id source,
                                            compute_fn&& compute);

  const graph* topology_ = nullptr;
  std::uint64_t generation_ = 0;
  std::uint64_t tick_ = 0;  // LRU clock
  std::size_t capacity_;
  std::unordered_map<node_id, entry> entries_;
  cache_stats stats_;
};

}  // namespace mcast
