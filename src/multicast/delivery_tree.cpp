#include "multicast/delivery_tree.hpp"

#include "common/contract.hpp"

namespace mcast {

delivery_tree_builder::delivery_tree_builder(const source_tree& tree)
    : tree_(&tree),
      on_tree_(tree.node_count(), 0),
      is_receiver_(tree.node_count(), 0) {
  on_tree_[tree.source()] = 1;
  touched_.push_back(tree.source());
}

std::size_t delivery_tree_builder::add_receiver(node_id v) {
  expects_in_range(v < tree_->node_count(),
                   "delivery_tree_builder::add_receiver: node out of range");
  expects(tree_->distance(v) != unreachable,
          "delivery_tree_builder::add_receiver: receiver unreachable from source");
  if (!is_receiver_[v]) {
    is_receiver_[v] = 1;
    ++distinct_receivers_;
  }
  std::size_t gained = 0;
  for (node_id w = v; !on_tree_[w]; w = tree_->parent(w)) {
    on_tree_[w] = 1;
    touched_.push_back(w);
    ++gained;  // the link (w, parent(w)) is new
  }
  links_ += gained;
  return gained;
}

bool delivery_tree_builder::covers(node_id v) const {
  expects_in_range(v < tree_->node_count(),
                   "delivery_tree_builder::covers: node out of range");
  return on_tree_[v] != 0;
}

void delivery_tree_builder::rebind(const source_tree& tree) {
  // Clear the old tree's flags first (O(touched)), then grow if needed.
  for (node_id v : touched_) {
    on_tree_[v] = 0;
    is_receiver_[v] = 0;
  }
  touched_.clear();
  tree_ = &tree;
  if (on_tree_.size() < tree.node_count()) {
    on_tree_.resize(tree.node_count(), 0);
    is_receiver_.resize(tree.node_count(), 0);
  }
  links_ = 0;
  distinct_receivers_ = 0;
  on_tree_[tree.source()] = 1;
  touched_.push_back(tree.source());
}

void delivery_tree_builder::reset() {
  for (node_id v : touched_) {
    on_tree_[v] = 0;
    is_receiver_[v] = 0;
  }
  // is_receiver_ may be set on nodes that were already on the tree when
  // added; those nodes are all in touched_ too (a receiver is always on the
  // tree after add_receiver), so the loop above cleared everything.
  touched_.clear();
  links_ = 0;
  distinct_receivers_ = 0;
  on_tree_[tree_->source()] = 1;
  touched_.push_back(tree_->source());
}

std::size_t delivery_tree_size(const source_tree& tree,
                               std::span<const node_id> receivers) {
  delivery_tree_builder b(tree);
  for (node_id v : receivers) b.add_receiver(v);
  return b.link_count();
}

std::vector<edge> delivery_tree_links(const source_tree& tree,
                                      std::span<const node_id> receivers) {
  delivery_tree_builder b(tree);
  for (node_id v : receivers) b.add_receiver(v);
  std::vector<edge> links;
  links.reserve(b.link_count());
  for (node_id v = 0; v < tree.node_count(); ++v) {
    if (v != tree.source() && b.covers(v)) {
      links.push_back({v, tree.parent(v)});
    }
  }
  return links;
}

}  // namespace mcast
