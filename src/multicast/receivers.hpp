// Receiver-set samplers.
//
// The paper uses three placement models:
//  * m distinct sites chosen uniformly over the network (Section 2; L(m));
//  * n sites chosen uniformly *with* replacement (Section 3; L̂(n));
//  * leaves-only variants of both for k-ary trees (Section 3 vs 3.4).
//
// All samplers draw from an explicit candidate universe (every node except
// the source, or the leaves of a tree), so the same code serves general
// graphs and k-ary trees.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "sim/rng.hpp"

namespace mcast {

/// The candidate receiver universe: every node of `g` except `source`.
std::vector<node_id> all_sites_except(const graph& g, node_id source);

/// Candidate universe for k-ary leaf placement: node ids [first_leaf,
/// first_leaf + leaf_count).
std::vector<node_id> leaf_sites(node_id first_leaf, std::uint64_t leaf_count);

/// Draws `m` distinct sites uniformly from `universe` (partial
/// Fisher-Yates; `universe` is copied). Requires m <= universe.size().
std::vector<node_id> sample_distinct(const std::vector<node_id>& universe,
                                     std::size_t m, rng& gen);

/// Draws `n` sites uniformly with replacement from `universe`.
/// Requires a non-empty universe.
std::vector<node_id> sample_with_replacement(const std::vector<node_id>& universe,
                                             std::size_t n, rng& gen);

/// Allocation-free variant of sample_distinct for Monte-Carlo hot loops:
/// consumes the identical RNG stream and produces the identical sample
/// (locked down by tests/test_workspace_diff.cpp), but shuffles `pool`
/// in place and then undoes its swaps — on return `pool` is unchanged and
/// `out` (capacity reused across calls) holds the sample. O(m) instead of
/// the O(|universe|) copy the one-shot version pays per call.
void sample_distinct_into(std::vector<node_id>& pool, std::size_t m, rng& gen,
                          std::vector<node_id>& out);

/// Allocation-free variant of sample_with_replacement (same draws, `out`
/// capacity reused).
void sample_with_replacement_into(const std::vector<node_id>& universe,
                                  std::size_t n, rng& gen,
                                  std::vector<node_id>& out);

// The n <-> m̄ conversion formulas (Equations 1/2) live in
// analysis/mapping.hpp (expected_distinct / draws_for_expected_distinct).

}  // namespace mcast
