# Renders the `# series:` blocks an mcast_lab experiment emits.
#
# Usage:
#   build/bench/mcast_lab run fig1 --out-dir out     # writes out/fig1.dat
#   gnuplot -e "datafile='out/fig1.dat'; logx=1; logy=1" tools/plot_series.gp
#
# (piping works too: `mcast_lab run fig1 > fig1.dat` — experiment output
# goes to stdout, progress lines to stderr.)
#
# Each blank-line-separated block in the file is one curve; the `# series:`
# comment above it is used as the title via `columnheader`-style indexing.
# Variables:
#   datafile  (required) path to the bench output
#   outfile   (optional) PNG path; default: <datafile>.png
#   logx/logy (optional) set to 1 for log axes

if (!exists("datafile")) { print "set datafile='...'"; exit }
if (!exists("outfile")) outfile = datafile.".png"
set terminal pngcairo size 1100,700 enhanced
set output outfile
set key outside right
set grid
if (exists("logx") && logx) set logscale x
if (exists("logy") && logy) set logscale y

# gnuplot's `index` walks blank-line-separated blocks; stats counts them.
stats datafile nooutput
n = STATS_blocks
plot for [i=0:n-1] datafile index i using 1:2 with linespoints title sprintf("series %d", i)
