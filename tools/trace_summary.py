#!/usr/bin/env python3
"""Summarize a Chrome trace_event JSON file written by `mcast_lab run
--profile=<out.json>`: the top spans by cumulative duration, with call
counts and mean/max per call. Standard library only.

Usage:
    tools/trace_summary.py trace.json [--top N]
"""

import argparse
import json
import sys


def load_events(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if isinstance(doc, dict):
        events = doc.get("traceEvents", [])
        dropped = doc.get("otherData", {}).get("dropped", 0)
    else:  # bare-array variant of the format
        events, dropped = doc, 0
    return events, dropped


def summarize(events):
    """Aggregate complete ("ph": "X") events by span name."""
    spans = {}
    for e in events:
        if e.get("ph") != "X":
            continue
        name = e.get("name", "?")
        dur = float(e.get("dur", 0.0))  # microseconds
        agg = spans.setdefault(name, {"count": 0, "total_us": 0.0, "max_us": 0.0})
        agg["count"] += 1
        agg["total_us"] += dur
        agg["max_us"] = max(agg["max_us"], dur)
    return spans


def fmt_us(us):
    if us >= 1e6:
        return "%.2fs" % (us / 1e6)
    if us >= 1e3:
        return "%.2fms" % (us / 1e3)
    return "%.1fus" % us


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="trace_event JSON file (--profile output)")
    parser.add_argument("--top", type=int, default=10,
                        help="rows to print (default 10)")
    args = parser.parse_args(argv)

    try:
        events, dropped = load_events(args.trace)
    except (OSError, ValueError) as err:
        print("trace_summary: %s" % err, file=sys.stderr)
        return 2

    spans = summarize(events)
    if not spans:
        print("trace_summary: no complete spans in %s" % args.trace)
        return 0

    rows = sorted(spans.items(), key=lambda kv: kv[1]["total_us"], reverse=True)
    name_w = max(len("span"), max(len(n) for n, _ in rows[: args.top]))
    print("top %d spans by cumulative time (%d events, %d dropped):"
          % (min(args.top, len(rows)), len(events), dropped))
    print("%-*s  %10s  %8s  %10s  %10s" % (name_w, "span", "total", "count",
                                           "mean", "max"))
    for name, agg in rows[: args.top]:
        mean = agg["total_us"] / agg["count"]
        print("%-*s  %10s  %8d  %10s  %10s"
              % (name_w, name, fmt_us(agg["total_us"]), agg["count"],
                 fmt_us(mean), fmt_us(agg["max_us"])))
    return 0


if __name__ == "__main__":
    sys.exit(main())
