#!/usr/bin/env python3
"""Summarize a Chrome trace_event JSON file written by `mcast_lab run
--profile=<out.json>` or `mcast_lab serve --profile=<out.json>`: the top
spans by cumulative duration, with call counts and mean/max per call.
When spans carry request identity (args.trace_id, the service's tracing
layer), also the per-request view: spans grouped by trace id with each
request's critical path — the chain of spans that bounds its wall time,
so the slowest request names the stage to blame. Standard library only.

Malformed events (not an object, missing "ph", or a complete event with a
bad name/dur) are counted and reported, and their presence makes the exit
code non-zero: a half-written trace must fail CI, not quietly summarize
whatever survived. `mcast_lab check` applies the same rule in-process.

Usage:
    tools/trace_summary.py trace.json [--top N] [--requests N]

Exit codes: 0 clean, 1 malformed events skipped, 2 unreadable input.
"""

import argparse
import json
import sys


def load_events(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if isinstance(doc, dict):
        events = doc.get("traceEvents", [])
        dropped = doc.get("otherData", {}).get("dropped", 0)
    else:  # bare-array variant of the format
        events, dropped = doc, 0
    if not isinstance(events, list):
        raise ValueError("traceEvents is not an array")
    return events, dropped


def summarize(events):
    """Aggregate complete ("ph": "X") events by span name.

    Returns (spans, skipped): `skipped` counts malformed records —
    non-object events, events with no "ph", and complete events whose
    name/dur fields are missing or mistyped. Events of other phases are
    valid trace_event records and are not counted as malformed.
    """
    spans = {}
    skipped = 0
    for e in events:
        if not isinstance(e, dict) or not isinstance(e.get("ph"), str):
            skipped += 1
            continue
        if e["ph"] != "X":
            continue
        name = e.get("name")
        dur = e.get("dur")
        if not isinstance(name, str) or isinstance(dur, bool) or \
                not isinstance(dur, (int, float)):
            skipped += 1
            continue
        dur = float(dur)  # microseconds
        agg = spans.setdefault(name, {"count": 0, "total_us": 0.0, "max_us": 0.0})
        agg["count"] += 1
        agg["total_us"] += dur
        agg["max_us"] = max(agg["max_us"], dur)
    return spans, skipped


def group_requests(events):
    """Group complete events by args.trace_id.

    Returns (requests, skipped): requests maps trace id -> list of span
    dicts {name, ts, dur, span, parent}; `skipped` counts events whose
    args block is present but mistyped (a malformed artifact, same
    contract as summarize). Untagged events are valid and ignored here.
    """
    requests = {}
    skipped = 0
    for e in events:
        if not isinstance(e, dict) or e.get("ph") != "X":
            continue
        args = e.get("args")
        if args is None:
            continue
        if not isinstance(args, dict):
            skipped += 1
            continue
        trace_id = args.get("trace_id")
        if trace_id is None:
            continue
        name = e.get("name")
        dur = e.get("dur")
        ts = e.get("ts")
        if not isinstance(trace_id, str) or not isinstance(name, str) or \
                isinstance(dur, bool) or not isinstance(dur, (int, float)) or \
                isinstance(ts, bool) or not isinstance(ts, (int, float)):
            skipped += 1
            continue
        requests.setdefault(trace_id, []).append({
            "name": name, "ts": float(ts), "dur": float(dur),
            "span": args.get("span"), "parent": args.get("parent"),
        })
    for spans in requests.values():
        spans.sort(key=lambda s: (s["ts"], -s["dur"]))
    return requests, skipped


def critical_path(spans):
    """The chain of spans bounding a request's wall time.

    Walks the parent links written by the tracing layer (args.span /
    args.parent): from the root, repeatedly descend into the child whose
    span ends last — the stage the request actually waited for. Falls
    back to just the longest span when the links are absent.
    """
    by_id = {s["span"]: s for s in spans if isinstance(s["span"], str)}
    children = {}
    root = None
    for s in spans:
        parent = s["parent"]
        if isinstance(parent, str) and parent in by_id:
            children.setdefault(parent, []).append(s)
        elif root is None or s["ts"] < root["ts"]:
            root = s
    if root is None:
        return [max(spans, key=lambda s: s["dur"])] if spans else []
    path = [root]
    node = root
    while True:
        kids = children.get(node["span"])
        if not kids:
            return path
        node = max(kids, key=lambda s: s["ts"] + s["dur"])
        path.append(node)


def fmt_us(us):
    if us >= 1e6:
        return "%.2fs" % (us / 1e6)
    if us >= 1e3:
        return "%.2fms" % (us / 1e3)
    return "%.1fus" % us


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="trace_event JSON file (--profile output)")
    parser.add_argument("--top", type=int, default=10,
                        help="rows to print (default 10)")
    parser.add_argument("--requests", type=int, default=5,
                        help="traced requests to detail (default 5)")
    args = parser.parse_args(argv)

    try:
        events, dropped = load_events(args.trace)
    except (OSError, ValueError) as err:
        print("trace_summary: %s" % err, file=sys.stderr)
        return 2

    spans, skipped = summarize(events)
    if spans:
        rows = sorted(spans.items(), key=lambda kv: kv[1]["total_us"],
                      reverse=True)
        name_w = max(len("span"), max(len(n) for n, _ in rows[: args.top]))
        print("top %d spans by cumulative time (%d events, %d dropped):"
              % (min(args.top, len(rows)), len(events), dropped))
        print("%-*s  %10s  %8s  %10s  %10s" % (name_w, "span", "total", "count",
                                               "mean", "max"))
        for name, agg in rows[: args.top]:
            mean = agg["total_us"] / agg["count"]
            print("%-*s  %10s  %8d  %10s  %10s"
                  % (name_w, name, fmt_us(agg["total_us"]), agg["count"],
                     fmt_us(mean), fmt_us(agg["max_us"])))
    else:
        print("trace_summary: no complete spans in %s" % args.trace)

    requests, req_skipped = group_requests(events)
    skipped += req_skipped
    if requests and args.requests > 0:
        # Slowest requests first, wall time taken from each root span.
        ranked = sorted(requests.items(),
                        key=lambda kv: critical_path(kv[1])[0]["dur"],
                        reverse=True)
        shown = ranked[: args.requests]
        print("%d traced request(s); slowest %d with critical paths:"
              % (len(requests), len(shown)))
        for trace_id, spans in shown:
            path = critical_path(spans)
            chain = " > ".join("%s (%s)" % (s["name"], fmt_us(s["dur"]))
                               for s in path)
            print("  %s  %d span(s)  %s" % (trace_id, len(spans), chain))

    if skipped:
        print("trace_summary: %d malformed event record(s) skipped"
              % skipped, file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
