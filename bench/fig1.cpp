// Figure 1 — Chuang-Sirbu scaling: ln(L(m)/ū) against ln m per network,
// next to the m^0.8 reference line.
//   suite=generated — Fig 1(a): r100, ts1000, ts1008, ti5000
//   suite=real      — Fig 1(b): ARPA, MBone, Internet, AS (DESIGN.md §3)
//   suite=all       — both panels in one run (the default)
// One experiment with a `suite` parameter replaces the old fig1_generated /
// fig1_real wrapper-binary pair.
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "experiments.hpp"

#include "core/runner.hpp"
#include "core/scaling_law.hpp"
#include "lab/registry.hpp"
#include "topo/catalog.hpp"

namespace mcast::lab {

namespace {

// Emits the panel's series and appends its fit lines to `fits`; the fit
// block goes after the reference series — the historical layout the
// goldens and plotting scripts expect.
void run_panel(context& ctx, const std::string& panel_id,
               const std::vector<network_entry>& suite,
               std::vector<std::pair<std::string, std::string>>& fits) {
  const node_id budget = static_cast<node_id>(ctx.u64("budget"));
  // budget >= 30000 keeps the native entries (topology cache key 0).
  const node_id scale_budget = budget < 30000 ? budget : 0;
  monte_carlo_params mc = ctx.monte_carlo();
  mc.receiver_sets = ctx.u64("receiver_sets");  // paper: N_rcvr = 100
  mc.sources = ctx.u64("sources");              // paper: N_source = 100
  mc.seed = ctx.u64("seed");
  const std::size_t grid_points = ctx.u64("grid_points");

  for (const auto& entry : suite) {
    const auto shared = ctx.topology(entry.name, 7, scale_budget);
    const graph& g = *shared;
    const std::uint64_t sites = g.node_count() - 1;
    const auto grid = default_group_grid(sites, grid_points);
    const auto rows = measure_distinct_receivers(g, grid, mc);

    std::vector<double> x, y;
    for (const auto& p : rows) {
      x.push_back(static_cast<double>(p.group_size));
      y.push_back(p.ratio_mean);
    }
    ctx.series(entry.name + "  (L(m)/ubar vs m)", x, y);

    const double lo = std::max(2.0, 2e-3 * static_cast<double>(sites));
    const double hi = 0.5 * static_cast<double>(sites);
    const scaling_law law = scaling_law::fit_to(rows, lo, hi);
    std::ostringstream line;
    line << "exponent=" << law.exponent() << " amplitude=" << law.amplitude()
         << " R2=" << law.r_squared() << " (paper: ~0.8)";
    fits.emplace_back(panel_id + "/" + entry.name, line.str());
  }
}

}  // namespace

void register_fig1(registry& reg) {
  experiment e;
  e.id = "fig1";
  e.title = "Fig 1: ln(L(m)/ubar) vs ln m on the eight-network suite";
  e.claim =
      "ln(L(m)/ubar) vs ln m compared to the line m^0.8 "
      "(Chuang-Sirbu scaling law, paper Fig 1)";
  e.params = {
      p_text("suite", "which panel: generated (Fig 1a), real (Fig 1b), all",
             "all"),
      p_u64("budget",
            "node budget; suites below 30000 are scaled-down versions",
            400, 30000, 60000),
      p_u64("receiver_sets", "receiver sets per source (paper N_rcvr)",
            5, 40, 100),
      p_u64("sources", "random sources per network (paper N_source)",
            4, 20, 100),
      p_u64("seed", "Monte-Carlo seed", 1999),
      p_u64("grid_points", "group sizes on the log grid", 10, 22, 30),
  };
  e.metric_groups = {"monte_carlo", "traversal", "spt_cache"};
  e.run = [](context& ctx) {
    const std::string& suite = ctx.text("suite");
    if (suite != "generated" && suite != "real" && suite != "all") {
      throw std::invalid_argument(
          "fig1: suite must be generated, real or all (got '" + suite + "')");
    }
    std::vector<std::pair<std::string, std::string>> fits;
    if (suite == "generated" || suite == "all") {
      run_panel(ctx, "Fig 1(a)", generated_networks(), fits);
    }
    if (suite == "real" || suite == "all") {
      run_panel(ctx, "Fig 1(b)", real_networks(), fits);
    }

    // The m^0.8 reference line over the widest grid used.
    std::vector<double> rx, ry;
    for (double m = 1.0; m <= 1e5; m *= 3.0) {
      rx.push_back(m);
      ry.push_back(std::pow(m, 0.8));
    }
    ctx.series("reference m^0.8", rx, ry);
    for (const auto& [label, text] : fits) ctx.fit(label, text);
  };
  reg.add(std::move(e));
}

}  // namespace mcast::lab
