// Shared plumbing for the figure/table regeneration binaries.
//
// Every bench binary:
//   * prints a "== <id>: <what the paper shows> ==" banner,
//   * emits gnuplot-ready series blocks (sim/csv.hpp) and FIT lines,
//   * honors MCAST_BENCH_SCALE: 0 = smoke (seconds), 1 = default,
//     2 = paper-scale (slow). Intermediate values interpolate effort.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

namespace mcast::bench {

/// Effort multiplier from MCAST_BENCH_SCALE (default 1). Clamped to [0, 8].
inline int scale() {
  const char* env = std::getenv("MCAST_BENCH_SCALE");
  if (env == nullptr) return 1;
  const int v = std::atoi(env);
  return v < 0 ? 0 : (v > 8 ? 8 : v);
}

/// Picks an effort value by scale tier: smoke / default / paper-scale.
template <typename T>
T by_scale(T smoke, T normal, T paper) {
  const int s = scale();
  if (s <= 0) return smoke;
  if (s == 1) return normal;
  return paper;
}

/// Standard banner so tee'd bench output is self-describing.
inline void banner(const std::string& id, const std::string& claim) {
  std::cout << "== " << id << " ==\n"
            << "# reproduces: " << claim << "\n"
            << "# scale: " << scale() << " (set MCAST_BENCH_SCALE=0|1|2)\n\n";
}

}  // namespace mcast::bench
