// Figure 5 — L̂(n)/n versus ln(n/M) for k-ary trees with receivers spread
// over ALL non-root sites (Eq 21), compared to the same reference line as
// Figure 3. The paper's point: the linear-with-log-correction form
// L̂(n) ≈ n(c − ln(n/M)/ln k) survives; only the constant c changes.
//   (a) k = 2, D = 10, 14, 17;   (b) k = 4, D = 5, 7, 9.
#include <cmath>
#include <sstream>

#include "experiments.hpp"

#include "analysis/fit.hpp"
#include "analysis/kary_exact.hpp"
#include "analysis/series.hpp"
#include "lab/registry.hpp"

namespace mcast::lab {

void register_fig5(registry& reg) {
  experiment e;
  e.id = "fig5";
  e.title = "Fig 5: L-hat(n)/n vs ln(n/M), receivers at all sites";
  e.claim =
      "L-hat(n)/n vs ln(n/M) for k-ary trees with receivers "
      "throughout, against 1/ln k - ln(n/M)/ln k (paper Fig 5)";
  e.params = {
      p_u64("points", "n samples per curve (log grid)", 25, 70, 140),
  };
  e.metric_groups = {"scheduler"};
  e.run = [](context& ctx) {
    struct panel {
      unsigned k;
      std::vector<unsigned> depths;
    };
    const panel panels[] = {{2, {10, 14, 17}}, {4, {5, 7, 9}}};
    const std::size_t points = ctx.u64("points");

    for (const panel& p : panels) {
      const double lnk = std::log(static_cast<double>(p.k));
      ctx.sweep(p.depths.size(), [&](std::size_t i, recorder& rec,
                                     worker_state&) {
        const unsigned d = p.depths[i];
        const double m_sites = kary_site_count_all(p.k, d);
        std::vector<double> xs, ys;
        for (double frac : log_grid(1e-6, 1.0, points)) {
          const double n = frac * m_sites;
          if (n < 1.0) continue;
          xs.push_back(std::log(frac));
          ys.push_back(kary_tree_size_all_sites(p.k, d, n) / n);
        }
        std::ostringstream label;
        label << "k=" << p.k << ",D=" << d << "  (L/n vs ln(n/M), all sites)";
        rec.series(label.str(), xs, ys);

        std::vector<double> fx, fy;
        for (std::size_t j = 0; j < xs.size(); ++j) {
          const double frac = std::exp(xs[j]);
          if (frac * m_sites > d && frac < 0.3) {
            fx.push_back(xs[j]);
            fy.push_back(ys[j]);
          }
        }
        const linear_fit lf = fit_linear(fx, fy);
        std::ostringstream fit;
        fit << "slope=" << lf.slope << " predicted=" << -1.0 / lnk
            << " intercept(c)=" << lf.intercept
            << " leaves_intercept=" << 1.0 / lnk << " R2=" << lf.r_squared;
        rec.fit("Fig5/k=" + std::to_string(p.k) + ",D=" + std::to_string(d),
                fit.str());
      });
      std::vector<double> rx, ry;
      for (double lx : linear_grid(std::log(1e-6), 0.0, 13)) {
        rx.push_back(lx);
        ry.push_back((1.0 - lx) / lnk);
      }
      ctx.series("reference (1 - ln(n/M))/ln k, k=" + std::to_string(p.k),
                 rx, ry);
    }
    ctx.line(
        "paper: same slope -1/ln k as the leaf case, shifted "
        "constant c (Section 3.4).");
  };
  reg.add(std::move(e));
}

}  // namespace mcast::lab
