// Ablation (DESIGN.md §6.1) — SPT tie-breaking. BFS picks one of many
// shortest-path trees; the paper's quantities should not depend on which.
// Runs the Fig 1 measurement twice per network — lowest-id parents vs
// uniformly random equal-cost parents — and reports the worst relative
// difference of L(m)/ū across the grid.
#include <cmath>
#include <sstream>

#include "experiments.hpp"

#include "core/runner.hpp"
#include "lab/registry.hpp"
#include "sim/csv.hpp"
#include "topo/catalog.hpp"

namespace mcast::lab {

void register_ablation_tiebreak(registry& reg) {
  experiment e;
  e.id = "ablation_tiebreak";
  e.title = "Ablation: SPT equal-cost tie-breaking sensitivity";
  e.claim =
      "L(m)/ubar under lowest-id vs randomized equal-cost parent "
      "choice; the measurement must be insensitive (DESIGN.md 6.1)";
  e.params = {
      p_u64("budget", "node budget for the scaled network suite",
            300, 2000, 6000),
      p_u64("receiver_sets", "receiver sets per source", 6, 25, 60),
      p_u64("sources", "random sources per network", 4, 15, 40),
      p_u64("seed", "Monte-Carlo seed", 4242),
  };
  e.metric_groups = {"monte_carlo", "traversal", "spt_cache"};
  e.run = [](context& ctx) {
    const node_id budget = static_cast<node_id>(ctx.u64("budget"));
    const auto suite = paper_networks();
    monte_carlo_params mc = ctx.monte_carlo();
    mc.receiver_sets = ctx.u64("receiver_sets");
    mc.sources = ctx.u64("sources");
    mc.seed = ctx.u64("seed");

    table_writer table(
        {"network", "max |Δratio|/ratio", "mean |Δratio|/ratio"});
    for (const auto& entry : suite) {
      const auto shared = ctx.topology(entry.name, 7, budget);
      const graph& g = *shared;
      const auto grid = default_group_grid(g.node_count() - 1, 12);

      monte_carlo_params det = mc;
      det.randomize_spt_parents = false;
      monte_carlo_params rnd = mc;
      rnd.randomize_spt_parents = true;
      const auto a = measure_distinct_receivers(g, grid, det);
      const auto b = measure_distinct_receivers(g, grid, rnd);

      double worst = 0.0, total = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) {
        const double rel =
            std::abs(a[i].ratio_mean - b[i].ratio_mean) / a[i].ratio_mean;
        worst = std::max(worst, rel);
        total += rel;
      }
      table.add_row(
          {entry.name, table_writer::num(worst, 3),
           table_writer::num(total / static_cast<double>(a.size()), 3)});
      std::ostringstream line;
      line << "max_rel_diff=" << worst;
      ctx.fit("AblTiebreak/" + entry.name, line.str());
    }
    ctx.table(table);
    ctx.line("");
    ctx.line(
        "expected: differences at the Monte-Carlo-noise level "
        "(a few percent), confirming the measurement does not hinge "
        "on the BFS parent rule.");
  };
  reg.add(std::move(e));
}

}  // namespace mcast::lab
