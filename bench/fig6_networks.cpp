// Figure 6 — L̂(n)/(n·ū) versus ln n, measured by Monte-Carlo on the
// eight-network suite:
//   (a) generated topologies;   (b) real-style topologies.
// For networks with exponential reachability the curve is a straight line
// in ln n (the Eq 29 form); ti5000 / MBone / ARPA deviate. The FIT lines
// report the linearity (R²) that encodes the paper's dichotomy.
#include <cmath>
#include <sstream>

#include "experiments.hpp"

#include "analysis/fit.hpp"
#include "core/runner.hpp"
#include "lab/registry.hpp"
#include "topo/catalog.hpp"

namespace mcast::lab {

void register_fig6(registry& reg) {
  experiment e;
  e.id = "fig6";
  e.title = "Fig 6: L-hat(n)/(n*ubar) vs ln n on the eight networks";
  e.claim =
      "L-hat(n)/(n*ubar) vs ln n for the eight networks; linear "
      "for exponential-T(r) topologies (paper Fig 6a/6b)";
  e.params = {
      p_u64("budget",
            "node budget; suites below 30000 are scaled-down versions",
            400, 30000, 60000),
      p_u64("receiver_sets", "receiver sets per source", 5, 30, 100),
      p_u64("sources", "random sources per network", 4, 15, 100),
      p_u64("seed", "Monte-Carlo seed", 66),
      p_u64("grid_points", "group sizes on the log grid", 8, 18, 26),
  };
  e.metric_groups = {"monte_carlo", "traversal", "spt_cache"};
  e.run = [](context& ctx) {
    const node_id budget = static_cast<node_id>(ctx.u64("budget"));
    const node_id scale_budget = budget < 30000 ? budget : 0;
    const auto suite = paper_networks();
    monte_carlo_params mc = ctx.monte_carlo();
    mc.receiver_sets = ctx.u64("receiver_sets");
    mc.sources = ctx.u64("sources");
    mc.seed = ctx.u64("seed");
    const std::size_t grid_points = ctx.u64("grid_points");

    for (const auto& entry : suite) {
      const auto shared = ctx.topology(entry.name, 7, scale_budget);
      const graph& g = *shared;
      // n runs past the network size (with replacement), as in the paper.
      const std::uint64_t n_max = 4ULL * (g.node_count() - 1);
      const auto grid = default_group_grid(n_max, grid_points);
      const auto rows = measure_with_replacement(g, grid, mc);

      std::vector<double> xs, ys, fx, fy;
      for (const auto& p : rows) {
        const double lx = std::log(static_cast<double>(p.group_size));
        const double y = p.ratio_mean / static_cast<double>(p.group_size);
        xs.push_back(lx);
        ys.push_back(y);
        // The paper's linear regime is 5 < n < M; saturation bends everyone.
        if (p.group_size > 4 && p.group_size < g.node_count() - 1) {
          fx.push_back(lx);
          fy.push_back(y);
        }
      }
      ctx.series(entry.name + "  (L/(n*ubar) vs ln n)", xs, ys);

      const linear_fit lf = fit_linear(fx, fy);
      std::ostringstream fit;
      fit << "linearity_R2=" << lf.r_squared << " slope=" << lf.slope
          << (entry.kind == network_kind::generated ? " [generated]"
                                                    : " [real-style]");
      ctx.fit("Fig6/" + entry.name, fit.str());
    }
    ctx.line(
        "paper: r100/ts1000/ts1008/Internet/AS fit the predicted "
        "linear form; ti5000, MBone, ARPA less so (Section 4.2).");
  };
  reg.add(std::move(e));
}

}  // namespace mcast::lab
