// Figure 6 — L̂(n)/(n·ū) versus ln n, measured by Monte-Carlo on the
// eight-network suite:
//   (a) generated topologies;   (b) real-style topologies.
// For networks with exponential reachability the curve is a straight line
// in ln n (the Eq 29 form); ti5000 / MBone / ARPA deviate. The FIT lines
// report the linearity (R²) that encodes the paper's dichotomy.
#include <cmath>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/fit.hpp"
#include "bench_common.hpp"
#include "core/runner.hpp"
#include "graph/components.hpp"
#include "sim/csv.hpp"
#include "topo/catalog.hpp"

int main() {
  using namespace mcast;
  bench::banner("Fig 6",
                "L-hat(n)/(n*ubar) vs ln n for the eight networks; linear "
                "for exponential-T(r) topologies (paper Fig 6a/6b)");

  const node_id budget = bench::by_scale<node_id>(400, 30000, 60000);
  auto suite = paper_networks();
  if (budget < 30000) suite = scaled_networks(suite, budget);
  monte_carlo_params mc;
  mc.receiver_sets = bench::by_scale<std::size_t>(5, 30, 100);
  mc.sources = bench::by_scale<std::size_t>(4, 15, 100);
  mc.seed = 66;
  mc.threads = 0;  // use all cores; results are thread-count invariant
  const std::size_t grid_points = bench::by_scale<std::size_t>(8, 18, 26);

  for (const auto& entry : suite) {
    const graph g = largest_component(entry.build(7));
    // n runs past the network size (with replacement), as in the paper.
    const std::uint64_t n_max = 4ULL * (g.node_count() - 1);
    const auto grid = default_group_grid(n_max, grid_points);
    const auto rows = measure_with_replacement(g, grid, mc);

    std::vector<double> xs, ys, fx, fy;
    for (const auto& p : rows) {
      const double lx = std::log(static_cast<double>(p.group_size));
      const double y = p.ratio_mean / static_cast<double>(p.group_size);
      xs.push_back(lx);
      ys.push_back(y);
      // The paper's linear regime is 5 < n < M; saturation bends everyone.
      if (p.group_size > 4 && p.group_size < g.node_count() - 1) {
        fx.push_back(lx);
        fy.push_back(y);
      }
    }
    print_series(std::cout, entry.name + "  (L/(n*ubar) vs ln n)", xs, ys);

    const linear_fit lf = fit_linear(fx, fy);
    std::ostringstream fit;
    fit << "linearity_R2=" << lf.r_squared << " slope=" << lf.slope
        << (entry.kind == network_kind::generated ? " [generated]" : " [real-style]");
    print_fit_line(std::cout, "Fig6/" + entry.name, fit.str());
  }
  std::cout << "paper: r100/ts1000/ts1008/Internet/AS fit the predicted "
               "linear form; ti5000, MBone, ARPA less so (Section 4.2).\n";
  return 0;
}
