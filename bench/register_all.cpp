#include "experiments.hpp"

#include "lab/registry.hpp"

namespace mcast::lab {

void register_builtin(registry& reg) {
  register_table1(reg);
  register_fig1(reg);
  register_fig2(reg);
  register_fig3(reg);
  register_fig4(reg);
  register_fig5(reg);
  register_fig6(reg);
  register_fig7(reg);
  register_fig8(reg);
  register_fig9(reg);
  register_ablation_tiebreak(reg);
  register_ablation_mapping(reg);
  register_ablation_mixing(reg);
  register_ablation_ts_degree(reg);
  register_ext_shared_tree(reg);
  register_ext_reachability_zoo(reg);
  register_ext_weighted(reg);
  register_ext_sessions(reg);
  register_ext_failures(reg);
  register_ext_churn(reg);
}

}  // namespace mcast::lab
