// Extension — provisioning from the law. Runs the session-level simulator
// (Poisson sessions, churning membership) on ts1000 at several offered
// loads and compares the measured time-averaged aggregate link usage with
// the prediction a provider would compute from the fitted Chuang-Sirbu law:
//   predicted = E[#sessions] * ū * A * (mean group size)^ε
#include <cmath>
#include <sstream>

#include "experiments.hpp"

#include "core/runner.hpp"
#include "core/scaling_law.hpp"
#include "graph/metrics.hpp"
#include "lab/registry.hpp"
#include "multicast/unicast.hpp"
#include "session/simulator.hpp"
#include "sim/csv.hpp"
#include "topo/transit_stub.hpp"

namespace mcast::lab {

void register_ext_sessions(registry& reg) {
  experiment e;
  e.id = "ext_sessions";
  e.title = "Extension: provisioning sessions from the fitted law";
  e.claim =
      "aggregate multicast link load under churn vs the "
      "m^0.8-law prediction (the tariff/provisioning use case)";
  e.params = {
      p_u64("receiver_sets", "receiver sets for law calibration", 6, 20, 60),
      p_u64("sources", "sources for law calibration", 5, 15, 50),
      p_real("horizon", "simulated time horizon", 400.0, 2000.0, 8000.0),
      p_u64("session_seed", "session simulator seed", 77),
  };
  e.metric_groups = {"monte_carlo", "traversal", "spt_cache", "session"};
  e.run = [](context& ctx) {
    const graph g = make_transit_stub(ts1000_params(), 6);
    monte_carlo_params mc = ctx.monte_carlo();
    mc.receiver_sets = ctx.u64("receiver_sets");
    mc.sources = ctx.u64("sources");
    const auto rows = measure_distinct_receivers(
        g, default_group_grid(g.node_count() - 1, 14), mc);
    const scaling_law law = scaling_law::fit_to(rows, 2.0, 500.0);
    const double ubar = average_path_length_exact(g);  // mean over sources
    {
      std::ostringstream calibrated;
      calibrated << "calibrated: " << law.describe() << "  ubar=" << ubar;
      ctx.line(calibrated.str());
      ctx.line("");
    }

    const double horizon = ctx.real("horizon");
    const std::uint64_t session_seed = ctx.u64("session_seed");
    table_writer table({"arrival rate", "mean members", "avg sessions",
                        "avg links (sim)", "avg links (law)", "sim/law"});
    double worst = 0.0;
    for (double arrival : {0.1, 0.25, 0.5}) {
      for (double member_life : {6.0, 12.0, 24.0}) {
        session_workload w;
        w.session_arrival_rate = arrival;
        w.session_lifetime_mean = 40.0;
        w.member_join_rate = 1.0;
        w.member_lifetime_mean = member_life;
        w.max_concurrent_sessions = 4096;
        const session_metrics m =
            simulate_sessions(g, w, horizon, horizon / 5.0, session_seed);
        if (m.mean_group_size_at_join < 1.0 || m.time_avg_sessions <= 0.0) {
          continue;
        }
        const double predicted =
            m.time_avg_sessions * law.tree_size(m.mean_group_size_at_join, ubar);
        const double ratio = m.time_avg_links / predicted;
        worst = std::max(worst, std::abs(ratio - 1.0));
        table.add_row({table_writer::num(arrival, 3),
                       table_writer::num(w.member_join_rate * member_life, 3),
                       table_writer::num(m.time_avg_sessions, 4),
                       table_writer::num(m.time_avg_links, 5),
                       table_writer::num(predicted, 5),
                       table_writer::num(ratio, 3)});
      }
    }
    ctx.table(table);
    std::ostringstream line;
    line << "worst_abs_error=" << worst
         << " (law-based provisioning vs simulated churn)";
    ctx.fit("ExtSessions", line.str());
    ctx.line("");
    ctx.line(
        "finding: composing the fitted law with the workload's "
        "mean group size predicts aggregate multicast bandwidth "
        "typically within 10% (worst ~18%) across a 9-point load matrix.");
  };
  reg.add(std::move(e));
}

}  // namespace mcast::lab
