// Figure 3 — L̂(n)/n versus ln(n/M) for k-ary trees with receivers at the
// leaves, compared to the predicted line 1/ln k − ln(n/M)/ln k (Eq 16):
//   (a) k = 2, D = 10, 14, 17;   (b) k = 4, D = 5, 7, 9.
// The linear mid-range with slope −1/ln k is the paper's "linear with a
// logarithmic correction" form of L̂(n) (Eq 17). Per-depth curves fan out
// over the scheduler.
#include <cmath>
#include <sstream>

#include "experiments.hpp"

#include "analysis/fit.hpp"
#include "analysis/kary_asymptotic.hpp"
#include "analysis/kary_exact.hpp"
#include "analysis/series.hpp"
#include "lab/registry.hpp"

namespace mcast::lab {

void register_fig3(registry& reg) {
  experiment e;
  e.id = "fig3";
  e.title = "Fig 3: L-hat(n)/n vs ln(n/M), receivers at leaves";
  e.claim =
      "L-hat(n)/n vs ln(n/M) for k-ary trees (receivers at "
      "leaves) against the line 1/ln k - ln(n/M)/ln k (paper Fig 3)";
  e.params = {
      p_u64("points", "n samples per curve (log grid)", 25, 70, 140),
  };
  e.metric_groups = {"scheduler"};
  e.run = [](context& ctx) {
    struct panel {
      unsigned k;
      std::vector<unsigned> depths;
    };
    const panel panels[] = {{2, {10, 14, 17}}, {4, {5, 7, 9}}};
    const std::size_t points = ctx.u64("points");

    for (const panel& p : panels) {
      const double lnk = std::log(static_cast<double>(p.k));
      ctx.sweep(p.depths.size(), [&](std::size_t i, recorder& rec,
                                     worker_state&) {
        const unsigned d = p.depths[i];
        const double m_sites = kary_leaf_count(p.k, d);
        std::vector<double> xs, ys;
        for (double frac : log_grid(1e-6, 1.0, points)) {
          const double n = frac * m_sites;
          if (n < 1.0) continue;
          xs.push_back(std::log(frac));
          ys.push_back(kary_tree_size_leaves(p.k, d, n) / n);
        }
        std::ostringstream label;
        label << "k=" << p.k << ",D=" << d << "  (L/n vs ln(n/M))";
        rec.series(label.str(), xs, ys);

        // Fit the intermediate regime D/M < n/M < 0.3 and compare the slope
        // with the predicted -1/ln k.
        std::vector<double> fx, fy;
        for (std::size_t j = 0; j < xs.size(); ++j) {
          const double frac = std::exp(xs[j]);
          if (frac * m_sites > d && frac < 0.3) {
            fx.push_back(xs[j]);
            fy.push_back(ys[j]);
          }
        }
        const linear_fit lf = fit_linear(fx, fy);
        std::ostringstream fit;
        fit << "slope=" << lf.slope << " predicted=" << -1.0 / lnk
            << " intercept=" << lf.intercept << " predicted_intercept="
            << 1.0 / lnk << " R2=" << lf.r_squared;
        rec.fit("Fig3/k=" + std::to_string(p.k) + ",D=" + std::to_string(d),
                fit.str());
      });
      std::vector<double> rx, ry;
      for (double lx : linear_grid(std::log(1e-6), 0.0, 13)) {
        rx.push_back(lx);
        ry.push_back((1.0 - lx) / lnk);
      }
      ctx.series("reference (1 - ln(n/M))/ln k, k=" + std::to_string(p.k),
                 rx, ry);
    }
    ctx.line(
        "paper: slopes match -1/ln k closely; intercepts deviate "
        "slightly (additive constant, Section 3.3).");
  };
  reg.add(std::move(e));
}

}  // namespace mcast::lab
