// Figure 8 — L̂(n)/(n·D) versus ln n for three synthetic reachability
// families, all normalized to the same S(D) (Eq 23, Section 4.3):
//   exponential        S(r) = 2^r
//   polynomial         S(r) ∝ r^λ        (slower than exponential)
//   super-exponential  S(r) ∝ e^{λ r²}   (faster than exponential)
// The exponential case follows the linear-in-ln n form; the other two do
// not — the boundary of the paper's analysis.
#include <cmath>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/fit.hpp"
#include "analysis/reachability.hpp"
#include "analysis/series.hpp"
#include "bench_common.hpp"
#include "sim/csv.hpp"

int main() {
  using namespace mcast;
  bench::banner("Fig 8",
                "L-hat(n)/(n*D) vs ln n for exponential, polynomial and "
                "super-exponential S(r), equal S(D) (paper Fig 8)");

  const unsigned depth = bench::by_scale<unsigned>(16, 30, 34);
  const double anchor = std::pow(2.0, static_cast<double>(depth));
  const double n_max = bench::by_scale<double>(1e8, 1e10, 1e12);
  const std::size_t points = bench::by_scale<std::size_t>(30, 60, 90);

  struct family {
    std::string name;
    std::vector<double> s;
  };
  const family families[] = {
      {"S(r)=2^r (exponential)", synthetic_reachability_exponential(2.0, depth)},
      {"S(r)~r^4 (polynomial)", synthetic_reachability_power(4.0, depth, anchor)},
      {"S(r)~e^(l*r^2) (super-exponential)",
       synthetic_reachability_superexponential(std::log(2.0) / depth, depth, anchor)},
  };

  for (const family& f : families) {
    std::vector<double> xs, ys;
    for (double n : log_grid(1.0, n_max, points)) {
      xs.push_back(std::log(n));
      ys.push_back(general_tree_size_leaves(f.s, n) /
                   (n * static_cast<double>(depth)));
    }
    print_series(std::cout, f.name + "  (L/(n*D) vs ln n)", xs, ys);

    // Linearity over the pre-saturation range ln n in [ln D, ln(S(D))].
    std::vector<double> fx, fy;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      if (xs[i] > std::log(static_cast<double>(depth)) &&
          xs[i] < std::log(anchor)) {
        fx.push_back(xs[i]);
        fy.push_back(ys[i]);
      }
    }
    const linear_fit lf = fit_linear(fx, fy);
    std::ostringstream line;
    line << "linearity_R2=" << lf.r_squared << " slope=" << lf.slope;
    print_fit_line(std::cout, "Fig8/" + f.name, line.str());
  }
  std::cout << "paper: only the exponential family follows the "
               "n(c - ln(n/M)/lambda) form; the others have 'quite "
               "different behavior' (Section 4.3).\n";
  return 0;
}
