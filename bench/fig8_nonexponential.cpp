// Figure 8 — L̂(n)/(n·D) versus ln n for three synthetic reachability
// families, all normalized to the same S(D) (Eq 23, Section 4.3):
//   exponential        S(r) = 2^r
//   polynomial         S(r) ∝ r^λ        (slower than exponential)
//   super-exponential  S(r) ∝ e^{λ r²}   (faster than exponential)
// The exponential case follows the linear-in-ln n form; the other two do
// not — the boundary of the paper's analysis. The three families are
// independent and fan out over the scheduler.
#include <cmath>
#include <sstream>
#include <string>

#include "experiments.hpp"

#include "analysis/fit.hpp"
#include "analysis/reachability.hpp"
#include "analysis/series.hpp"
#include "lab/registry.hpp"

namespace mcast::lab {

void register_fig8(registry& reg) {
  experiment e;
  e.id = "fig8";
  e.title = "Fig 8: L-hat(n)/(n*D) vs ln n for synthetic S(r) families";
  e.claim =
      "L-hat(n)/(n*D) vs ln n for exponential, polynomial and "
      "super-exponential S(r), equal S(D) (paper Fig 8)";
  e.params = {
      p_u64("depth", "tree depth D (sets the common anchor S(D)=2^D)",
            16, 30, 34),
      p_real("n_max", "largest n on the log grid", 1e8, 1e10, 1e12),
      p_u64("points", "n samples per curve (log grid)", 30, 60, 90),
  };
  e.metric_groups = {"scheduler"};
  e.run = [](context& ctx) {
    const unsigned depth = static_cast<unsigned>(ctx.u64("depth"));
    const double anchor = std::pow(2.0, static_cast<double>(depth));
    const double n_max = ctx.real("n_max");
    const std::size_t points = ctx.u64("points");

    struct family {
      std::string name;
      std::vector<double> s;
    };
    const family families[] = {
        {"S(r)=2^r (exponential)",
         synthetic_reachability_exponential(2.0, depth)},
        {"S(r)~r^4 (polynomial)",
         synthetic_reachability_power(4.0, depth, anchor)},
        {"S(r)~e^(l*r^2) (super-exponential)",
         synthetic_reachability_superexponential(std::log(2.0) / depth, depth,
                                                 anchor)},
    };

    ctx.sweep(3, [&](std::size_t i, recorder& rec, worker_state&) {
      const family& f = families[i];
      std::vector<double> xs, ys;
      for (double n : log_grid(1.0, n_max, points)) {
        xs.push_back(std::log(n));
        ys.push_back(general_tree_size_leaves(f.s, n) /
                     (n * static_cast<double>(depth)));
      }
      rec.series(f.name + "  (L/(n*D) vs ln n)", xs, ys);

      // Linearity over the pre-saturation range ln n in [ln D, ln(S(D))].
      std::vector<double> fx, fy;
      for (std::size_t j = 0; j < xs.size(); ++j) {
        if (xs[j] > std::log(static_cast<double>(depth)) &&
            xs[j] < std::log(anchor)) {
          fx.push_back(xs[j]);
          fy.push_back(ys[j]);
        }
      }
      const linear_fit lf = fit_linear(fx, fy);
      std::ostringstream line;
      line << "linearity_R2=" << lf.r_squared << " slope=" << lf.slope;
      rec.fit("Fig8/" + f.name, line.str());
    });
    ctx.line(
        "paper: only the exponential family follows the "
        "n(c - ln(n/M)/lambda) form; the others have 'quite "
        "different behavior' (Section 4.3).");
  };
  reg.add(std::move(e));
}

}  // namespace mcast::lab
