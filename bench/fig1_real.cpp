// Figure 1(b) — Chuang-Sirbu scaling on real-style topologies
// (ARPA, MBone, Internet, AS; substitutions per DESIGN.md section 3).
#include "fig1_support.hpp"

int main() {
  return mcast::bench::run_fig1("Fig 1(b)", mcast::real_networks());
}
