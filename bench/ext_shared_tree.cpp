// Extension — shared (core-based) trees vs source-specific trees.
// The paper scopes shared trees out (footnote 1, deferring to Wei &
// Estrin); this extension asks the natural follow-up: does the
// Chuang-Sirbu-style scaling hold for core-based trees too, and what does
// the core detour cost across group sizes and core-placement strategies?
#include <cmath>
#include <sstream>

#include "experiments.hpp"

#include "analysis/fit.hpp"
#include "core/runner.hpp"
#include "lab/registry.hpp"
#include "multicast/shared_tree.hpp"
#include "topo/catalog.hpp"

namespace mcast::lab {

void register_ext_shared_tree(registry& reg) {
  experiment e;
  e.id = "ext_shared_tree";
  e.title = "Extension: core-based shared trees vs source trees";
  e.claim =
      "core-based tree footprint vs source-specific SPT footprint "
      "across group sizes (Wei-Estrin comparison; paper footnote 1)";
  e.params = {
      p_u64("budget", "node budget for ts1000 and AS", 300, 2500, 6000),
      p_u64("receiver_sets", "receiver sets per source", 6, 25, 60),
      p_u64("sources", "random sources per network", 4, 15, 40),
      p_u64("seed", "Monte-Carlo seed", 404),
  };
  e.metric_groups = {"traversal"};
  e.run = [](context& ctx) {
    const node_id budget = static_cast<node_id>(ctx.u64("budget"));
    const std::vector<network_entry> suite{find_network("ts1000"),
                                           find_network("AS")};
    const std::size_t receiver_sets = ctx.u64("receiver_sets");
    const std::size_t sources = ctx.u64("sources");
    const std::uint64_t seed = ctx.u64("seed");

    for (const auto& entry : suite) {
      const auto shared = ctx.topology(entry.name, 7, budget);
      const graph& g = *shared;
      const auto grid = default_group_grid(g.node_count() - 1, 12);

      for (core_strategy strategy :
           {core_strategy::random, core_strategy::path_center}) {
        const char* sname =
            strategy == core_strategy::random ? "random-core" : "center-core";
        const auto rows = compare_source_vs_shared(g, grid, strategy,
                                                   receiver_sets, sources,
                                                   seed);
        std::vector<double> xs, ratio, shared_links;
        for (const auto& row : rows) {
          xs.push_back(static_cast<double>(row.group_size));
          ratio.push_back(row.shared_over_source);
          shared_links.push_back(row.shared_tree_links);
        }
        ctx.series(entry.name + "/" + sname + "  (L_shared/L_source vs m)",
                   xs, ratio);

        // Does the shared tree itself scale like m^0.8?
        const power_law_fit f = fit_power_law_windowed(
            xs, shared_links, 2.0, 0.5 * static_cast<double>(g.node_count()));
        std::ostringstream line;
        line << "shared_tree_exponent=" << f.exponent << " R2=" << f.r_squared
             << " ratio@max_m=" << ratio.back();
        ctx.fit("ExtShared/" + entry.name + "/" + sname, line.str());
      }
    }
    ctx.line(
        "finding: core-based trees follow a near-0.8 power law as "
        "well; a centered core keeps the overhead within a few "
        "percent of source trees while a random core pays more at "
        "small m.");
  };
  reg.add(std::move(e));
}

}  // namespace mcast::lab
