// Extension — shared (core-based) trees vs source-specific trees.
// The paper scopes shared trees out (footnote 1, deferring to Wei &
// Estrin); this extension asks the natural follow-up: does the
// Chuang-Sirbu-style scaling hold for core-based trees too, and what does
// the core detour cost across group sizes and core-placement strategies?
#include <cmath>
#include <iostream>
#include <sstream>
#include <vector>

#include "analysis/fit.hpp"
#include "bench_common.hpp"
#include "core/runner.hpp"
#include "graph/components.hpp"
#include "multicast/shared_tree.hpp"
#include "sim/csv.hpp"
#include "topo/catalog.hpp"

int main() {
  using namespace mcast;
  bench::banner("Extension: shared vs source trees",
                "core-based tree footprint vs source-specific SPT footprint "
                "across group sizes (Wei-Estrin comparison; paper footnote 1)");

  const node_id budget = bench::by_scale<node_id>(300, 2500, 6000);
  const auto suite = scaled_networks(
      std::vector<network_entry>{find_network("ts1000"), find_network("AS")},
      budget);
  const std::size_t receiver_sets = bench::by_scale<std::size_t>(6, 25, 60);
  const std::size_t sources = bench::by_scale<std::size_t>(4, 15, 40);

  for (const auto& entry : suite) {
    const graph g = largest_component(entry.build(7));
    const auto grid = default_group_grid(g.node_count() - 1, 12);

    for (core_strategy strategy :
         {core_strategy::random, core_strategy::path_center}) {
      const char* sname =
          strategy == core_strategy::random ? "random-core" : "center-core";
      const auto rows = compare_source_vs_shared(g, grid, strategy,
                                                 receiver_sets, sources, 404);
      std::vector<double> xs, ratio, shared_links;
      for (const auto& row : rows) {
        xs.push_back(static_cast<double>(row.group_size));
        ratio.push_back(row.shared_over_source);
        shared_links.push_back(row.shared_tree_links);
      }
      print_series(std::cout,
                   entry.name + "/" + sname + "  (L_shared/L_source vs m)", xs,
                   ratio);

      // Does the shared tree itself scale like m^0.8?
      const power_law_fit f = fit_power_law_windowed(
          xs, shared_links, 2.0, 0.5 * static_cast<double>(g.node_count()));
      std::ostringstream line;
      line << "shared_tree_exponent=" << f.exponent << " R2=" << f.r_squared
           << " ratio@max_m=" << ratio.back();
      print_fit_line(std::cout, "ExtShared/" + entry.name + "/" + sname,
                     line.str());
    }
  }
  std::cout << "finding: core-based trees follow a near-0.8 power law as "
               "well; a centered core keeps the overhead within a few "
               "percent of source trees while a random core pays more at "
               "small m.\n";
  return 0;
}
