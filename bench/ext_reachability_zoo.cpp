// Extension — the paper's closing question: "do real networks (current or
// future ones) have exponential reachability functions S(r)?" and its call
// for "more investigations of artificially generated networks". This
// experiment classifies a zoo of generative models by T(r) growth (λ, R² of
// ln T ~ r) and checks, for each, whether the paper's linear
// L̂(n)/(n·ū)-in-ln n form holds — closing the loop between Section 4.2's
// conjecture and Fig 8. One RNG is shared across the zoo loop (matching the
// original binary), so the outer loop stays serial; the Monte-Carlo runner
// underneath still uses every granted thread.
#include <cmath>
#include <sstream>
#include <string>

#include "experiments.hpp"

#include "analysis/fit.hpp"
#include "analysis/reachability.hpp"
#include "core/runner.hpp"
#include "graph/components.hpp"
#include "lab/registry.hpp"
#include "sim/csv.hpp"
#include "topo/kary.hpp"
#include "topo/power_law.hpp"
#include "topo/random.hpp"
#include "topo/regular.hpp"
#include "topo/tiers.hpp"
#include "topo/transit_stub.hpp"
#include "topo/waxman.hpp"

namespace mcast::lab {

void register_ext_reachability_zoo(registry& reg) {
  experiment e;
  e.id = "ext_reachability_zoo";
  e.title = "Extension: T(r) growth zoo across generator families";
  e.claim =
      "T(r) growth classification across generator families and "
      "whether the linear L-hat form follows (paper Section 6)";
  e.params = {
      p_u64("nodes", "target node count per family", 256, 1024, 4096),
      p_u64("receiver_sets", "receiver sets per source", 5, 20, 50),
      p_u64("sources", "random sources per family", 4, 12, 30),
      p_u64("seed", "Monte-Carlo seed", 55),
      p_u64("reach_seed", "reachability source-sampling seed", 2),
  };
  e.metric_groups = {"monte_carlo", "traversal", "spt_cache"};
  e.run = [](context& ctx) {
    const node_id n_small = static_cast<node_id>(ctx.u64("nodes"));
    struct zoo_entry {
      std::string name;
      graph g;
    };
    std::vector<zoo_entry> zoo;
    zoo.push_back({"ring", make_ring(n_small)});
    zoo.push_back({"torus", make_torus(32, n_small / 32)});
    zoo.push_back({"grid", make_grid(32, n_small / 32)});
    zoo.push_back({"hypercube", make_hypercube(10)});
    zoo.push_back({"kary2", make_kary_tree(2, 9)});
    {
      waxman_params p;
      p.nodes = n_small;
      p.alpha = 0.02;
      p.beta = 0.6;
      zoo.push_back({"waxman-sparse", largest_component(make_waxman(p, 3))});
      p.alpha = 0.15;
      zoo.push_back({"waxman-dense", largest_component(make_waxman(p, 3))});
    }
    {
      barabasi_albert_params p;
      p.nodes = n_small;
      zoo.push_back({"barabasi-albert", make_barabasi_albert(p, 3)});
    }
    {
      chung_lu_params p;
      p.nodes = n_small;
      p.exponent = 2.3;
      zoo.push_back({"chung-lu-2.3", make_chung_lu(p, 3)});
    }
    {
      erdos_renyi_params p;
      p.nodes = n_small;
      p.edge_prob = 4.0 / static_cast<double>(n_small);
      zoo.push_back({"erdos-renyi", make_erdos_renyi(p, 3)});
    }
    {
      random_regular_params p;
      p.nodes = n_small;
      p.degree = 3;
      zoo.push_back({"random-regular-3", make_random_regular(p, 3)});
    }
    zoo.push_back({"transit-stub", make_transit_stub(ts1000_params(), 3)});
    {
      tiers_params p = ti5000_params();
      p.man_count = 6;
      p.lans_per_man = 8;
      zoo.push_back({"tiers", make_tiers(p, 3)});
    }

    monte_carlo_params mc = ctx.monte_carlo();
    mc.receiver_sets = ctx.u64("receiver_sets");
    mc.sources = ctx.u64("sources");
    mc.seed = ctx.u64("seed");

    table_writer table({"family", "nodes", "T(r) lambda", "R2(lnT~r)",
                        "fig6 linearity R2", "verdict"});
    rng gen(ctx.u64("reach_seed"));
    std::vector<double> growth_r2s, form_r2s;
    for (const auto& z : zoo) {
      const reachability_growth_fit growth =
          fit_reachability_growth(mean_reachability(z.g, 12, gen));

      const auto grid = default_group_grid(2ULL * (z.g.node_count() - 1), 10);
      const auto rows = measure_with_replacement(z.g, grid, mc);
      // Fit the paper's linear regime 5 < n < M only (saturation bends all).
      std::vector<double> xs, ys;
      for (const auto& row : rows) {
        if (row.group_size > 4 && row.group_size < z.g.node_count() - 1) {
          xs.push_back(std::log(static_cast<double>(row.group_size)));
          ys.push_back(row.ratio_mean / static_cast<double>(row.group_size));
        }
      }
      const linear_fit lf = fit_linear(xs, ys);

      // Graphs that saturate within a couple of hops have no growth regime
      // to classify; keep them out of the aggregate.
      const bool degenerate = growth.radii_used < 3;
      if (!degenerate) {
        growth_r2s.push_back(growth.r_squared);
        form_r2s.push_back(lf.r_squared);
      }
      // Loose bands (small graphs have few radii, so the growth fit is
      // noisy); the robust statement is the cross-family contrast below.
      const bool exponential = growth.r_squared > 0.93;
      const bool linear_form = lf.r_squared > 0.96;
      const char* verdict =
          degenerate ? "too shallow to classify"
          : exponential == linear_form
              ? (exponential ? "exp -> linear (as predicted)"
                             : "sub-exp -> bent (as predicted)")
              : "borderline";
      table.add_row({z.name, std::to_string(z.g.node_count()),
                     table_writer::num(growth.lambda, 3),
                     table_writer::num(growth.r_squared, 4),
                     table_writer::num(lf.r_squared, 4), verdict});
      std::ostringstream line;
      line << "growth_R2=" << growth.r_squared << " form_R2=" << lf.r_squared;
      ctx.fit("ExtZoo/" + z.name, line.str());
    }
    ctx.table(table);

    // The conjecture as one number: families with exponential-looking T(r)
    // should have a more linear Fig 6 form than the rest.
    double exp_sum = 0.0, sub_sum = 0.0;
    std::size_t exp_n = 0, sub_n = 0;
    for (std::size_t i = 0; i < growth_r2s.size(); ++i) {
      if (growth_r2s[i] > 0.93) {
        exp_sum += form_r2s[i];
        ++exp_n;
      } else {
        sub_sum += form_r2s[i];
        ++sub_n;
      }
    }
    std::ostringstream summary;
    if (exp_n > 0 && sub_n > 0) {
      summary << "mean_form_R2: exponential-group=" << exp_sum / exp_n
              << " sub-exponential-group=" << sub_sum / sub_n
              << " (gap > 0 supports the Section 4.2 conjecture)";
    } else {
      summary << "not enough families in both groups to contrast";
    }
    ctx.fit("ExtZoo/summary", summary.str());
    ctx.line("");
    ctx.line(
        "reading: random/power-law families are exponential and "
        "follow the linear form; lattice/ring/tree+LAN families are "
        "not and bend — supporting the Section 4.2 conjecture beyond "
        "the paper's eight networks.");
  };
  reg.add(std::move(e));
}

}  // namespace mcast::lab
