// Micro-benchmarks (google-benchmark) for the primitives every figure's
// Monte-Carlo loop is built from: BFS, delivery-tree growth, receiver
// sampling, k-ary index arithmetic, RNG throughput, exact-formula
// evaluation and the affinity chain move.
#include <benchmark/benchmark.h>

#include "analysis/kary_exact.hpp"
#include "analysis/reachability.hpp"
#include "graph/bfs.hpp"
#include "multicast/affinity.hpp"
#include "multicast/delivery_tree.hpp"
#include "multicast/receivers.hpp"
#include "sim/rng.hpp"
#include "topo/catalog.hpp"
#include "topo/kary.hpp"
#include "topo/transit_stub.hpp"

namespace {

using namespace mcast;

const graph& ts1000_graph() {
  static const graph g = make_transit_stub(ts1000_params(), 1);
  return g;
}

void bm_bfs_ts1000(benchmark::State& state) {
  const graph& g = ts1000_graph();
  rng gen(1);
  for (auto _ : state) {
    const auto d = bfs_distances(g, static_cast<node_id>(gen.below(g.node_count())));
    benchmark::DoNotOptimize(d.data());
  }
}
BENCHMARK(bm_bfs_ts1000);

void bm_delivery_tree_ts1000(benchmark::State& state) {
  const graph& g = ts1000_graph();
  const source_tree tree(g, 0);
  const auto universe = all_sites_except(g, 0);
  rng gen(2);
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  delivery_tree_builder builder(tree);
  for (auto _ : state) {
    builder.reset();
    for (node_id v : sample_with_replacement(universe, m, gen)) {
      builder.add_receiver(v);
    }
    benchmark::DoNotOptimize(builder.link_count());
  }
}
BENCHMARK(bm_delivery_tree_ts1000)->Arg(8)->Arg(64)->Arg(512);

void bm_sample_distinct(benchmark::State& state) {
  const graph& g = ts1000_graph();
  const auto universe = all_sites_except(g, 0);
  rng gen(3);
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const auto s = sample_distinct(universe, m, gen);
    benchmark::DoNotOptimize(s.data());
  }
}
BENCHMARK(bm_sample_distinct)->Arg(16)->Arg(256);

void bm_kary_distance(benchmark::State& state) {
  const kary_shape shape(2, 12);
  rng gen(4);
  const std::uint64_t total = shape.node_count();
  for (auto _ : state) {
    const node_id a = static_cast<node_id>(gen.below(total));
    const node_id b = static_cast<node_id>(gen.below(total));
    benchmark::DoNotOptimize(shape.distance(a, b));
  }
}
BENCHMARK(bm_kary_distance);

void bm_rng_below(benchmark::State& state) {
  rng gen(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.below(12345));
  }
}
BENCHMARK(bm_rng_below);

void bm_kary_exact_formula(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(kary_tree_size_leaves(2, 17, 31337.0));
  }
}
BENCHMARK(bm_kary_exact_formula);

void bm_reachability_profile(benchmark::State& state) {
  const graph& g = ts1000_graph();
  rng gen(6);
  for (auto _ : state) {
    const auto p = reachability_from(g, static_cast<node_id>(gen.below(g.node_count())));
    benchmark::DoNotOptimize(p.total_sites());
  }
}
BENCHMARK(bm_reachability_profile);

void bm_affinity_chain(benchmark::State& state) {
  const kary_shape shape(2, 10);
  static const graph g = shape.to_graph();
  const source_tree tree(g, 0);
  const auto universe = all_sites_except(g, 0);
  const kary_distance_oracle oracle(shape);
  affinity_chain_params params;
  params.beta = 1.0;
  params.burn_in_sweeps = 2;
  params.sample_sweeps = 1;
  params.measurements = 1;
  rng gen(7);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sample_affinity_tree_size(tree, universe, n, oracle, params, gen)
            .mean_tree_size);
  }
}
BENCHMARK(bm_affinity_chain)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
