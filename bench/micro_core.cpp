// Micro-benchmarks (google-benchmark) for the primitives every figure's
// Monte-Carlo loop is built from: BFS, delivery-tree growth, receiver
// sampling, k-ary index arithmetic, RNG throughput, exact-formula
// evaluation and the affinity chain move — plus the before/after pair for
// the workspace + spt_cache hot path (bm_mc_repeated_source_*), whose
// items/sec ratio is the headline speedup in docs/performance.md.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <optional>

#include "analysis/kary_exact.hpp"
#include "analysis/reachability.hpp"
#include "graph/bfs.hpp"
#include "graph/workspace.hpp"
#include "multicast/affinity.hpp"
#include "multicast/delivery_tree.hpp"
#include "multicast/receivers.hpp"
#include "multicast/spt_cache.hpp"
#include "obs/metrics.hpp"
#include "sim/rng.hpp"
#include "topo/catalog.hpp"
#include "topo/kary.hpp"
#include "topo/transit_stub.hpp"

// Global allocation counter so benchmarks can report allocations per
// sample. Replacing operator new is only safe binary-wide, so this lives
// in the bench executable and nowhere near the libraries.
namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace mcast;

const graph& ts1000_graph() {
  static const graph g = make_transit_stub(ts1000_params(), 1);
  return g;
}

void bm_bfs_ts1000(benchmark::State& state) {
  const graph& g = ts1000_graph();
  rng gen(1);
  for (auto _ : state) {
    const auto d = bfs_distances(g, static_cast<node_id>(gen.below(g.node_count())));
    benchmark::DoNotOptimize(d.data());
  }
}
BENCHMARK(bm_bfs_ts1000);

void bm_delivery_tree_ts1000(benchmark::State& state) {
  const graph& g = ts1000_graph();
  const source_tree tree(g, 0);
  const auto universe = all_sites_except(g, 0);
  rng gen(2);
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  delivery_tree_builder builder(tree);
  for (auto _ : state) {
    builder.reset();
    for (node_id v : sample_with_replacement(universe, m, gen)) {
      builder.add_receiver(v);
    }
    benchmark::DoNotOptimize(builder.link_count());
  }
}
BENCHMARK(bm_delivery_tree_ts1000)->Arg(8)->Arg(64)->Arg(512);

void bm_sample_distinct(benchmark::State& state) {
  const graph& g = ts1000_graph();
  const auto universe = all_sites_except(g, 0);
  rng gen(3);
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const auto s = sample_distinct(universe, m, gen);
    benchmark::DoNotOptimize(s.data());
  }
}
BENCHMARK(bm_sample_distinct)->Arg(16)->Arg(256);

void bm_kary_distance(benchmark::State& state) {
  const kary_shape shape(2, 12);
  rng gen(4);
  const std::uint64_t total = shape.node_count();
  for (auto _ : state) {
    const node_id a = static_cast<node_id>(gen.below(total));
    const node_id b = static_cast<node_id>(gen.below(total));
    benchmark::DoNotOptimize(shape.distance(a, b));
  }
}
BENCHMARK(bm_kary_distance);

void bm_rng_below(benchmark::State& state) {
  rng gen(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.below(12345));
  }
}
BENCHMARK(bm_rng_below);

void bm_kary_exact_formula(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(kary_tree_size_leaves(2, 17, 31337.0));
  }
}
BENCHMARK(bm_kary_exact_formula);

void bm_reachability_profile(benchmark::State& state) {
  const graph& g = ts1000_graph();
  rng gen(6);
  for (auto _ : state) {
    const auto p = reachability_from(g, static_cast<node_id>(gen.below(g.node_count())));
    benchmark::DoNotOptimize(p.total_sites());
  }
}
BENCHMARK(bm_reachability_profile);

// Before/after pair for the PR's hot-path work. Both run the same
// repeated-source Monte-Carlo inner loop on ts1000 (sources drawn with
// replacement from a small pool, m receivers with replacement per sample,
// delivery-tree size + unicast total per sample — exactly the core/runner
// sample). "seed" allocates everything per sample the way the pre-workspace
// code did; "cached" uses the traversal workspace, the spt_cache and the
// reusable builder/sample buffers. items/sec == samples/sec.

constexpr std::size_t kMcSourcePool = 16;
constexpr std::size_t kMcGroupSize = 32;

std::vector<node_id> mc_source_pool(const graph& g) {
  rng gen(42);
  std::vector<node_id> pool(kMcSourcePool);
  for (node_id& s : pool) s = static_cast<node_id>(gen.below(g.node_count()));
  return pool;
}

void bm_mc_repeated_source_seed(benchmark::State& state) {
  const graph& g = ts1000_graph();
  const std::vector<node_id> pool = mc_source_pool(g);
  rng gen(8);
  const std::uint64_t allocs_before =
      g_heap_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    const node_id source = pool[gen.below(pool.size())];
    const source_tree tree(g, source);
    const auto universe = all_sites_except(g, source);
    delivery_tree_builder builder(tree);
    std::uint64_t path_total = 0;
    for (node_id v : sample_with_replacement(universe, kMcGroupSize, gen)) {
      builder.add_receiver(v);
      path_total += tree.distance(v);
    }
    benchmark::DoNotOptimize(builder.link_count());
    benchmark::DoNotOptimize(path_total);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["allocs_per_sample"] = benchmark::Counter(
      static_cast<double>(g_heap_allocs.load(std::memory_order_relaxed) -
                          allocs_before) /
      static_cast<double>(state.iterations()));
}
BENCHMARK(bm_mc_repeated_source_seed);

void bm_mc_repeated_source_cached(benchmark::State& state) {
  const graph& g = ts1000_graph();
  const std::vector<node_id> pool = mc_source_pool(g);
  rng gen(8);
  traversal_workspace ws;
  spt_cache cache(64);
  std::vector<node_id> universe;
  std::vector<node_id> sample;
  std::optional<delivery_tree_builder> builder;
  const std::uint64_t allocs_before =
      g_heap_allocs.load(std::memory_order_relaxed);
  // Hit/miss accounting comes from the obs registry (the cache reports
  // there as it runs) rather than from bench-side bookkeeping.
  const obs::metrics_snapshot obs_before = obs::snapshot();
  for (auto _ : state) {
    const node_id source = pool[gen.below(pool.size())];
    const auto spt = cache.get(g, source, ws);
    universe.clear();
    for (node_id v = 0; v < g.node_count(); ++v) {
      if (v != source) universe.push_back(v);
    }
    if (builder) {
      builder->rebind(*spt);
    } else {
      builder.emplace(*spt);
    }
    sample_with_replacement_into(universe, kMcGroupSize, gen, sample);
    std::uint64_t path_total = 0;
    for (node_id v : sample) {
      builder->add_receiver(v);
      path_total += spt->distance(v);
    }
    benchmark::DoNotOptimize(builder->link_count());
    benchmark::DoNotOptimize(path_total);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["allocs_per_sample"] = benchmark::Counter(
      static_cast<double>(g_heap_allocs.load(std::memory_order_relaxed) -
                          allocs_before) /
      static_cast<double>(state.iterations()));
  if (obs::compiled_in) {
    const obs::metrics_snapshot obs_after = obs::snapshot();
    const double hits =
        static_cast<double>(obs_after.at(obs::counter::spt_cache_hits) -
                            obs_before.at(obs::counter::spt_cache_hits));
    const double misses =
        static_cast<double>(obs_after.at(obs::counter::spt_cache_misses) -
                            obs_before.at(obs::counter::spt_cache_misses));
    state.counters["cache_hit_rate"] = benchmark::Counter(
        hits + misses == 0.0 ? 0.0 : hits / (hits + misses));
  }
}
BENCHMARK(bm_mc_repeated_source_cached);

// The same loop with the obs registry runtime-disabled: the in-binary
// approximation of the MCAST_OBS_DISABLED A/B (the real compile-time
// comparison is CI's cross-build job). items/sec here vs the instrumented
// bench above bounds the observable hook overhead on the hot path.
void bm_mc_repeated_source_cached_obs_off(benchmark::State& state) {
  const graph& g = ts1000_graph();
  const std::vector<node_id> pool = mc_source_pool(g);
  rng gen(8);
  traversal_workspace ws;
  spt_cache cache(64);
  std::vector<node_id> universe;
  std::vector<node_id> sample;
  std::optional<delivery_tree_builder> builder;
  obs::set_enabled(false);
  for (auto _ : state) {
    const node_id source = pool[gen.below(pool.size())];
    const auto spt = cache.get(g, source, ws);
    universe.clear();
    for (node_id v = 0; v < g.node_count(); ++v) {
      if (v != source) universe.push_back(v);
    }
    if (builder) {
      builder->rebind(*spt);
    } else {
      builder.emplace(*spt);
    }
    sample_with_replacement_into(universe, kMcGroupSize, gen, sample);
    std::uint64_t path_total = 0;
    for (node_id v : sample) {
      builder->add_receiver(v);
      path_total += spt->distance(v);
    }
    benchmark::DoNotOptimize(builder->link_count());
    benchmark::DoNotOptimize(path_total);
  }
  obs::set_enabled(true);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_mc_repeated_source_cached_obs_off);

// Raw hook costs, for the overhead table in docs/observability.md.
void bm_obs_counter_add(benchmark::State& state) {
  for (auto _ : state) {
    obs::add(obs::counter::edges_scanned);
  }
}
BENCHMARK(bm_obs_counter_add);

void bm_obs_histogram_record(benchmark::State& state) {
  std::uint64_t v = 0;
  for (auto _ : state) {
    obs::record(obs::histogram::visited_per_pass, ++v);
  }
}
BENCHMARK(bm_obs_histogram_record);

// The workspace alone (no memoization): same BFS every iteration, scratch
// reused across passes. Isolates the epoch-reset win from the cache win.
void bm_bfs_ts1000_workspace(benchmark::State& state) {
  const graph& g = ts1000_graph();
  rng gen(1);
  traversal_workspace ws;
  std::vector<hop_count> dist;
  for (auto _ : state) {
    const auto& d = bfs_distances(
        g, static_cast<node_id>(gen.below(g.node_count())), ws, dist);
    benchmark::DoNotOptimize(d.data());
  }
}
BENCHMARK(bm_bfs_ts1000_workspace);

void bm_affinity_chain(benchmark::State& state) {
  const kary_shape shape(2, 10);
  static const graph g = shape.to_graph();
  const source_tree tree(g, 0);
  const auto universe = all_sites_except(g, 0);
  const kary_distance_oracle oracle(shape);
  affinity_chain_params params;
  params.beta = 1.0;
  params.burn_in_sweeps = 2;
  params.sample_sweeps = 1;
  params.measurements = 1;
  rng gen(7);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sample_affinity_tree_size(tree, universe, n, oracle, params, gen)
            .mean_tree_size);
  }
}
BENCHMARK(bm_affinity_chain)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
