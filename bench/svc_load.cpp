// svc_load — open-loop load generator for the mcast_serve query service.
//
// Default mode spins the server *in-process* (same obs registry), so the
// BENCH_service.json manifest captures server-side truth: accepted and
// rejected connection counts, queue-depth/inflight peaks, request and
// queue-wait latency histograms, topology-cache hits. `--port=N` targets
// an external server instead (client-side numbers only).
//
// Three phases:
//   1. warmup      — a short burst, excluded from every number;
//   2. measured    — C connections, each sending R requests on an
//                    open-loop schedule (sends fire at sleep_until
//                    instants regardless of response progress, the
//                    standard way to avoid coordinated omission) while a
//                    reader thread timestamps in-order responses;
//   3. overload    — (in-process only) a deliberately tiny server
//                    (workers=1, queue=1) is held busy and burst-
//                    connected, counting typed `overloaded` rejections —
//                    the admission-control path exercised on purpose.
//
// Output: human summary on stdout + BENCH_service.json (schema
// mcast-lab-manifest/2, `mcast_lab validate`-clean) with QPS and exact
// p50/p95/p99 latencies in the fits section.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <ctime>
#include <functional>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "lab/manifest.hpp"
#include "lab/params.hpp"
#include "net/chaos.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "obs/access_log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/query_service.hpp"
#include "service/shard_router.hpp"
#include "topo/cache.hpp"

namespace {

using mcast::net::chaos_engine;
using mcast::net::chaos_spec;
using mcast::net::connect_loopback;
using mcast::net::line_reader;
using mcast::net::line_server;
using mcast::net::send_all;
using mcast::net::server_config;
using mcast::net::unique_fd;
using mcast::service::call_result;
using mcast::service::call_status;
using mcast::service::error_code;
using mcast::service::error_response;
using mcast::service::query_service;
using mcast::service::retry_client;
using mcast::service::retry_policy;
using mcast::service::shed_policy;
using mcast::service::sharded_config;
using mcast::service::sharded_service;
using mcast::topology_key;

using clock_type = std::chrono::steady_clock;

struct options {
  std::size_t connections = 16;
  std::size_t requests = 200;     // per connection, measured phase
  double rate = 100.0;            // requests/second per connection (0 = flood)
  std::size_t workers = 4;        // in-process server threads
  std::size_t queue = 64;         // in-process server queue capacity
  std::uint64_t seed = 1;
  std::uint16_t port = 0;         // 0 = in-process server
  std::string out_dir = ".";
  bool overload_probe = true;
  std::string chaos;              // chaos spec; non-empty switches modes
  double min_goodput_ratio = 0.7; // chaos mode failure threshold
  std::size_t shards = 0;         // >0 switches to the sharded-core harness
  std::string access_log;         // sharded mode: JSONL access-log artifact
  std::string profile;            // sharded mode: Chrome-trace artifact
};

[[noreturn]] void die(const std::string& message) {
  std::cerr << "svc_load: " << message << "\n";
  std::exit(1);
}

std::uint64_t parse_u64_flag(const std::string& text, const char* flag) {
  if (text.empty()) die(std::string(flag) + " needs a value");
  std::uint64_t v = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      die(std::string(flag) + " expects an integer, got '" + text + "'");
    }
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

options parse_options(int argc, char** argv) {
  options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const char* flag) -> std::string {
      return arg.substr(std::string(flag).size() + 1);
    };
    if (arg.rfind("--connections=", 0) == 0) {
      opt.connections = parse_u64_flag(value_of("--connections"), "--connections");
      if (opt.connections == 0 || opt.connections > 512) {
        die("--connections must be in 1..512");
      }
    } else if (arg.rfind("--requests=", 0) == 0) {
      opt.requests = parse_u64_flag(value_of("--requests"), "--requests");
      if (opt.requests == 0) die("--requests must be >= 1");
    } else if (arg.rfind("--rate=", 0) == 0) {
      opt.rate = static_cast<double>(
          parse_u64_flag(value_of("--rate"), "--rate"));
    } else if (arg.rfind("--workers=", 0) == 0) {
      opt.workers = parse_u64_flag(value_of("--workers"), "--workers");
      if (opt.workers == 0) die("--workers must be >= 1");
    } else if (arg.rfind("--queue=", 0) == 0) {
      opt.queue = parse_u64_flag(value_of("--queue"), "--queue");
      if (opt.queue == 0) die("--queue must be >= 1");
    } else if (arg.rfind("--seed=", 0) == 0) {
      opt.seed = parse_u64_flag(value_of("--seed"), "--seed");
    } else if (arg.rfind("--port=", 0) == 0) {
      const std::uint64_t p = parse_u64_flag(value_of("--port"), "--port");
      if (p == 0 || p > 65535) die("--port must be in 1..65535");
      opt.port = static_cast<std::uint16_t>(p);
    } else if (arg.rfind("--out=", 0) == 0) {
      opt.out_dir = value_of("--out");
      if (opt.out_dir.empty()) die("--out= needs a directory");
    } else if (arg == "--skip-overload-probe") {
      opt.overload_probe = false;
    } else if (arg.rfind("--chaos=", 0) == 0) {
      opt.chaos = value_of("--chaos");
      if (opt.chaos.empty()) die("--chaos= needs a spec (try --chaos=default)");
    } else if (arg.rfind("--shards=", 0) == 0) {
      opt.shards = parse_u64_flag(value_of("--shards"), "--shards");
      if (opt.shards == 0 || opt.shards > 64) die("--shards must be in 1..64");
    } else if (arg.rfind("--access-log=", 0) == 0) {
      opt.access_log = value_of("--access-log");
      if (opt.access_log.empty()) die("--access-log= needs a file path");
    } else if (arg.rfind("--profile=", 0) == 0) {
      opt.profile = value_of("--profile");
      if (opt.profile.empty()) die("--profile= needs a file path");
    } else if (arg.rfind("--min-goodput-ratio=", 0) == 0) {
      const std::string text = value_of("--min-goodput-ratio");
      std::size_t used = 0;
      double v = 0.0;
      try {
        v = std::stod(text, &used);
      } catch (const std::exception&) {
        used = 0;
      }
      if (used != text.size() || !(v >= 0.0 && v <= 1.0)) {
        die("--min-goodput-ratio expects a fraction in [0,1]");
      }
      opt.min_goodput_ratio = v;
    } else {
      die("unknown argument '" + arg + "'");
    }
  }
  return opt;
}

/// Deterministic request mix: cheap closed-form and profile lookups with a
/// sprinkle of small Monte-Carlo runs, all seeded from (connection, index).
std::string make_request(std::uint64_t seed, std::size_t conn, std::size_t i) {
  const std::uint64_t h = seed * 0x9e3779b97f4a7c15ull + conn * 131 + i;
  switch (i % 8) {
    case 3:
      return "{\"op\":\"lm_estimate\",\"topology\":\"ARPA\",\"group_sizes\":"
             "[2,4,8],\"sources\":3,\"receiver_sets\":2,\"seed\":" +
             std::to_string(h % 1000) + "}";
    case 6:
      return "{\"op\":\"healthz\"}";
    case 1:
    case 5:
      return "{\"op\":\"reachability\",\"topology\":\"ARPA\",\"source\":" +
             std::to_string(h % 40) + "}";
    default:
      return "{\"op\":\"lmhat\",\"k\":" + std::to_string(2 + h % 6) +
             ",\"depth\":" + std::to_string(3 + h % 4) + ",\"n\":[1,10,100]}";
  }
}

/// Which latency bucket request i of the deterministic mix lands in
/// (mirrors make_request's switch). healthz pings are pooled-only.
enum class op_bucket { lmhat = 0, estimate = 1, reachability = 2, other = 3 };

op_bucket bucket_of(std::size_t i) {
  switch (i % 8) {
    case 3: return op_bucket::estimate;
    case 6: return op_bucket::other;
    case 1:
    case 5: return op_bucket::reachability;
    default: return op_bucket::lmhat;
  }
}

struct phase_result {
  std::vector<double> latencies_ms;  // one per completed request
  std::vector<double> by_op_ms[3];   // lmhat / estimate / reachability splits
  std::uint64_t errors = 0;          // ok:false responses
  std::uint64_t lost = 0;            // requests without a response
  double wall_seconds = 0.0;
};

struct op_percentiles {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  std::size_t count = 0;
};

/// One connection's open-loop run: the writer fires requests at scheduled
/// instants (never waiting for responses); the reader timestamps each
/// in-order response against its send time.
void run_connection(std::uint16_t port, const options& opt, std::size_t conn,
                    phase_result& out) {
  unique_fd fd = connect_loopback(port);
  std::vector<clock_type::time_point> sent(opt.requests);
  const auto interval =
      opt.rate > 0.0 ? std::chrono::duration_cast<clock_type::duration>(
                           std::chrono::duration<double>(1.0 / opt.rate))
                     : clock_type::duration::zero();

  std::thread writer([&] {
    const auto start = clock_type::now();
    for (std::size_t i = 0; i < opt.requests; ++i) {
      if (interval.count() > 0) {
        std::this_thread::sleep_until(start + interval * static_cast<long>(i));
      }
      const std::string line = make_request(opt.seed, conn, i) + "\n";
      sent[i] = clock_type::now();
      if (!send_all(fd.get(), line)) return;
    }
  });

  line_reader reader(fd.get(), 1 << 22);
  std::string line;
  for (std::size_t i = 0; i < opt.requests; ++i) {
    const line_reader::status st = reader.read_line(line, 60000);
    if (st != line_reader::status::line) {
      out.lost += opt.requests - i;
      break;
    }
    const double ms =
        std::chrono::duration<double, std::milli>(clock_type::now() - sent[i])
            .count();
    out.latencies_ms.push_back(ms);
    const op_bucket bucket = bucket_of(i);
    if (bucket != op_bucket::other) {
      out.by_op_ms[static_cast<std::size_t>(bucket)].push_back(ms);
    }
    if (line.find("\"ok\":true") == std::string::npos) ++out.errors;
  }
  writer.join();
}

phase_result run_phase(std::uint16_t port, const options& opt) {
  phase_result total;
  std::vector<phase_result> per_conn(opt.connections);
  const auto begin = clock_type::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(opt.connections);
    for (std::size_t c = 0; c < opt.connections; ++c) {
      threads.emplace_back(
          [&, c] { run_connection(port, opt, c, per_conn[c]); });
    }
    for (std::thread& t : threads) t.join();
  }
  total.wall_seconds =
      std::chrono::duration<double>(clock_type::now() - begin).count();
  for (const phase_result& r : per_conn) {
    total.latencies_ms.insert(total.latencies_ms.end(), r.latencies_ms.begin(),
                              r.latencies_ms.end());
    for (std::size_t b = 0; b < 3; ++b) {
      total.by_op_ms[b].insert(total.by_op_ms[b].end(), r.by_op_ms[b].begin(),
                               r.by_op_ms[b].end());
    }
    total.errors += r.errors;
    total.lost += r.lost;
  }
  return total;
}

/// Exact percentile over the sorted sample (nearest-rank).
double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

op_percentiles summarize(std::vector<double>& sample) {
  std::sort(sample.begin(), sample.end());
  op_percentiles out;
  out.p50 = percentile(sample, 0.50);
  out.p95 = percentile(sample, 0.95);
  out.p99 = percentile(sample, 0.99);
  out.count = sample.size();
  return out;
}

/// Adds the lmhat/estimate/reachability splits to a fit's value list and
/// prints the one-line breakdown (shared by the flat and sharded modes).
void report_op_breakdown(phase_result& measured, mcast::lab::fit_entry& fit) {
  static const char* const names[3] = {"lmhat", "estimate", "reachability"};
  for (std::size_t b = 0; b < 3; ++b) {
    const op_percentiles ps = summarize(measured.by_op_ms[b]);
    std::printf("  %-12s p50=%.3f p95=%.3f p99=%.3f ms (%zu samples)\n",
                names[b], ps.p50, ps.p95, ps.p99, ps.count);
    const std::string prefix = names[b];
    fit.values.push_back({prefix + "_p50_ms", ps.p50});
    fit.values.push_back({prefix + "_p95_ms", ps.p95});
    fit.values.push_back({prefix + "_p99_ms", ps.p99});
  }
}

server_config typed_config(std::size_t workers, std::size_t queue) {
  server_config config;
  config.port = 0;
  config.workers = workers;
  config.queue_capacity = queue;
  config.overload_response =
      error_response(error_code::overloaded, "connection queue full");
  config.overlong_response =
      error_response(error_code::bad_request, "request line too long");
  config.internal_error_response =
      error_response(error_code::internal_error, "handler failed");
  return config;
}

/// Holds a workers=1/queue=1 server busy with a slow Monte-Carlo request
/// and burst-connects it; returns how many typed `overloaded` rejections
/// the burst collected (the admission-control rate under saturation). The
/// handler is whichever service core (flat or sharded) is under test.
std::uint64_t overload_probe(
    std::uint64_t seed,
    const std::function<std::string(const std::string&)>& handle) {
  line_server tiny(typed_config(1, 1),
                   [&handle](const std::string& line) { return handle(line); });

  // Occupy the single worker with a deliberately heavy request.
  unique_fd busy = connect_loopback(tiny.port());
  const std::string slow =
      "{\"op\":\"lm_estimate\",\"topology\":\"ts1000\",\"budget\":300,"
      "\"grid_points\":12,\"sources\":48,\"receiver_sets\":24,\"seed\":" +
      std::to_string(seed) + "}";
  if (!send_all(busy.get(), slow + "\n")) return 0;
  // Give the worker time to pick it up, then park one more connection in
  // the single queue slot so the burst below faces a full house.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  unique_fd parked = connect_loopback(tiny.port());

  std::uint64_t rejected = 0;
  for (int i = 0; i < 64; ++i) {
    try {
      unique_fd probe = connect_loopback(tiny.port());
      line_reader reader(probe.get(), 1 << 16);
      std::string line;
      if (reader.read_line(line, 2000) == line_reader::status::line &&
          line.find("overloaded") != std::string::npos) {
        ++rejected;
      }
    } catch (const std::exception&) {
      // Connect refusal also counts as load shed, just not typed.
    }
  }

  // Drain the slow request so shutdown is clean.
  line_reader busy_reader(busy.get(), 1 << 24);
  std::string line;
  (void)busy_reader.read_line(line, 120000);
  tiny.shutdown();
  tiny.wait();
  return rejected;
}

// --- sharded mode ------------------------------------------------------
//
// `--shards=N` swaps the flat query_service for the consistent-hash
// sharded core (service/shard_router.hpp) and adds two probes on top of
// the usual open-loop phases: a byte-identity check (the same request
// lines through an N-shard core, a 1-shard core and the flat service must
// produce identical bytes — the scatter/gather splice contract), and a
// 1-shard reference run so the manifest reports the measured scaling
// factor honestly for whatever core count the host actually has.

std::shared_ptr<sharded_service> make_sharded(std::size_t shards) {
  sharded_config config;
  config.shards = shards;
  auto svc = std::make_shared<sharded_service>(config);
  topology_key arpa;
  arpa.name = "ARPA";
  arpa.seed = 7;  // the protocol's topology_seed default, as the mix uses
  svc->warm({arpa});
  return svc;
}

/// Replays a fixed request set — single ops, a scattered multi-source
/// lm_estimate and a batch envelope with a failing slot — through an
/// N-shard core, a 1-shard core and the flat query_service; any byte
/// difference is a splice-contract violation.
bool identity_probe(std::size_t shards, std::uint64_t seed) {
  const std::vector<std::string> lines = {
      "{\"op\":\"lmhat\",\"k\":3,\"depth\":4,\"n\":[1,10,100],\"id\":\"p0\"}",
      "{\"op\":\"reachability\",\"topology\":\"ARPA\",\"source\":5,"
      "\"id\":\"p1\"}",
      "{\"op\":\"lm_estimate\",\"topology\":\"ARPA\",\"group_sizes\":"
      "[2,4,8,16],\"sources\":8,\"receiver_sets\":4,\"seed\":" +
          std::to_string(1 + seed % 997) + ",\"id\":\"p2\"}",
      "{\"op\":\"batch\",\"id\":\"p3\",\"ops\":["
      "{\"op\":\"lmhat\",\"k\":2,\"depth\":3,\"n\":[1,10],\"id\":\"s0\"},"
      "{\"op\":\"lm_estimate\",\"topology\":\"ARPA\",\"group_sizes\":[2,4],"
      "\"sources\":5,\"receiver_sets\":2,\"seed\":42,\"id\":\"s1\"},"
      "{\"op\":\"reachability\",\"topology\":\"ARPA\",\"source\":1,"
      "\"id\":\"s2\"},"
      "{\"op\":\"nosuch\",\"id\":\"s3\"}]}",
      // Trace-token echo is part of the byte contract: the echoed token
      // must be identical across shard counts and hosts, including on
      // scattered ops and inherited batch slots.
      "{\"op\":\"lm_estimate\",\"topology\":\"ARPA\",\"group_sizes\":[2,4],"
      "\"sources\":6,\"receiver_sets\":2,\"seed\":9,\"id\":\"p4\","
      "\"trace\":\"probe-a1\"}",
      "{\"op\":\"batch\",\"id\":\"p5\",\"trace\":\"probe-a2\",\"ops\":["
      "{\"op\":\"lmhat\",\"k\":2,\"depth\":3,\"n\":[1,10],\"id\":\"s0\"},"
      "{\"op\":\"nosuch\",\"id\":\"s1\"}]}",
  };

  auto many = make_sharded(shards);   // warmed: warm tier must not change bytes
  sharded_config one_config;
  one_config.shards = 1;
  sharded_service one(one_config);    // cold: builds through the shard LRU
  query_service flat;

  bool identical = true;
  for (const std::string& line : lines) {
    const std::string a = many->handle(line);
    const std::string b = one.handle(line);
    const std::string c = flat.handle(line);
    if (a != b || a != c) {
      identical = false;
      std::cerr << "svc_load: IDENTITY MISMATCH on " << line << "\n"
                << "  " << shards << "-shard: " << a << "\n"
                << "  1-shard:  " << b << "\n"
                << "  flat:     " << c << "\n";
    }
  }
  many->shutdown();
  one.shutdown();
  return identical;
}

int sharded_main(const options& opt) {
  if (opt.port != 0) die("--shards needs the in-process server (drop --port)");

  mcast::obs::reset_metrics();
  const std::clock_t cpu_begin = std::clock();
  const auto wall_begin = clock_type::now();

  std::cerr << "svc_load: sharded mode shards=" << opt.shards
            << " connections=" << opt.connections
            << " requests=" << opt.requests << " rate=" << opt.rate << "/s\n";

  // One open-loop measured phase against a fresh sharded core; the same
  // harness runs once at --shards and once at 1 shard for the reference.
  const auto run_sharded_phase = [&opt](std::size_t shards) {
    auto svc = make_sharded(shards);
    line_server server(typed_config(opt.workers, opt.queue),
                       [svc](const std::string& line) {
                         return svc->handle(line);
                       });
    svc->set_stats_source([&server] { return server.stats(); });
    {
      options warm = opt;
      warm.connections = std::min<std::size_t>(opt.connections, 4);
      warm.requests = 16;
      warm.rate = 0.0;
      (void)run_phase(server.port(), warm);
    }
    phase_result measured = run_phase(server.port(), opt);
    server.shutdown();
    server.wait();
    svc->shutdown();
    return measured;
  };

  // The observability artifacts (trace-smoke): arm the Chrome-trace ring
  // and the access-log sink around the N-shard measured phase only —
  // the reference phase and the direct-handle probes below would add
  // untagged or duplicate records to the artifacts.
  if (!opt.profile.empty()) {
    mcast::obs::trace_clear();
    mcast::obs::trace_enable();
  }
  if (!opt.access_log.empty()) {
    mcast::obs::access_log_enable(opt.access_log);
  }
  phase_result measured_n = run_sharded_phase(opt.shards);
  if (!opt.access_log.empty()) mcast::obs::access_log_disable();
  if (!opt.profile.empty()) mcast::obs::trace_disable();
  const double qps_n = measured_n.wall_seconds > 0.0
                           ? static_cast<double>(measured_n.latencies_ms.size()) /
                                 measured_n.wall_seconds
                           : 0.0;
  phase_result measured_1 = run_sharded_phase(1);
  const double qps_1 = measured_1.wall_seconds > 0.0
                           ? static_cast<double>(measured_1.latencies_ms.size()) /
                                 measured_1.wall_seconds
                           : 0.0;
  const double scaling_x = qps_1 > 0.0 ? qps_n / qps_1 : 0.0;

  const bool identical = identity_probe(opt.shards, opt.seed);

  std::uint64_t overload_rejections = 0;
  if (opt.overload_probe) {
    auto tiny = make_sharded(opt.shards);
    overload_rejections =
        overload_probe(opt.seed, [tiny](const std::string& line) {
          return tiny->handle(line);
        });
    tiny->shutdown();
  }

  const std::uint64_t expected =
      static_cast<std::uint64_t>(opt.connections) * opt.requests;
  std::sort(measured_n.latencies_ms.begin(), measured_n.latencies_ms.end());
  const double p50 = percentile(measured_n.latencies_ms, 0.50);
  const double p95 = percentile(measured_n.latencies_ms, 0.95);
  const double p99 = percentile(measured_n.latencies_ms, 0.99);

  std::printf("svc_load sharded results (shards=%zu)\n", opt.shards);
  std::printf("  requests     %llu / %llu answered (%llu error, %llu lost)\n",
              static_cast<unsigned long long>(measured_n.latencies_ms.size()),
              static_cast<unsigned long long>(expected),
              static_cast<unsigned long long>(measured_n.errors),
              static_cast<unsigned long long>(measured_n.lost));
  std::printf("  throughput   %.1f req/s sharded, %.1f req/s 1-shard "
              "(scaling %.2fx)\n",
              qps_n, qps_1, scaling_x);
  std::printf("  latency ms   p50=%.3f p95=%.3f p99=%.3f\n", p50, p95, p99);
  std::printf("  identity     %s\n", identical ? "byte-identical" : "MISMATCH");
  if (opt.overload_probe) {
    std::printf("  overload     %llu typed rejections under saturation\n",
                static_cast<unsigned long long>(overload_rejections));
  }

  namespace lab = mcast::lab;
  lab::run_record record;
  record.experiment_id = "svc_sharded";
  record.title = "Sharded service: scaling, identity and per-op tails";
  record.claim =
      "open-loop throughput of the consistent-hash sharded core against a "
      "1-shard reference, byte-identity of scattered lm_estimate and batch "
      "responses across shard counts, per-op tail latencies, and typed "
      "admission rejections under saturation";
  record.scale = lab::scale_from_env();
  record.threads = opt.workers;
  record.use_spt_cache = true;
  record.parameters.set("connections",
                        static_cast<std::uint64_t>(opt.connections));
  record.parameters.set("requests", static_cast<std::uint64_t>(opt.requests));
  record.parameters.set("rate", opt.rate);
  record.parameters.set("workers", static_cast<std::uint64_t>(opt.workers));
  record.parameters.set("queue", static_cast<std::uint64_t>(opt.queue));
  record.parameters.set("seed", opt.seed);
  record.parameters.set("shards", static_cast<std::uint64_t>(opt.shards));
  record.git_revision = lab::current_git_revision();
  record.timestamp_utc = lab::utc_timestamp();
  record.wall_seconds =
      std::chrono::duration<double>(clock_type::now() - wall_begin).count();
  record.cpu_seconds = static_cast<double>(std::clock() - cpu_begin) /
                       static_cast<double>(CLOCKS_PER_SEC);
  lab::fit_entry fit;
  fit.label = "SvcShard";
  {
    char text[320];
    std::snprintf(text, sizeof text,
                  "qps_n=%.1f qps_1=%.1f scaling_x=%.3f identical=%d "
                  "p50_ms=%.3f p95_ms=%.3f p99_ms=%.3f errors=%llu "
                  "lost=%llu overload_rejections=%llu",
                  qps_n, qps_1, scaling_x, identical ? 1 : 0, p50, p95, p99,
                  static_cast<unsigned long long>(measured_n.errors),
                  static_cast<unsigned long long>(measured_n.lost +
                                                  measured_1.lost),
                  static_cast<unsigned long long>(overload_rejections));
    fit.text = text;
  }
  fit.values = {
      {"qps_n", qps_n},
      {"qps_1", qps_1},
      {"scaling_x", scaling_x},
      {"identical", identical ? 1.0 : 0.0},
      {"shards", static_cast<double>(opt.shards)},
      {"p50_ms", p50},
      {"p95_ms", p95},
      {"p99_ms", p99},
      {"answered", static_cast<double>(measured_n.latencies_ms.size())},
      {"errors", static_cast<double>(measured_n.errors)},
      {"lost", static_cast<double>(measured_n.lost + measured_1.lost)},
      {"overload_rejections", static_cast<double>(overload_rejections)},
  };
  report_op_breakdown(measured_n, fit);
  record.fits.push_back(std::move(fit));
  record.metric_groups = {"service", "topo_cache"};
  record.metrics = mcast::obs::snapshot();

  const std::string path = opt.out_dir + "/BENCH_service_sharded.json";
  lab::write_manifest(record, path);
  std::cerr << "svc_load: manifest " << path << "\n";
  if (!opt.profile.empty()) {
    const mcast::obs::trace_dump dump = mcast::obs::trace_collect();
    mcast::obs::write_chrome_trace_file(opt.profile, dump);
    std::cerr << "svc_load: trace " << opt.profile << " ("
              << dump.events.size() << " events, " << dump.dropped
              << " dropped)\n";
  }
  if (!opt.access_log.empty()) {
    std::cerr << "svc_load: access log " << opt.access_log << "\n";
  }

  if (!identical) {
    std::cerr << "svc_load: FAIL: sharded responses not byte-identical\n";
    return 1;
  }
  return measured_n.lost + measured_1.lost == 0 ? 0 : 1;
}

// --- chaos mode --------------------------------------------------------
//
// `--chaos=SPEC` switches svc_load from the open-loop latency harness to
// a closed-loop resilience harness: the same request mix is driven
// through retry clients (service/client.hpp) against an in-process
// server twice — once fault-free (the goodput baseline) and once with
// the chaos shim armed — and the manifest reports goodput under faults
// as a fraction of the fault-free rate, plus tail latency measured
// *through* the retries. A response surviving on any connection must
// parse as JSON: a malformed line is a failure of the chaos contract
// (truncation must kill its connection), not a statistic.

struct closed_loop_result {
  std::vector<double> latencies_ms;  // per successful call, retries included
  std::uint64_t successes = 0;
  std::uint64_t server_errors = 0;     // typed non-retryable error lines
  std::uint64_t transport_failures = 0;  // retries exhausted
  std::uint64_t attempts = 0;
  std::uint64_t malformed = 0;  // surviving lines that do not parse
  double wall_seconds = 0.0;
};

closed_loop_result run_closed_loop(std::uint16_t port, const options& opt) {
  closed_loop_result total;
  std::vector<closed_loop_result> per_conn(opt.connections);
  const auto begin = clock_type::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(opt.connections);
    for (std::size_t c = 0; c < opt.connections; ++c) {
      threads.emplace_back([&, c] {
        closed_loop_result& out = per_conn[c];
        retry_policy policy;
        policy.max_attempts = 6;
        policy.attempt_timeout_ms = 30000;
        policy.backoff_base_ms = 1;
        policy.backoff_max_ms = 20;
        policy.seed = opt.seed * 1000003 + c;  // per-client jitter stream
        retry_client client(port, policy);
        // Paced closed loop: requests are *offered* at --rate per second
        // (never early; late calls run back-to-back), so goodput compares
        // what fraction of the same offered load survives each phase
        // rather than penalizing injected latency twice. --rate=0 floods.
        const auto interval =
            opt.rate > 0.0 ? std::chrono::duration_cast<clock_type::duration>(
                                 std::chrono::duration<double>(1.0 / opt.rate))
                           : clock_type::duration::zero();
        const auto start = clock_type::now();
        for (std::size_t i = 0; i < opt.requests; ++i) {
          if (interval.count() > 0) {
            std::this_thread::sleep_until(start +
                                          interval * static_cast<long>(i));
          }
          const auto sent = clock_type::now();
          const call_result result = client.call(make_request(opt.seed, c, i));
          out.attempts += static_cast<std::uint64_t>(result.attempts);
          if (!result.response.empty()) {
            try {
              (void)mcast::json::parse(result.response);
            } catch (const std::exception&) {
              ++out.malformed;
            }
          }
          switch (result.status) {
            case call_status::ok:
              ++out.successes;
              out.latencies_ms.push_back(
                  std::chrono::duration<double, std::milli>(clock_type::now() -
                                                            sent)
                      .count());
              break;
            case call_status::server_error:
              ++out.server_errors;
              break;
            default:
              ++out.transport_failures;
              break;
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  total.wall_seconds =
      std::chrono::duration<double>(clock_type::now() - begin).count();
  for (const closed_loop_result& r : per_conn) {
    total.latencies_ms.insert(total.latencies_ms.end(), r.latencies_ms.begin(),
                              r.latencies_ms.end());
    total.successes += r.successes;
    total.server_errors += r.server_errors;
    total.transport_failures += r.transport_failures;
    total.attempts += r.attempts;
    total.malformed += r.malformed;
  }
  return total;
}

struct shed_probe_result {
  std::uint64_t degraded = 0;  ///< degraded answers observed (marked)
  std::uint64_t refused = 0;   ///< typed `shed` refusals observed
  bool contract_ok = true;     ///< markers present exactly when expected
};

/// Drives the shed policy deterministically through a direct
/// query_service with an injected pressure value: full answers below the
/// degrade threshold, marked Eq-4 answers between the tiers, typed `shed`
/// refusals above the refuse threshold.
shed_probe_result run_shed_probe() {
  query_service svc;
  double pressure = 0.0;
  svc.set_pressure_source([&pressure] { return pressure; });
  shed_policy policy;
  policy.degrade_at = 0.5;
  policy.refuse_at = 0.9;
  svc.set_shed_policy(policy);

  const std::string estimate =
      "{\"op\":\"lm_estimate\",\"topology\":\"ARPA\",\"group_sizes\":[2,4,8],"
      "\"sources\":2,\"receiver_sets\":2,\"seed\":11}";
  shed_probe_result out;

  pressure = 0.0;
  if (svc.handle(estimate).find("\"degraded\"") != std::string::npos) {
    out.contract_ok = false;  // fault-free responses must stay unmarked
  }
  pressure = 0.7;
  for (int i = 0; i < 8; ++i) {
    const std::string response = svc.handle(estimate);
    if (response.find("\"ok\":true") != std::string::npos &&
        response.find("\"degraded\":true") != std::string::npos) {
      ++out.degraded;
    } else {
      out.contract_ok = false;
    }
  }
  pressure = 0.95;
  for (int i = 0; i < 4; ++i) {
    if (svc.handle(estimate).find("\"code\":\"shed\"") != std::string::npos) {
      ++out.refused;
    } else {
      out.contract_ok = false;
    }
  }
  // Cheap ops must stay live at any pressure.
  if (svc.handle("{\"op\":\"healthz\"}").find("\"ok\":true") ==
      std::string::npos) {
    out.contract_ok = false;
  }
  return out;
}

int chaos_main(const options& opt) {
  if (opt.port != 0) die("--chaos needs the in-process server (drop --port)");
  chaos_spec spec;
  try {
    spec = chaos_spec::parse(opt.chaos);
  } catch (const std::exception& e) {
    die(e.what());
  }

  mcast::obs::reset_metrics();
  const std::clock_t cpu_begin = std::clock();
  const auto wall_begin = clock_type::now();

  std::cerr << "svc_load: chaos mode (" << spec.describe()
            << ") connections=" << opt.connections
            << " requests=" << opt.requests
            << (opt.shards > 0 ? " shards=" + std::to_string(opt.shards) : "")
            << "\n";

  // --shards applies in chaos mode too: both phases drive whichever
  // service core is under test behind the same chaos shim.
  const auto make_core = [&opt] {
    std::pair<std::shared_ptr<query_service>, std::shared_ptr<sharded_service>>
        core;
    if (opt.shards > 0) {
      core.second = make_sharded(opt.shards);
    } else {
      core.first = std::make_shared<query_service>();
    }
    return core;
  };

  // Phase 1: fault-free baseline, same closed-loop retry-client workload.
  double baseline_qps = 0.0;
  {
    auto [mono, sharded] = make_core();
    line_server server(typed_config(opt.workers, opt.queue),
                       [mono = mono, sharded = sharded](
                           const std::string& line) {
                         return sharded ? sharded->handle(line)
                                        : mono->handle(line);
                       });
    auto stats = [&server] { return server.stats(); };
    if (sharded) {
      sharded->set_stats_source(stats);
    } else {
      mono->set_stats_source(stats);
    }
    const closed_loop_result baseline = run_closed_loop(server.port(), opt);
    server.shutdown();
    server.wait();
    baseline_qps = baseline.wall_seconds > 0.0
                       ? static_cast<double>(baseline.successes) /
                             baseline.wall_seconds
                       : 0.0;
    std::printf("svc_load chaos baseline\n");
    std::printf("  successes    %llu (%llu attempts)\n",
                static_cast<unsigned long long>(baseline.successes),
                static_cast<unsigned long long>(baseline.attempts));
    std::printf("  goodput      %.1f req/s fault-free\n", baseline_qps);
  }

  // Phase 2: the same workload with the chaos shim armed.
  mcast::net::server_stats chaos_stats;
  closed_loop_result faulted;
  {
    auto [mono, sharded] = make_core();
    server_config config = typed_config(opt.workers, opt.queue);
    config.chaos = std::make_shared<const chaos_engine>(spec);
    line_server server(config, [mono = mono, sharded = sharded](
                                   const std::string& line) {
      return sharded ? sharded->handle(line) : mono->handle(line);
    });
    auto stats = [&server] { return server.stats(); };
    if (sharded) {
      sharded->set_stats_source(stats);
    } else {
      mono->set_stats_source(stats);
    }
    faulted = run_closed_loop(server.port(), opt);
    chaos_stats = server.stats();
    server.shutdown();
    server.wait();
  }

  const std::uint64_t expected =
      static_cast<std::uint64_t>(opt.connections) * opt.requests;
  const double goodput = faulted.wall_seconds > 0.0
                             ? static_cast<double>(faulted.successes) /
                                   faulted.wall_seconds
                             : 0.0;
  const double ratio = baseline_qps > 0.0 ? goodput / baseline_qps : 0.0;
  std::sort(faulted.latencies_ms.begin(), faulted.latencies_ms.end());
  const double p50 = percentile(faulted.latencies_ms, 0.50);
  const double p99 = percentile(faulted.latencies_ms, 0.99);

  // Phase 3: deterministic shed-tier probe (no sockets involved).
  const shed_probe_result shed = run_shed_probe();

  std::printf("svc_load chaos results\n");
  std::printf("  successes    %llu / %llu (%llu typed errors, %llu failed)\n",
              static_cast<unsigned long long>(faulted.successes),
              static_cast<unsigned long long>(expected),
              static_cast<unsigned long long>(faulted.server_errors),
              static_cast<unsigned long long>(faulted.transport_failures));
  std::printf("  attempts     %llu (faults injected: %llu)\n",
              static_cast<unsigned long long>(faulted.attempts),
              static_cast<unsigned long long>(chaos_stats.chaos_injected));
  std::printf("  goodput      %.1f req/s (%.1f%% of fault-free)\n", goodput,
              100.0 * ratio);
  std::printf("  latency ms   p50=%.3f p99=%.3f (through retries)\n", p50,
              p99);
  std::printf("  shed probe   %llu degraded, %llu refused, contract %s\n",
              static_cast<unsigned long long>(shed.degraded),
              static_cast<unsigned long long>(shed.refused),
              shed.contract_ok ? "ok" : "VIOLATED");
  if (faulted.malformed > 0) {
    std::printf("  MALFORMED    %llu surviving non-JSON lines\n",
                static_cast<unsigned long long>(faulted.malformed));
  }

  namespace lab = mcast::lab;
  lab::run_record record;
  record.experiment_id = "svc_chaos";
  record.title = "Service chaos: goodput and tails under fault injection";
  record.claim =
      "closed-loop goodput, retry pressure and p99-through-retries of "
      "mcast_serve under deterministic seeded fault injection, plus the "
      "cost-aware shedding tiers exercised deterministically";
  record.scale = lab::scale_from_env();
  record.threads = opt.workers;
  record.use_spt_cache = true;
  record.parameters.set("connections",
                        static_cast<std::uint64_t>(opt.connections));
  record.parameters.set("requests", static_cast<std::uint64_t>(opt.requests));
  record.parameters.set("workers", static_cast<std::uint64_t>(opt.workers));
  record.parameters.set("queue", static_cast<std::uint64_t>(opt.queue));
  record.parameters.set("seed", opt.seed);
  record.parameters.set("chaos", spec.describe());
  record.parameters.set("min_goodput_ratio", opt.min_goodput_ratio);
  record.parameters.set("shards", static_cast<std::uint64_t>(opt.shards));
  record.git_revision = lab::current_git_revision();
  record.timestamp_utc = lab::utc_timestamp();
  record.wall_seconds =
      std::chrono::duration<double>(clock_type::now() - wall_begin).count();
  record.cpu_seconds = static_cast<double>(std::clock() - cpu_begin) /
                       static_cast<double>(CLOCKS_PER_SEC);
  lab::fit_entry fit;
  fit.label = "SvcChaos";
  {
    char text[320];
    std::snprintf(text, sizeof text,
                  "goodput_qps=%.1f baseline_qps=%.1f goodput_ratio=%.3f "
                  "p50_ms=%.3f p99_ms=%.3f attempts=%llu faults=%llu "
                  "shed_degraded=%llu shed_refused=%llu",
                  goodput, baseline_qps, ratio, p50, p99,
                  static_cast<unsigned long long>(faulted.attempts),
                  static_cast<unsigned long long>(chaos_stats.chaos_injected),
                  static_cast<unsigned long long>(shed.degraded),
                  static_cast<unsigned long long>(shed.refused));
    fit.text = text;
  }
  fit.values = {
      {"goodput_qps", goodput},
      {"baseline_qps", baseline_qps},
      {"goodput_ratio", ratio},
      {"p50_ms", p50},
      {"p99_ms", p99},
      {"successes", static_cast<double>(faulted.successes)},
      {"server_errors", static_cast<double>(faulted.server_errors)},
      {"transport_failures", static_cast<double>(faulted.transport_failures)},
      {"attempts", static_cast<double>(faulted.attempts)},
      {"faults_injected", static_cast<double>(chaos_stats.chaos_injected)},
      {"deadline_closes", static_cast<double>(chaos_stats.deadline_closes)},
      {"shed_degraded", static_cast<double>(shed.degraded)},
      {"shed_refused", static_cast<double>(shed.refused)},
      {"malformed", static_cast<double>(faulted.malformed)},
  };
  record.fits.push_back(std::move(fit));
  record.metric_groups = {"service", "retry", "topo_cache"};
  record.metrics = mcast::obs::snapshot();

  const std::string path = opt.out_dir + "/BENCH_service_chaos.json";
  lab::write_manifest(record, path);
  std::cerr << "svc_load: manifest " << path << "\n";

  if (faulted.malformed > 0) {
    std::cerr << "svc_load: FAIL: malformed line on a surviving connection\n";
    return 1;
  }
  if (!shed.contract_ok) {
    std::cerr << "svc_load: FAIL: shed probe contract violated\n";
    return 1;
  }
  if (ratio < opt.min_goodput_ratio) {
    std::cerr << "svc_load: FAIL: goodput ratio " << ratio << " below "
              << opt.min_goodput_ratio << "\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const options opt = parse_options(argc, argv);
  if (!opt.chaos.empty()) return chaos_main(opt);
  if (opt.shards > 0) return sharded_main(opt);

  mcast::obs::reset_metrics();
  const std::clock_t cpu_begin = std::clock();
  const auto wall_begin = clock_type::now();

  // In-process server unless --port points at an external one.
  std::shared_ptr<query_service> svc;
  std::unique_ptr<line_server> server;
  std::uint16_t port = opt.port;
  if (port == 0) {
    svc = std::make_shared<query_service>();
    server = std::make_unique<line_server>(
        typed_config(opt.workers, opt.queue),
        [svc](const std::string& line) { return svc->handle(line); });
    svc->set_stats_source([&s = *server] { return s.stats(); });
    port = server->port();
  }
  std::cerr << "svc_load: target 127.0.0.1:" << port
            << (server ? " (in-process)" : " (external)") << " connections="
            << opt.connections << " requests=" << opt.requests
            << " rate=" << opt.rate << "/s\n";

  // Warmup: populate the topology cache and spin up the worker threads.
  {
    options warm = opt;
    warm.connections = std::min<std::size_t>(opt.connections, 4);
    warm.requests = 16;
    warm.rate = 0.0;
    (void)run_phase(port, warm);
  }

  phase_result measured = run_phase(port, opt);
  const std::uint64_t expected =
      static_cast<std::uint64_t>(opt.connections) * opt.requests;
  const double qps =
      measured.wall_seconds > 0.0
          ? static_cast<double>(measured.latencies_ms.size()) /
                measured.wall_seconds
          : 0.0;
  std::sort(measured.latencies_ms.begin(), measured.latencies_ms.end());
  const double p50 = percentile(measured.latencies_ms, 0.50);
  const double p95 = percentile(measured.latencies_ms, 0.95);
  const double p99 = percentile(measured.latencies_ms, 0.99);

  // Latency attribution: the registry's svc.request_ns histogram times
  // the handler alone, the client-observed p99 adds queue wait and the
  // wire. The delta localizes a tail regression to one side. The bucket
  // quantile over-estimates by up to 2x, so a small negative delta just
  // means the two sides agree to within bucket granularity.
  double server_p99_ms = 0.0;
  double p99_delta_ms = 0.0;
  if (server) {
    server_p99_ms =
        mcast::obs::snapshot().at(mcast::obs::histogram::svc_request_ns).p99 /
        1e6;
    p99_delta_ms = p99 - server_p99_ms;
  }

  // Access-log overhead pair: the identical measured phase re-run with
  // the JSONL sink armed. The open loop is rate-paced, so a healthy run
  // lands well inside the <2% QPS budget docs/observability.md promises.
  double qps_logged = 0.0;
  double accesslog_overhead = 0.0;
  if (server) {
    const std::string log_path = opt.out_dir + "/access_svc_load.jsonl";
    mcast::obs::access_log_enable(log_path);
    phase_result logged = run_phase(port, opt);
    mcast::obs::access_log_disable();
    qps_logged = logged.wall_seconds > 0.0
                     ? static_cast<double>(logged.latencies_ms.size()) /
                           logged.wall_seconds
                     : 0.0;
    accesslog_overhead =
        qps > 0.0 ? std::max(0.0, (qps - qps_logged) / qps) : 0.0;
  }

  std::uint64_t overload_rejections = 0;
  if (server && opt.overload_probe) {
    auto tiny_svc = std::make_shared<query_service>();
    overload_rejections =
        overload_probe(opt.seed, [tiny_svc](const std::string& line) {
          return tiny_svc->handle(line);
        });
  }

  if (server) {
    server->shutdown();
    server->wait();
  }

  std::printf("svc_load results\n");
  std::printf("  requests     %llu / %llu answered (%llu error, %llu lost)\n",
              static_cast<unsigned long long>(measured.latencies_ms.size()),
              static_cast<unsigned long long>(expected),
              static_cast<unsigned long long>(measured.errors),
              static_cast<unsigned long long>(measured.lost));
  std::printf("  wall         %.3f s\n", measured.wall_seconds);
  std::printf("  throughput   %.1f req/s\n", qps);
  std::printf("  latency ms   p50=%.3f p95=%.3f p99=%.3f\n", p50, p95, p99);
  if (server) {
    std::printf("  server p99   %.3f ms (client-server delta %+.3f ms)\n",
                server_p99_ms, p99_delta_ms);
    std::printf("  access log   %.1f req/s logged (overhead %.2f%%)\n",
                qps_logged, 100.0 * accesslog_overhead);
  }
  if (server && opt.overload_probe) {
    std::printf("  overload     %llu typed rejections under saturation\n",
                static_cast<unsigned long long>(overload_rejections));
  }

  // Manifest, shaped exactly like a lab run so `mcast_lab validate` and
  // the perf-trajectory tooling ingest it unchanged.
  namespace lab = mcast::lab;
  lab::run_record record;
  record.experiment_id = "svc_load";
  record.title = "Service load: QPS and tail latency of mcast_serve";
  record.claim =
      "open-loop throughput, exact p50/p95/p99 latency, and typed "
      "admission-control rejections of the line-JSON query service";
  record.scale = lab::scale_from_env();
  record.threads = opt.workers;
  record.use_spt_cache = true;
  record.parameters.set("connections",
                        static_cast<std::uint64_t>(opt.connections));
  record.parameters.set("requests", static_cast<std::uint64_t>(opt.requests));
  record.parameters.set("rate", opt.rate);
  record.parameters.set("workers", static_cast<std::uint64_t>(opt.workers));
  record.parameters.set("queue", static_cast<std::uint64_t>(opt.queue));
  record.parameters.set("seed", opt.seed);
  record.parameters.set("external_port", static_cast<std::uint64_t>(opt.port));
  record.git_revision = lab::current_git_revision();
  record.timestamp_utc = lab::utc_timestamp();
  record.wall_seconds =
      std::chrono::duration<double>(clock_type::now() - wall_begin).count();
  record.cpu_seconds = static_cast<double>(std::clock() - cpu_begin) /
                       static_cast<double>(CLOCKS_PER_SEC);
  lab::fit_entry fit;
  fit.label = "SvcLoad";
  {
    char text[256];
    std::snprintf(text, sizeof text,
                  "qps=%.1f p50_ms=%.3f p95_ms=%.3f p99_ms=%.3f "
                  "errors=%llu lost=%llu overload_rejections=%llu",
                  qps, p50, p95, p99,
                  static_cast<unsigned long long>(measured.errors),
                  static_cast<unsigned long long>(measured.lost),
                  static_cast<unsigned long long>(overload_rejections));
    fit.text = text;
  }
  fit.values = {
      {"qps", qps},
      {"p50_ms", p50},
      {"p95_ms", p95},
      {"p99_ms", p99},
      {"server_p99_ms", server_p99_ms},
      {"p99_delta_ms", p99_delta_ms},
      {"qps_accesslog", qps_logged},
      {"accesslog_overhead_frac", accesslog_overhead},
      {"answered", static_cast<double>(measured.latencies_ms.size())},
      {"errors", static_cast<double>(measured.errors)},
      {"lost", static_cast<double>(measured.lost)},
      {"overload_rejections", static_cast<double>(overload_rejections)},
  };
  report_op_breakdown(measured, fit);
  record.fits.push_back(std::move(fit));
  record.metric_groups = {"service", "topo_cache"};
  record.metrics = mcast::obs::snapshot();

  const std::string path = opt.out_dir + "/BENCH_service.json";
  lab::write_manifest(record, path);
  std::cerr << "svc_load: manifest " << path << "\n";

  // Lost responses mean dropped connections mid-phase — that is a failure
  // of the zero-drop contract, not a statistic.
  return measured.lost == 0 ? 0 : 1;
}
