// mcast_lab — the single driver for every figure/table/ablation/extension
// experiment (replaces the 20 per-figure binaries; see `mcast_lab list`).
#include <exception>
#include <iostream>

#include "experiments.hpp"
#include "lab/cli.hpp"
#include "lab/registry.hpp"

int main(int argc, char** argv) {
  mcast::lab::registry reg;
  try {
    mcast::lab::register_builtin(reg);
  } catch (const std::exception& e) {
    std::cerr << "mcast_lab: broken registry: " << e.what() << "\n";
    return 1;
  }
  return mcast::lab::run_cli(reg, argc, argv);
}
