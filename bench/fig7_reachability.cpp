// Figure 7 — ln T(r) versus r for the eight networks, averaged over
// N_source random sources:
//   (a) generated topologies;   (b) real-style topologies.
// Exponential growth shows as a straight pre-saturation segment; the FIT
// lines quantify growth rate λ and linearity R², classifying each network
// the way Section 4.2 does.
#include <cmath>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/reachability.hpp"
#include "bench_common.hpp"
#include "graph/components.hpp"
#include "sim/csv.hpp"
#include "topo/catalog.hpp"

int main() {
  using namespace mcast;
  bench::banner("Fig 7",
                "ln T(r) vs r for the eight networks (paper Fig 7a/7b); "
                "exponential vs sub-exponential reachability growth");

  const node_id budget = bench::by_scale<node_id>(400, 30000, 60000);
  auto suite = paper_networks();
  if (budget < 30000) suite = scaled_networks(suite, budget);
  const std::size_t sources = bench::by_scale<std::size_t>(8, 50, 100);

  rng gen(777);
  for (const auto& entry : suite) {
    const graph g = largest_component(entry.build(7));
    const reachability_profile prof = mean_reachability(g, sources, gen);

    std::vector<double> xs, ys;
    for (std::size_t r = 1; r < prof.t.size(); ++r) {
      if (prof.t[r] <= 0.0) continue;
      xs.push_back(static_cast<double>(r));
      ys.push_back(std::log(prof.t[r]));
    }
    print_series(std::cout, entry.name + "  (ln T(r) vs r)", xs, ys);

    const reachability_growth_fit fit = fit_reachability_growth(prof);
    std::ostringstream line;
    line << "lambda=" << fit.lambda << " R2=" << fit.r_squared
         << " radii=" << fit.radii_used << " ubar=" << prof.mean_distance();
    print_fit_line(std::cout, "Fig7/" + entry.name, line.str());
  }
  std::cout << "paper: r100/ts*/Internet/AS exponential until saturation; "
               "ti5000 strongly concave, ARPA concave, MBone slightly "
               "concave (Section 4.2).\n";
  return 0;
}
