// Figure 7 — ln T(r) versus r for the eight networks, averaged over
// N_source random sources:
//   (a) generated topologies;   (b) real-style topologies.
// Exponential growth shows as a straight pre-saturation segment; the FIT
// lines quantify growth rate λ and linearity R², classifying each network
// the way Section 4.2 does. One RNG is shared across the network loop
// (matching the original binary), so this experiment stays serial.
#include <cmath>
#include <sstream>

#include "experiments.hpp"

#include "analysis/reachability.hpp"
#include "lab/registry.hpp"
#include "sim/rng.hpp"
#include "topo/catalog.hpp"

namespace mcast::lab {

void register_fig7(registry& reg) {
  experiment e;
  e.id = "fig7";
  e.title = "Fig 7: ln T(r) vs r reachability growth per network";
  e.claim =
      "ln T(r) vs r for the eight networks (paper Fig 7a/7b); "
      "exponential vs sub-exponential reachability growth";
  e.params = {
      p_u64("budget",
            "node budget; suites below 30000 are scaled-down versions",
            400, 30000, 60000),
      p_u64("sources", "random sources averaged per network", 8, 50, 100),
      p_u64("seed", "source-sampling RNG seed", 777),
  };
  e.metric_groups = {"traversal"};
  e.run = [](context& ctx) {
    const node_id budget = static_cast<node_id>(ctx.u64("budget"));
    const node_id scale_budget = budget < 30000 ? budget : 0;
    const auto suite = paper_networks();
    const std::size_t sources = ctx.u64("sources");

    rng gen(ctx.u64("seed"));
    for (const auto& entry : suite) {
      const auto shared = ctx.topology(entry.name, 7, scale_budget);
      const graph& g = *shared;
      const reachability_profile prof = mean_reachability(g, sources, gen);

      std::vector<double> xs, ys;
      for (std::size_t r = 1; r < prof.t.size(); ++r) {
        if (prof.t[r] <= 0.0) continue;
        xs.push_back(static_cast<double>(r));
        ys.push_back(std::log(prof.t[r]));
      }
      ctx.series(entry.name + "  (ln T(r) vs r)", xs, ys);

      const reachability_growth_fit fit = fit_reachability_growth(prof);
      std::ostringstream line;
      line << "lambda=" << fit.lambda << " R2=" << fit.r_squared
           << " radii=" << fit.radii_used << " ubar=" << prof.mean_distance();
      ctx.fit("Fig7/" + entry.name, line.str());
    }
    ctx.line(
        "paper: r100/ts*/Internet/AS exponential until saturation; "
        "ti5000 strongly concave, ARPA concave, MBone slightly "
        "concave (Section 4.2).");
  };
  reg.add(std::move(e));
}

}  // namespace mcast::lab
