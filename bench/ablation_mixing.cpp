// Ablation (DESIGN.md §6.3) — Metropolis mixing for the affinity model.
// Sweeps the burn-in budget and compares each estimate of L̂_β(n) against a
// long-chain reference, for attractive and repulsive β. Converged-by-N
// sweeps is the evidence that Fig 9's default budget is sufficient.
#include <cmath>
#include <sstream>

#include "experiments.hpp"

#include "lab/registry.hpp"
#include "multicast/affinity.hpp"
#include "multicast/receivers.hpp"
#include "sim/csv.hpp"
#include "topo/kary.hpp"

namespace mcast::lab {

void register_ablation_mixing(registry& reg) {
  experiment e;
  e.id = "ablation_mixing";
  e.title = "Ablation: Metropolis burn-in for the affinity chain";
  e.claim =
      "L-hat_beta(n) estimate vs burn-in sweeps, against a "
      "long-chain reference (DESIGN.md 6.3)";
  e.params = {
      p_u64("depth", "binary-tree depth", 8, 10, 12),
      p_u64("reference_burn", "burn-in sweeps of the reference chain",
            60, 150, 400),
  };
  e.metric_groups = {"traversal"};
  e.run = [](context& ctx) {
    const kary_shape shape(2, static_cast<unsigned>(ctx.u64("depth")));
    const graph g = shape.to_graph();
    const source_tree tree(g, 0);
    const std::vector<node_id> universe = all_sites_except(g, 0);
    const kary_distance_oracle oracle(shape);
    const std::size_t n = 48;

    const unsigned reference_burn =
        static_cast<unsigned>(ctx.u64("reference_burn"));
    const std::vector<unsigned> budgets = {1, 2, 5, 10, 20, 40};

    table_writer table({"beta", "burn sweeps", "estimate", "reference",
                        "rel err", "acceptance"});
    for (double beta : {2.0, -2.0}) {
      affinity_chain_params ref_params;
      ref_params.beta = beta;
      ref_params.burn_in_sweeps = reference_burn;
      ref_params.sample_sweeps = 40;
      ref_params.measurements = 60;
      rng ref_gen(5150);
      const double reference =
          sample_affinity_tree_size(tree, universe, n, oracle, ref_params,
                                    ref_gen)
              .mean_tree_size;

      for (unsigned burn : budgets) {
        affinity_chain_params params;
        params.beta = beta;
        params.burn_in_sweeps = burn;
        params.sample_sweeps = 8;
        rng gen(99);
        const affinity_estimate est =
            sample_affinity_tree_size(tree, universe, n, oracle, params, gen);
        const double rel = std::abs(est.mean_tree_size - reference) / reference;
        table.add_row({table_writer::num(beta, 2), std::to_string(burn),
                       table_writer::num(est.mean_tree_size, 5),
                       table_writer::num(reference, 5),
                       table_writer::num(rel, 3),
                       table_writer::num(est.acceptance_rate, 3)});
        if (burn == 10) {
          std::ostringstream line;
          line << "rel_err_at_10_sweeps=" << rel;
          ctx.fit("AblMixing/beta=" + table_writer::num(beta, 2), line.str());
        }
      }
    }
    ctx.table(table);
    ctx.line("");
    ctx.line(
        "expected: estimates settle within a few percent of the "
        "reference by ~10 sweeps; Fig 9 uses 14+ by default.");
  };
  reg.add(std::move(e));
}

}  // namespace mcast::lab
