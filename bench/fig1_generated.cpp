// Figure 1(a) — Chuang-Sirbu scaling on generated topologies
// (r100, ts1000, ts1008, ti5000).
#include "fig1_support.hpp"

int main() {
  return mcast::bench::run_fig1("Fig 1(a)", mcast::generated_networks());
}
