// Figure 2 — h(x) versus x for k-ary trees (receivers at leaves), compared
// to the predicted line h(x) = x·k^{-1/2}:
//   (a) k = 2, D = 11, 14, 17;   (b) k = 4, D = 5, 7, 9.
// h is computed from the exact second difference (Eq 6) through Eq 11; the
// straight-line collapse is the paper's evidence that the degree k only
// rescales the asymptotic form.
#include <cmath>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/fit.hpp"
#include "analysis/kary_asymptotic.hpp"
#include "analysis/kary_exact.hpp"
#include "analysis/series.hpp"
#include "bench_common.hpp"
#include "sim/csv.hpp"

int main() {
  using namespace mcast;
  bench::banner("Fig 2",
                "h(x) vs x for k-ary trees with receivers at leaves, against "
                "the line h(x) = x*k^(-1/2) (paper Fig 2a/2b)");

  struct panel {
    unsigned k;
    std::vector<unsigned> depths;
  };
  const panel panels[] = {{2, {11, 14, 17}}, {4, {5, 7, 9}}};
  const std::size_t points = bench::by_scale<std::size_t>(20, 60, 120);

  for (const panel& p : panels) {
    for (unsigned d : p.depths) {
      std::vector<double> xs, ys;
      for (double x : linear_grid(0.02, 1.0, points)) {
        xs.push_back(x);
        ys.push_back(kary_h_exact(p.k, d, x));
      }
      std::ostringstream label;
      label << "k=" << p.k << ",D=" << d << "  (h(x) vs x)";
      print_series(std::cout, label.str(), xs, ys);

      // Paper's check: the exact h tracks the line with slope k^{-1/2}
      // away from the tiny-x divergence.
      std::vector<double> fx, fy;
      for (std::size_t i = 0; i < xs.size(); ++i) {
        if (xs[i] >= 0.25) {
          fx.push_back(xs[i]);
          fy.push_back(ys[i]);
        }
      }
      const linear_fit lf = fit_linear(fx, fy);
      std::ostringstream fit;
      fit << "slope=" << lf.slope << " predicted=" << 1.0 / std::sqrt(p.k)
          << " R2=" << lf.r_squared;
      print_fit_line(std::cout, "Fig2/k=" + std::to_string(p.k) + ",D=" + std::to_string(d),
                     fit.str());
    }
    // Reference line for the panel.
    std::vector<double> rx, ry;
    for (double x : linear_grid(0.0, 1.0, 11)) {
      rx.push_back(x);
      ry.push_back(kary_h_approx(p.k, x));
    }
    print_series(std::cout, "reference x*k^(-1/2), k=" + std::to_string(p.k), rx, ry);
  }
  std::cout << "paper: k=2 fits the line well for x > 1/D; k=4 oscillates "
               "around it (discreteness of the level sum, Section 3.2).\n";
  return 0;
}
