// Figure 2 — h(x) versus x for k-ary trees (receivers at leaves), compared
// to the predicted line h(x) = x·k^{-1/2}:
//   (a) k = 2, D = 11, 14, 17;   (b) k = 4, D = 5, 7, 9.
// h is computed from the exact second difference (Eq 6) through Eq 11; the
// straight-line collapse is the paper's evidence that the degree k only
// rescales the asymptotic form. The per-depth curves are independent, so
// each panel fans out over the scheduler.
#include <cmath>
#include <sstream>

#include "experiments.hpp"

#include "analysis/fit.hpp"
#include "analysis/kary_asymptotic.hpp"
#include "analysis/kary_exact.hpp"
#include "analysis/series.hpp"
#include "lab/registry.hpp"

namespace mcast::lab {

void register_fig2(registry& reg) {
  experiment e;
  e.id = "fig2";
  e.title = "Fig 2: h(x) vs x for k-ary trees, receivers at leaves";
  e.claim =
      "h(x) vs x for k-ary trees with receivers at leaves, against "
      "the line h(x) = x*k^(-1/2) (paper Fig 2a/2b)";
  e.params = {
      p_u64("points", "x samples per curve", 20, 60, 120),
  };
  e.metric_groups = {"scheduler"};
  e.run = [](context& ctx) {
    struct panel {
      unsigned k;
      std::vector<unsigned> depths;
    };
    const panel panels[] = {{2, {11, 14, 17}}, {4, {5, 7, 9}}};
    const std::size_t points = ctx.u64("points");

    for (const panel& p : panels) {
      ctx.sweep(p.depths.size(), [&](std::size_t i, recorder& rec,
                                     worker_state&) {
        const unsigned d = p.depths[i];
        std::vector<double> xs, ys;
        for (double x : linear_grid(0.02, 1.0, points)) {
          xs.push_back(x);
          ys.push_back(kary_h_exact(p.k, d, x));
        }
        std::ostringstream label;
        label << "k=" << p.k << ",D=" << d << "  (h(x) vs x)";
        rec.series(label.str(), xs, ys);

        // Paper's check: the exact h tracks the line with slope k^{-1/2}
        // away from the tiny-x divergence.
        std::vector<double> fx, fy;
        for (std::size_t j = 0; j < xs.size(); ++j) {
          if (xs[j] >= 0.25) {
            fx.push_back(xs[j]);
            fy.push_back(ys[j]);
          }
        }
        const linear_fit lf = fit_linear(fx, fy);
        std::ostringstream fit;
        fit << "slope=" << lf.slope << " predicted=" << 1.0 / std::sqrt(p.k)
            << " R2=" << lf.r_squared;
        rec.fit("Fig2/k=" + std::to_string(p.k) + ",D=" + std::to_string(d),
                fit.str());
      });
      // Reference line for the panel.
      std::vector<double> rx, ry;
      for (double x : linear_grid(0.0, 1.0, 11)) {
        rx.push_back(x);
        ry.push_back(kary_h_approx(p.k, x));
      }
      ctx.series("reference x*k^(-1/2), k=" + std::to_string(p.k), rx, ry);
    }
    ctx.line(
        "paper: k=2 fits the line well for x > 1/D; k=4 oscillates "
        "around it (discreteness of the level sum, Section 3.2).");
  };
  reg.add(std::move(e));
}

}  // namespace mcast::lab
