// Extension — does the Chuang-Sirbu exponent survive churn? The paper
// (and every figure above) prices a group *frozen* at size m. A live
// group is a process: members join and leave, and the delivery tree
// grafts and prunes branches incrementally (group/group_manager.hpp).
// This experiment drives M/M/∞ Poisson churn at three lifetime tiers,
// sweeps the stationary mean size, and fits
//   time-averaged links  ~  A * (time-averaged members)^ε
// per tier against the static L(m) fit on the same topology. Finding:
// ε is a property of the path union, not of membership dynamics — the
// time-averaged tree obeys the same near-0.8 law at every churn speed.
#include <cmath>
#include <iterator>
#include <sstream>
#include <vector>

#include "experiments.hpp"

#include "analysis/fit.hpp"
#include "core/runner.hpp"
#include "group/churn.hpp"
#include "group/group_manager.hpp"
#include "lab/registry.hpp"
#include "sim/csv.hpp"
#include "sim/rng.hpp"

namespace mcast::lab {

namespace {

struct churn_tier {
  const char* label;     ///< FIT label, no dots/slashes (expect-file keys)
  double mean_lifetime;  ///< exponential holding-time mean
};

constexpr churn_tier k_tiers[] = {
    {"ChurnFast", 2.0},
    {"ChurnMid", 8.0},
    {"ChurnSlow", 32.0},
};

struct churn_point {
  double target_members = 0.0;
  churn_metrics metrics;
};

}  // namespace

void register_ext_churn(registry& reg) {
  experiment e;
  e.id = "ext_churn";
  e.title = "Extension: the scaling law under membership churn";
  e.claim =
      "time-averaged incremental-tree size under Poisson join/leave "
      "churn obeys the same m^0.8 law as the static tree";
  e.params = {
      p_u64("receiver_sets", "receiver sets for the static reference", 6, 20,
            60),
      p_u64("sources", "sources for the static reference", 5, 15, 50),
      p_real("horizon", "measured churn span per point", 120.0, 600.0, 2400.0),
      p_real("warmup", "settle-in span excluded from averages", 24.0, 96.0,
             240.0),
      p_u64("max_members", "largest target mean group size (power of two)",
            32, 128, 256),
      p_u64("churn_seed", "base seed; each sweep point derives its own", 41),
  };
  e.metric_groups = {"monte_carlo", "traversal", "group"};
  e.run = [](context& ctx) {
    const auto g = ctx.topology("ts1000", 6);
    const node_id n = g->node_count();

    // Static reference: the frozen-group L(m) fit the paper reports, on
    // the same topology and fit window the churn tiers use below.
    monte_carlo_params mc = ctx.monte_carlo();
    mc.receiver_sets = ctx.u64("receiver_sets");
    mc.sources = ctx.u64("sources");
    const auto rows =
        measure_distinct_receivers(*g, default_group_grid(n - 1, 14), mc);
    const double x_lo = 2.0;
    const double x_hi = 0.5 * static_cast<double>(n);
    {
      std::vector<double> xs, ys;
      for (const scaling_point& row : rows) {
        xs.push_back(static_cast<double>(row.group_size));
        ys.push_back(row.tree_links_mean);
      }
      const power_law_fit f = fit_power_law_windowed(xs, ys, x_lo, x_hi);
      std::ostringstream line;
      line << "exponent=" << f.exponent << " R2=" << f.r_squared
           << " points=" << f.points;
      ctx.fit("ChurnStatic", line.str());
    }
    ctx.line("");

    // Churn sweep: target stationary sizes are powers of two; the M/M/∞
    // identity mean = join_rate * lifetime sets the rate per tier. Every
    // point owns a private manager + group, so points are independent and
    // the sweep splices back deterministically at any thread count.
    std::vector<double> targets;
    for (double m = 4.0; m <= static_cast<double>(ctx.u64("max_members"));
         m *= 2.0) {
      targets.push_back(m);
    }
    const double horizon = ctx.real("horizon");
    const double warmup = ctx.real("warmup");
    const std::uint64_t base_seed = ctx.u64("churn_seed");
    const std::size_t tiers = std::size(k_tiers);
    const std::size_t points = tiers * targets.size();
    std::vector<churn_point> results(points);
    ctx.sweep(points, [&](std::size_t index, recorder&, worker_state&) {
      const churn_tier& tier = k_tiers[index / targets.size()];
      const double target = targets[index % targets.size()];
      churn_workload w;
      w.join_rate = target / tier.mean_lifetime;
      w.mean_lifetime = tier.mean_lifetime;
      w.horizon = horizon;
      w.warmup = warmup;
      group_manager groups;
      groups.create("bench", "churn", g, group_config{});
      std::uint64_t seed_state = base_seed + static_cast<std::uint64_t>(index);
      results[index].target_members = target;
      results[index].metrics = run_poisson_churn(groups, "bench", "churn", w,
                                                 splitmix64(seed_state));
    });

    table_writer table({"tier", "lifetime", "target m", "avg members",
                        "avg links", "peak links", "graft/join"});
    for (std::size_t t = 0; t < tiers; ++t) {
      std::vector<double> xs, ys;
      for (std::size_t i = 0; i < targets.size(); ++i) {
        const churn_point& point = results[t * targets.size() + i];
        const churn_metrics& m = point.metrics;
        xs.push_back(m.time_avg_members);
        ys.push_back(m.time_avg_links);
        table.add_row(
            {k_tiers[t].label, table_writer::num(k_tiers[t].mean_lifetime, 1),
             table_writer::num(point.target_members, 0),
             table_writer::num(m.time_avg_members, 3),
             table_writer::num(m.time_avg_links, 3),
             table_writer::num(static_cast<double>(m.peak_links), 0),
             table_writer::num(m.joins == 0
                                   ? 0.0
                                   : static_cast<double>(m.links_grafted) /
                                         static_cast<double>(m.joins),
                               3)});
      }
      ctx.series(std::string(k_tiers[t].label) +
                     "  (time-avg links vs time-avg members)",
                 xs, ys);
      const power_law_fit f = fit_power_law_windowed(xs, ys, x_lo, x_hi);
      std::ostringstream line;
      line << "exponent=" << f.exponent << " R2=" << f.r_squared
           << " points=" << f.points
           << " lifetime=" << k_tiers[t].mean_lifetime;
      ctx.fit(k_tiers[t].label, line.str());
    }
    ctx.table(table);
    ctx.line("");
    ctx.line(
        "finding: the time-averaged incremental tree tracks the static "
        "L(m) power law at every churn speed — graft/prune dynamics move "
        "the constant, not the exponent.");
  };
  reg.add(std::move(e));
}

}  // namespace mcast::lab
