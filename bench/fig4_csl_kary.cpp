// Figure 4 — ln(L(m)/D) versus ln m for k-ary trees (receivers at leaves)
// compared to the Chuang-Sirbu line m^0.8:
//   (a) k = 2, D = 10, 14, 17;   (b) k = 4, D = 5, 7, 9.
// The paper's surprise: Eq 18 is *not* a power law, yet its curves hug
// m^0.8 over the whole usable range — one candidate explanation for the
// law's universality. Per-depth curves fan out over the scheduler.
#include <cmath>
#include <sstream>

#include "experiments.hpp"

#include "analysis/fit.hpp"
#include "analysis/kary_exact.hpp"
#include "analysis/series.hpp"
#include "lab/registry.hpp"

namespace mcast::lab {

void register_fig4(registry& reg) {
  experiment e;
  e.id = "fig4";
  e.title = "Fig 4: ln(L(m)/D) vs ln m for k-ary trees vs m^0.8";
  e.claim =
      "ln(L(m)/D) vs ln m for k-ary trees with receivers at "
      "leaves, against the line m^0.8 (paper Fig 4)";
  e.params = {
      p_u64("points", "m samples per curve (log grid)", 20, 50, 100),
  };
  e.metric_groups = {"scheduler"};
  e.run = [](context& ctx) {
    struct panel {
      unsigned k;
      std::vector<unsigned> depths;
    };
    const panel panels[] = {{2, {10, 14, 17}}, {4, {5, 7, 9}}};
    const std::size_t points = ctx.u64("points");

    for (const panel& p : panels) {
      ctx.sweep(p.depths.size(), [&](std::size_t i, recorder& rec,
                                     worker_state&) {
        const unsigned d = p.depths[i];
        const double m_sites = kary_leaf_count(p.k, d);
        std::vector<double> xs, ys;
        for (double m : log_grid(1.0, 0.999 * m_sites, points)) {
          xs.push_back(m);
          ys.push_back(kary_tree_size_distinct_leaves(p.k, d, m) / d);
        }
        std::ostringstream label;
        label << "k=" << p.k << ",D=" << d << "  (L(m)/D vs m)";
        rec.series(label.str(), xs, ys);

        const power_law_fit f =
            fit_power_law_windowed(xs, ys, 2.0, 0.3 * m_sites);
        std::ostringstream fit;
        fit << "exponent=" << f.exponent << " R2=" << f.r_squared
            << " (paper: ~0.8 despite Eq 18 not being a power law)";
        rec.fit("Fig4/k=" + std::to_string(p.k) + ",D=" + std::to_string(d),
                fit.str());
      });
    }
    std::vector<double> rx, ry;
    for (double m = 1.0; m <= 1e6; m *= 4.0) {
      rx.push_back(m);
      ry.push_back(std::pow(m, 0.8));
    }
    ctx.series("reference m^0.8", rx, ry);
  };
  reg.add(std::move(e));
}

}  // namespace mcast::lab
