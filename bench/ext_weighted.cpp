// Extension — does the Chuang-Sirbu scaling survive link weights?
// The paper counts links without weighting them (footnote 3). Here the
// same measurement runs three ways on one Waxman topology:
//   hops        — the paper's model (BFS trees, link count)
//   euclidean   — Dijkstra trees over Euclidean link lengths, total length
//   random      — Dijkstra trees over U[0.5, 1.5) weights, total weight
// and reports the fitted exponent of tree cost vs m for each. The three
// modes carry independent RNG streams and fan out over the scheduler.
#include <cmath>
#include <sstream>
#include <string>

#include "experiments.hpp"

#include "analysis/fit.hpp"
#include "analysis/series.hpp"
#include "core/runner.hpp"
#include "graph/dijkstra.hpp"
#include "graph/weights.hpp"
#include "lab/registry.hpp"
#include "multicast/delivery_tree.hpp"
#include "multicast/receivers.hpp"
#include "multicast/weighted.hpp"
#include "topo/waxman.hpp"

namespace mcast::lab {

void register_ext_weighted(registry& reg) {
  experiment e;
  e.id = "ext_weighted";
  e.title = "Extension: tree cost scaling under weighted links";
  e.claim =
      "tree cost vs m under hop / euclidean / random link weights "
      "(paper footnote 3 counts links unweighted)";
  e.params = {
      p_u64("nodes", "Waxman topology size", 200, 1500, 4000),
      p_u64("receiver_sets", "receiver sets per source", 5, 20, 60),
      p_u64("sources", "random sources per mode", 4, 15, 40),
      p_u64("topo_seed", "Waxman construction seed", 12),
      p_u64("weight_seed", "random-weight assignment seed", 77),
      p_u64("seed", "receiver-sampling seed (per mode)", 2026),
  };
  e.metric_groups = {"traversal", "scheduler"};
  e.run = [](context& ctx) {
    waxman_params p;
    p.nodes = static_cast<node_id>(ctx.u64("nodes"));
    p.alpha = 0.08;
    p.beta = 0.3;
    std::vector<point2d> pos;
    rng topo_gen(ctx.u64("topo_seed"));
    const graph g = make_waxman(p, topo_gen, &pos);

    edge_weights euclid(g);
    euclid.assign([&pos](node_id a, node_id b) {
      return std::hypot(pos[a].x - pos[b].x, pos[a].y - pos[b].y) + 1e-6;
    });
    edge_weights random_w(g);
    rng wgen(ctx.u64("weight_seed"));
    random_w.assign([&wgen](node_id, node_id) { return 0.5 + wgen.uniform(); });

    const std::size_t sources = ctx.u64("sources");
    const std::size_t sets = ctx.u64("receiver_sets");
    const std::uint64_t seed = ctx.u64("seed");
    const auto grid = default_group_grid(g.node_count() - 1, 14);

    struct mode {
      const char* name;
      const edge_weights* weights;  // nullptr = hop counting
    };
    const mode modes[] = {{"hops", nullptr},
                          {"euclidean", &euclid},
                          {"random", &random_w}};

    ctx.sweep(3, [&](std::size_t mi, recorder& rec, worker_state&) {
      const mode& m = modes[mi];
      rng gen(seed);
      std::vector<double> xs(grid.size()), ys(grid.size(), 0.0);
      for (std::size_t gi = 0; gi < grid.size(); ++gi) {
        xs[gi] = static_cast<double>(grid[gi]);
      }
      for (std::size_t s = 0; s < sources; ++s) {
        const node_id src = static_cast<node_id>(gen.below(g.node_count()));
        const std::vector<node_id> universe = all_sites_except(g, src);
        if (m.weights == nullptr) {
          const source_tree tree(g, src);
          delivery_tree_builder builder(tree);
          for (std::size_t gi = 0; gi < grid.size(); ++gi) {
            for (std::size_t rep = 0; rep < sets; ++rep) {
              builder.reset();
              for (node_id v : sample_distinct(universe, grid[gi], gen)) {
                builder.add_receiver(v);
              }
              ys[gi] += static_cast<double>(builder.link_count());
            }
          }
        } else {
          const weighted_tree tree = dijkstra_from(g, *m.weights, src);
          for (std::size_t gi = 0; gi < grid.size(); ++gi) {
            for (std::size_t rep = 0; rep < sets; ++rep) {
              const auto receivers = sample_distinct(universe, grid[gi], gen);
              ys[gi] +=
                  weighted_delivery_tree_cost(g, *m.weights, tree, receivers);
            }
          }
        }
      }
      const double samples = static_cast<double>(sources * sets);
      for (double& y : ys) y /= samples;
      rec.series(std::string(m.name) + "  (tree cost vs m)", xs, ys);
      const power_law_fit f = fit_power_law_windowed(
          xs, ys, 2.0, 0.5 * static_cast<double>(g.node_count()));
      std::ostringstream line;
      line << "exponent=" << f.exponent << " R2=" << f.r_squared;
      rec.fit(std::string("ExtWeighted/") + m.name, line.str());
    });
    ctx.line(
        "finding: the near-0.8 exponent is a property of the path "
        "union, not of the link metric — weighting links moves the "
        "amplitude, not the power.");
  };
  reg.add(std::move(e));
}

}  // namespace mcast::lab
