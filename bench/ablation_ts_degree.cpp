// Ablation (DESIGN.md §6.4) — what drives the Fig 6 slope on transit-stub
// topologies? The paper is "a bit surprised" that ts1000 (deg 3.6) and
// ts1008 (deg 7.5) have such similar slopes, and attributes it to similar
// T(r) growth rather than raw degree. Sweep the stub-density knob at fixed
// structure and report avg degree, T(r) growth λ and the measured Fig 6
// slope side by side.
#include <cmath>
#include <sstream>

#include "experiments.hpp"

#include "analysis/fit.hpp"
#include "analysis/reachability.hpp"
#include "core/runner.hpp"
#include "graph/metrics.hpp"
#include "lab/registry.hpp"
#include "sim/csv.hpp"
#include "topo/transit_stub.hpp"

namespace mcast::lab {

void register_ablation_ts_degree(registry& reg) {
  experiment e;
  e.id = "ablation_ts_degree";
  e.title = "Ablation: transit-stub degree vs the Fig 6 slope";
  e.claim =
      "avg degree vs T(r) growth vs measured L/(n*ubar) slope "
      "(paper: growth, not degree, sets the slope; Section 4.2)";
  e.params = {
      p_u64("receiver_sets", "receiver sets per source", 6, 25, 60),
      p_u64("sources", "random sources per topology", 4, 15, 40),
      p_u64("seed", "Monte-Carlo seed", 31337),
  };
  e.metric_groups = {"monte_carlo", "traversal", "spt_cache"};
  e.run = [](context& ctx) {
    monte_carlo_params mc = ctx.monte_carlo();
    mc.receiver_sets = ctx.u64("receiver_sets");
    mc.sources = ctx.u64("sources");
    mc.seed = ctx.u64("seed");

    table_writer table({"stub p", "extra edges", "avg degree", "T(r) lambda",
                        "fig6 slope", "fig6 R2"});
    struct knob {
      double stub_p;
      double extras;
    };
    const knob knobs[] = {{0.1, 0.0}, {0.2, 100.0}, {0.4, 400.0},
                          {0.55, 800.0}, {0.8, 1600.0}};
    std::vector<double> degrees, slopes;
    for (const knob& kn : knobs) {
      transit_stub_params p = ts1000_params();
      p.stub_edge_prob = kn.stub_p;
      p.extra_stub_stub_edges = kn.extras;
      const graph g = make_transit_stub(p, 17);

      const double deg = compute_degree_stats(g).mean;
      rng rgen(5);
      const reachability_growth_fit growth =
          fit_reachability_growth(mean_reachability(g, 16, rgen));

      const auto grid = default_group_grid(4ULL * (g.node_count() - 1), 12);
      const auto rows = measure_with_replacement(g, grid, mc);
      std::vector<double> xs, ys;
      for (const auto& row : rows) {
        xs.push_back(std::log(static_cast<double>(row.group_size)));
        ys.push_back(row.ratio_mean / static_cast<double>(row.group_size));
      }
      const linear_fit lf = fit_linear(xs, ys);
      degrees.push_back(deg);
      slopes.push_back(lf.slope);

      table.add_row({table_writer::num(kn.stub_p, 3),
                     table_writer::num(kn.extras, 4),
                     table_writer::num(deg, 3),
                     table_writer::num(growth.lambda, 3),
                     table_writer::num(lf.slope, 3),
                     table_writer::num(lf.r_squared, 4)});
    }
    ctx.table(table);

    // How much does the slope move per unit of degree? Small = the paper's
    // observation that degree alone is not the driver.
    const linear_fit sensitivity = fit_linear(degrees, slopes);
    std::ostringstream line;
    line << "dslope/ddegree=" << sensitivity.slope
         << " (|small| reproduces the ts1000-vs-ts1008 similarity)";
    ctx.fit("AblTsDegree", line.str());
  };
  reg.add(std::move(e));
}

}  // namespace mcast::lab
