// Extension — does the Chuang-Sirbu law survive failures?
//
// The provisioning story built on L(m) ~ m^0.8 only matters if the
// exponent is stable on the network a provider actually has: one with
// failed links and dead routers. This experiment measures L(m) and its
// fitted exponent on degraded views of the paper's topology catalog:
//   * uniform random link failure, p in {0, 0.01, 0.05, 0.1};
//   * targeted highest-degree node failure (top-f hubs);
// and then runs the session-level simulator against a scheduled link
// failure/recovery trace to report the degraded-mode service metrics
// (repairs, churn, disconnections, reachable fraction).
//
// Fully deterministic: a fixed `seed` parameter produces byte-identical
// output for any thread count (the Monte-Carlo runner is thread-count
// invariant and failure injection is seeded).
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "experiments.hpp"

#include "core/runner.hpp"
#include "core/scaling_law.hpp"
#include "fault/degraded.hpp"
#include "fault/failure_model.hpp"
#include "lab/registry.hpp"
#include "session/simulator.hpp"
#include "sim/csv.hpp"
#include "topo/catalog.hpp"
#include "topo/transit_stub.hpp"

namespace mcast::lab {
namespace {

// Fits the law to the usable window of a degraded measurement; returns
// false when the degraded network left too few rows to fit.
bool fit_degraded(const std::vector<scaling_point>& rows, scaling_law& out) {
  std::vector<scaling_point> usable;
  for (const scaling_point& p : rows) {
    if (p.samples > 0 && p.group_size >= 2 && p.group_size <= 500) {
      usable.push_back(p);
    }
  }
  if (usable.size() < 3) return false;
  out = scaling_law::fit_to(usable, 2.0, 500.0);
  return true;
}

}  // namespace

void register_ext_failures(registry& reg) {
  experiment e;
  e.id = "ext_failures";
  e.title = "Extension: failure robustness";
  e.claim =
      "stability of the fitted L(m) exponent under random link "
      "failure and targeted hub failure, plus degraded-mode "
      "session metrics (repair, churn, reachability)";
  e.params = {
      p_u64("seed", "master seed (topology, failures, sessions)", 1999),
      p_u64("budget", "node budget for the topology catalog", 250, 1500, 6000),
      p_u64("receiver_sets", "receiver sets per source", 4, 10, 30),
      p_u64("sources", "random sources per scenario", 6, 18, 48),
      p_u64("grid_points", "group-size grid points", 8, 14, 20),
      p_real("horizon", "session-trace time horizon", 150.0, 600.0, 2400.0),
  };
  e.metric_groups = {"monte_carlo", "traversal", "spt_cache", "repair", "session"};
  e.run = [](context& ctx) {
    const std::uint64_t seed = ctx.u64("seed");
    ctx.line("# seed: " + std::to_string(seed));
    ctx.line("");

    const node_id budget = static_cast<node_id>(ctx.u64("budget"));
    const auto suite = paper_networks();
    monte_carlo_params mc = ctx.monte_carlo();
    mc.receiver_sets = ctx.u64("receiver_sets");
    mc.sources = ctx.u64("sources");
    mc.seed = seed;
    const std::size_t grid_points = ctx.u64("grid_points");

    const std::vector<double> p_values = {0.0, 0.01, 0.05, 0.1};

    table_writer random_table({"network", "p", "links failed", "exponent",
                               "R2", "drift vs p=0"});
    double worst_random_drift = 0.0;
    table_writer targeted_table(
        {"network", "hubs failed", "exponent", "R2", "drift vs intact"});
    double worst_targeted_drift = 0.0;
    std::size_t targeted_breaks = 0;  // hub scenarios that broke the fit

    for (const auto& entry : suite) {
      const auto shared = ctx.topology(entry.name, seed, budget);
      const graph& g = *shared;
      if (g.node_count() < 32) continue;
      const auto grid = default_group_grid(g.node_count() - 1, grid_points);

      double baseline = 0.0;
      for (std::size_t pi = 0; pi < p_values.size(); ++pi) {
        const double p = p_values[pi];
        degraded_view view(g);
        const failure_set scenario =
            random_link_failures(g, p, seed + 0x100 * (pi + 1));
        view.apply(scenario);
        const auto rows = measure_distinct_receivers(view, grid, mc);
        scaling_law law;
        if (!fit_degraded(rows, law)) {
          random_table.add_row({g.name(), table_writer::num(p, 3),
                                std::to_string(view.failed_link_count()),
                                "n/a", "n/a", "n/a"});
          continue;
        }
        if (pi == 0) baseline = law.exponent();
        const double drift = law.exponent() - baseline;
        worst_random_drift = std::max(worst_random_drift, std::abs(drift));
        random_table.add_row(
            {g.name(), table_writer::num(p, 3),
             std::to_string(view.failed_link_count()),
             table_writer::num(law.exponent(), 4),
             table_writer::num(law.r_squared(), 4),
             table_writer::num(drift, 3)});
      }

      const std::size_t hub_steps[] = {
          1, 2, std::max<std::size_t>(3, g.node_count() / 50)};
      for (std::size_t f : hub_steps) {
        if (f >= g.node_count()) continue;
        degraded_view view(g);
        view.apply(targeted_hub_failures(g, f));
        const auto rows = measure_distinct_receivers(view, grid, mc);
        scaling_law law;
        if (!fit_degraded(rows, law)) {
          ++targeted_breaks;
          targeted_table.add_row(
              {g.name(), std::to_string(f), "n/a", "n/a", "shattered"});
          continue;
        }
        const double drift = law.exponent() - baseline;
        worst_targeted_drift = std::max(worst_targeted_drift, std::abs(drift));
        targeted_table.add_row({g.name(), std::to_string(f),
                                table_writer::num(law.exponent(), 4),
                                table_writer::num(law.r_squared(), 4),
                                table_writer::num(drift, 3)});
      }
    }

    ctx.line("-- random link failure --");
    ctx.table(random_table);
    ctx.line("");
    ctx.line("-- targeted hub failure --");
    ctx.table(targeted_table);

    // Degraded-mode service metrics: sessions under a failure/recovery trace.
    const graph gs = make_transit_stub(ts1000_params(), 6);
    const double horizon = ctx.real("horizon");
    failure_trace_params trace_params;
    trace_params.horizon = horizon;
    trace_params.mean_repair_time = 15.0;
    // Aim for a few dozen failures over the run regardless of edge count.
    trace_params.link_failure_rate =
        40.0 / (static_cast<double>(gs.edge_count()) * horizon);
    const auto trace = make_failure_trace(gs, trace_params, seed ^ 0xfa17);

    session_workload w;
    w.session_arrival_rate = 0.25;
    w.session_lifetime_mean = 40.0;
    w.member_join_rate = 1.0;
    w.member_lifetime_mean = 12.0;
    w.max_concurrent_sessions = 512;
    const session_metrics healthy =
        simulate_sessions(gs, w, horizon, horizon / 5.0, seed);
    const session_metrics degraded =
        simulate_sessions(gs, w, trace, horizon, horizon / 5.0, seed);

    ctx.line("");
    ctx.line("-- sessions on ts1000 under a link failure/recovery trace --");
    table_writer session_table({"run", "avg links", "reach frac", "repairs",
                                "links churned", "disconnected",
                                "reconnected"});
    session_table.add_row(
        {"healthy", table_writer::num(healthy.time_avg_links, 5),
         table_writer::num(healthy.time_avg_reachable_fraction, 5),
         std::to_string(healthy.repairs),
         std::to_string(healthy.repair_links_churned),
         std::to_string(healthy.receivers_disconnected),
         std::to_string(healthy.receivers_reconnected)});
    session_table.add_row(
        {"degraded", table_writer::num(degraded.time_avg_links, 5),
         table_writer::num(degraded.time_avg_reachable_fraction, 5),
         std::to_string(degraded.repairs),
         std::to_string(degraded.repair_links_churned),
         std::to_string(degraded.receivers_disconnected),
         std::to_string(degraded.receivers_reconnected)});
    ctx.table(session_table);

    std::ostringstream line;
    line << "worst_random_drift=" << worst_random_drift
         << " worst_targeted_drift=" << worst_targeted_drift
         << " targeted_shattered=" << targeted_breaks
         << " degraded_reach_frac=" << degraded.time_avg_reachable_fraction;
    ctx.fit("ExtFailures", line.str());
    ctx.line("");
    ctx.line(
        "finding: uniform random link failure up to p=0.1 moves the "
        "fitted Chuang-Sirbu exponent only slightly (the law is "
        "provisioning-grade on the surviving component), while "
        "targeted hub failure drags the exponent and can shatter the "
        "fit entirely; under a live failure/recovery trace sessions "
        "repair onto degraded shortest paths and keep serving the "
        "reachable fraction reported above.");
  };
  reg.add(std::move(e));
}

}  // namespace mcast::lab
