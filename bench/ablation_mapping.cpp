// Ablation (DESIGN.md §6.2) — accuracy of the n <-> m conversion (Eqs 1-2)
// at finite M. The paper's analysis computes L̂(n) (with replacement) and
// converts to L(m) through m̄ = M(1-(1-1/M)^n); here we measure true L(m)
// by Monte-Carlo with m DISTINCT leaf receivers on k-ary trees and compare
// with the converted exact formula, across tree sizes.
#include <cmath>
#include <sstream>

#include "experiments.hpp"

#include "analysis/kary_exact.hpp"
#include "analysis/series.hpp"
#include "lab/registry.hpp"
#include "multicast/delivery_tree.hpp"
#include "multicast/receivers.hpp"
#include "sim/csv.hpp"
#include "topo/kary.hpp"

namespace mcast::lab {

void register_ablation_mapping(registry& reg) {
  experiment e;
  e.id = "ablation_mapping";
  e.title = "Ablation: n<->m mapping accuracy at finite M";
  e.claim =
      "true Monte-Carlo L(m) (distinct receivers) vs Eq 4 composed "
      "with the Eq 1 mapping, across tree depths (DESIGN.md 6.2)";
  e.params = {
      p_u64("reps", "Monte-Carlo repetitions per (depth, m)", 60, 400, 1500),
  };
  e.metric_groups = {"traversal"};
  e.run = [](context& ctx) {
    const unsigned k = 2;
    const std::vector<unsigned> depths = {8, 11, 14};
    const int reps = static_cast<int>(ctx.u64("reps"));

    table_writer table({"depth", "M", "m", "MC L(m)", "mapped Eq4", "rel err"});
    for (unsigned d : depths) {
      const kary_shape shape(k, d);
      const graph g = shape.to_graph();
      const source_tree tree(g, 0);
      const std::vector<node_id> leaves =
          leaf_sites(shape.first_leaf(), shape.leaf_count());
      rng gen(31 + d);
      delivery_tree_builder builder(tree);

      double worst = 0.0;
      for (double frac : {0.02, 0.1, 0.3, 0.7}) {
        const std::size_t m = std::max<std::size_t>(
            1,
            static_cast<std::size_t>(frac * static_cast<double>(leaves.size())));
        double total = 0.0;
        for (int rep = 0; rep < reps; ++rep) {
          builder.reset();
          for (node_id v : sample_distinct(leaves, m, gen)) {
            builder.add_receiver(v);
          }
          total += static_cast<double>(builder.link_count());
        }
        const double measured = total / reps;
        const double mapped =
            kary_tree_size_distinct_leaves(k, d, static_cast<double>(m));
        const double rel = std::abs(mapped - measured) / measured;
        worst = std::max(worst, rel);
        table.add_row({std::to_string(d), std::to_string(leaves.size()),
                       std::to_string(m), table_writer::num(measured, 6),
                       table_writer::num(mapped, 6),
                       table_writer::num(rel, 3)});
      }
      std::ostringstream line;
      line << "worst_rel_err=" << worst << " (should shrink as M grows)";
      ctx.fit("AblMapping/D=" + std::to_string(d), line.str());
    }
    ctx.table(table);
    ctx.line("");
    ctx.line(
        "expected: sub-percent agreement, improving with M — the "
        "mapping's 'tightly centered m' premise (Section 3).");
  };
  reg.add(std::move(e));
}

}  // namespace mcast::lab
