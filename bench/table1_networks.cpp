// Table 1 — "Description of networks used in Figure 1": name, style,
// node/link counts, average degree, plus the path statistics that
// normalize every figure (average unicast path length, diameter).
#include <iostream>

#include "bench_common.hpp"
#include "graph/components.hpp"
#include "graph/metrics.hpp"
#include "sim/csv.hpp"
#include "topo/catalog.hpp"

int main() {
  using namespace mcast;
  bench::banner("Table 1",
                "the eight-network evaluation suite (paper Table 1); our "
                "generated/substituted versions, see DESIGN.md section 3");

  const node_id budget = bench::by_scale<node_id>(500, 30000, 60000);
  const auto suite = budget >= 30000 ? paper_networks()
                                     : scaled_networks(paper_networks(), budget);

  table_writer table({"network", "style", "nodes", "links", "avg degree",
                      "avg path", "diameter*"});
  for (const auto& entry : suite) {
    const graph g = largest_component(entry.build(7));
    const table1_row row = summarize_network(g);
    table.add_row({row.name,
                   entry.kind == network_kind::generated ? "generated" : "real-style",
                   std::to_string(row.nodes), std::to_string(row.links),
                   table_writer::num(row.avg_degree, 3),
                   table_writer::num(row.avg_path_length, 4),
                   std::to_string(row.diameter)});
  }
  table.print(std::cout);
  std::cout << "\n(*) sampled lower bound for networks above 4000 nodes.\n"
            << "paper: 8 topologies, 47..56317 nodes, avg degree 2.7..7.5.\n";
  return 0;
}
