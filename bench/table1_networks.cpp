// Table 1 — "Description of networks used in Figure 1": name, style,
// node/link counts, average degree, plus the path statistics that
// normalize every figure (average unicast path length, diameter).
#include "experiments.hpp"

#include "graph/metrics.hpp"
#include "lab/registry.hpp"
#include "sim/csv.hpp"
#include "topo/catalog.hpp"

namespace mcast::lab {

void register_table1(registry& reg) {
  experiment e;
  e.id = "table1";
  e.title = "Table 1 network suite: sizes, degrees, path statistics";
  e.claim =
      "the eight-network evaluation suite (paper Table 1); our "
      "generated/substituted versions, see DESIGN.md section 3";
  e.params = {
      p_u64("budget",
            "node budget; suites below 30000 are scaled-down versions",
            500, 30000, 60000),
  };
  e.metric_groups = {"traversal"};
  e.run = [](context& ctx) {
    const node_id budget = static_cast<node_id>(ctx.u64("budget"));
    const node_id scale_budget = budget < 30000 ? budget : 0;
    const auto suite = paper_networks();

    table_writer table({"network", "style", "nodes", "links", "avg degree",
                        "avg path", "diameter*"});
    for (const auto& entry : suite) {
      const auto shared = ctx.topology(entry.name, 7, scale_budget);
      const graph& g = *shared;
      const table1_row row = summarize_network(g);
      table.add_row({row.name,
                     entry.kind == network_kind::generated ? "generated"
                                                           : "real-style",
                     std::to_string(row.nodes), std::to_string(row.links),
                     table_writer::num(row.avg_degree, 3),
                     table_writer::num(row.avg_path_length, 4),
                     std::to_string(row.diameter)});
    }
    ctx.table(table);
    ctx.line("");
    ctx.line("(*) sampled lower bound for networks above 4000 nodes.");
    ctx.line("paper: 8 topologies, 47..56317 nodes, avg degree 2.7..7.5.");
  };
  reg.add(std::move(e));
}

}  // namespace mcast::lab
