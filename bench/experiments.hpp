// Registration entry points for every figure/table/ablation/extension
// experiment. Each `register_<id>` lives in its own TU next to the code it
// registers; `register_builtin` (register_all.cpp) installs the full suite.
// Explicit calls — not static initializers — so a static-library link can
// never silently drop an experiment.
#pragma once

namespace mcast::lab {

class registry;

void register_table1(registry& reg);
void register_fig1(registry& reg);
void register_fig2(registry& reg);
void register_fig3(registry& reg);
void register_fig4(registry& reg);
void register_fig5(registry& reg);
void register_fig6(registry& reg);
void register_fig7(registry& reg);
void register_fig8(registry& reg);
void register_fig9(registry& reg);
void register_ablation_tiebreak(registry& reg);
void register_ablation_mapping(registry& reg);
void register_ablation_mixing(registry& reg);
void register_ablation_ts_degree(registry& reg);
void register_ext_shared_tree(registry& reg);
void register_ext_reachability_zoo(registry& reg);
void register_ext_weighted(registry& reg);
void register_ext_sessions(registry& reg);
void register_ext_failures(registry& reg);
void register_ext_churn(registry& reg);

/// Installs the complete built-in suite (20 experiments).
void register_builtin(registry& reg);

}  // namespace mcast::lab
