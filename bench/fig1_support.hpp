// Shared implementation for the two halves of Figure 1 (generated vs real
// topologies): measure ln(L(m)/ū) against ln m per network, print the
// series next to the m^0.8 reference, and fit the Chuang-Sirbu exponent.
#pragma once

#include <cmath>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/runner.hpp"
#include "core/scaling_law.hpp"
#include "graph/components.hpp"
#include "sim/csv.hpp"
#include "topo/catalog.hpp"

namespace mcast::bench {

inline int run_fig1(const std::string& figure_id,
                    std::vector<network_entry> suite) {
  banner(figure_id,
         "ln(L(m)/ubar) vs ln m compared to the line m^0.8 "
         "(Chuang-Sirbu scaling law, paper Fig 1)");

  const node_id budget = by_scale<node_id>(400, 30000, 60000);
  if (budget < 30000) suite = scaled_networks(suite, budget);
  monte_carlo_params mc;
  mc.receiver_sets = by_scale<std::size_t>(5, 40, 100);   // paper: N_rcvr = 100
  mc.sources = by_scale<std::size_t>(4, 20, 100);         // paper: N_source = 100
  mc.seed = 1999;
  mc.threads = 0;  // use all cores; results are thread-count invariant
  const std::size_t grid_points = by_scale<std::size_t>(10, 22, 30);

  std::ostringstream fits;
  for (const auto& entry : suite) {
    const graph g = largest_component(entry.build(7));
    const std::uint64_t sites = g.node_count() - 1;
    const auto grid = default_group_grid(sites, grid_points);
    const auto rows = measure_distinct_receivers(g, grid, mc);

    std::vector<double> x, y;
    for (const auto& p : rows) {
      x.push_back(static_cast<double>(p.group_size));
      y.push_back(p.ratio_mean);
    }
    print_series(std::cout, entry.name + "  (L(m)/ubar vs m)", x, y);

    const double lo = std::max(2.0, 2e-3 * static_cast<double>(sites));
    const double hi = 0.5 * static_cast<double>(sites);
    const scaling_law law = scaling_law::fit_to(rows, lo, hi);
    std::ostringstream line;
    line << "exponent=" << law.exponent() << " amplitude=" << law.amplitude()
         << " R2=" << law.r_squared() << " (paper: ~0.8)";
    fits << "FIT: " << figure_id << "/" << entry.name << " " << line.str() << "\n";
  }

  // The m^0.8 reference line over the widest grid used.
  std::vector<double> rx, ry;
  for (double m = 1.0; m <= 1e5; m *= 3.0) {
    rx.push_back(m);
    ry.push_back(std::pow(m, 0.8));
  }
  print_series(std::cout, "reference m^0.8", rx, ry);
  std::cout << fits.str();
  return 0;
}

}  // namespace mcast::bench
