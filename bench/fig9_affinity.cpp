// Figure 9 — L̂_β(n)/(n·D) versus ln n for binary trees with receivers at
// all non-root sites, for β in {-10, -1, -0.1, 0, 0.1, 1, 10}:
//   (a) depth D = 10;   (b) depth D = 12.
// Configurations are sampled from W_α(β) ∝ exp(−β·d̄(α)) with a Metropolis
// chain; the β = ±∞ envelopes come from the greedy extreme constructions.
// Pass --extremes-only to print just the closed-form envelopes.
#include <cmath>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/series.hpp"
#include "bench_common.hpp"
#include "multicast/affinity.hpp"
#include "multicast/receivers.hpp"
#include "sim/csv.hpp"
#include "topo/kary.hpp"

int main(int argc, char** argv) {
  using namespace mcast;
  const bool extremes_only = argc > 1 && std::strcmp(argv[1], "--extremes-only") == 0;
  bench::banner("Fig 9",
                "L-hat_beta(n)/(n*D) vs ln n on binary trees D=10 and D=12 "
                "for beta in {-10,-1,-0.1,0,0.1,1,10} (paper Fig 9a/9b)");

  const std::vector<unsigned> depths = {10, 12};
  const double betas[] = {-10.0, -1.0, -0.1, 0.0, 0.1, 1.0, 10.0};
  const std::uint64_t n_max = bench::by_scale<std::uint64_t>(256, 2048, 10000);
  const std::size_t grid_points = bench::by_scale<std::size_t>(6, 10, 14);
  const unsigned burn = bench::by_scale<unsigned>(6, 14, 25);
  const unsigned sample = bench::by_scale<unsigned>(3, 6, 10);

  for (unsigned d : depths) {
    const kary_shape shape(2, d);
    const graph g = shape.to_graph();
    const source_tree tree(g, 0);
    const std::vector<node_id> universe = all_sites_except(g, 0);
    const kary_distance_oracle oracle(shape);
    const auto grid = log_grid_integers(1, n_max, grid_points);

    // β = ±∞ envelopes from the greedy constructions (distinct sites, so
    // they stop at the site count).
    rng greedy_gen(55);
    const std::size_t env_n = std::min<std::size_t>(universe.size(),
                                                    static_cast<std::size_t>(n_max));
    const auto packed = greedy_affinity_trajectory(tree, universe, env_n, greedy_gen);
    const auto spread = greedy_disaffinity_trajectory(tree, universe, env_n, greedy_gen);
    auto emit_envelope = [&](const char* name, const std::vector<std::size_t>& traj) {
      std::vector<double> xs, ys;
      for (std::uint64_t n : grid) {
        if (n > traj.size()) break;
        xs.push_back(std::log(static_cast<double>(n)));
        ys.push_back(static_cast<double>(traj[n - 1]) /
                     (static_cast<double>(n) * d));
      }
      std::ostringstream label;
      label << name << " D=" << d << "  (L/(n*D) vs ln n)";
      print_series(std::cout, label.str(), xs, ys);
    };
    emit_envelope("beta=+inf (greedy clustered)", packed);
    emit_envelope("beta=-inf (greedy spread)", spread);
    if (extremes_only) continue;

    for (double beta : betas) {
      std::vector<double> xs, ys;
      rng gen(900 + d);
      for (std::uint64_t n : grid) {
        affinity_chain_params params;
        params.beta = beta;
        params.burn_in_sweeps = burn;
        params.sample_sweeps = sample;
        const affinity_estimate est = sample_affinity_tree_size(
            tree, universe, static_cast<std::size_t>(n), oracle, params, gen);
        xs.push_back(std::log(static_cast<double>(n)));
        ys.push_back(est.mean_tree_size / (static_cast<double>(n) * d));
      }
      std::ostringstream label;
      label << "beta=" << beta << " D=" << d << "  (L/(n*D) vs ln n)";
      print_series(std::cout, label.str(), xs, ys);
    }

    // The paper's Section 5.4 observation: the β-spread at fixed n shrinks
    // as the network grows; report the spread at a mid-grid n for cross-D
    // comparison.
    const std::uint64_t probe = grid[grid.size() / 2];
    double lo = 1e300, hi = -1e300;
    for (double beta : {-1.0, 0.0, 1.0}) {
      affinity_chain_params params;
      params.beta = beta;
      params.burn_in_sweeps = burn;
      params.sample_sweeps = sample;
      rng gen(77 + d);
      const double v = sample_affinity_tree_size(tree, universe,
                                                 static_cast<std::size_t>(probe),
                                                 oracle, params, gen)
                           .mean_tree_size /
                       (static_cast<double>(probe) * d);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    std::ostringstream line;
    line << "beta_spread(L/(nD)) at n=" << probe << ": " << hi - lo
         << " (should shrink with D; Section 5.4)";
    print_fit_line(std::cout, "Fig9/D=" + std::to_string(d), line.str());
  }
  std::cout << "paper: affinity (beta>0) shrinks the tree, disaffinity "
               "grows it; effect largest at small n and vanishing in the "
               "large-network limit (Fig 9, Section 5.4).\n";
  return 0;
}
