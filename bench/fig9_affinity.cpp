// Figure 9 — L̂_β(n)/(n·D) versus ln n for binary trees with receivers at
// all non-root sites, for β in {-10, -1, -0.1, 0, 0.1, 1, 10}:
//   (a) depth D = 10;   (b) depth D = 12.
// Configurations are sampled from W_α(β) ∝ exp(−β·d̄(α)) with a Metropolis
// chain; the β = ±∞ envelopes come from the greedy extreme constructions.
// The extremes_only parameter (the old --extremes-only flag) prints just
// the closed-form envelopes. Each depth carries its own RNGs, so the two
// depths fan out over the scheduler.
#include <cmath>
#include <sstream>

#include "experiments.hpp"

#include "analysis/series.hpp"
#include "lab/registry.hpp"
#include "multicast/affinity.hpp"
#include "multicast/receivers.hpp"
#include "topo/kary.hpp"

namespace mcast::lab {

void register_fig9(registry& reg) {
  experiment e;
  e.id = "fig9";
  e.title = "Fig 9: affinity/disaffinity L-hat_beta(n) on binary trees";
  e.claim =
      "L-hat_beta(n)/(n*D) vs ln n on binary trees D=10 and D=12 "
      "for beta in {-10,-1,-0.1,0,0.1,1,10} (paper Fig 9a/9b)";
  e.params = {
      p_u64("n_max", "largest group size on the grid", 256, 2048, 10000),
      p_u64("grid_points", "group sizes on the log grid", 6, 10, 14),
      p_u64("burn", "Metropolis burn-in sweeps", 6, 14, 25),
      p_u64("sample", "Metropolis sample sweeps", 3, 6, 10),
      p_bool("extremes_only",
             "print only the greedy beta=+/-inf envelopes", false),
  };
  e.metric_groups = {"scheduler", "traversal"};
  e.run = [](context& ctx) {
    const std::vector<unsigned> depths = {10, 12};
    const double betas[] = {-10.0, -1.0, -0.1, 0.0, 0.1, 1.0, 10.0};
    const std::uint64_t n_max = ctx.u64("n_max");
    const std::size_t grid_points = ctx.u64("grid_points");
    const unsigned burn = static_cast<unsigned>(ctx.u64("burn"));
    const unsigned sample = static_cast<unsigned>(ctx.u64("sample"));
    const bool extremes_only = ctx.flag("extremes_only");

    ctx.sweep(depths.size(), [&](std::size_t di, recorder& rec,
                                 worker_state&) {
      const unsigned d = depths[di];
      const kary_shape shape(2, d);
      const graph g = shape.to_graph();
      const source_tree tree(g, 0);
      const std::vector<node_id> universe = all_sites_except(g, 0);
      const kary_distance_oracle oracle(shape);
      const auto grid = log_grid_integers(1, n_max, grid_points);

      // β = ±∞ envelopes from the greedy constructions (distinct sites, so
      // they stop at the site count).
      rng greedy_gen(55);
      const std::size_t env_n = std::min<std::size_t>(
          universe.size(), static_cast<std::size_t>(n_max));
      const auto packed =
          greedy_affinity_trajectory(tree, universe, env_n, greedy_gen);
      const auto spread =
          greedy_disaffinity_trajectory(tree, universe, env_n, greedy_gen);
      auto emit_envelope = [&](const char* name,
                               const std::vector<std::size_t>& traj) {
        std::vector<double> xs, ys;
        for (std::uint64_t n : grid) {
          if (n > traj.size()) break;
          xs.push_back(std::log(static_cast<double>(n)));
          ys.push_back(static_cast<double>(traj[n - 1]) /
                       (static_cast<double>(n) * d));
        }
        std::ostringstream label;
        label << name << " D=" << d << "  (L/(n*D) vs ln n)";
        rec.series(label.str(), xs, ys);
      };
      emit_envelope("beta=+inf (greedy clustered)", packed);
      emit_envelope("beta=-inf (greedy spread)", spread);
      if (extremes_only) return;

      for (double beta : betas) {
        std::vector<double> xs, ys;
        rng gen(900 + d);
        for (std::uint64_t n : grid) {
          affinity_chain_params params;
          params.beta = beta;
          params.burn_in_sweeps = burn;
          params.sample_sweeps = sample;
          const affinity_estimate est = sample_affinity_tree_size(
              tree, universe, static_cast<std::size_t>(n), oracle, params,
              gen);
          xs.push_back(std::log(static_cast<double>(n)));
          ys.push_back(est.mean_tree_size / (static_cast<double>(n) * d));
        }
        std::ostringstream label;
        label << "beta=" << beta << " D=" << d << "  (L/(n*D) vs ln n)";
        rec.series(label.str(), xs, ys);
      }

      // The paper's Section 5.4 observation: the β-spread at fixed n shrinks
      // as the network grows; report the spread at a mid-grid n for cross-D
      // comparison.
      const std::uint64_t probe = grid[grid.size() / 2];
      double lo = 1e300, hi = -1e300;
      for (double beta : {-1.0, 0.0, 1.0}) {
        affinity_chain_params params;
        params.beta = beta;
        params.burn_in_sweeps = burn;
        params.sample_sweeps = sample;
        rng gen(77 + d);
        const double v =
            sample_affinity_tree_size(tree, universe,
                                      static_cast<std::size_t>(probe), oracle,
                                      params, gen)
                .mean_tree_size /
            (static_cast<double>(probe) * d);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      std::ostringstream line;
      line << "beta_spread(L/(nD)) at n=" << probe << ": " << hi - lo
           << " (should shrink with D; Section 5.4)";
      rec.fit("Fig9/D=" + std::to_string(d), line.str());
    });
    ctx.line(
        "paper: affinity (beta>0) shrinks the tree, disaffinity "
        "grows it; effect largest at small n and vanishing in the "
        "large-network limit (Fig 9, Section 5.4).");
  };
  reg.add(std::move(e));
}

}  // namespace mcast::lab
