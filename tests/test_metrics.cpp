// Graph metrics: degree stats, path lengths, diameter, Table 1 rows.
#include <gtest/gtest.h>

#include "graph/metrics.hpp"
#include "sim/rng.hpp"
#include "topo/regular.hpp"

namespace mcast {
namespace {

TEST(metrics, degree_stats_star) {
  const degree_stats s = compute_degree_stats(make_star(5));
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.0 * 4 / 5);
  ASSERT_GE(s.histogram.size(), 5u);
  EXPECT_EQ(s.histogram[1], 4u);
  EXPECT_EQ(s.histogram[4], 1u);
}

TEST(metrics, degree_stats_empty) {
  const degree_stats s = compute_degree_stats(graph{});
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(metrics, average_path_length_complete_graph_is_one) {
  EXPECT_DOUBLE_EQ(average_path_length_exact(make_complete(6)), 1.0);
}

TEST(metrics, average_path_length_path3) {
  // Path 0-1-2: ordered pairs distances {1,2,1,1,2,1} -> mean 4/3.
  EXPECT_NEAR(average_path_length_exact(make_path(3)), 4.0 / 3.0, 1e-12);
}

TEST(metrics, diameter_values) {
  EXPECT_EQ(diameter_exact(make_path(7)), 6u);
  EXPECT_EQ(diameter_exact(make_ring(8)), 4u);
  EXPECT_EQ(diameter_exact(make_complete(4)), 1u);
  EXPECT_EQ(diameter_exact(make_grid(3, 4)), 5u);
}

TEST(metrics, sampled_average_matches_exact_on_vertex_transitive_graph) {
  const graph g = make_ring(64);
  rng gen(3);
  const double exact = average_path_length_exact(g);
  const double sampled = average_path_length_sampled(
      g, 8, [&gen](std::size_t n) { return gen.below(n); });
  // Every source of a ring sees identical distances, so sampling is exact.
  EXPECT_NEAR(sampled, exact, 1e-12);
}

TEST(metrics, summarize_network_small_graph_exact) {
  graph g = make_ring(10);
  const table1_row row = summarize_network(g);
  EXPECT_EQ(row.name, "ring10");
  EXPECT_EQ(row.nodes, 10u);
  EXPECT_EQ(row.links, 10u);
  EXPECT_DOUBLE_EQ(row.avg_degree, 2.0);
  EXPECT_EQ(row.diameter, 5u);
  EXPECT_GT(row.avg_path_length, 2.0);
  EXPECT_LT(row.avg_path_length, 3.0);
}

TEST(metrics, summarize_network_large_graph_sampled) {
  const graph g = make_grid(80, 80);  // 6400 nodes > default threshold
  const table1_row row = summarize_network(g, /*exact_threshold=*/4000,
                                           /*samples=*/16, /*seed=*/5);
  EXPECT_EQ(row.nodes, 6400u);
  // Diameter lower bound can't exceed the true diameter 158.
  EXPECT_LE(row.diameter, 158u);
  EXPECT_GT(row.diameter, 60u);
  EXPECT_GT(row.avg_path_length, 20.0);
}

TEST(metrics, summarize_trivial_graphs) {
  const table1_row row = summarize_network(make_path(1));
  EXPECT_EQ(row.nodes, 1u);
  EXPECT_EQ(row.links, 0u);
  EXPECT_DOUBLE_EQ(row.avg_path_length, 0.0);
}

}  // namespace
}  // namespace mcast
