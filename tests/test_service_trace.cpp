// End-to-end request tracing + access log through the service stack:
//   * trace_request_id is a pure deterministic mint that is never 0;
//   * the line server writes one access-log record per request, with the
//     latency split, byte counts, outcome, and the client "trace" token;
//   * the slow-query threshold flags records and feeds svc.access.slow;
//   * shed refusals produce shed-tagged records with the typed outcome;
//   * batch sub-op and scatter/shard spans carry their parent request's
//     trace id across worker lanes (the property `same_trace` rules check);
//   * responses from a traced, access-logged 8-client run are
//     byte-identical to an untraced serial replay — observability must
//     never change the bytes on the wire.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "obs/access_log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/protocol.hpp"
#include "service/query_service.hpp"
#include "service/shard_router.hpp"

namespace mcast::service {
namespace {

using net::line_reader;
using net::line_server;
using net::server_config;
using net::unique_fd;

constexpr int kReadTimeoutMs = 60000;

server_config traced_config(std::uint64_t trace_seed, std::size_t workers = 2) {
  server_config config;
  config.port = 0;
  config.workers = workers;
  config.queue_capacity = 64;
  config.trace_seed = trace_seed;
  config.overload_response =
      error_response(error_code::overloaded, "connection queue full");
  config.overlong_response =
      error_response(error_code::limit_exceeded, "request line too long");
  config.internal_error_response =
      error_response(error_code::internal_error, "handler failed");
  return config;
}

std::vector<std::string> roundtrip(std::uint16_t port,
                                   const std::vector<std::string>& requests) {
  unique_fd conn = net::connect_loopback(port);
  std::string batch;
  for (const std::string& r : requests) batch += r + "\n";
  if (!net::send_all(conn.get(), batch)) {
    ADD_FAILURE() << "send failed";
    return {};
  }
  std::vector<std::string> responses;
  line_reader reader(conn.get(), 1 << 22);
  std::string line;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const line_reader::status st = reader.read_line(line, kReadTimeoutMs);
    if (st != line_reader::status::line) {
      ADD_FAILURE() << "response " << i << " missing (status "
                    << static_cast<int>(st) << ")";
      return responses;
    }
    responses.push_back(line);
  }
  return responses;
}

std::vector<json::value> read_access_log(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::vector<json::value> records;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) records.push_back(json::parse(line));
  }
  return records;
}

std::string str_field(const json::value& rec, const char* key) {
  const json::value* v = rec.get(key);
  if (v == nullptr || !v->is(json::value::kind::string)) {
    ADD_FAILURE() << "missing string field '" << key << "'";
    return std::string();
  }
  return v->as_string();
}

double num_field(const json::value& rec, const char* key) {
  const json::value* v = rec.get(key);
  if (v == nullptr || !v->is(json::value::kind::number)) {
    ADD_FAILURE() << "missing numeric field '" << key << "'";
    return 0.0;
  }
  return v->as_number();
}

bool bool_field(const json::value& rec, const char* key) {
  const json::value* v = rec.get(key);
  if (v == nullptr || !v->is(json::value::kind::boolean)) {
    ADD_FAILURE() << "missing boolean field '" << key << "'";
    return false;
  }
  return v->as_bool();
}

/// RAII cleanup so one test's sink/rings never leak into the next.
struct obs_guard {
  obs_guard() {
    obs::reset_metrics();
    obs::trace_disable();
    obs::trace_clear();
  }
  ~obs_guard() {
    obs::access_log_disable();
    obs::trace_disable();
    obs::trace_clear();
    obs::reset_metrics();
  }
};

std::string temp_path(const char* name) {
  return ::testing::TempDir() + std::string("svc_trace_") + name;
}

// --- trace_request_id: pure, deterministic, never zero -----------------

TEST(trace_request_id, deterministic_and_never_zero) {
  // Pure function: same inputs, same id — across calls and processes.
  EXPECT_EQ(obs::trace_request_id(7, 3, 11), obs::trace_request_id(7, 3, 11));

  // Distinct over a small sweep, and never the "no trace" sentinel 0.
  std::set<std::uint64_t> ids;
  for (std::uint64_t seed : {0ull, 1ull, 42ull}) {
    for (std::uint64_t conn = 0; conn < 8; ++conn) {
      for (std::uint64_t op = 0; op < 8; ++op) {
        const std::uint64_t id = obs::trace_request_id(seed, conn, op);
        EXPECT_NE(id, 0u);
        ids.insert(id);
      }
    }
  }
  EXPECT_EQ(ids.size(), 3u * 8u * 8u) << "id collision in a tiny sweep";

  // compile-time usable (constexpr), as the header promises.
  static_assert(obs::trace_request_id(0, 0, 0) != 0, "mint must avoid 0");
}

// --- access log through the full server stack --------------------------

TEST(service_trace, access_log_records_every_request) {
  if (!obs::snapshot().compiled_in) GTEST_SKIP() << "obs disabled";
  obs_guard guard;
  const std::string path = temp_path("access.jsonl");
  obs::access_log_enable(path);

  auto svc = std::make_shared<query_service>();
  line_server server(traced_config(/*trace_seed=*/42),
                     [svc](const std::string& line) {
                       return svc->handle(line);
                     });
  const std::vector<std::string> requests = {
      "{\"op\":\"lmhat\",\"trace\":\"cli-a1\",\"k\":3,\"depth\":4,"
      "\"n\":[1,10,100]}",
      "{\"op\":\"reachability\",\"topology\":\"ARPA\",\"source\":0}",
      "{\"op\":\"nosuch\"}",
  };
  const std::vector<std::string> responses =
      roundtrip(server.port(), requests);
  ASSERT_EQ(responses.size(), requests.size());
  server.shutdown();
  server.wait();
  obs::access_log_disable();

  const std::vector<json::value> records = read_access_log(path);
  ASSERT_EQ(records.size(), requests.size());
  for (const json::value& rec : records) {
    EXPECT_EQ(str_field(rec, "schema"), obs::k_access_log_schema);
    // The server-minted id: 16 hex chars, never the zero sentinel.
    const std::string trace = str_field(rec, "trace");
    EXPECT_EQ(trace.size(), 16u);
    EXPECT_NE(trace, "0000000000000000");
    EXPECT_GT(num_field(rec, "total_ns"), 0.0);
    EXPECT_GT(num_field(rec, "bytes_in"), 0.0);
    EXPECT_GT(num_field(rec, "bytes_out"), 0.0);
    EXPECT_FALSE(bool_field(rec, "chaos"));
  }
  // Requests are served in order on one connection, so records line up.
  EXPECT_EQ(str_field(records[0], "op"), "lmhat");
  EXPECT_EQ(str_field(records[0], "token"), "cli-a1");
  EXPECT_EQ(str_field(records[0], "outcome"), "ok");
  EXPECT_EQ(str_field(records[1], "op"), "reachability");
  EXPECT_EQ(str_field(records[1], "topology"), "ARPA");
  EXPECT_EQ(str_field(records[2], "outcome"), "unknown_op");
  // The minted ids are distinct per request.
  EXPECT_NE(str_field(records[0], "trace"), str_field(records[1], "trace"));

  const obs::metrics_snapshot snap = obs::snapshot();
  EXPECT_EQ(snap.at(obs::counter::svc_access_records), records.size());
  EXPECT_EQ(snap.at(obs::counter::svc_access_slow), 0u);
}

TEST(service_trace, slow_threshold_flags_records) {
  if (!obs::snapshot().compiled_in) GTEST_SKIP() << "obs disabled";
  obs_guard guard;
  const std::string path = temp_path("slow.jsonl");
  // A 1ns threshold flags everything: the flag and counter must follow.
  obs::access_log_enable(path, /*slow_ns=*/1);

  auto svc = std::make_shared<query_service>();
  line_server server(traced_config(7), [svc](const std::string& line) {
    return svc->handle(line);
  });
  const auto responses = roundtrip(
      server.port(), {"{\"op\":\"lmhat\",\"k\":2,\"depth\":3,\"n\":[1]}"});
  ASSERT_EQ(responses.size(), 1u);
  server.shutdown();
  server.wait();
  obs::access_log_disable();

  const std::vector<json::value> records = read_access_log(path);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(bool_field(records[0], "slow"));
  EXPECT_GE(obs::snapshot().at(obs::counter::svc_access_slow), 1u);
}

TEST(service_trace, shed_refusal_is_shed_tagged) {
  if (!obs::snapshot().compiled_in) GTEST_SKIP() << "obs disabled";
  obs_guard guard;
  const std::string path = temp_path("shed.jsonl");
  obs::access_log_enable(path);

  auto svc = std::make_shared<query_service>();
  shed_policy policy;
  policy.degrade_at = 0.5;
  policy.refuse_at = 0.9;
  svc->set_shed_policy(policy);
  svc->set_pressure_source([] { return 1.0; });  // saturated: refuse tier
  line_server server(traced_config(7), [svc](const std::string& line) {
    return svc->handle(line);
  });
  const auto responses = roundtrip(
      server.port(),
      {"{\"op\":\"lm_estimate\",\"topology\":\"ARPA\",\"group_sizes\":[2],"
       "\"sources\":2,\"receiver_sets\":1,\"seed\":1}"});
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_NE(responses[0].find("\"code\":\"shed\""), std::string::npos)
      << responses[0];
  server.shutdown();
  server.wait();
  obs::access_log_disable();

  const std::vector<json::value> records = read_access_log(path);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(str_field(records[0], "outcome"), "shed");
  EXPECT_TRUE(bool_field(records[0], "shed"));
}

// --- cross-lane span identity ------------------------------------------

TEST(service_trace, batch_and_scatter_spans_carry_request_trace_id) {
  if (!obs::snapshot().compiled_in) GTEST_SKIP() << "obs disabled";
  obs_guard guard;
  obs::trace_enable();

  sharded_config config;
  config.shards = 2;
  auto svc = std::make_shared<sharded_service>(config);
  line_server server(traced_config(/*trace_seed=*/11),
                     [svc](const std::string& line) {
                       return svc->handle(line);
                     });
  // One request: a batch whose slots route to shards, run inline, and
  // fail — the failing slot's span must still carry the request's id.
  const auto responses = roundtrip(
      server.port(),
      {"{\"op\":\"batch\",\"ops\":["
       "{\"op\":\"lmhat\",\"k\":2,\"depth\":3,\"n\":[1,10]},"
       "{\"op\":\"reachability\",\"topology\":\"ARPA\",\"source\":1},"
       "{\"op\":\"nosuch\"}]}"});
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_NE(responses[0].find("\"ok\":true"), std::string::npos)
      << responses[0];
  EXPECT_NE(responses[0].find("unknown_op"), std::string::npos)
      << "failing slot must keep its typed error: " << responses[0];
  server.shutdown();
  server.wait();
  svc->shutdown();
  obs::trace_disable();

  const obs::trace_dump dump = obs::trace_collect();
  const obs::trace_event* request = nullptr;
  std::size_t subops = 0;
  std::size_t shard_side = 0;  // shard.task + scatter.chunk spans
  for (const obs::trace_event& e : dump.events) {
    if (e.name == "request") {
      ASSERT_EQ(request, nullptr) << "one request, one root span";
      request = &e;
    }
  }
  ASSERT_NE(request, nullptr);
  EXPECT_NE(request->trace_id, 0u);
  EXPECT_NE(request->span_id, 0u);
  EXPECT_EQ(request->parent_id, 0u);
  for (const obs::trace_event& e : dump.events) {
    if (e.name == "batch.subop") {
      ++subops;
      EXPECT_EQ(e.trace_id, request->trace_id) << "sub-op lost its request";
      EXPECT_NE(e.parent_id, 0u);
    }
    if (e.name == "shard.task" || e.name == "scatter.chunk") {
      ++shard_side;
      // These run on shard-worker lanes; the context was carried across.
      EXPECT_EQ(e.trace_id, request->trace_id) << e.name;
    }
  }
  EXPECT_EQ(subops, 3u) << "every slot spans, the failing one included";
  EXPECT_GE(shard_side, 1u) << "routed work must span on the shard lane";
}

// --- byte identity: observability must not change the wire -------------

TEST(service_trace, traced_run_is_byte_identical_to_untraced_replay) {
  if (!obs::snapshot().compiled_in) GTEST_SKIP() << "obs disabled";
  obs_guard guard;
  const std::string path = temp_path("identity.jsonl");
  obs::trace_enable();
  obs::access_log_enable(path);

  sharded_config config;
  config.shards = 4;
  auto svc = std::make_shared<sharded_service>(config);
  line_server server(traced_config(/*trace_seed=*/3, /*workers=*/4),
                     [svc](const std::string& line) {
                       return svc->handle(line);
                     });

  constexpr int kClients = 8;
  std::vector<std::vector<std::string>> requests(kClients);
  for (int c = 0; c < kClients; ++c) {
    requests[c] = {
        "{\"op\":\"lmhat\",\"trace\":\"c" + std::to_string(c) +
            "-a1\",\"k\":" + std::to_string(2 + c % 4) +
            ",\"depth\":4,\"n\":[1,10,100]}",
        "{\"op\":\"lm_estimate\",\"topology\":\"ARPA\",\"group_sizes\":"
        "[2,4],\"sources\":2,\"receiver_sets\":2,\"seed\":" +
            std::to_string(50 + c) + "}",
        "{\"op\":\"batch\",\"trace\":\"b" + std::to_string(c) +
            "-a1\",\"ops\":[{\"op\":\"lmhat\",\"k\":2,\"depth\":3,"
            "\"n\":[1,10]},{\"op\":\"nosuch\"}]}",
    };
  }
  std::vector<std::vector<std::string>> responses(kClients);
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        responses[c] = roundtrip(server.port(), requests[c]);
      });
    }
    for (std::thread& t : clients) t.join();
  }
  server.shutdown();
  server.wait();
  svc->shutdown();
  obs::access_log_disable();
  obs::trace_disable();

  // The client "trace" token is echoed (it is part of the request bytes),
  // but the server-minted ids must never leak into a response.
  EXPECT_NE(responses[0][0].find("\"trace\":\"c0-a1\""), std::string::npos)
      << responses[0][0];

  // Serial replay through a fresh core with all observability off.
  sharded_config quiet_config;
  quiet_config.shards = 4;
  sharded_service quiet(quiet_config);
  for (int c = 0; c < kClients; ++c) {
    ASSERT_EQ(responses[c].size(), requests[c].size()) << "client " << c;
    for (std::size_t i = 0; i < requests[c].size(); ++i) {
      EXPECT_EQ(responses[c][i], quiet.handle(requests[c][i]))
          << "client " << c << " request " << i
          << ": tracing changed the response bytes";
    }
  }
  quiet.shutdown();

  // Every request also left exactly one access record.
  EXPECT_EQ(read_access_log(path).size(),
            static_cast<std::size_t>(kClients) * 3u);
}

}  // namespace
}  // namespace mcast::service
